//! Prints the Table 3 flat-fabric golden fingerprints pinned by
//! `tests/topology_prop.rs` (regenerate them here after an
//! *intentional* semantic change to the default system).

use tokencmp_net::Tier;
use tokencmp_proto::{MsgClass, SystemConfig};
use tokencmp_system::{run_workload, Protocol, RunOptions};
use tokencmp_workloads::LockingWorkload;

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn main() {
    let cfg = SystemConfig::default();
    for proto in Protocol::ALL {
        let wl = LockingWorkload::new(16, 4, 6, 0xA11CE);
        let opts = RunOptions::default();
        let (res, _wl) = run_workload(&cfg, proto, wl, &opts);
        let mut s = String::new();
        s.push_str(&format!(
            "outcome={:?} runtime_ps={} events={}\n",
            res.outcome,
            res.runtime.as_ps(),
            res.events
        ));
        for tier in Tier::ALL {
            for class in MsgClass::ALL {
                s.push_str(&format!(
                    "traffic {tier:?} {class:?} bytes={} msgs={}\n",
                    res.traffic.bytes(tier, class),
                    res.traffic.msgs(tier, class)
                ));
            }
        }
        s.push_str(&format!("{}", res.counters));
        println!("{:>12} fp=0x{:016x}", proto.name(), fnv1a(&s));
    }
}
