//! Time-series telemetry end to end: run a sampled + traced TokenCMP
//! workload, export the gauge series as schema-stamped JSON, merge the
//! same series into the Perfetto span export as counter tracks, and
//! self-validate every artifact on the way out (the CI observability
//! job runs this example and trusts its assertions).
//!
//! ```sh
//! cargo run --release --example timeseries
//! # open target/sweep/timeseries_perfetto.json in ui.perfetto.dev
//! ```

use tokencmp::sweep::json::{parse, Value};
use tokencmp::sweep::{series_from_value, series_to_value, write_value};
use tokencmp::{
    chrome_trace_with_counters, run_workload_traced, Dur, LockingWorkload, Protocol, RingRecorder,
    RunOptions, RunOutcome, SystemConfig, TraceHandle, Variant, TIMESERIES_SCHEMA,
};

fn main() {
    let cfg = SystemConfig::default();
    let workload = LockingWorkload::new(cfg.layout().procs(), 8, 6, 42);

    let rec = RingRecorder::new(1 << 20).into_handle();
    let handle: TraceHandle = rec.clone();
    let opts = RunOptions::default().with_sampling(Dur::from_ns(50));
    let (mut res, w) = run_workload_traced(
        &cfg,
        Protocol::Token(Variant::Dst1),
        workload,
        &opts,
        Some(handle),
    );
    assert_eq!(res.outcome, RunOutcome::Idle);
    assert_eq!(w.total_acquires, 16 * 6);

    let series = res.series.take().expect("sampling was on");
    assert!(!series.is_empty(), "the run must produce samples");
    println!(
        "sampled {} snapshots every {} ps over {:.1} ns of simulated time",
        series.len(),
        series.period_ps,
        res.runtime_ns()
    );
    println!("gauge/rate keys: {}", series.key_union().join(", "));
    print!("{}", series.tail_table(4));

    // Artifact 1: the standalone schema-stamped series export.
    let value = series_to_value(&series);
    assert_eq!(
        value.get("schema").and_then(Value::as_str),
        Some(TIMESERIES_SCHEMA)
    );
    let path = write_value("timeseries", &value).expect("write series JSON");
    println!("wrote {}", path.display());

    // Self-validation: the exported text parses back to the exact
    // series we measured — schema, period, backend, every sample.
    let text = std::fs::read_to_string(&path).expect("read back");
    let round = series_from_value(&parse(&text).expect("valid JSON")).expect("valid schema");
    assert_eq!(round, series, "JSON round-trip must be lossless");

    // Artifact 2: Perfetto spans + counter tracks on one sim-time axis.
    let records = rec.borrow().to_vec();
    let perfetto = chrome_trace_with_counters(&records, Some(&series));
    let parsed = parse(&perfetto).expect("Perfetto export must be valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents array");
    let counters = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("C"))
        .count();
    assert!(
        counters > 0,
        "counter tracks missing from the merged export"
    );
    let dir = path.parent().expect("export dir");
    let pf_path = dir.join("timeseries_perfetto.json");
    std::fs::write(&pf_path, &perfetto).expect("write Perfetto export");
    println!(
        "wrote {} ({} events, {} counter samples)",
        pf_path.display(),
        events.len(),
        counters
    );
    println!("timeseries example OK");
}
