//! Exhaustively verify the token coherence correctness substrate — the
//! paper's Section 5 study — with the in-tree explicit-state model
//! checker: safety under *every* performance policy, plus both persistent
//! request mechanisms, against the flat directory comparison model.
//!
//! ```sh
//! cargo run --release --example verify_substrate
//! ```

use tokencmp::mcheck::{
    check, spec_lines, CheckOptions, DirModel, DirModelParams, SubstrateMode, TokenModel,
    TokenModelParams,
};

fn main() {
    println!(
        "{:>28} {:>10} {:>12} {:>7} {:>8}",
        "model", "states", "transitions", "depth", "time"
    );
    let opts = CheckOptions::default();

    for (name, mode) in [
        ("TokenCMP-safety", SubstrateMode::SafetyOnly),
        ("TokenCMP-dst", SubstrateMode::Distributed),
        ("TokenCMP-arb", SubstrateMode::Arbiter),
    ] {
        let model = TokenModel::new(TokenModelParams::small(mode));
        match check(&model, &opts) {
            Ok(r) => println!(
                "{name:>28} {:>10} {:>12} {:>7} {:>7.2}s",
                r.states, r.transitions, r.depth, r.seconds
            ),
            Err(v) => {
                eprintln!("{name}: VIOLATION\n{v}");
                std::process::exit(1);
            }
        }
    }

    let dir = DirModel::new(DirModelParams::small());
    match check(&dir, &opts) {
        Ok(r) => println!(
            "{:>28} {:>10} {:>12} {:>7} {:>7.2}s",
            "flat DirectoryCMP", r.states, r.transitions, r.depth, r.seconds
        ),
        Err(v) => {
            eprintln!("flat DirectoryCMP: VIOLATION\n{v}");
            std::process::exit(1);
        }
    }

    println!("\nspecification sizes (non-comment lines; the paper's TLA+ analogue):");
    for (name, lines) in spec_lines() {
        println!("  {name:>24}: {lines}");
    }
    println!("\nall invariants hold: token conservation, single owner, serial view");
    println!("of memory, deadlock freedom, and EF-quiescence progress.");
}
