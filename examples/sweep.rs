//! Sweep engine demo: a Figure-6-style `protocol × seed` grid over the
//! locking micro-benchmark, fanned out over the deterministic parallel
//! engine, timed against the sequential baseline, and exported as JSON.
//!
//! ```sh
//! cargo run --release --example sweep
//! # worker count override:
//! TOKENCMP_SWEEP_THREADS=2 cargo run --release --example sweep
//! ```

use std::time::Instant;

use tokencmp::sweep::{self, Sweep};
use tokencmp::{LockingWorkload, Protocol, RunOptions, SystemConfig, Variant};

fn build(cfg: &SystemConfig, protocols: &[Protocol], seeds: &[u64]) -> Sweep {
    let mut sweep = Sweep::new();
    sweep.push_grid(cfg, protocols, seeds, RunOptions::default(), |seed| {
        LockingWorkload::new(16, 32, 40, seed)
    });
    sweep
}

fn main() {
    let cfg = SystemConfig::default();
    let protocols = [
        Protocol::Directory,
        Protocol::Token(Variant::Dst4),
        Protocol::Token(Variant::Dst1),
        Protocol::Token(Variant::Dst1Pred),
    ];
    let seeds: Vec<u64> = (1..=8).collect();
    let threads = sweep::default_threads();
    println!(
        "grid: {} protocols x {} seeds = {} points, {} worker thread(s)\n",
        protocols.len(),
        seeds.len(),
        protocols.len() * seeds.len(),
        threads
    );

    // Sequential baseline, then the same grid on the worker pool.
    let t0 = Instant::now();
    let seq = build(&cfg, &protocols, &seeds).run_sequential();
    let t_seq = t0.elapsed();
    let t0 = Instant::now();
    let par = build(&cfg, &protocols, &seeds).run();
    let t_par = t0.elapsed();

    // Bit-identical regardless of thread count.
    for (a, b) in seq.iter().zip(&par) {
        assert_eq!(a.result.runtime, b.result.runtime, "{}", a.point.label);
        assert_eq!(a.result.events, b.result.events, "{}", a.point.label);
    }

    // Figure-6-style table: mean runtime per protocol, normalized to the
    // directory baseline (the first protocol in grid order).
    let mean_ns = |i: usize| {
        par[i * seeds.len()..(i + 1) * seeds.len()]
            .iter()
            .map(|p| p.result.runtime_ns())
            .sum::<f64>()
            / seeds.len() as f64
    };
    let base = mean_ns(0);
    println!(
        "{:>22} {:>14} {:>12}",
        "protocol", "runtime (ns)", "normalized"
    );
    for (i, p) in protocols.iter().enumerate() {
        let m = mean_ns(i);
        println!("{:>22} {:>14.0} {:>12.2}", p.name(), m, m / base);
    }

    match sweep::write_json("example_sweep", &par) {
        Ok(path) => println!("\nper-point records: {}", path.display()),
        Err(e) => eprintln!("\nexport failed: {e}"),
    }
    println!(
        "sequential {:.2?} vs parallel {:.2?} on {threads} worker(s) — results identical",
        t_seq, t_par
    );
}
