//! Quickstart: build the paper's 4-CMP × 4-processor target system, run
//! the locking micro-benchmark under TokenCMP-dst1 and DirectoryCMP, and
//! print runtimes, miss statistics and interconnect traffic.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tokencmp::{
    run_workload, LockingWorkload, MsgClass, Protocol, RunOptions, SystemConfig, Tier, Variant,
};

fn main() {
    // Table 3 target system: 16 processors in four 4-way CMPs.
    let cfg = SystemConfig::default();
    println!(
        "system: {} CMPs x {} processors, {} tokens/block\n",
        cfg.cmps, cfg.procs_per_cmp, cfg.tokens_per_block
    );

    for protocol in [
        Protocol::Token(Variant::Dst1),
        Protocol::Directory,
        Protocol::PerfectL2,
    ] {
        // Table 2 locking micro-benchmark: 32 locks, 50 acquires each.
        let workload = LockingWorkload::new(cfg.layout().procs(), 32, 50, 42);
        let (result, workload) = run_workload(&cfg, protocol, workload, &RunOptions::default());

        println!("== {protocol}");
        println!("   runtime          : {:>12.1} ns", result.runtime_ns());
        println!("   acquires         : {:>12}", workload.total_acquires);
        println!(
            "   L1 hits / misses : {:>12} / {}",
            result.counters.counter("l1.hits"),
            result.counters.counter("l1.misses")
        );
        if result.counters.counter("l1.persistent") > 0 {
            println!(
                "   persistent reqs  : {:>12} ({:.3}% of misses)",
                result.counters.counter("l1.persistent"),
                100.0 * result.persistent_fraction()
            );
        }
        let inter = result.traffic.total_bytes(Tier::Inter);
        let intra = result.traffic.total_bytes(Tier::Intra);
        if inter + intra > 0 {
            println!("   inter-CMP bytes  : {inter:>12}");
            println!("   intra-CMP bytes  : {intra:>12}");
            println!(
                "   ... of which requests: {} B inter / {} B intra",
                result.traffic.bytes(Tier::Inter, MsgClass::Request),
                result.traffic.bytes(Tier::Intra, MsgClass::Request)
            );
        }
        println!();
    }
}
