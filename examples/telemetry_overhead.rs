//! Telemetry overhead methodology (DESIGN.md §16): wall-clock the
//! paper's Table 3 system running the barrier micro-benchmark with
//! telemetry fully off, then again with the sim-time sampler *and* the
//! host-time profiler on, on both scheduler backends. The enabled run
//! must stay within 5% of the bare run — telemetry that distorts what
//! it observes is not observability — and the profiler's own
//! attribution table shows where the host time actually goes.
//!
//! ```sh
//! cargo run --release --example telemetry_overhead
//! ```
//!
//! `TOKENCMP_OVERHEAD_REPS` (default 15) paired reps per backend: every
//! rep times all four configurations back to back and the reported
//! overhead is the *median* of the per-rep ratios, so host-load drift
//! and scheduler hiccups cancel instead of biasing one configuration.
//! The measured ratios are recorded in EXPERIMENTS.md.

use std::time::{Duration, Instant};

use tokencmp::{
    run_workload, BarrierWorkload, Dur, Protocol, RunOptions, RunOutcome, RunResult, SchedulerKind,
    SystemConfig, Variant,
};

const PROTOCOL: Protocol = Protocol::Token(Variant::Dst1);

fn workload() -> BarrierWorkload {
    BarrierWorkload::new(16, 12, Dur::from_ns(1000), Dur::from_ns(300), 11)
}

fn timed_run(cfg: &SystemConfig, opts: &RunOptions) -> (Duration, RunResult) {
    let start = Instant::now();
    let (res, _) = run_workload(cfg, PROTOCOL, workload(), opts);
    let elapsed = start.elapsed();
    assert_eq!(res.outcome, RunOutcome::Idle);
    (elapsed, res)
}

/// Paired measurement: each rep times every option set back to back,
/// yielding one wall-time ratio per enabled configuration *within* that
/// rep — host-load drift cancels because both ends of each ratio ran
/// adjacently. Returns the median baseline time, the median ratio per
/// non-baseline configuration (the median discards reps a scheduler
/// hiccup inflated), and each configuration's last result (results are
/// bit-identical across reps).
fn measure(
    cfg: &SystemConfig,
    opts: &[RunOptions],
    reps: u32,
) -> (Duration, Vec<f64>, Vec<RunResult>) {
    let mut offs: Vec<Duration> = Vec::new();
    let mut ratios: Vec<Vec<f64>> = opts[1..].iter().map(|_| Vec::new()).collect();
    let mut last: Vec<Option<RunResult>> = opts.iter().map(|_| None).collect();
    for _ in 0..reps {
        let mut times = Vec::with_capacity(opts.len());
        for (slot, o) in last.iter_mut().zip(opts) {
            let (t, r) = timed_run(cfg, o);
            times.push(t);
            *slot = Some(r);
        }
        offs.push(times[0]);
        for (rs, t) in ratios.iter_mut().zip(&times[1..]) {
            rs.push(t.as_secs_f64() / times[0].as_secs_f64());
        }
    }
    let med_off = median_dur(&mut offs);
    let med_ratios = ratios.iter_mut().map(|rs| median_f64(rs)).collect();
    let results = last.into_iter().map(|s| s.expect("reps >= 1")).collect();
    (med_off, med_ratios, results)
}

fn median_dur(xs: &mut [Duration]) -> Duration {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn median_f64(xs: &mut [f64]) -> f64 {
    xs.sort_unstable_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn main() {
    let cfg = SystemConfig::default();
    let reps: u32 = std::env::var("TOKENCMP_OVERHEAD_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(15);
    println!("telemetry overhead on Table 3 barrier ({PROTOCOL}, median of {reps} paired reps):\n");

    let mut worst: f64 = 0.0;
    for kind in SchedulerKind::ALL {
        let base = RunOptions {
            seed: 11,
            ..RunOptions::default().with_scheduler(kind)
        };
        // 1 µs sampling: the cadence DESIGN.md §16 recommends for
        // production sweeps (100 ns is for zooming into a stall
        // window, not for always-on monitoring). Sampler-only and
        // profiler-only rows isolate each observer's share.
        let sampling = base.with_sampling(Dur::from_ns(1000));
        let profiling = base.with_profiling();
        let both = sampling.with_profiling();
        let (off, ratios, results) = measure(&cfg, &[base, sampling, profiling, both], reps);
        let res_off = &results[0];
        let res_on = &results[3];

        // The observer discipline, re-checked here where the overhead
        // is measured: identical simulations, samples actually taken.
        assert_eq!(res_off.runtime, res_on.runtime, "{kind:?}: sim perturbed");
        assert_eq!(res_off.events, res_on.events, "{kind:?}: sim perturbed");
        let series = res_on.series.as_ref().expect("sampling was on");
        assert!(!series.is_empty());

        worst = worst.max(ratios[2]);
        println!(
            "{:<6}  off {:>8.3} ms   sampler {:+.2}%   profiler {:+.2}%   both {:+.2}%   ({} samples)",
            format!("{kind:?}").to_lowercase(),
            off.as_secs_f64() * 1e3,
            (ratios[0] - 1.0) * 100.0,
            (ratios[1] - 1.0) * 100.0,
            (ratios[2] - 1.0) * 100.0,
            series.len()
        );
        let profile = res_on.profile.as_ref().expect("profiling was on");
        println!("{}", profile.table());
    }

    assert!(
        worst <= 1.05,
        "telemetry overhead {:.2}% exceeds the 5% budget",
        (worst - 1.0) * 100.0
    );
    println!(
        "worst-case overhead {:+.2}% — within the 5% budget",
        (worst - 1.0) * 100.0
    );
}
