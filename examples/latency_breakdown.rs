//! Miss-latency attribution across the protocol ladder: runs the
//! directory baseline and every TokenCMP variant on the locking and
//! barrier micro-benchmarks, then prints the per-protocol attribution
//! table (mean/p50/p99 miss latency plus each segment's share of the
//! total latency-weighted time) and exports the raw records as JSON.
//!
//! ```sh
//! cargo run --release --example latency_breakdown
//! ```

use tokencmp::sweep::{self, Sweep};
use tokencmp::system::Workload;
use tokencmp::{
    latency_table, BarrierWorkload, Dur, LockingWorkload, PointRecord, Protocol, RunOptions,
    SystemConfig, Variant,
};

fn ladder() -> Vec<Protocol> {
    std::iter::once(Protocol::Directory)
        .chain(Variant::ALL.into_iter().map(Protocol::Token))
        .collect()
}

fn run<W: Workload + 'static>(
    name: &str,
    cfg: &SystemConfig,
    mk: impl Fn(u64) -> W + Send + Sync + 'static,
) -> Vec<PointRecord> {
    let mut sweep = Sweep::new();
    sweep.push_grid(cfg, &ladder(), &[42], RunOptions::default(), mk);
    let points = sweep.run();
    for p in &points {
        assert_eq!(
            format!("{:?}", p.result.outcome),
            "Idle",
            "{} did not finish cleanly",
            p.point.label
        );
    }
    let records: Vec<PointRecord> = points.iter().map(PointRecord::from_point).collect();
    println!("== {name} ==");
    println!("{}", latency_table(&records));
    if let Ok(path) = sweep::write_json(&format!("latency_{name}"), &points) {
        println!("records: {}\n", path.display());
    }
    records
}

fn main() {
    let cfg = SystemConfig::default();
    // High-contention locking: 16 processors fighting over 4 locks.
    let locking = run("locking", &cfg, |seed| {
        LockingWorkload::new(16, 4, 40, seed)
    });
    // Barrier phases: compute bursts separated by global synchronization.
    let barrier = run("barrier", &cfg, |seed| {
        BarrierWorkload::new(16, 8, Dur::from_ns(3000), Dur::from_ns(1000), seed)
    });
    // Every record that ran must have attributed every committed miss.
    for r in locking.iter().chain(&barrier) {
        assert!(r.miss_count() > 0, "{}: no attributed misses", r.protocol);
        let seg_sum: u64 = tokencmp::Segment::ALL
            .iter()
            .map(|s| r.counter(&format!("lat.{}.ps_sum", s.label())))
            .sum();
        assert_eq!(
            seg_sum,
            r.counter("lat.total.ps_sum"),
            "{}: segment sums must tile the total",
            r.protocol
        );
    }
}
