//! Record a traced TokenCMP run, print a per-block timeline, and export
//! the whole event stream as Chrome `trace_event` JSON loadable in
//! Perfetto (ui.perfetto.dev) or `chrome://tracing`.
//!
//! ```sh
//! cargo run --release --example trace_timeline
//! # open target/sweep/trace_timeline.json in Perfetto
//! ```
//!
//! Set `TOKENCMP_TRACE_BLOCK=0x40` to restrict recording to one block,
//! exactly as the legacy `eprintln!` hooks did.

use tokencmp::{
    block_timeline, chrome_trace_json, run_workload_traced, Block, LockingWorkload, Protocol,
    RingRecorder, RunOptions, RunOutcome, SystemConfig, TraceEvent, TraceHandle, Variant,
};

fn main() {
    let cfg = SystemConfig::default();
    let workload = LockingWorkload::new(cfg.layout().procs(), 4, 5, 42);

    // A capacity large enough that nothing is evicted: the example
    // cross-checks the full stream against the run's counters.
    let rec = RingRecorder::new(1 << 20).with_env_filter().into_handle();
    let handle: TraceHandle = rec.clone();
    let (res, w) = run_workload_traced(
        &cfg,
        Protocol::Token(Variant::Dst1),
        workload,
        &RunOptions::default(),
        Some(handle),
    );
    assert_eq!(res.outcome, RunOutcome::Idle);
    assert_eq!(w.total_acquires, 16 * 5);

    let rec = rec.borrow();
    let records = rec.to_vec();
    println!(
        "traced {} events in {:.1} ns of simulated time ({} filtered)",
        rec.recorded(),
        res.runtime_ns(),
        rec.filtered()
    );

    // Per-transaction invariant: every committed miss's attribution
    // segments sum exactly to its reported latency, and the stream's
    // total matches the run's exported counter.
    let mut commits = 0u64;
    let mut span_ps = 0u64;
    for r in &records {
        if let TraceEvent::MissCommit { total, parts, .. } = r.ev {
            assert_eq!(parts.total(), total.as_ps(), "segments must tile the miss");
            commits += 1;
            span_ps += total.as_ps();
        }
    }
    if rec.filtered() == 0 {
        assert_eq!(commits, res.counters.counter("lat.total.count"));
        assert_eq!(span_ps, res.counters.counter("lat.total.ps_sum"));
    }
    println!(
        "attribution: {commits} committed misses, spans sum to {:.1} ns \
         (mean {:.1} ns, p50 {:.1} ns, p99 {:.1} ns)",
        span_ps as f64 / 1e3,
        span_ps as f64 / 1e3 / commits.max(1) as f64,
        res.counters.counter("lat.total.p50_ps") as f64 / 1e3,
        res.counters.counter("lat.total.p99_ps") as f64 / 1e3,
    );

    // Human-readable timeline of the busiest block.
    let hot = records
        .iter()
        .filter_map(|r| r.ev.block())
        .fold(
            std::collections::BTreeMap::<Block, u64>::new(),
            |mut m, b| {
                *m.entry(b).or_default() += 1;
                m
            },
        )
        .into_iter()
        .max_by_key(|&(_, n)| n)
        .map(|(b, _)| b);
    if let Some(b) = hot {
        let timeline = block_timeline(&records, Some(b));
        println!("\ntimeline of hottest block {b:?} (first 12 lines):");
        for line in timeline.lines().take(12) {
            println!("{line}");
        }
    }

    // Export Chrome trace_event JSON and prove it parses with the
    // repo's own dependency-free JSON parser.
    let json = chrome_trace_json(&records);
    let doc = tokencmp::sweep::json::parse(&json).expect("chrome trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let dir = tokencmp::sweep::report::sweep_dir();
    std::fs::create_dir_all(&dir).expect("create export dir");
    let path = dir.join("trace_timeline.json");
    std::fs::write(&path, &json).expect("write trace");
    println!(
        "\nwrote {} Chrome trace events to {} — load it at ui.perfetto.dev",
        events.len(),
        path.display()
    );
}
