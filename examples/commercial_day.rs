//! Run the three synthetic commercial workloads (OLTP, Apache, SPECjbb)
//! under DirectoryCMP and TokenCMP-dst1 — a miniature of the paper's
//! Figure 6 — and report speedups the way the paper does
//! (`X% faster = runtime(DirCMP)/runtime(TokenCMP) - 1`).
//!
//! ```sh
//! cargo run --release --example commercial_day
//! ```

use tokencmp::{
    run_workload, CommercialParams, CommercialWorkload, Protocol, RunOptions, SystemConfig, Variant,
};

fn main() {
    let cfg = CommercialParams::scaled_config(&SystemConfig::default());
    println!(
        "{:>10} {:>16} {:>16} {:>10} {:>12}",
        "workload", "DirectoryCMP", "TokenCMP-dst1", "faster", "persistent"
    );
    for params in CommercialParams::all() {
        let run = |protocol| {
            let w = CommercialWorkload::new(cfg.layout().procs(), params, 11);
            let (res, w) = run_workload(&cfg, protocol, w, &RunOptions::default());
            assert_eq!(
                w.transactions,
                u64::from(params.txns_per_proc) * 16,
                "{}: lost transactions",
                params.name
            );
            res
        };
        let dir = run(Protocol::Directory);
        let tok = run(Protocol::Token(Variant::Dst1));
        println!(
            "{:>10} {:>13.0} ns {:>13.0} ns {:>9.1}% {:>11.3}%",
            params.name,
            dir.runtime_ns(),
            tok.runtime_ns(),
            100.0 * (dir.runtime_ns() / tok.runtime_ns() - 1.0),
            100.0 * tok.persistent_fraction(),
        );
    }
    println!("\n(The paper reports TokenCMP-dst1 50% / 29% / 10% faster on");
    println!(" OLTP / Apache / SpecJBB, with persistent requests < 0.3% of misses.)");
}
