//! Sweep lock contention (the Figure 2/3 axis) and watch the protocols
//! diverge: TokenCMP-dst1 degrades gracefully under contention while the
//! arbiter-based TokenCMP-arb0 pays an indirection on every handoff.
//!
//! ```sh
//! cargo run --release --example lock_contention
//! ```

use tokencmp::{run_workload, LockingWorkload, Protocol, RunOptions, SystemConfig, Variant};

fn main() {
    let cfg = SystemConfig::default();
    let protocols = [
        Protocol::Token(Variant::Arb0),
        Protocol::Token(Variant::Dst0),
        Protocol::Token(Variant::Dst1),
        Protocol::Directory,
    ];

    print!("{:>8}", "locks");
    for p in &protocols {
        print!("{:>22}", p.name());
    }
    println!();

    for locks in [2u32, 8, 32, 128, 512] {
        print!("{locks:>8}");
        for &protocol in &protocols {
            let w = LockingWorkload::new(cfg.layout().procs(), locks, 40, 7);
            let (res, w) = run_workload(&cfg, protocol, w, &RunOptions::default());
            assert_eq!(w.total_acquires, 40 * 16);
            print!("{:>19.0} ns", res.runtime_ns());
        }
        println!();
    }
    println!("\n(High contention is on top: 2 locks for 16 processors.)");
}
