//! # DirectoryCMP — the hierarchical two-level MOESI directory baseline
//!
//! The comparison protocol of the reproduced paper (§2): an intra-CMP
//! directory at each L2 bank tracks on-chip L1 copies, and an inter-CMP
//! directory at each home memory controller tracks which chips cache a
//! block. The two levels couple hierarchically: every L1 miss walks
//! L1 → L2-bank directory → (maybe) home directory → owner chip → owner
//! L1 and back, with per-block busy states, deferred-request queues,
//! three-phase writebacks and unblock messages at both levels. A
//! migratory-sharing optimization (read-modify-write data moves wholesale)
//! is implemented at both levels and can be disabled via the system
//! configuration's `migratory_sharing` flag.
//!
//! `DirectoryCMP-zero` (the paper's unrealistic 0-cycle directory) is this
//! same protocol with the configuration's `dir_access_latency` set to
//! zero.

use tokencmp_proto::Block;

/// Message-trace hook: set `TOKENCMP_TRACE_BLOCK=<hex block>` to print
/// every directory-protocol message touching that block (debugging aid).
/// Parsing lives in the shared [`tokencmp_proto::trace_block`] helper;
/// the structured successor of these prints is the [`tokencmp_trace`]
/// ring recorder.
pub(crate) fn trace(msg: &DirMsg, line: impl FnOnce() -> String) {
    if let Some(t) = tokencmp_proto::trace_block_filter() {
        if msg_block(msg) == Some(Block(t)) {
            eprintln!("{}", line());
        }
    }
}

/// The block a directory message concerns.
pub(crate) fn msg_block(m: &DirMsg) -> Option<Block> {
    use DirMsg::*;
    Some(match *m {
        Cpu(r) => r.block(),
        CpuResp(tokencmp_proto::CpuResp::Done { block, .. })
        | CpuResp(tokencmp_proto::CpuResp::WatchFired { block }) => block,
        L1Req { block, .. }
        | FwdL1 { block, .. }
        | InvL1 { block }
        | InvAckL1 { block }
        | DataL1ToL2 { block, .. }
        | GrantToL1 { block, .. }
        | UnblockL1 { block }
        | WbReqL1 { block }
        | WbGrantL1 { block }
        | WbDataL1 { block, .. }
        | L2Req { block, .. }
        | FwdL2 { block, .. }
        | InvL2 { block, .. }
        | InvAckL2 { block }
        | FwdInfo { block, .. }
        | MemData { block, .. }
        | DataL2ToL2 { block, .. }
        | UnblockHome { block, .. }
        | WbReqL2 { block }
        | WbGrantL2 { block }
        | WbDataL2 { block, .. } => block,
    })
}

pub mod home;
pub mod l1;
pub mod l2;
pub mod msg;

pub use home::{DirHome, HomeState, HomeStats};
pub use l1::{DirL1, DirL1Stats, L1State};
pub use l2::{ChipRights, DirL2, DirL2Stats};
pub use msg::{ChipGrant, DirMsg, GrantSource, HomeResult, L1Grant, ReqKind};
