//! The DirectoryCMP L2 bank: the intra-CMP directory.
//!
//! Each bank tracks which local L1s hold a block (owner pointer + sharer
//! mask), the chip-level rights granted by the inter-CMP directory
//! (S / Owned / Exclusive), and serializes conflicting requests with a
//! per-block busy state and deferred-request queue — the structure the
//! paper describes in §2.
//!
//! Two races are handled without deferral, because deferring them would
//! deadlock the two-level hierarchy:
//!
//! * a forward/invalidate from the home arriving while this chip has its
//!   own request outstanding at the home (the home is busy serving someone
//!   else first) is serviced immediately against the chip's current
//!   rights, and
//! * a forward arriving while the chip is awaiting a writeback grant is
//!   answered from the not-yet-written-back data, after which the
//!   writeback completes with `valid: false`.
//!
//! All data responses route through the L2 — the strictly hierarchical
//! behaviour whose intra-CMP traffic cost Figure 7b measures.

use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use tokencmp_proto::{Block, CmpId, Layout, SystemConfig};
use tokencmp_sim::{Component, Ctx, NodeId};

use crate::msg::{ChipGrant, DirMsg, GrantSource, HomeResult, L1Grant, ReqKind};

/// Chip-level rights over a block (entry absent = no rights).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChipRights {
    /// Read-only; home memory is current.
    S,
    /// Read-only but this chip holds the only up-to-date (dirty) data.
    O,
    /// Exclusive; the chip may modify.
    E,
}

/// Counters exposed by a DirectoryCMP L2 bank after a run.
#[derive(Clone, Debug, Default)]
pub struct DirL2Stats {
    /// Local L1 requests received.
    pub local_requests: u64,
    /// Requests that had to go to the home directory.
    pub remote_requests: u64,
    /// Requests satisfied entirely on chip.
    pub local_satisfied: u64,
    /// Chip-level evictions (recall + home writeback).
    pub evictions: u64,
    /// Forwards/invalidations served for the home.
    pub serves: u64,
}

#[derive(Debug)]
struct LocalTxn {
    requester: NodeId,
    kind: ReqKind,
    awaiting_data: bool,
    acks_left: u32,
    /// Set by the owner L1's migratory decision.
    migratory: bool,
    data_dirty: bool,
}

#[derive(Debug)]
struct RemoteTxn {
    requester: NodeId,
    kind: ReqKind,
    have_data: bool,
    chip_grant: Option<ChipGrant>,
    data_dirty: bool,
    acks_expected: Option<u32>,
    acks_got: u32,
    /// Completion arrived while a service invalidation was collecting; run
    /// the finish phase when the service drains.
    completion_pending: bool,
    /// Which tier is supplying the data (latency attribution on the grant).
    source: GrantSource,
}

#[derive(Debug)]
struct ServeTxn {
    requester: NodeId,
    kind: ReqKind,
    awaiting_data: bool,
    acks_left: u32,
    data_dirty: bool,
    migratory: bool,
}

#[derive(Debug)]
enum Txn {
    Local(LocalTxn),
    Remote(RemoteTxn),
    /// Post-remote local invalidation (GETX upgrade), then grant.
    FinishInv {
        requester: NodeId,
        kind: ReqKind,
        grant: L1Grant,
        source: GrantSource,
        acks_left: u32,
    },
    AwaitUnblock,
    ServeFwd(ServeTxn),
    ServeInv {
        requester: NodeId,
        acks_left: u32,
    },
    L1Wb,
    EvictLocal {
        awaiting_data: bool,
        acks_left: u32,
    },
    EvictWb {
        lost: bool,
    },
}

/// An invalidation being served *concurrently* with a remote transaction
/// (see module docs).
#[derive(Debug)]
struct ServiceInv {
    requester: NodeId,
    acks_left: u32,
}

#[derive(Debug)]
struct Entry {
    rights: ChipRights,
    owner_l1: Option<NodeId>,
    sharers: u16,
    dirty: bool,
    busy: Option<Txn>,
    service: Option<ServiceInv>,
    deferred: VecDeque<(NodeId, DirMsg)>,
    stamp: u64,
}

/// Bit index of a local L1 within the chip's L1 list.
fn bit_of(l1s: &[NodeId], l1: NodeId) -> u16 {
    let idx = l1s
        .iter()
        .position(|&n| n == l1)
        .expect("message from a foreign L1");
    1 << idx
}

/// The local L1 nodes selected by a sharer mask.
fn nodes_of(l1s: &[NodeId], mask: u16) -> Vec<NodeId> {
    l1s.iter()
        .enumerate()
        .filter(|&(i, _)| mask & (1 << i) != 0)
        .map(|(_, &n)| n)
        .collect()
}

/// A DirectoryCMP L2 bank / intra-CMP directory.
pub struct DirL2 {
    cfg: Rc<SystemConfig>,
    layout: Layout,
    me: NodeId,
    cmp: CmpId,
    local_l1s: Vec<NodeId>,
    entries: HashMap<Block, Entry>,
    /// Per-set resident blocks, for capacity management.
    sets: HashMap<u64, Vec<Block>>,
    stamp: u64,
    /// Run statistics.
    pub stats: DirL2Stats,
}

impl DirL2 {
    /// Creates an L2 bank controller for chip `cmp`, bank `bank`.
    pub fn new(cfg: Rc<SystemConfig>, me: NodeId, cmp: CmpId, _bank: u16) -> DirL2 {
        let layout = cfg.layout();
        DirL2 {
            local_l1s: layout.l1s_on(cmp),
            layout,
            me,
            cmp,
            entries: HashMap::new(),
            sets: HashMap::new(),
            stamp: 0,
            cfg,
            stats: DirL2Stats::default(),
        }
    }

    /// Chip rights per resident block (for quiescence audits).
    pub fn rights(&self) -> Vec<(Block, ChipRights)> {
        self.entries.iter().map(|(&b, e)| (b, e.rights)).collect()
    }

    /// Full entry dump for debugging/audits.
    pub fn debug_entry(&self, block: Block) -> Option<String> {
        self.entries.get(&block).map(|e| {
            format!(
                "rights={:?} owner_l1={:?} sharers={:#06b} dirty={} busy={} service={}",
                e.rights,
                e.owner_l1,
                e.sharers,
                e.dirty,
                e.busy.is_some(),
                e.service.is_some()
            )
        })
    }

    fn home_of(&self, block: Block) -> NodeId {
        self.layout.mem(self.cfg.home_of(block))
    }

    fn set_of(&self, block: Block) -> u64 {
        let shift = (self.cfg.banks_per_cmp as u64)
            .next_power_of_two()
            .trailing_zeros();
        (block.0 >> shift) % self.cfg.l2_sets as u64
    }

    /// Creates (or touches) the entry for `block`, enforcing capacity by
    /// starting an eviction of the LRU non-busy entry when a set
    /// overflows.
    fn touch_entry(&mut self, block: Block, ctx: &mut Ctx<'_, DirMsg>) {
        self.stamp += 1;
        let stamp = self.stamp;
        if let Some(e) = self.entries.get_mut(&block) {
            e.stamp = stamp;
            return;
        }
        self.entries.insert(
            block,
            Entry {
                rights: ChipRights::S, // provisional; set by the txn
                owner_l1: None,
                sharers: 0,
                dirty: false,
                busy: None,
                service: None,
                deferred: VecDeque::new(),
                stamp,
            },
        );
        let set = self.set_of(block);
        let resident = self.sets.entry(set).or_default();
        resident.push(block);
        if resident.len() > self.cfg.l2_ways {
            // Evict the LRU non-busy resident (skip if all are busy; the
            // next insertion re-checks).
            let victim = resident
                .iter()
                .copied()
                .filter(|b| {
                    *b != block
                        && self
                            .entries
                            .get(b)
                            .is_some_and(|e| e.busy.is_none() && e.service.is_none())
                })
                .min_by_key(|b| self.entries[b].stamp);
            if let Some(v) = victim {
                self.start_eviction(v, ctx);
            }
        }
    }

    fn remove_entry(&mut self, block: Block) -> VecDeque<(NodeId, DirMsg)> {
        let e = self.entries.remove(&block).expect("entry vanished");
        let set = self.set_of(block);
        if let Some(v) = self.sets.get_mut(&set) {
            v.retain(|&b| b != block);
        }
        e.deferred
    }

    fn defer(&mut self, block: Block, src: NodeId, msg: DirMsg) {
        self.entries
            .get_mut(&block)
            .expect("deferral without entry")
            .deferred
            .push_back((src, msg));
    }

    /// Re-dispatches requests deferred behind a completed transaction.
    fn process_deferred(
        &mut self,
        mut queue: VecDeque<(NodeId, DirMsg)>,
        ctx: &mut Ctx<'_, DirMsg>,
    ) {
        while let Some((src, msg)) = queue.pop_front() {
            self.dispatch(src, msg, ctx);
            // If the first deferred request made the block busy again, the
            // rest must wait behind it.
            if let Some(DirMsg::L1Req { block, .. } | DirMsg::WbReqL1 { block, .. }) =
                queue.front().map(|&(_, m)| m)
            {
                if self.entries.get(&block).is_some_and(|e| e.busy.is_some()) {
                    let e = self.entries.get_mut(&block).unwrap();
                    while let Some(item) = queue.pop_front() {
                        e.deferred.push_back(item);
                    }
                    return;
                }
            }
        }
    }

    // ---- local request handling -------------------------------------------------

    fn handle_l1_req(
        &mut self,
        block: Block,
        requester: NodeId,
        kind: ReqKind,
        ctx: &mut Ctx<'_, DirMsg>,
    ) {
        self.stats.local_requests += 1;
        if self.entries.get(&block).is_some_and(|e| e.busy.is_some()) {
            self.defer(
                block,
                requester,
                DirMsg::L1Req {
                    block,
                    requester,
                    kind,
                },
            );
            return;
        }
        let have = self.entries.get(&block).map(|e| (e.rights, e.owner_l1));
        match (kind, have) {
            // On-chip satisfiable reads.
            (ReqKind::Read, Some((_, Some(owner)))) => {
                self.stats.local_satisfied += 1;
                let e = self.entries.get_mut(&block).unwrap();
                e.busy = Some(Txn::Local(LocalTxn {
                    requester,
                    kind,
                    awaiting_data: true,
                    acks_left: 0,
                    migratory: false,
                    data_dirty: false,
                }));
                ctx.send_after(
                    self.cfg.l2_latency,
                    owner,
                    DirMsg::FwdL1 {
                        block,
                        kind: ReqKind::Read,
                    },
                );
            }
            (ReqKind::Read, Some((rights, None))) => {
                self.stats.local_satisfied += 1;
                let e = self.entries.get_mut(&block).unwrap();
                let grant = if rights == ChipRights::E && e.sharers == 0 {
                    e.owner_l1 = Some(requester);
                    L1Grant::E
                } else {
                    e.sharers |= bit_of(&self.local_l1s, requester);
                    L1Grant::S
                };
                e.busy = Some(Txn::AwaitUnblock);
                ctx.send_after(
                    self.cfg.l2_latency,
                    requester,
                    DirMsg::GrantToL1 {
                        block,
                        state: grant,
                        source: GrantSource::Intra,
                    },
                );
            }
            // On-chip satisfiable write: the chip is exclusive.
            (ReqKind::Write, Some((ChipRights::E, owner))) => {
                self.stats.local_satisfied += 1;
                let req_bit = bit_of(&self.local_l1s, requester);
                let e = self.entries.get_mut(&block).unwrap();
                let inv_mask = e.sharers & !req_bit;
                e.sharers &= req_bit; // keep only the requester (upgraded below)
                let targets = nodes_of(&self.local_l1s, inv_mask);
                let e = self.entries.get_mut(&block).unwrap();
                e.busy = Some(Txn::Local(LocalTxn {
                    requester,
                    kind,
                    awaiting_data: owner.is_some(),
                    acks_left: targets.len() as u32,
                    migratory: false,
                    data_dirty: false,
                }));
                for t in targets {
                    ctx.send_after(self.cfg.l2_latency, t, DirMsg::InvL1 { block });
                }
                if let Some(o) = owner {
                    ctx.send_after(
                        self.cfg.l2_latency,
                        o,
                        DirMsg::FwdL1 {
                            block,
                            kind: ReqKind::Write,
                        },
                    );
                }
                self.maybe_finish_local(block, ctx);
            }
            // Everything else needs the home directory.
            (_, _) => {
                self.stats.remote_requests += 1;
                self.touch_entry(block, ctx);
                let e = self.entries.get_mut(&block).unwrap();
                // A chip holding dirty data (O) upgrading to write already
                // has valid data; the home only orchestrates invalidations.
                let have_data = have.is_some_and(|(r, _)| r == ChipRights::O);
                e.busy = Some(Txn::Remote(RemoteTxn {
                    requester,
                    kind,
                    have_data,
                    chip_grant: have_data.then_some(ChipGrant::M),
                    data_dirty: have_data,
                    acks_expected: None,
                    acks_got: 0,
                    completion_pending: false,
                    // An upgrade already holds the data; the inter-CMP home
                    // round trip is what governs the latency. Otherwise the
                    // data response (MemData / DataL2ToL2) sets the source.
                    source: GrantSource::Inter,
                }));
                ctx.send_after(
                    self.cfg.l2_latency,
                    self.home_of(block),
                    DirMsg::L2Req {
                        block,
                        requester: self.me,
                        kind,
                    },
                );
            }
        }
    }

    /// Completes a local transaction once data and acks are in.
    fn maybe_finish_local(&mut self, block: Block, ctx: &mut Ctx<'_, DirMsg>) {
        let e = self.entries.get_mut(&block).unwrap();
        let Some(Txn::Local(t)) = &e.busy else {
            return;
        };
        if t.awaiting_data || t.acks_left > 0 {
            return;
        }
        let (requester, kind, migratory, data_dirty) =
            (t.requester, t.kind, t.migratory, t.data_dirty);
        e.dirty |= data_dirty;
        let grant = match kind {
            ReqKind::Write => {
                e.owner_l1 = Some(requester);
                e.sharers = 0;
                L1Grant::M
            }
            ReqKind::Read if migratory => {
                // Dirty owner relinquished: pass read/write access on.
                e.owner_l1 = Some(requester);
                e.sharers = 0;
                L1Grant::M
            }
            ReqKind::Read => {
                // The previous owner (if any) downgraded to a sharer.
                if let Some(o) = e.owner_l1.take() {
                    e.sharers |= bit_of(&self.local_l1s, o);
                }
                let e = self.entries.get_mut(&block).unwrap();
                e.sharers |= bit_of(&self.local_l1s, requester);
                L1Grant::S
            }
        };
        let e = self.entries.get_mut(&block).unwrap();
        e.busy = Some(Txn::AwaitUnblock);
        ctx.send_after(
            self.cfg.l2_latency,
            requester,
            DirMsg::GrantToL1 {
                block,
                state: grant,
                source: GrantSource::Intra,
            },
        );
    }

    // ---- remote transaction ----------------------------------------------------

    fn feed_remote<F>(&mut self, block: Block, f: F, ctx: &mut Ctx<'_, DirMsg>)
    where
        F: FnOnce(&mut RemoteTxn),
    {
        let e = self.entries.get_mut(&block).expect("remote feed w/o entry");
        let Some(Txn::Remote(t)) = &mut e.busy else {
            panic!("unexpected remote-protocol message for {block:?}");
        };
        f(t);
        self.maybe_finish_remote(block, ctx);
    }

    fn maybe_finish_remote(&mut self, block: Block, ctx: &mut Ctx<'_, DirMsg>) {
        let e = self.entries.get_mut(&block).unwrap();
        let Some(Txn::Remote(t)) = &mut e.busy else {
            return;
        };
        let acks_done = t.acks_expected.is_some_and(|n| t.acks_got >= n);
        if !(t.have_data && acks_done) {
            return;
        }
        if e.service.is_some() {
            // A concurrent invalidation is still collecting local acks;
            // finish when it drains so ack streams stay unambiguous.
            t.completion_pending = true;
            return;
        }
        let (requester, kind, chip_grant, data_dirty, source) = (
            t.requester,
            t.kind,
            t.chip_grant.expect("data without grant state"),
            t.data_dirty,
            t.source,
        );
        // The home entry is finalized now; local invalidation is chip-
        // internal business.
        let result = match (kind, chip_grant) {
            (ReqKind::Write, _) | (_, ChipGrant::M) | (_, ChipGrant::E) => HomeResult::Exclusive,
            (ReqKind::Read, ChipGrant::S) => {
                if data_dirty {
                    HomeResult::OwnedByPrevious
                } else {
                    HomeResult::Shared
                }
            }
        };
        ctx.send_after(
            self.cfg.l2_latency,
            self.home_of(block),
            DirMsg::UnblockHome { block, result },
        );
        // Update chip rights.
        let e = self.entries.get_mut(&block).unwrap();
        let (rights, grant) = match (kind, chip_grant) {
            (ReqKind::Write, _) => (ChipRights::E, L1Grant::M),
            (ReqKind::Read, ChipGrant::M) => (ChipRights::E, L1Grant::M),
            (ReqKind::Read, ChipGrant::E) => (ChipRights::E, L1Grant::E),
            (ReqKind::Read, ChipGrant::S) => (ChipRights::S, L1Grant::S),
        };
        e.rights = rights;
        e.dirty = data_dirty && chip_grant == ChipGrant::M;
        // Invalidate stale local sharers on a write (upgrade path).
        let req_bit = bit_of(&self.local_l1s, requester);
        let e = self.entries.get_mut(&block).unwrap();
        let inv_mask = if kind == ReqKind::Write {
            e.sharers & !req_bit
        } else {
            0
        };
        e.sharers &= !inv_mask;
        let targets = nodes_of(&self.local_l1s, inv_mask);
        let e = self.entries.get_mut(&block).unwrap();
        if targets.is_empty() {
            self.grant_after_remote(block, requester, kind, grant, source, ctx);
        } else {
            e.busy = Some(Txn::FinishInv {
                requester,
                kind,
                grant,
                source,
                acks_left: targets.len() as u32,
            });
            for t in targets {
                ctx.send_after(self.cfg.l2_latency, t, DirMsg::InvL1 { block });
            }
        }
    }

    fn grant_after_remote(
        &mut self,
        block: Block,
        requester: NodeId,
        kind: ReqKind,
        grant: L1Grant,
        source: GrantSource,
        ctx: &mut Ctx<'_, DirMsg>,
    ) {
        let e = self.entries.get_mut(&block).unwrap();
        match (kind, grant) {
            (ReqKind::Write, _) | (_, L1Grant::M) | (_, L1Grant::E) => {
                e.owner_l1 = Some(requester);
                e.sharers = 0;
            }
            _ => {
                e.sharers |= bit_of(&self.local_l1s, requester);
                let e = self.entries.get_mut(&block).unwrap();
                e.owner_l1 = None;
            }
        }
        let e = self.entries.get_mut(&block).unwrap();
        e.busy = Some(Txn::AwaitUnblock);
        ctx.send_after(
            self.cfg.l2_latency,
            requester,
            DirMsg::GrantToL1 {
                block,
                state: grant,
                source,
            },
        );
    }

    // ---- serving the home (forwards & invalidations) -----------------------------

    fn handle_fwd_l2(
        &mut self,
        block: Block,
        kind: ReqKind,
        remote: NodeId,
        ctx: &mut Ctx<'_, DirMsg>,
    ) {
        self.stats.serves += 1;
        let Some(e) = self.entries.get_mut(&block) else {
            debug_assert!(false, "forward to a chip without rights");
            return;
        };
        match &mut e.busy {
            None => {
                // Become busy serving the forward.
                let owner = e.owner_l1;
                if let Some(o) = owner {
                    e.busy = Some(Txn::ServeFwd(ServeTxn {
                        requester: remote,
                        kind,
                        awaiting_data: true,
                        acks_left: 0,
                        data_dirty: false,
                        migratory: false,
                    }));
                    ctx.send_after(self.cfg.l2_latency, o, DirMsg::FwdL1 { block, kind });
                } else {
                    // Data is at the L2; invalidations (if any) first.
                    let relinquish =
                        kind == ReqKind::Write || (e.dirty && self.cfg.migratory_sharing);
                    let inv_mask = if relinquish { e.sharers } else { 0 };
                    e.sharers &= !inv_mask;
                    let targets = nodes_of(&self.local_l1s, inv_mask);
                    let e = self.entries.get_mut(&block).unwrap();
                    e.busy = Some(Txn::ServeFwd(ServeTxn {
                        requester: remote,
                        kind,
                        awaiting_data: false,
                        acks_left: targets.len() as u32,
                        data_dirty: e.dirty,
                        migratory: relinquish && kind == ReqKind::Read,
                    }));
                    for t in targets {
                        ctx.send_after(self.cfg.l2_latency, t, DirMsg::InvL1 { block });
                    }
                    self.maybe_finish_serve(block, ctx);
                }
            }
            Some(Txn::Remote(t)) => {
                // We are upgrading (rights O) while someone else's request
                // was serialized first at the home: answer from our dirty
                // data now.
                debug_assert_eq!(e.rights, ChipRights::O);
                let dirty = e.dirty;
                if kind == ReqKind::Write
                    || (dirty && self.cfg.migratory_sharing && kind == ReqKind::Read)
                {
                    // Rights leave the chip; our own outstanding request
                    // will bring fresh data back.
                    t.have_data = false;
                    t.chip_grant = None;
                    t.data_dirty = false;
                    // Writes and migratory read transfers both hand over M.
                    let state = ChipGrant::M;
                    // Local sharers (if any) are stale now; invalidate
                    // them via the service slot.
                    let inv_mask = e.sharers;
                    e.sharers = 0;
                    e.rights = ChipRights::S; // rights effectively gone; entry kept for the txn
                    e.dirty = false;
                    let targets = nodes_of(&self.local_l1s, inv_mask);
                    for t in &targets {
                        ctx.send_after(self.cfg.l2_latency, *t, DirMsg::InvL1 { block });
                    }
                    if !targets.is_empty() {
                        let e = self.entries.get_mut(&block).unwrap();
                        e.service = Some(ServiceInv {
                            requester: NodeId(u32::MAX), // acks stay local
                            acks_left: targets.len() as u32,
                        });
                    }
                    ctx.send_after(
                        self.cfg.l2_latency,
                        remote,
                        DirMsg::DataL2ToL2 {
                            block,
                            state,
                            dirty,
                        },
                    );
                } else {
                    // Read of our dirty data without migration: stay O.
                    ctx.send_after(
                        self.cfg.l2_latency,
                        remote,
                        DirMsg::DataL2ToL2 {
                            block,
                            state: ChipGrant::S,
                            dirty,
                        },
                    );
                }
            }
            Some(Txn::EvictWb { lost }) => {
                // Eviction raced with the forward; answer from the limbo
                // data and let the writeback complete as invalid.
                *lost = true;
                let dirty = e.dirty;
                // The eviction is already underway, so ownership always
                // moves: dirty data migrates even on a read.
                let state = if kind == ReqKind::Write || dirty {
                    ChipGrant::M
                } else {
                    ChipGrant::S
                };
                ctx.send_after(
                    self.cfg.l2_latency,
                    remote,
                    DirMsg::DataL2ToL2 {
                        block,
                        state,
                        dirty,
                    },
                );
            }
            Some(_) => {
                // Bounded local work: defer briefly.
                self.defer(
                    block,
                    remote,
                    DirMsg::FwdL2 {
                        block,
                        kind,
                        requester: remote,
                    },
                );
            }
        }
    }

    fn maybe_finish_serve(&mut self, block: Block, ctx: &mut Ctx<'_, DirMsg>) {
        let e = self.entries.get_mut(&block).unwrap();
        let Some(Txn::ServeFwd(t)) = &e.busy else {
            return;
        };
        if t.awaiting_data || t.acks_left > 0 {
            return;
        }
        let (remote, kind, dirty, migratory) = (t.requester, t.kind, t.data_dirty, t.migratory);
        e.dirty |= dirty;
        let dirty = e.dirty;
        let (state, drop_entry) = match kind {
            ReqKind::Write => (ChipGrant::M, true),
            ReqKind::Read if migratory => (ChipGrant::M, true),
            ReqKind::Read => {
                if dirty {
                    // Keep dirty data; become/remain the owner chip.
                    e.rights = ChipRights::O;
                    (ChipGrant::S, false)
                } else {
                    e.rights = ChipRights::S;
                    (ChipGrant::S, false)
                }
            }
        };
        ctx.send_after(
            self.cfg.l2_latency,
            remote,
            DirMsg::DataL2ToL2 {
                block,
                state,
                dirty,
            },
        );
        if drop_entry {
            let q = self.remove_entry(block);
            self.process_deferred(q, ctx);
        } else {
            let e = self.entries.get_mut(&block).unwrap();
            e.busy = None;
            let q = std::mem::take(&mut e.deferred);
            self.process_deferred(q, ctx);
        }
    }

    fn handle_inv_l2(&mut self, block: Block, remote: NodeId, ctx: &mut Ctx<'_, DirMsg>) {
        self.stats.serves += 1;
        let Some(e) = self.entries.get_mut(&block) else {
            // Silently evicted earlier; acknowledge blindly.
            ctx.send_after(self.cfg.l2_latency, remote, DirMsg::InvAckL2 { block });
            return;
        };
        // Deferral must leave the entry untouched: clearing the sharer
        // mask before knowing whether we process now would make the
        // deferred invalidation a no-op and leave stale readable copies
        // behind (a bug this module once had — found by fuzzing).
        if matches!(
            e.busy,
            Some(
                Txn::Local(_)
                    | Txn::AwaitUnblock
                    | Txn::FinishInv { .. }
                    | Txn::ServeFwd(_)
                    | Txn::ServeInv { .. }
                    | Txn::L1Wb
                    | Txn::EvictLocal { .. }
            )
        ) {
            self.defer(
                block,
                remote,
                DirMsg::InvL2 {
                    block,
                    requester: remote,
                },
            );
            return;
        }
        let inv_mask = e.sharers;
        e.sharers = 0;
        let targets = nodes_of(&self.local_l1s, inv_mask);
        let e = self.entries.get_mut(&block).unwrap();
        match &mut e.busy {
            None => {
                if targets.is_empty() {
                    let q = self.remove_entry(block);
                    ctx.send_after(self.cfg.l2_latency, remote, DirMsg::InvAckL2 { block });
                    self.process_deferred(q, ctx);
                } else {
                    e.busy = Some(Txn::ServeInv {
                        requester: remote,
                        acks_left: targets.len() as u32,
                    });
                    for t in targets {
                        ctx.send_after(self.cfg.l2_latency, t, DirMsg::InvL1 { block });
                    }
                }
            }
            Some(Txn::Remote(_)) => {
                // Invalidate while our own (upgrade) request waits at the
                // home: collect acks in the service slot, then ack.
                if targets.is_empty() {
                    e.rights = ChipRights::S; // no data rights left
                    e.dirty = false;
                    ctx.send_after(self.cfg.l2_latency, remote, DirMsg::InvAckL2 { block });
                } else {
                    e.service = Some(ServiceInv {
                        requester: remote,
                        acks_left: targets.len() as u32,
                    });
                    for t in targets {
                        ctx.send_after(self.cfg.l2_latency, t, DirMsg::InvL1 { block });
                    }
                }
            }
            Some(Txn::EvictWb { lost }) => {
                *lost = true;
                ctx.send_after(self.cfg.l2_latency, remote, DirMsg::InvAckL2 { block });
            }
            Some(_) => unreachable!("deferrable transactions handled above"),
        }
    }

    // ---- L1 responses -------------------------------------------------------------

    fn handle_l1_data(
        &mut self,
        block: Block,
        dirty: bool,
        relinquished: bool,
        valid: bool,
        ctx: &mut Ctx<'_, DirMsg>,
    ) {
        debug_assert!(valid, "intra-level forwards always find the line");
        let e = self.entries.get_mut(&block).expect("data without entry");
        if relinquished {
            e.owner_l1 = None;
        } else if let Some(o) = e.owner_l1.take() {
            e.sharers |= bit_of(&self.local_l1s, o);
        }
        let e = self.entries.get_mut(&block).unwrap();
        e.dirty |= dirty;
        match &mut e.busy {
            Some(Txn::Local(t)) => {
                t.awaiting_data = false;
                t.migratory = relinquished && t.kind == ReqKind::Read;
                t.data_dirty = dirty;
                self.maybe_finish_local(block, ctx);
            }
            Some(Txn::ServeFwd(t)) => {
                t.awaiting_data = false;
                t.data_dirty = dirty;
                t.migratory = relinquished || t.kind == ReqKind::Write;
                self.maybe_finish_serve(block, ctx);
            }
            Some(Txn::EvictLocal { awaiting_data, .. }) => {
                *awaiting_data = false;
                self.maybe_finish_evict_local(block, ctx);
            }
            other => panic!("L1 data with unexpected txn {other:?}"),
        }
    }

    fn handle_l1_ack(&mut self, block: Block, ctx: &mut Ctx<'_, DirMsg>) {
        let e = self.entries.get_mut(&block).expect("ack without entry");
        // Service invalidations collect acks independently of the busy txn.
        if let Some(s) = &mut e.service {
            s.acks_left -= 1;
            if s.acks_left == 0 {
                let remote = s.requester;
                e.service = None;
                if remote != NodeId(u32::MAX) {
                    e.rights = ChipRights::S;
                    e.dirty = false;
                    ctx.send_after(self.cfg.l2_latency, remote, DirMsg::InvAckL2 { block });
                }
                let e = self.entries.get_mut(&block).unwrap();
                if let Some(Txn::Remote(t)) = &mut e.busy {
                    if t.completion_pending {
                        t.completion_pending = false;
                        self.maybe_finish_remote(block, ctx);
                    }
                }
            }
            return;
        }
        match &mut e.busy {
            Some(Txn::Local(t)) => {
                t.acks_left -= 1;
                self.maybe_finish_local(block, ctx);
            }
            Some(Txn::ServeFwd(t)) => {
                t.acks_left -= 1;
                self.maybe_finish_serve(block, ctx);
            }
            Some(Txn::ServeInv {
                requester,
                acks_left,
            }) => {
                *acks_left -= 1;
                if *acks_left == 0 {
                    let remote = *requester;
                    let q = self.remove_entry(block);
                    ctx.send_after(self.cfg.l2_latency, remote, DirMsg::InvAckL2 { block });
                    self.process_deferred(q, ctx);
                }
            }
            Some(Txn::FinishInv {
                requester,
                kind,
                grant,
                source,
                acks_left,
            }) => {
                *acks_left -= 1;
                if *acks_left == 0 {
                    let (r, k, g, s) = (*requester, *kind, *grant, *source);
                    self.grant_after_remote(block, r, k, g, s, ctx);
                }
            }
            Some(Txn::EvictLocal { acks_left, .. }) => {
                *acks_left -= 1;
                self.maybe_finish_evict_local(block, ctx);
            }
            other => panic!("L1 ack with unexpected txn {other:?}"),
        }
    }

    // ---- writebacks ----------------------------------------------------------------

    fn handle_wb_req_l1(&mut self, block: Block, l1: NodeId, ctx: &mut Ctx<'_, DirMsg>) {
        let Some(e) = self.entries.get_mut(&block) else {
            // The chip lost the block (e.g. served a forward) while the
            // L1's writeback request was in flight; grant so the L1 can
            // drain its buffer (it will answer valid or not).
            ctx.send_after(self.cfg.l2_latency, l1, DirMsg::WbGrantL1 { block });
            return;
        };
        if e.busy.is_some() {
            self.defer(block, l1, DirMsg::WbReqL1 { block });
            return;
        }
        e.busy = Some(Txn::L1Wb);
        ctx.send_after(self.cfg.l2_latency, l1, DirMsg::WbGrantL1 { block });
    }

    fn handle_wb_data_l1(
        &mut self,
        block: Block,
        l1: NodeId,
        dirty: bool,
        valid: bool,
        ctx: &mut Ctx<'_, DirMsg>,
    ) {
        let Some(e) = self.entries.get_mut(&block) else {
            return; // entry vanished; nothing to update
        };
        if valid {
            if e.owner_l1 == Some(l1) {
                e.owner_l1 = None;
            }
            e.dirty |= dirty;
            let bit = bit_of(&self.local_l1s, l1);
            let e = self.entries.get_mut(&block).unwrap();
            e.sharers &= !bit;
        }
        let e = self.entries.get_mut(&block).unwrap();
        if matches!(e.busy, Some(Txn::L1Wb)) {
            e.busy = None;
            let q = std::mem::take(&mut e.deferred);
            self.process_deferred(q, ctx);
        }
    }

    // ---- eviction --------------------------------------------------------------------

    fn start_eviction(&mut self, block: Block, ctx: &mut Ctx<'_, DirMsg>) {
        let e = self.entries.get_mut(&block).expect("evicting ghost");
        debug_assert!(e.busy.is_none() && e.service.is_none());
        if e.rights == ChipRights::S && e.owner_l1.is_none() {
            // Clean shared chip copies drop silently; invalidate local
            // sharers without telling the home (stale masks are tolerated).
            let targets = nodes_of(&self.local_l1s, e.sharers);
            e.sharers = 0;
            if targets.is_empty() {
                let q = self.remove_entry(block);
                self.process_deferred(q, ctx);
            } else {
                e.busy = Some(Txn::EvictLocal {
                    awaiting_data: false,
                    acks_left: targets.len() as u32,
                });
                for t in targets {
                    ctx.send_after(self.cfg.l2_latency, t, DirMsg::InvL1 { block });
                }
            }
            return;
        }
        self.stats.evictions += 1;
        let owner = e.owner_l1;
        let targets = nodes_of(&self.local_l1s, e.sharers);
        e.sharers = 0;
        let e = self.entries.get_mut(&block).unwrap();
        e.busy = Some(Txn::EvictLocal {
            awaiting_data: owner.is_some(),
            acks_left: targets.len() as u32,
        });
        if let Some(o) = owner {
            ctx.send_after(
                self.cfg.l2_latency,
                o,
                DirMsg::FwdL1 {
                    block,
                    kind: ReqKind::Write, // full recall
                },
            );
        }
        for t in targets {
            ctx.send_after(self.cfg.l2_latency, t, DirMsg::InvL1 { block });
        }
        self.maybe_finish_evict_local(block, ctx);
    }

    fn maybe_finish_evict_local(&mut self, block: Block, ctx: &mut Ctx<'_, DirMsg>) {
        let e = self.entries.get_mut(&block).unwrap();
        let Some(Txn::EvictLocal {
            awaiting_data,
            acks_left,
        }) = &e.busy
        else {
            return;
        };
        if *awaiting_data || *acks_left > 0 {
            return;
        }
        if e.rights == ChipRights::S && e.owner_l1.is_none() {
            // Silent drop completed.
            let q = self.remove_entry(block);
            self.process_deferred(q, ctx);
            return;
        }
        e.busy = Some(Txn::EvictWb { lost: false });
        // Any forwards/invalidations deferred during the local recall must
        // be served *before* waiting on the home, or the home (busy with
        // the transaction that sent them) would never grant our writeback.
        let deferred = std::mem::take(&mut e.deferred);
        let mut keep = VecDeque::new();
        for (src, m) in deferred {
            match m {
                DirMsg::FwdL2 { .. } | DirMsg::InvL2 { .. } => self.dispatch(src, m, ctx),
                other => keep.push_back((src, other)),
            }
        }
        if let Some(e) = self.entries.get_mut(&block) {
            debug_assert!(e.deferred.is_empty());
            e.deferred = keep;
        } else {
            debug_assert!(keep.is_empty(), "entry removed with deferred work");
        }
        ctx.send_after(
            self.cfg.l2_latency,
            self.home_of(block),
            DirMsg::WbReqL2 { block },
        );
    }

    fn handle_wb_grant_l2(&mut self, block: Block, ctx: &mut Ctx<'_, DirMsg>) {
        let e = self
            .entries
            .get_mut(&block)
            .expect("wb grant without entry");
        let Some(Txn::EvictWb { lost }) = &e.busy else {
            panic!("wb grant with unexpected txn");
        };
        let lost = *lost;
        let dirty = e.dirty;
        ctx.send_after(
            self.cfg.l2_latency,
            self.home_of(block),
            DirMsg::WbDataL2 {
                block,
                dirty: dirty && !lost,
                valid: !lost,
            },
        );
        let q = self.remove_entry(block);
        self.process_deferred(q, ctx);
    }

    // ---- dispatch -----------------------------------------------------------------

    fn dispatch(&mut self, src: NodeId, msg: DirMsg, ctx: &mut Ctx<'_, DirMsg>) {
        match msg {
            DirMsg::L1Req {
                block,
                requester,
                kind,
            } => self.handle_l1_req(block, requester, kind, ctx),
            DirMsg::DataL1ToL2 {
                block,
                dirty,
                relinquished,
                valid,
            } => self.handle_l1_data(block, dirty, relinquished, valid, ctx),
            DirMsg::InvAckL1 { block } => self.handle_l1_ack(block, ctx),
            DirMsg::UnblockL1 { block } => {
                let e = self.entries.get_mut(&block).expect("unblock without entry");
                debug_assert!(matches!(e.busy, Some(Txn::AwaitUnblock)));
                e.busy = None;
                let q = std::mem::take(&mut e.deferred);
                self.process_deferred(q, ctx);
            }
            DirMsg::WbReqL1 { block } => self.handle_wb_req_l1(block, src, ctx),
            DirMsg::WbDataL1 {
                block,
                dirty,
                valid,
            } => self.handle_wb_data_l1(block, src, dirty, valid, ctx),
            DirMsg::WbGrantL2 { block } => self.handle_wb_grant_l2(block, ctx),
            DirMsg::FwdL2 {
                block,
                kind,
                requester,
            } => self.handle_fwd_l2(block, kind, requester, ctx),
            DirMsg::InvL2 { block, requester } => self.handle_inv_l2(block, requester, ctx),
            DirMsg::FwdInfo { block, acks } => self.feed_remote(
                block,
                |t| {
                    t.acks_expected = Some(acks);
                },
                ctx,
            ),
            DirMsg::MemData { block, state, acks } => self.feed_remote(
                block,
                |t| {
                    t.have_data = true;
                    t.chip_grant = Some(state);
                    t.data_dirty = false;
                    t.acks_expected = Some(acks);
                    t.source = GrantSource::Mem;
                },
                ctx,
            ),
            DirMsg::DataL2ToL2 {
                block,
                state,
                dirty,
            } => self.feed_remote(
                block,
                |t| {
                    t.have_data = true;
                    t.chip_grant = Some(state);
                    t.data_dirty = dirty;
                    t.source = GrantSource::Inter;
                    if t.acks_expected.is_none() {
                        // FwdInfo may still be in flight; forwarded paths
                        // without invalidations expect zero acks and the
                        // info message will confirm.
                    }
                },
                ctx,
            ),
            DirMsg::InvAckL2 { block } => self.feed_remote(
                block,
                |t| {
                    t.acks_got += 1;
                },
                ctx,
            ),
            other => unreachable!("unexpected message at L2: {other:?}"),
        }
    }
}

impl Component<DirMsg> for DirL2 {
    fn on_msg(&mut self, src: NodeId, msg: DirMsg, ctx: &mut Ctx<'_, DirMsg>) {
        crate::trace(&msg, || {
            format!("L2 {:?} t={} <- {src:?}: {msg:?}", self.cmp, ctx.now)
        });
        self.dispatch(src, msg, ctx);
    }

    fn on_wake(&mut self, _tag: u64, _ctx: &mut Ctx<'_, DirMsg>) {
        unreachable!("L2 banks schedule no wakeups")
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn kind(&self) -> &'static str {
        "l2"
    }
}

impl std::fmt::Debug for DirL2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DirL2")
            .field("me", &self.me)
            .field("cmp", &self.cmp)
            .field("entries", &self.entries.len())
            .finish()
    }
}
