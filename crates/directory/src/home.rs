//! The inter-CMP directory at a home memory controller.
//!
//! Tracks which chips cache each block it is home for (§2): Uncached /
//! Shared / Owned / Exclusive, with a per-block busy state that defers
//! conflicting requests until the current requester's unblock arrives.
//! A realistic configuration stores the directory in DRAM (80 ns per
//! access); `DirectoryCMP-zero` sets that latency to zero.

use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use tokencmp_proto::{Block, CmpId, Layout, SystemConfig};
use tokencmp_sim::{Component, Ctx, Dur, NodeId};

use crate::msg::{ChipGrant, DirMsg, HomeResult, ReqKind};

/// The inter-CMP directory state for one block.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum HomeState {
    /// Only memory holds the block.
    #[default]
    Uncached,
    /// One or more chips hold read-only copies; memory is current.
    Shared(u64),
    /// `owner` holds dirty data; `sharers` (a chip mask, possibly
    /// including the owner) hold read-only copies.
    Owned {
        /// Chip with the dirty data.
        owner: CmpId,
        /// Chips with read-only copies.
        sharers: u64,
    },
    /// One chip may modify the block.
    Exclusive(CmpId),
}

/// Counters exposed by a home directory after a run.
#[derive(Clone, Debug, Default)]
pub struct HomeStats {
    /// Requests served (GETS + GETX).
    pub requests: u64,
    /// Requests answered from DRAM.
    pub from_memory: u64,
    /// Requests forwarded to an owner chip (the indirection that costs
    /// sharing misses their third hop).
    pub forwarded: u64,
    /// Chip writebacks absorbed.
    pub writebacks: u64,
}

#[derive(Debug)]
enum HomeTxn {
    Request {
        requester_chip: CmpId,
        old: HomeState,
    },
    Wb {
        chip: CmpId,
    },
}

#[derive(Debug, Default)]
struct HomeEntry {
    state: HomeState,
    busy: Option<HomeTxn>,
    deferred: VecDeque<(NodeId, DirMsg)>,
}

/// The inter-CMP directory + memory controller for one chip's address
/// slice.
pub struct DirHome {
    cfg: Rc<SystemConfig>,
    layout: Layout,
    me: NodeId,
    cmp: CmpId,
    entries: HashMap<Block, HomeEntry>,
    /// Run statistics.
    pub stats: HomeStats,
}

impl DirHome {
    /// Creates the home directory for chip `cmp`.
    pub fn new(cfg: Rc<SystemConfig>, me: NodeId, cmp: CmpId) -> DirHome {
        DirHome {
            layout: cfg.layout(),
            me,
            cmp,
            entries: HashMap::new(),
            cfg,
            stats: HomeStats::default(),
        }
    }

    /// The directory state for `block` (for tests and audits).
    pub fn state(&self, block: Block) -> HomeState {
        self.entries
            .get(&block)
            .map(|e| e.state)
            .unwrap_or_default()
    }

    /// Latency of a directory-state access plus controller logic.
    fn ctl_delay(&self) -> Dur {
        self.cfg.memctl_latency + self.cfg.dir_access_latency
    }

    /// Latency when data must also be fetched from DRAM (directory and
    /// data accesses overlap).
    fn data_delay(&self) -> Dur {
        self.cfg.memctl_latency + self.cfg.dir_access_latency.max(self.cfg.dram_latency)
    }

    fn chip_of(&self, l2_bank: NodeId) -> CmpId {
        self.layout.placement(l2_bank).cmp()
    }

    /// The L2 bank on `chip` responsible for `block`.
    fn bank_on(&self, chip: CmpId, block: Block) -> NodeId {
        self.layout.l2(chip, self.cfg.l2_bank_of(block))
    }

    fn mask_without(mask: u64, chip: CmpId) -> u64 {
        mask & !(1u64 << chip.0)
    }

    fn chips_in(mask: u64) -> impl Iterator<Item = CmpId> {
        (0..64).filter(move |i| mask & (1u64 << i) != 0).map(CmpId)
    }

    fn handle_req(
        &mut self,
        block: Block,
        requester: NodeId,
        kind: ReqKind,
        ctx: &mut Ctx<'_, DirMsg>,
    ) {
        debug_assert_eq!(self.cfg.home_of(block), self.cmp, "request at wrong home");
        let req_chip = self.chip_of(requester);
        let entry = self.entries.entry(block).or_default();
        if entry.busy.is_some() {
            entry.deferred.push_back((
                requester,
                DirMsg::L2Req {
                    block,
                    requester,
                    kind,
                },
            ));
            return;
        }
        self.stats.requests += 1;
        let old = entry.state;
        entry.busy = Some(HomeTxn::Request {
            requester_chip: req_chip,
            old,
        });
        let ctl = self.ctl_delay();
        let data = self.data_delay();
        match (kind, old) {
            (ReqKind::Read, HomeState::Uncached) => {
                self.stats.from_memory += 1;
                ctx.send_after(
                    data,
                    requester,
                    DirMsg::MemData {
                        block,
                        state: ChipGrant::E,
                        acks: 0,
                    },
                );
            }
            (ReqKind::Read, HomeState::Shared(_)) => {
                self.stats.from_memory += 1;
                ctx.send_after(
                    data,
                    requester,
                    DirMsg::MemData {
                        block,
                        state: ChipGrant::S,
                        acks: 0,
                    },
                );
            }
            (ReqKind::Read, HomeState::Owned { owner, .. })
            | (ReqKind::Read, HomeState::Exclusive(owner)) => {
                self.stats.forwarded += 1;
                ctx.send_after(
                    ctl,
                    self.bank_on(owner, block),
                    DirMsg::FwdL2 {
                        block,
                        kind,
                        requester,
                    },
                );
                ctx.send_after(ctl, requester, DirMsg::FwdInfo { block, acks: 0 });
            }
            (ReqKind::Write, HomeState::Uncached) => {
                self.stats.from_memory += 1;
                ctx.send_after(
                    data,
                    requester,
                    DirMsg::MemData {
                        block,
                        state: ChipGrant::M,
                        acks: 0,
                    },
                );
            }
            (ReqKind::Write, HomeState::Shared(mask)) => {
                self.stats.from_memory += 1;
                let invs = Self::mask_without(mask, req_chip);
                let n = invs.count_ones();
                for c in Self::chips_in(invs) {
                    ctx.send_after(
                        ctl,
                        self.bank_on(c, block),
                        DirMsg::InvL2 { block, requester },
                    );
                }
                ctx.send_after(
                    data,
                    requester,
                    DirMsg::MemData {
                        block,
                        state: ChipGrant::M,
                        acks: n,
                    },
                );
            }
            (ReqKind::Write, HomeState::Owned { owner, sharers }) => {
                let invs = Self::mask_without(Self::mask_without(sharers, req_chip), owner);
                let n = invs.count_ones();
                for c in Self::chips_in(invs) {
                    ctx.send_after(
                        ctl,
                        self.bank_on(c, block),
                        DirMsg::InvL2 { block, requester },
                    );
                }
                if owner == req_chip {
                    // The owner chip is upgrading: it already holds the
                    // dirty data, so only invalidation counts matter.
                    ctx.send_after(ctl, requester, DirMsg::FwdInfo { block, acks: n });
                } else {
                    self.stats.forwarded += 1;
                    ctx.send_after(
                        ctl,
                        self.bank_on(owner, block),
                        DirMsg::FwdL2 {
                            block,
                            kind,
                            requester,
                        },
                    );
                    ctx.send_after(ctl, requester, DirMsg::FwdInfo { block, acks: n });
                }
            }
            (ReqKind::Write, HomeState::Exclusive(owner)) => {
                debug_assert_ne!(owner, req_chip, "exclusive chip re-requesting");
                self.stats.forwarded += 1;
                ctx.send_after(
                    ctl,
                    self.bank_on(owner, block),
                    DirMsg::FwdL2 {
                        block,
                        kind,
                        requester,
                    },
                );
                ctx.send_after(ctl, requester, DirMsg::FwdInfo { block, acks: 0 });
            }
        }
    }

    fn handle_unblock(&mut self, block: Block, result: HomeResult, ctx: &mut Ctx<'_, DirMsg>) {
        let entry = self.entries.get_mut(&block).expect("unblock without entry");
        let Some(HomeTxn::Request {
            requester_chip,
            old,
        }) = entry.busy.take()
        else {
            panic!("unblock with unexpected txn");
        };
        let req_bit = 1u64 << requester_chip.0;
        entry.state = match (result, old) {
            (HomeResult::Exclusive, _) => HomeState::Exclusive(requester_chip),
            (HomeResult::Shared, HomeState::Shared(m)) => HomeState::Shared(m | req_bit),
            (HomeResult::Shared, HomeState::Exclusive(o)) => {
                HomeState::Shared((1u64 << o.0) | req_bit)
            }
            (HomeResult::Shared, HomeState::Uncached) => HomeState::Shared(req_bit),
            (HomeResult::Shared, HomeState::Owned { owner, sharers }) => {
                // Defensive: a shared result from an owned block keeps the
                // owner responsible.
                HomeState::Owned {
                    owner,
                    sharers: sharers | req_bit,
                }
            }
            (HomeResult::OwnedByPrevious, HomeState::Owned { owner, sharers }) => {
                HomeState::Owned {
                    owner,
                    sharers: sharers | req_bit,
                }
            }
            (HomeResult::OwnedByPrevious, HomeState::Exclusive(o)) => HomeState::Owned {
                owner: o,
                sharers: (1 << o.0) | req_bit,
            },
            (HomeResult::OwnedByPrevious, s) => {
                unreachable!("owned result from {s:?}")
            }
        };
        let q = std::mem::take(&mut entry.deferred);
        self.drain(q, ctx);
    }

    fn handle_wb_req(&mut self, block: Block, src: NodeId, ctx: &mut Ctx<'_, DirMsg>) {
        let chip = self.chip_of(src);
        let entry = self.entries.entry(block).or_default();
        if entry.busy.is_some() {
            entry.deferred.push_back((src, DirMsg::WbReqL2 { block }));
            return;
        }
        entry.busy = Some(HomeTxn::Wb { chip });
        ctx.send_after(self.ctl_delay(), src, DirMsg::WbGrantL2 { block });
    }

    fn handle_wb_data(
        &mut self,
        block: Block,
        src: NodeId,
        _dirty: bool,
        valid: bool,
        ctx: &mut Ctx<'_, DirMsg>,
    ) {
        let chip = self.chip_of(src);
        let entry = self.entries.get_mut(&block).expect("wb data without entry");
        let Some(HomeTxn::Wb { chip: granted }) = entry.busy.take() else {
            panic!("wb data with unexpected txn");
        };
        debug_assert_eq!(chip, granted);
        self.stats.writebacks += 1;
        if valid {
            entry.state = match entry.state {
                HomeState::Exclusive(o) if o == chip => HomeState::Uncached,
                HomeState::Owned { owner, sharers } if owner == chip => {
                    let rest = Self::mask_without(sharers, chip);
                    if rest == 0 {
                        HomeState::Uncached
                    } else {
                        HomeState::Shared(rest)
                    }
                }
                HomeState::Shared(m) => {
                    let rest = Self::mask_without(m, chip);
                    if rest == 0 {
                        HomeState::Uncached
                    } else {
                        HomeState::Shared(rest)
                    }
                }
                s => s, // stale writeback from a chip that lost the block
            };
        }
        let q = std::mem::take(&mut entry.deferred);
        self.drain(q, ctx);
    }

    fn drain(&mut self, mut q: VecDeque<(NodeId, DirMsg)>, ctx: &mut Ctx<'_, DirMsg>) {
        while let Some((src, msg)) = q.pop_front() {
            // Handlers re-defer internally if the block went busy again;
            // preserve order by re-queueing the rest behind it.
            let became_busy = {
                match msg {
                    DirMsg::L2Req {
                        block,
                        requester,
                        kind,
                    } => {
                        self.handle_req(block, requester, kind, ctx);
                        self.entries
                            .get(&block)
                            .is_some_and(|e| e.busy.is_some())
                            .then_some(block)
                    }
                    DirMsg::WbReqL2 { block } => {
                        self.handle_wb_req(block, src, ctx);
                        self.entries
                            .get(&block)
                            .is_some_and(|e| e.busy.is_some())
                            .then_some(block)
                    }
                    other => unreachable!("deferred {other:?} at home"),
                }
            };
            if let Some(block) = became_busy {
                let entry = self.entries.get_mut(&block).unwrap();
                while let Some(item) = q.pop_front() {
                    entry.deferred.push_back(item);
                }
            }
        }
    }
}

impl Component<DirMsg> for DirHome {
    fn on_msg(&mut self, src: NodeId, msg: DirMsg, ctx: &mut Ctx<'_, DirMsg>) {
        crate::trace(&msg, || {
            format!(
                "HOME {:?} t={} <- {src:?}: {msg:?} (state {:?})",
                self.cmp,
                ctx.now,
                self.state(crate::msg_block(&msg).unwrap_or(Block(u64::MAX)))
            )
        });
        match msg {
            DirMsg::L2Req {
                block,
                requester,
                kind,
            } => self.handle_req(block, requester, kind, ctx),
            DirMsg::UnblockHome { block, result } => self.handle_unblock(block, result, ctx),
            DirMsg::WbReqL2 { block } => self.handle_wb_req(block, src, ctx),
            DirMsg::WbDataL2 {
                block,
                dirty,
                valid,
            } => self.handle_wb_data(block, src, dirty, valid, ctx),
            other => unreachable!("unexpected message at home: {other:?}"),
        }
    }

    fn on_wake(&mut self, _tag: u64, _ctx: &mut Ctx<'_, DirMsg>) {
        unreachable!("home directories schedule no wakeups")
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn kind(&self) -> &'static str {
        "home"
    }
}

impl std::fmt::Debug for DirHome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DirHome")
            .field("me", &self.me)
            .field("cmp", &self.cmp)
            .field("entries", &self.entries.len())
            .finish()
    }
}
