//! DirectoryCMP protocol messages.
//!
//! Two coupled levels (§2): an intra-CMP directory at each L2 bank tracks
//! on-chip L1 copies; an inter-CMP directory at each home memory
//! controller tracks which chips cache a block. Both levels use per-block
//! busy states with deferred-request queues, three-phase writebacks, and
//! unblock messages — the design choices the paper calls out as trading
//! extra control messages for simpler serialization.

use tokencmp_proto::{Block, CpuPort, CpuReq, CpuResp, MsgClass, NetMsg};
use tokencmp_sim::NodeId;

pub use tokencmp_core::msg::ReqKind;

/// The rights granted to an L1 cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum L1Grant {
    /// Read-only shared copy.
    S,
    /// Exclusive clean copy (may silently upgrade to M).
    E,
    /// Modifiable copy.
    M,
}

/// Where the data satisfying an L1 miss ultimately came from — carried on
/// the grant so the requesting L1 can attribute the whole miss latency to
/// the tier that governed it (intra-CMP transfer, inter-CMP transfer, or
/// DRAM). Purely observational: no protocol decision depends on it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GrantSource {
    /// Satisfied on chip (local L2 bank or a sibling L1).
    Intra,
    /// Satisfied by another chip (L2-to-L2 forward, or a home round trip
    /// that only orchestrated invalidations/upgrades).
    Inter,
    /// Satisfied from DRAM at the home memory controller.
    Mem,
}

/// The rights granted to a chip (the requesting L2 bank).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChipGrant {
    /// Read-only shared copy.
    S,
    /// Exclusive clean copy.
    E,
    /// Modifiable copy (writable, or migratory-transferred dirty data).
    M,
}

/// The final chip-level outcome the requesting L2 reports to the home
/// directory with its unblock, letting the home finalize its entry once
/// (requests for the block are deferred at the home until then).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HomeResult {
    /// Requester holds a shared copy; previous owner (if any) kept a clean
    /// shared copy; home memory data is current.
    Shared,
    /// Requester holds a shared copy; the previous owner kept *dirty* data
    /// and remains the owner chip.
    OwnedByPrevious,
    /// Requester is now the exclusive chip (write, E-grant, or migratory
    /// transfer).
    Exclusive,
}

/// The DirectoryCMP message set.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DirMsg {
    /// Processor → L1 (core-internal).
    Cpu(CpuReq),
    /// L1 → processor (core-internal).
    CpuResp(CpuResp),

    // ---- intra-CMP level ----
    /// L1 miss → local L2 bank (GETS/GETX).
    L1Req {
        /// Requested block.
        block: Block,
        /// Requesting L1.
        requester: NodeId,
        /// Read or write.
        kind: ReqKind,
    },
    /// L2 bank → owner L1: surrender data (and rights, per `kind` and the
    /// L1's own migratory decision).
    FwdL1 {
        /// Block to surrender.
        block: Block,
        /// The request being serviced.
        kind: ReqKind,
    },
    /// L2 bank → sharer L1: invalidate.
    InvL1 {
        /// Block to invalidate.
        block: Block,
    },
    /// L1 → L2 bank: invalidation acknowledged (sent even if the line was
    /// already gone, tolerating stale sharer bits).
    InvAckL1 {
        /// Acknowledged block.
        block: Block,
    },
    /// Owner L1 → L2 bank: data response to a [`DirMsg::FwdL1`]. Data is
    /// always routed through the L2 — the strictly hierarchical artifact
    /// the paper measures in Figure 7b.
    DataL1ToL2 {
        /// Block.
        block: Block,
        /// True if the L1 copy was modified.
        dirty: bool,
        /// True if the L1 invalidated itself (migratory transfer or GETX).
        relinquished: bool,
        /// False if the L1 no longer held the line (a benign race with a
        /// concurrent writeback); the message is then control-sized.
        valid: bool,
    },
    /// L2 bank → requesting L1: data grant.
    GrantToL1 {
        /// Granted block.
        block: Block,
        /// Granted rights.
        state: L1Grant,
        /// Which tier supplied the data (latency attribution).
        source: GrantSource,
    },
    /// Requesting L1 → L2 bank: grant received; close the intra txn.
    UnblockL1 {
        /// Unblocked block.
        block: Block,
    },
    /// L1 → L2 bank: three-phase writeback, phase 1.
    WbReqL1 {
        /// Block to write back.
        block: Block,
    },
    /// L2 bank → L1: writeback, phase 2.
    WbGrantL1 {
        /// Granted block.
        block: Block,
    },
    /// L1 → L2 bank: writeback, phase 3 (data if dirty).
    WbDataL1 {
        /// Block written back.
        block: Block,
        /// True if the data is modified (message carries data).
        dirty: bool,
        /// False if the line was lost to a racing forward/invalidate.
        valid: bool,
    },

    // ---- inter-CMP level ----
    /// L2 bank miss → home directory (GETS/GETX).
    L2Req {
        /// Requested block.
        block: Block,
        /// Requesting L2 bank.
        requester: NodeId,
        /// Read or write.
        kind: ReqKind,
    },
    /// Home → owner chip's L2: surrender chip rights per `kind`.
    FwdL2 {
        /// Block to surrender.
        block: Block,
        /// The request being serviced.
        kind: ReqKind,
        /// The L2 bank the data response must be sent to.
        requester: NodeId,
    },
    /// Home → sharer chip's L2: invalidate the chip; acknowledge to the
    /// requesting L2.
    InvL2 {
        /// Block to invalidate.
        block: Block,
        /// The L2 bank acknowledgments are collected at.
        requester: NodeId,
    },
    /// Sharer chip's L2 → requesting L2: chip invalidated.
    InvAckL2 {
        /// Acknowledged block.
        block: Block,
    },
    /// Home → requesting L2: how many [`DirMsg::InvAckL2`] to expect when
    /// the data comes from a forwarded owner rather than from memory.
    FwdInfo {
        /// Block.
        block: Block,
        /// Expected acknowledgment count.
        acks: u32,
    },
    /// Home → requesting L2: data from DRAM.
    MemData {
        /// Block.
        block: Block,
        /// Chip rights granted.
        state: ChipGrant,
        /// Expected acknowledgment count (GETX on a shared block).
        acks: u32,
    },
    /// Owner chip's L2 → requesting L2: forwarded data.
    DataL2ToL2 {
        /// Block.
        block: Block,
        /// Chip rights granted (M for GETX/migratory, S otherwise).
        state: ChipGrant,
        /// True if the data is modified relative to memory.
        dirty: bool,
    },
    /// Requesting L2 → home: transaction complete; `result` finalizes the
    /// home entry.
    UnblockHome {
        /// Unblocked block.
        block: Block,
        /// Final chip-level outcome.
        result: HomeResult,
    },
    /// L2 bank → home: three-phase writeback, phase 1.
    WbReqL2 {
        /// Block to write back.
        block: Block,
    },
    /// Home → L2 bank: writeback, phase 2.
    WbGrantL2 {
        /// Granted block.
        block: Block,
    },
    /// L2 bank → home: writeback, phase 3 (data if dirty).
    WbDataL2 {
        /// Block written back.
        block: Block,
        /// True if the data is modified (message carries data).
        dirty: bool,
        /// False if chip ownership was lost to a racing forward.
        valid: bool,
    },
}

impl NetMsg for DirMsg {
    fn size_bytes(&self) -> u32 {
        match self {
            DirMsg::Cpu(_) | DirMsg::CpuResp(_) => 0,
            DirMsg::GrantToL1 { .. } | DirMsg::MemData { .. } | DirMsg::DataL2ToL2 { .. } => 72,
            DirMsg::DataL1ToL2 { valid: true, .. } => 72,
            DirMsg::WbDataL1 {
                dirty: true,
                valid: true,
                ..
            }
            | DirMsg::WbDataL2 {
                dirty: true,
                valid: true,
                ..
            } => 72,
            _ => 8,
        }
    }

    fn class(&self) -> MsgClass {
        match self {
            DirMsg::Cpu(_) => MsgClass::Request,
            DirMsg::CpuResp(_) => MsgClass::ResponseData,
            DirMsg::L1Req { .. } | DirMsg::L2Req { .. } => MsgClass::Request,
            DirMsg::FwdL1 { .. }
            | DirMsg::InvL1 { .. }
            | DirMsg::InvAckL1 { .. }
            | DirMsg::FwdL2 { .. }
            | DirMsg::InvL2 { .. }
            | DirMsg::InvAckL2 { .. }
            | DirMsg::FwdInfo { .. } => MsgClass::InvFwdAckTokens,
            DirMsg::DataL1ToL2 { .. }
            | DirMsg::GrantToL1 { .. }
            | DirMsg::MemData { .. }
            | DirMsg::DataL2ToL2 { .. } => MsgClass::ResponseData,
            DirMsg::UnblockL1 { .. } | DirMsg::UnblockHome { .. } => MsgClass::Unblock,
            DirMsg::WbReqL1 { .. }
            | DirMsg::WbGrantL1 { .. }
            | DirMsg::WbReqL2 { .. }
            | DirMsg::WbGrantL2 { .. } => MsgClass::WritebackControl,
            DirMsg::WbDataL1 { dirty, valid, .. } | DirMsg::WbDataL2 { dirty, valid, .. } => {
                if *dirty && *valid {
                    MsgClass::WritebackData
                } else {
                    MsgClass::WritebackControl
                }
            }
        }
    }

    // `droppable` keeps its `false` default for every directory message:
    // DirectoryCMP has no timeout/retry recovery path, so the fault
    // layer's drop knob is rejected for directory protocols at run setup.

    fn block_id(&self) -> Option<u64> {
        crate::msg_block(self).map(|b| b.0)
    }
}

impl CpuPort for DirMsg {
    fn from_cpu_req(req: CpuReq) -> Self {
        DirMsg::Cpu(req)
    }
    fn from_cpu_resp(resp: CpuResp) -> Self {
        DirMsg::CpuResp(resp)
    }
    fn into_cpu_req(self) -> Option<CpuReq> {
        match self {
            DirMsg::Cpu(r) => Some(r),
            _ => None,
        }
    }
    fn into_cpu_resp(self) -> Option<CpuResp> {
        match self {
            DirMsg::CpuResp(r) => Some(r),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_messages_are_72_bytes() {
        let g = DirMsg::GrantToL1 {
            block: Block(1),
            state: L1Grant::M,
            source: GrantSource::Intra,
        };
        assert_eq!(g.size_bytes(), 72);
        assert_eq!(g.class(), MsgClass::ResponseData);
        let d = DirMsg::DataL2ToL2 {
            block: Block(1),
            state: ChipGrant::S,
            dirty: true,
        };
        assert_eq!(d.size_bytes(), 72);
    }

    #[test]
    fn control_messages_are_8_bytes() {
        for m in [
            DirMsg::L1Req {
                block: Block(0),
                requester: NodeId(1),
                kind: ReqKind::Read,
            },
            DirMsg::InvL1 { block: Block(0) },
            DirMsg::UnblockHome {
                block: Block(0),
                result: HomeResult::Exclusive,
            },
            DirMsg::WbReqL2 { block: Block(0) },
            DirMsg::WbGrantL2 { block: Block(0) },
        ] {
            assert_eq!(m.size_bytes(), 8, "{m:?}");
        }
    }

    #[test]
    fn clean_or_invalid_writeback_data_is_control() {
        let clean = DirMsg::WbDataL1 {
            block: Block(0),
            dirty: false,
            valid: true,
        };
        assert_eq!(clean.size_bytes(), 8);
        assert_eq!(clean.class(), MsgClass::WritebackControl);
        let dirty = DirMsg::WbDataL2 {
            block: Block(0),
            dirty: true,
            valid: true,
        };
        assert_eq!(dirty.size_bytes(), 72);
        assert_eq!(dirty.class(), MsgClass::WritebackData);
        let lost = DirMsg::WbDataL2 {
            block: Block(0),
            dirty: true,
            valid: false,
        };
        assert_eq!(lost.size_bytes(), 8);
    }

    #[test]
    fn unblocks_have_their_own_class() {
        let u = DirMsg::UnblockL1 { block: Block(3) };
        assert_eq!(u.class(), MsgClass::Unblock);
    }

    #[test]
    fn cpu_port_round_trip() {
        use tokencmp_proto::AccessKind;
        let req = CpuReq::Access {
            kind: AccessKind::Store,
            block: Block(4),
        };
        assert_eq!(DirMsg::from_cpu_req(req).into_cpu_req(), Some(req));
        let resp = CpuResp::WatchFired { block: Block(4) };
        assert_eq!(DirMsg::from_cpu_resp(resp).into_cpu_resp(), Some(resp));
    }

    #[test]
    fn paper_example_sequence_totals_176_bytes() {
        // §8: remote exclusive fetch + writeback under DirectoryCMP:
        // request, data, unblock, wb request, wb grant, wb data.
        let seq = [
            DirMsg::L2Req {
                block: Block(0),
                requester: NodeId(0),
                kind: ReqKind::Write,
            },
            DirMsg::MemData {
                block: Block(0),
                state: ChipGrant::M,
                acks: 0,
            },
            DirMsg::UnblockHome {
                block: Block(0),
                result: HomeResult::Exclusive,
            },
            DirMsg::WbReqL2 { block: Block(0) },
            DirMsg::WbGrantL2 { block: Block(0) },
            DirMsg::WbDataL2 {
                block: Block(0),
                dirty: true,
                valid: true,
            },
        ];
        let total: u32 = seq.iter().map(NetMsg::size_bytes).sum();
        assert_eq!(total, 176);
    }
}
