//! The DirectoryCMP L1 cache controller (MESI at the L1 level).
//!
//! L1 misses go to the local L2 bank (the intra-CMP directory) and block
//! until a grant arrives — the directory serializes per block, so no
//! retries are needed. Dirty/exclusive evictions use the three-phase
//! writeback handshake; forwarded requests and invalidations are answered
//! from the line or from the writeback buffer (a benign race the `valid`
//! flag resolves). The bounded response-delay window (§3.2) defers
//! forwards/invalidations for recently-written blocks, as in all protocols
//! of the paper.

use std::any::Any;
use std::collections::HashMap;
use std::rc::Rc;

use tokencmp_cache::{InsertOutcome, SetAssoc};
use tokencmp_proto::{AccessKind, Block, CpuReq, CpuResp, Layout, ProcId, SystemConfig};
use tokencmp_sim::{Component, Ctx, Dur, NodeId, Time};
use tokencmp_trace::{LatencyBreakdown, Segment, SegmentParts, TraceEvent, TraceHandle};

use crate::msg::{DirMsg, GrantSource, L1Grant, ReqKind};

const TAG_LOCK: u64 = 1 << 63;

/// Stable label for trace events.
fn state_label(s: L1State) -> &'static str {
    match s {
        L1State::S => "S",
        L1State::E => "E",
        L1State::M => "M",
    }
}

/// L1 line states (MESI minus a distinct Invalid: absent = invalid).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum L1State {
    /// Shared, read-only.
    S,
    /// Exclusive clean (silently upgradable to M).
    E,
    /// Modified.
    M,
}

/// Counters exposed by a DirectoryCMP L1 after a run.
#[derive(Clone, Debug, Default)]
pub struct DirL1Stats {
    /// Accesses satisfied in the L1.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Writebacks issued (three-phase handshakes started).
    pub writebacks: u64,
    /// Miss latency distribution with per-tier attribution (picoseconds).
    pub lat: LatencyBreakdown,
}

#[derive(Debug)]
struct Miss {
    block: Block,
    access: AccessKind,
    started: Time,
}

/// A DirectoryCMP L1 cache controller.
pub struct DirL1 {
    cfg: Rc<SystemConfig>,
    layout: Layout,
    me: NodeId,
    proc: ProcId,
    proc_node: NodeId,
    lines: SetAssoc<L1State>,
    miss: Option<Miss>,
    /// Evicted-but-not-yet-written-back lines (data still held).
    wb_buffer: HashMap<Block, L1State>,
    watch: Option<Block>,
    locks: HashMap<Block, Time>,
    deferred: Vec<DirMsg>,
    trace: Option<TraceHandle>,
    /// Run statistics.
    pub stats: DirL1Stats,
}

impl DirL1 {
    /// Creates an L1 controller for processor `proc` registered at `me`.
    pub fn new(cfg: Rc<SystemConfig>, me: NodeId, proc: ProcId) -> DirL1 {
        let layout = cfg.layout();
        DirL1 {
            lines: SetAssoc::new(cfg.l1_sets, cfg.l1_ways, 0),
            proc_node: layout.proc(proc),
            layout,
            me,
            proc,
            miss: None,
            wb_buffer: HashMap::new(),
            watch: None,
            locks: HashMap::new(),
            deferred: Vec::new(),
            trace: None,
            cfg,
            stats: DirL1Stats::default(),
        }
    }

    /// Installs the run's trace sink (no sink ⇒ zero tracing work).
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = Some(trace);
    }

    /// True if a miss is outstanding.
    pub fn has_outstanding_miss(&self) -> bool {
        self.miss.is_some()
    }

    /// Resident lines and their states (for quiescence audits).
    pub fn lines(&self) -> Vec<(Block, L1State)> {
        debug_assert!(self.wb_buffer.is_empty(), "writeback in flight at audit");
        self.lines.iter().map(|(b, &s)| (b, s)).collect()
    }

    fn bank_of(&self, block: Block) -> NodeId {
        let cmp = self.layout.cmp_of_proc(self.proc);
        self.layout.l2(cmp, self.cfg.l2_bank_of(block))
    }

    fn locked(&self, block: Block, now: Time) -> bool {
        self.locks.get(&block).is_some_and(|&t| t > now)
    }

    fn lock(&mut self, block: Block, ctx: &mut Ctx<'_, DirMsg>) {
        if self.cfg.response_delay.is_zero() {
            return;
        }
        let until = ctx.now + self.cfg.response_delay;
        self.locks.insert(block, until);
        debug_assert!(block.0 < TAG_LOCK);
        ctx.wake_at(until, TAG_LOCK | block.0);
    }

    fn fire_watch_if(&mut self, block: Block, ctx: &mut Ctx<'_, DirMsg>) {
        if self.watch == Some(block) {
            self.watch = None;
            ctx.send(
                self.proc_node,
                DirMsg::CpuResp(CpuResp::WatchFired { block }),
            );
        }
    }

    fn start_writeback(&mut self, block: Block, state: L1State, ctx: &mut Ctx<'_, DirMsg>) {
        self.stats.writebacks += 1;
        self.wb_buffer.insert(block, state);
        ctx.send(self.bank_of(block), DirMsg::WbReqL1 { block });
    }

    fn handle_cpu(&mut self, req: CpuReq, ctx: &mut Ctx<'_, DirMsg>) {
        match req {
            CpuReq::Access { kind, block } => {
                assert!(self.miss.is_none(), "sequencer issues one op at a time");
                let write = kind.needs_write();
                let hit = match self.lines.get_mut(block) {
                    Some(s @ (L1State::E | L1State::M)) => {
                        if write {
                            *s = L1State::M;
                        }
                        true
                    }
                    Some(L1State::S) => !write,
                    None => false,
                };
                if hit {
                    if let Some(t) = &self.trace {
                        t.borrow_mut().record(
                            ctx.now,
                            TraceEvent::AccessDone {
                                node: self.me,
                                proc: self.proc,
                                block,
                                kind,
                            },
                        );
                    }
                    if write {
                        self.lock(block, ctx);
                    }
                    self.stats.hits += 1;
                    ctx.send_after(
                        self.cfg.l1_latency,
                        self.proc_node,
                        DirMsg::CpuResp(CpuResp::Done { kind, block }),
                    );
                    return;
                }
                self.stats.misses += 1;
                self.miss = Some(Miss {
                    block,
                    access: kind,
                    started: ctx.now,
                });
                let rkind = if write { ReqKind::Write } else { ReqKind::Read };
                ctx.send_after(
                    self.cfg.l1_latency,
                    self.bank_of(block),
                    DirMsg::L1Req {
                        block,
                        requester: self.me,
                        kind: rkind,
                    },
                );
            }
            CpuReq::Watch { block } => {
                if self.lines.contains(block) {
                    self.watch = Some(block);
                } else {
                    ctx.send(
                        self.proc_node,
                        DirMsg::CpuResp(CpuResp::WatchFired { block }),
                    );
                }
            }
        }
    }

    fn handle_grant(
        &mut self,
        block: Block,
        state: L1Grant,
        source: GrantSource,
        ctx: &mut Ctx<'_, DirMsg>,
    ) {
        let m = self.miss.take().expect("grant without an outstanding miss");
        assert_eq!(m.block, block, "grant for the wrong block");
        let write = m.access.needs_write();
        let installed = match (state, write) {
            (_, true) => {
                debug_assert_eq!(state, L1Grant::M, "writes are granted M");
                L1State::M
            }
            (L1Grant::S, false) => L1State::S,
            (L1Grant::E, false) => L1State::E,
            // A migratory grant hands a load read/write access.
            (L1Grant::M, false) => L1State::M,
        };
        match self.lines.insert(block, installed) {
            InsertOutcome::Evicted(vb, vs) => {
                self.fire_watch_if(vb, ctx);
                if let Some(t) = &self.trace {
                    t.borrow_mut().record(
                        ctx.now,
                        TraceEvent::CacheEvict {
                            node: self.me,
                            block: vb,
                            state: state_label(vs),
                        },
                    );
                }
                match vs {
                    L1State::S => {} // silent drop; stale sharer bits are tolerated
                    s => self.start_writeback(vb, s, ctx),
                }
            }
            InsertOutcome::Inserted | InsertOutcome::Replaced(_) => {}
        }
        if write {
            self.lock(block, ctx);
        }
        // The directory path has no retries: the entire miss is governed by
        // whichever tier supplied the data.
        let total = ctx.now.since(m.started).as_ps();
        let mut parts = SegmentParts::default();
        parts.add(
            match source {
                GrantSource::Intra => Segment::Intra,
                GrantSource::Inter => Segment::Inter,
                GrantSource::Mem => Segment::Mem,
            },
            total,
        );
        self.stats.lat.record(total, parts);
        if let Some(t) = &self.trace {
            let mut t = t.borrow_mut();
            t.record(
                ctx.now,
                TraceEvent::CacheFill {
                    node: self.me,
                    block,
                    state: state_label(installed),
                },
            );
            t.record(
                ctx.now,
                TraceEvent::AccessDone {
                    node: self.me,
                    proc: self.proc,
                    block,
                    kind: m.access,
                },
            );
            t.record(
                ctx.now,
                TraceEvent::MissCommit {
                    proc: self.proc,
                    block,
                    kind: m.access,
                    total: Dur::from_ps(total),
                    parts,
                },
            );
        }
        ctx.send(self.bank_of(block), DirMsg::UnblockL1 { block });
        ctx.send(
            self.proc_node,
            DirMsg::CpuResp(CpuResp::Done {
                kind: m.access,
                block,
            }),
        );
    }

    /// Where the (possibly evicted) copy of `block` lives.
    fn copy_state(&self, block: Block) -> Option<(L1State, bool)> {
        if let Some(&s) = self.lines.peek(block) {
            Some((s, false))
        } else {
            self.wb_buffer.get(&block).map(|&s| (s, true))
        }
    }

    fn handle_fwd(&mut self, block: Block, kind: ReqKind, ctx: &mut Ctx<'_, DirMsg>) {
        if self.locked(block, ctx.now) {
            self.deferred.push(DirMsg::FwdL1 { block, kind });
            return;
        }
        let Some((state, buffered)) = self.copy_state(block) else {
            // Benign race: the line is gone (writeback data already sent).
            ctx.send_after(
                self.cfg.l1_latency,
                self.bank_of(block),
                DirMsg::DataL1ToL2 {
                    block,
                    dirty: false,
                    relinquished: true,
                    valid: false,
                },
            );
            return;
        };
        debug_assert!(matches!(state, L1State::E | L1State::M), "fwd to non-owner");
        let dirty = state == L1State::M;
        let relinquish = match kind {
            ReqKind::Write => true,
            // Migratory sharing: a modified line moves wholesale on a read.
            ReqKind::Read => dirty && self.cfg.migratory_sharing,
        };
        if relinquish {
            if buffered {
                self.wb_buffer.remove(&block);
            } else {
                self.lines.remove(block);
                // The buffered copy was already traced as evicted when it
                // left the cache; only a resident line's departure is new.
                if let Some(t) = &self.trace {
                    t.borrow_mut().record(
                        ctx.now,
                        TraceEvent::CacheEvict {
                            node: self.me,
                            block,
                            state: "fwd",
                        },
                    );
                }
            }
            self.fire_watch_if(block, ctx);
        } else if buffered {
            self.wb_buffer.insert(block, L1State::S);
        } else {
            *self.lines.get_mut(block).unwrap() = L1State::S;
            // Downgrade in place: the refinement checker sees the holder's
            // new read-only state as a fill.
            if let Some(t) = &self.trace {
                t.borrow_mut().record(
                    ctx.now,
                    TraceEvent::CacheFill {
                        node: self.me,
                        block,
                        state: "S",
                    },
                );
            }
        }
        ctx.send_after(
            self.cfg.l1_latency,
            self.bank_of(block),
            DirMsg::DataL1ToL2 {
                block,
                dirty,
                relinquished: relinquish,
                valid: true,
            },
        );
    }

    fn handle_inv(&mut self, block: Block, ctx: &mut Ctx<'_, DirMsg>) {
        if self.locked(block, ctx.now) {
            self.deferred.push(DirMsg::InvL1 { block });
            return;
        }
        let resident = self.lines.contains(block);
        self.lines.remove(block);
        self.wb_buffer.remove(&block);
        if resident {
            if let Some(t) = &self.trace {
                t.borrow_mut().record(
                    ctx.now,
                    TraceEvent::CacheEvict {
                        node: self.me,
                        block,
                        state: "inv",
                    },
                );
            }
        }
        self.fire_watch_if(block, ctx);
        ctx.send_after(
            self.cfg.l1_latency,
            self.bank_of(block),
            DirMsg::InvAckL1 { block },
        );
    }

    fn handle_wb_grant(&mut self, block: Block, ctx: &mut Ctx<'_, DirMsg>) {
        let (dirty, valid) = match self.wb_buffer.remove(&block) {
            Some(L1State::M) => (true, true),
            Some(_) => (false, true),
            None => (false, false), // lost to a racing forward/invalidate
        };
        ctx.send(
            self.bank_of(block),
            DirMsg::WbDataL1 {
                block,
                dirty,
                valid,
            },
        );
    }
}

impl Component<DirMsg> for DirL1 {
    fn on_msg(&mut self, _src: NodeId, msg: DirMsg, ctx: &mut Ctx<'_, DirMsg>) {
        crate::trace(&msg, || {
            format!("L1 {:?}/{:?} t={}: {msg:?}", self.proc, self.me, ctx.now)
        });
        match msg {
            DirMsg::Cpu(req) => self.handle_cpu(req, ctx),
            DirMsg::GrantToL1 {
                block,
                state,
                source,
            } => self.handle_grant(block, state, source, ctx),
            DirMsg::FwdL1 { block, kind } => self.handle_fwd(block, kind, ctx),
            DirMsg::InvL1 { block } => self.handle_inv(block, ctx),
            DirMsg::WbGrantL1 { block } => self.handle_wb_grant(block, ctx),
            other => unreachable!("unexpected message at L1: {other:?}"),
        }
    }

    fn on_wake(&mut self, tag: u64, ctx: &mut Ctx<'_, DirMsg>) {
        debug_assert!(tag & TAG_LOCK != 0, "L1 only schedules lock wakes");
        let block = Block(tag & !TAG_LOCK);
        if self.locked(block, ctx.now) {
            return; // re-locked; a later wake exists
        }
        self.locks.remove(&block);
        let deferred = std::mem::take(&mut self.deferred);
        for m in deferred {
            match m {
                DirMsg::FwdL1 { block: b, kind } if b == block => self.handle_fwd(b, kind, ctx),
                DirMsg::InvL1 { block: b } if b == block => self.handle_inv(b, ctx),
                other => self.deferred.push(other),
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn kind(&self) -> &'static str {
        "l1"
    }
}

impl std::fmt::Debug for DirL1 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DirL1")
            .field("me", &self.me)
            .field("proc", &self.proc)
            .field("lines", &self.lines.len())
            .field("miss", &self.miss)
            .finish()
    }
}
