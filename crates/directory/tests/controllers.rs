//! Controller-level tests for DirectoryCMP: each controller is driven
//! through a mini kernel with recording stubs at every other layout slot,
//! so the two-level directory's handshakes (busy states, three-phase
//! writebacks, unblocks, migratory transfers) can be asserted message by
//! message.

use std::any::Any;
use std::cell::RefCell;
use std::rc::Rc;

use tokencmp_directory::{
    ChipGrant, DirHome, DirL1, DirL2, DirMsg, GrantSource, HomeResult, HomeState, L1Grant, ReqKind,
};
use tokencmp_proto::{AccessKind, Block, CmpId, CpuReq, CpuResp, ProcId, SystemConfig, Unit};
use tokencmp_sim::{Component, Ctx, Kernel, NodeId, Time};

type Log = Rc<RefCell<Vec<(NodeId, NodeId, Time, DirMsg)>>>;

struct Recorder {
    me: NodeId,
    log: Log,
}

impl Component<DirMsg> for Recorder {
    fn on_msg(&mut self, src: NodeId, msg: DirMsg, ctx: &mut Ctx<'_, DirMsg>) {
        self.log.borrow_mut().push((self.me, src, ctx.now, msg));
    }
    fn on_wake(&mut self, _tag: u64, _ctx: &mut Ctx<'_, DirMsg>) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn build(cfg: &Rc<SystemConfig>, under_test: Unit) -> (Kernel<DirMsg>, Log, NodeId) {
    let layout = cfg.layout();
    let log: Log = Rc::new(RefCell::new(Vec::new()));
    let mut k: Kernel<DirMsg> = Kernel::new_instant();
    let target = layout.node(under_test);
    for i in 0..layout.total_nodes() {
        let me = NodeId(i);
        if me == target {
            match under_test {
                Unit::L1D(p) | Unit::L1I(p) => {
                    assert_eq!(k.add_component(DirL1::new(cfg.clone(), me, p)), me);
                }
                Unit::L2Bank(c, b) => {
                    assert_eq!(k.add_component(DirL2::new(cfg.clone(), me, c, b)), me);
                }
                Unit::Mem(c) => {
                    assert_eq!(k.add_component(DirHome::new(cfg.clone(), me, c)), me);
                }
                Unit::Proc(_) => unreachable!(),
            }
        } else {
            assert_eq!(
                k.add_component(Recorder {
                    me,
                    log: log.clone()
                }),
                me
            );
        }
    }
    (k, log, target)
}

fn received_by(log: &Log, node: NodeId) -> Vec<DirMsg> {
    log.borrow()
        .iter()
        .filter(|&&(me, _, _, _)| me == node)
        .map(|&(_, _, _, m)| m)
        .collect()
}

fn cfg() -> Rc<SystemConfig> {
    Rc::new(SystemConfig::small_test())
}

// ---- L1 ---------------------------------------------------------------------------

#[test]
fn l1_miss_requests_the_right_bank_and_unblocks_after_grant() {
    let cfg = cfg();
    let layout = cfg.layout();
    let p = ProcId(0);
    let (mut k, log, l1) = build(&cfg, Unit::L1D(p));
    let block = Block(0x41); // bank 1 on chip 0
    k.inject(
        layout.proc(p),
        l1,
        DirMsg::Cpu(CpuReq::Access {
            kind: AccessKind::Load,
            block,
        }),
    );
    k.run(10_000, Time::from_ns(10));
    let bank = layout.l2(CmpId(0), cfg.l2_bank_of(block));
    assert!(received_by(&log, bank).iter().any(|m| matches!(
        m,
        DirMsg::L1Req {
            kind: ReqKind::Read,
            ..
        }
    )));
    // Grant S: the L1 completes and unblocks the bank.
    k.inject(
        bank,
        l1,
        DirMsg::GrantToL1 {
            block,
            state: L1Grant::S,
            source: GrantSource::Intra,
        },
    );
    k.run(10_000, Time::from_ns(50));
    assert!(received_by(&log, bank)
        .iter()
        .any(|m| matches!(m, DirMsg::UnblockL1 { .. })));
    assert!(received_by(&log, layout.proc(p)).iter().any(|m| matches!(
        m,
        DirMsg::CpuResp(CpuResp::Done {
            kind: AccessKind::Load,
            ..
        })
    )));
}

#[test]
fn l1_store_on_exclusive_clean_is_a_silent_hit() {
    let cfg = cfg();
    let layout = cfg.layout();
    let p = ProcId(0);
    let (mut k, log, l1) = build(&cfg, Unit::L1D(p));
    let block = Block(0x41);
    let bank = layout.l2(CmpId(0), cfg.l2_bank_of(block));
    // Load that ends E.
    k.inject(
        layout.proc(p),
        l1,
        DirMsg::Cpu(CpuReq::Access {
            kind: AccessKind::Load,
            block,
        }),
    );
    k.run(10_000, Time::from_ns(10));
    k.inject(
        bank,
        l1,
        DirMsg::GrantToL1 {
            block,
            state: L1Grant::E,
            source: GrantSource::Intra,
        },
    );
    k.run(10_000, Time::from_ns(50));
    let before = received_by(&log, bank).len();
    // Store: silent E→M upgrade; no new traffic to the bank.
    k.inject(
        layout.proc(p),
        l1,
        DirMsg::Cpu(CpuReq::Access {
            kind: AccessKind::Store,
            block,
        }),
    );
    k.run(10_000, Time::from_ns(100));
    assert_eq!(received_by(&log, bank).len(), before, "no L2 traffic");
    // The forwarded response later reports dirty data.
    k.inject(
        bank,
        l1,
        DirMsg::FwdL1 {
            block,
            kind: ReqKind::Write,
        },
    );
    k.run(100_000, Time::from_ns(400));
    assert!(received_by(&log, bank).iter().any(|m| matches!(
        m,
        DirMsg::DataL1ToL2 {
            dirty: true,
            relinquished: true,
            valid: true,
            ..
        }
    )));
}

#[test]
fn l1_migratory_decision_is_made_by_the_owner() {
    let cfg = cfg();
    let layout = cfg.layout();
    let p = ProcId(0);
    let (mut k, log, l1) = build(&cfg, Unit::L1D(p));
    let block = Block(0x41);
    let bank = layout.l2(CmpId(0), cfg.l2_bank_of(block));
    // Acquire M via a store grant.
    k.inject(
        layout.proc(p),
        l1,
        DirMsg::Cpu(CpuReq::Access {
            kind: AccessKind::Store,
            block,
        }),
    );
    k.run(10_000, Time::from_ns(10));
    k.inject(
        bank,
        l1,
        DirMsg::GrantToL1 {
            block,
            state: L1Grant::M,
            source: GrantSource::Intra,
        },
    );
    // Run past the response-delay window before the forward arrives.
    k.run(100_000, Time::from_ns(200));
    // A *read* forward to a modified line migrates it wholesale.
    k.inject(
        bank,
        l1,
        DirMsg::FwdL1 {
            block,
            kind: ReqKind::Read,
        },
    );
    k.run(100_000, Time::from_ns(400));
    assert!(received_by(&log, bank).iter().any(|m| matches!(
        m,
        DirMsg::DataL1ToL2 {
            dirty: true,
            relinquished: true,
            ..
        }
    )));
}

#[test]
fn l1_acknowledges_invalidations_blindly() {
    let cfg = cfg();
    let layout = cfg.layout();
    let p = ProcId(0);
    let (mut k, log, l1) = build(&cfg, Unit::L1D(p));
    let block = Block(0x99);
    let bank = layout.l2(CmpId(0), cfg.l2_bank_of(block));
    // No line present: the ack still flows (stale sharer bits tolerated).
    k.inject(bank, l1, DirMsg::InvL1 { block });
    k.run(10_000, Time::from_ns(50));
    assert!(received_by(&log, bank)
        .iter()
        .any(|m| matches!(m, DirMsg::InvAckL1 { .. })));
}

#[test]
fn l1_runs_the_three_phase_writeback() {
    let cfg = cfg();
    let layout = cfg.layout();
    let p = ProcId(0);
    let (mut k, log, l1) = build(&cfg, Unit::L1D(p));
    // Fill one L1 set (2 ways in small_test) with M lines, then a third
    // grant forces a dirty eviction.
    let set_stride = cfg.l1_sets as u64;
    let blocks = [
        Block(0x10),
        Block(0x10 + set_stride),
        Block(0x10 + 2 * set_stride),
    ];
    for &b in &blocks {
        let bank = layout.l2(CmpId(0), cfg.l2_bank_of(b));
        k.inject(
            layout.proc(p),
            l1,
            DirMsg::Cpu(CpuReq::Access {
                kind: AccessKind::Store,
                block: b,
            }),
        );
        k.run(10_000, Time::MAX);
        k.inject(
            bank,
            l1,
            DirMsg::GrantToL1 {
                block: b,
                state: L1Grant::M,
                source: GrantSource::Intra,
            },
        );
        k.run(10_000, Time::MAX);
    }
    let victim = blocks[0];
    let bank = layout.l2(CmpId(0), cfg.l2_bank_of(victim));
    assert!(
        received_by(&log, bank)
            .iter()
            .any(|m| matches!(m, DirMsg::WbReqL1 { block } if *block == victim)),
        "dirty eviction must start a writeback handshake"
    );
    k.inject(bank, l1, DirMsg::WbGrantL1 { block: victim });
    k.run(10_000, Time::MAX);
    assert!(received_by(&log, bank).iter().any(|m| matches!(
        m,
        DirMsg::WbDataL1 {
            block,
            dirty: true,
            valid: true
        } if *block == victim
    )));
}

// ---- L2 ---------------------------------------------------------------------------

#[test]
fn l2_fetches_from_home_then_grants_and_unblocks_home() {
    let cfg = cfg();
    let layout = cfg.layout();
    let c = CmpId(0);
    let (mut k, log, l2) = build(&cfg, Unit::L2Bank(c, 0));
    let block = Block(0x42); // bank 0, homed on chip 1
    let requester = layout.l1d(ProcId(0));
    let home = layout.mem(cfg.home_of(block));
    k.inject(
        requester,
        l2,
        DirMsg::L1Req {
            block,
            requester,
            kind: ReqKind::Read,
        },
    );
    k.run(10_000, Time::from_ns(50));
    assert!(received_by(&log, home).iter().any(|m| matches!(
        m,
        DirMsg::L2Req {
            kind: ReqKind::Read,
            ..
        }
    )));
    // Home answers from DRAM with an E grant.
    k.inject(
        home,
        l2,
        DirMsg::MemData {
            block,
            state: ChipGrant::E,
            acks: 0,
        },
    );
    k.run(10_000, Time::from_ns(200));
    assert!(received_by(&log, home).iter().any(|m| matches!(
        m,
        DirMsg::UnblockHome {
            result: HomeResult::Exclusive,
            ..
        }
    )));
    assert!(received_by(&log, requester).iter().any(|m| matches!(
        m,
        DirMsg::GrantToL1 {
            state: L1Grant::E,
            ..
        }
    )));
}

#[test]
fn l2_defers_conflicting_requests_until_unblock() {
    let cfg = cfg();
    let layout = cfg.layout();
    let c = CmpId(0);
    let (mut k, log, l2) = build(&cfg, Unit::L2Bank(c, 0));
    let block = Block(0x42);
    let r1 = layout.l1d(ProcId(0));
    let r2 = layout.l1d(ProcId(1));
    let home = layout.mem(cfg.home_of(block));
    k.inject(
        r1,
        l2,
        DirMsg::L1Req {
            block,
            requester: r1,
            kind: ReqKind::Read,
        },
    );
    k.inject(
        r2,
        l2,
        DirMsg::L1Req {
            block,
            requester: r2,
            kind: ReqKind::Read,
        },
    );
    k.run(10_000, Time::from_ns(50));
    // Only one L2Req reaches the home while the block is busy.
    let reqs = received_by(&log, home)
        .iter()
        .filter(|m| matches!(m, DirMsg::L2Req { .. }))
        .count();
    assert_eq!(reqs, 1, "second request must be deferred, not forwarded");
    // Complete the first transaction: data, grant to r1, r1 unblocks.
    k.inject(
        home,
        l2,
        DirMsg::MemData {
            block,
            state: ChipGrant::S,
            acks: 0,
        },
    );
    k.run(10_000, Time::from_ns(100));
    k.inject(r1, l2, DirMsg::UnblockL1 { block });
    k.run(10_000, Time::from_ns(200));
    // The deferred request is now served on-chip (S data at the L2).
    assert!(
        received_by(&log, r2).iter().any(|m| matches!(
            m,
            DirMsg::GrantToL1 {
                state: L1Grant::S,
                ..
            }
        )),
        "deferred sharer must be granted after unblock"
    );
}

// ---- home -------------------------------------------------------------------------

#[test]
fn home_grants_exclusive_from_dram_and_then_forwards() {
    let cfg = cfg();
    let layout = cfg.layout();
    let block = Block(0x42);
    let home_cmp = cfg.home_of(block);
    let (mut k, log, home) = build(&cfg, Unit::Mem(home_cmp));
    let l2a = layout.l2(CmpId(0), 0);
    let l2b = layout.l2(CmpId(1), 0);
    let t0 = k.now();
    k.inject(
        l2a,
        home,
        DirMsg::L2Req {
            block,
            requester: l2a,
            kind: ReqKind::Read,
        },
    );
    k.run(10_000, Time::from_ns(500));
    let (at, _) = log
        .borrow()
        .iter()
        .find(|&&(me, _, _, m)| {
            me == l2a
                && matches!(
                    m,
                    DirMsg::MemData {
                        state: ChipGrant::E,
                        ..
                    }
                )
        })
        .map(|&(_, _, t, m)| (t, m))
        .expect("uncached read gets an E grant from DRAM");
    // Directory state and DRAM data are both charged.
    assert!(at.since(t0) >= cfg.memctl_latency + cfg.dram_latency);
    // Unblock finalizes to Exclusive.
    k.inject(
        l2a,
        home,
        DirMsg::UnblockHome {
            block,
            result: HomeResult::Exclusive,
        },
    );
    k.run(10_000, Time::from_ns(1000));
    assert_eq!(
        k.component_as::<DirHome>(home).unwrap().state(block),
        HomeState::Exclusive(CmpId(0))
    );
    // A second chip's write is forwarded to the owner with an ack count.
    k.inject(
        l2b,
        home,
        DirMsg::L2Req {
            block,
            requester: l2b,
            kind: ReqKind::Write,
        },
    );
    k.run(10_000, Time::from_ns(1500));
    assert!(received_by(&log, l2a).iter().any(|m| matches!(
        m,
        DirMsg::FwdL2 {
            kind: ReqKind::Write,
            ..
        }
    )));
    assert!(received_by(&log, l2b)
        .iter()
        .any(|m| matches!(m, DirMsg::FwdInfo { acks: 0, .. })));
}

#[test]
fn home_writeback_handshake_clears_the_owner() {
    let cfg = cfg();
    let layout = cfg.layout();
    let block = Block(0x42);
    let home_cmp = cfg.home_of(block);
    let (mut k, log, home) = build(&cfg, Unit::Mem(home_cmp));
    let l2a = layout.l2(CmpId(0), 0);
    // Make chip 0 the exclusive owner.
    k.inject(
        l2a,
        home,
        DirMsg::L2Req {
            block,
            requester: l2a,
            kind: ReqKind::Write,
        },
    );
    k.run(10_000, Time::from_ns(500));
    k.inject(
        l2a,
        home,
        DirMsg::UnblockHome {
            block,
            result: HomeResult::Exclusive,
        },
    );
    k.run(10_000, Time::from_ns(1000));
    // Three-phase writeback.
    k.inject(l2a, home, DirMsg::WbReqL2 { block });
    k.run(10_000, Time::from_ns(1500));
    assert!(received_by(&log, l2a)
        .iter()
        .any(|m| matches!(m, DirMsg::WbGrantL2 { .. })));
    k.inject(
        l2a,
        home,
        DirMsg::WbDataL2 {
            block,
            dirty: true,
            valid: true,
        },
    );
    k.run(10_000, Time::from_ns(2000));
    assert_eq!(
        k.component_as::<DirHome>(home).unwrap().state(block),
        HomeState::Uncached
    );
}

#[test]
fn home_defers_requests_while_busy() {
    let cfg = cfg();
    let layout = cfg.layout();
    let block = Block(0x42);
    let home_cmp = cfg.home_of(block);
    let (mut k, log, home) = build(&cfg, Unit::Mem(home_cmp));
    let l2a = layout.l2(CmpId(0), 0);
    let l2b = layout.l2(CmpId(1), 0);
    k.inject(
        l2a,
        home,
        DirMsg::L2Req {
            block,
            requester: l2a,
            kind: ReqKind::Read,
        },
    );
    k.inject(
        l2b,
        home,
        DirMsg::L2Req {
            block,
            requester: l2b,
            kind: ReqKind::Read,
        },
    );
    k.run(10_000, Time::from_ns(500));
    // Only the first got data; the second waits for the unblock.
    assert!(received_by(&log, l2b)
        .iter()
        .all(|m| !matches!(m, DirMsg::MemData { .. })));
    k.inject(
        l2a,
        home,
        DirMsg::UnblockHome {
            block,
            result: HomeResult::Exclusive,
        },
    );
    k.run(10_000, Time::from_ns(1500));
    // Now the deferred read is served by forwarding to the new owner.
    assert!(received_by(&log, l2a).iter().any(|m| matches!(
        m,
        DirMsg::FwdL2 {
            kind: ReqKind::Read,
            ..
        }
    )));
}
