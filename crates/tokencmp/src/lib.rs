//! # tokencmp — Improving Multiple-CMP Systems Using Token Coherence
//!
//! A production-quality Rust reproduction of **Marty, Bingham, Hill, Hu,
//! Martin & Wood, HPCA 2005**: the TokenCMP family of cache-coherence
//! protocols that are *flat for correctness* but *hierarchical for
//! performance*, together with everything needed to regenerate the
//! paper's evaluation — a discrete-event M-CMP simulator, the
//! DirectoryCMP hierarchical-directory baseline, the paper's
//! micro-benchmarks and synthetic commercial workloads, and an
//! explicit-state model checker for the Section 5 verification study.
//!
//! ## Quick start
//!
//! ```
//! use tokencmp::{
//!     run_workload, LockingWorkload, Protocol, RunOptions, SystemConfig, Variant,
//! };
//!
//! // The paper's Table 3 target system: four 4-processor CMPs.
//! let cfg = SystemConfig::default();
//! // The Table 2 locking micro-benchmark: 16 processors, 32 locks.
//! let workload = LockingWorkload::new(cfg.layout().procs(), 32, 5, 42);
//! // Run it under TokenCMP-dst1, the paper's preferred variant.
//! let (result, workload) = run_workload(
//!     &cfg,
//!     Protocol::Token(Variant::Dst1),
//!     workload,
//!     &RunOptions::default(),
//! );
//! assert_eq!(workload.total_acquires, 16 * 5);
//! println!("runtime: {:.1} ns", result.runtime_ns());
//! ```
//!
//! ## Crate map
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`sim`] | `tokencmp-sim` | discrete-event kernel, time, stats, RNG |
//! | [`proto`] | `tokencmp-proto` | addresses, layout, message classes, Table 3 config |
//! | [`cache`] | `tokencmp-cache` | set-associative arrays |
//! | [`net`] | `tokencmp-net` | three-tier interconnect + traffic accounting |
//! | [`core`] | `tokencmp-core` | **the paper's contribution**: token substrate + TokenCMP policies |
//! | [`directory`] | `tokencmp-directory` | DirectoryCMP two-level MOESI baseline |
//! | [`system`] | `tokencmp-system` | system assembly, sequencers, PerfectL2, runner |
//! | [`workloads`] | `tokencmp-workloads` | locking/barrier micro-benchmarks, commercial generators |
//! | [`mcheck`] | `tokencmp-mcheck` | explicit-state model checker + protocol models (§5) |
//! | [`sweep`] | `tokencmp-sweep` | deterministic parallel sweep engine + JSON export |
//! | [`trace`] | `tokencmp-trace` | structured event tracing, latency attribution, flight recorder |
//! | [`litmus`] | `tokencmp-litmus` | litmus-test engine + axiomatic SC oracle (differential consistency checking) |
//! | [`conform`] | `tokencmp-conform` | trace-driven refinement checking against the verified models + transition coverage |

pub use tokencmp_cache as cache;
pub use tokencmp_conform as conform;
pub use tokencmp_core as core;
pub use tokencmp_directory as directory;
pub use tokencmp_litmus as litmus;
pub use tokencmp_mcheck as mcheck;
pub use tokencmp_net as net;
pub use tokencmp_proto as proto;
pub use tokencmp_sim as sim;
pub use tokencmp_sweep as sweep;
pub use tokencmp_system as system;
pub use tokencmp_trace as trace;
pub use tokencmp_workloads as workloads;

pub use tokencmp_conform::{
    conformance_grid, conformance_report, export_conformance, ConformChecker, ConformPoint,
    ConformWork, FaultTier, Mutation,
};
pub use tokencmp_core::{ReqKind, TokenBundle, TokenMsg, Variant};
pub use tokencmp_litmus::{
    classic_shapes, differential_check, sc_allowed, DiffOptions, LitmusWorkload, Outcome, Pinning,
    Program,
};
pub use tokencmp_net::{FaultCounters, FaultPlan, FaultSpec, Tier, Traffic};
pub use tokencmp_proto::{
    AccessKind, Block, CmpId, Fabric, Layout, MsgClass, ProcId, SystemConfig,
};
pub use tokencmp_sim::{Dur, HostProfiler, ProfilerHandle, RunOutcome, SchedulerKind, Time};
pub use tokencmp_sweep::{latency_table, par_map, PointRecord, PointResult, Sweep, SweepPoint};
pub use tokencmp_system::{
    run_workload, run_workload_traced, ConformOptions, Protocol, RunOptions, RunResult, Step,
    TelemetryOptions, Workload,
};
pub use tokencmp_trace::{
    block_timeline, chrome_trace_json, chrome_trace_with_counters, HostProfile, LatencyBreakdown,
    ProfiledSink, RingRecorder, Segment, SegmentParts, TimeSeries, TraceEvent, TraceHandle,
    TraceRecord, TraceSink, TIMESERIES_SCHEMA,
};
pub use tokencmp_workloads::{
    BarrierWorkload, CommercialParams, CommercialWorkload, LockingWorkload,
};
