//! Host-time profiling support on the trace side.
//!
//! The profiler itself lives in `tokencmp_sim::profile` (the kernel
//! owns the event loop being timed); this module re-exports it and adds
//! [`ProfiledSink`], a decorator that times trace-sink work *exactly* —
//! sink cost only exists when tracing is on, so it is measured rather
//! than stride-sampled, and it is subtracted from handler exclusive
//! time so "protocol handler" and "trace emission" stay separate rows
//! in the attribution table.

pub use tokencmp_sim::profile::{
    CatTotals, HostProfile, HostProfiler, ProfileEntry, ProfilerHandle,
};

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

use tokencmp_sim::Time;

use crate::event::TraceEvent;
use crate::sink::{TraceHandle, TraceSink};

/// A [`TraceSink`] decorator that attributes the inner sink's `record`
/// time to a profiler category (`sink.trace` for plain recorders,
/// `sink.conform` for checking sinks), forwarding everything else.
pub struct ProfiledSink {
    inner: TraceHandle,
    profiler: ProfilerHandle,
    category: &'static str,
}

impl ProfiledSink {
    /// Wraps `inner`, choosing the category by probing whether the
    /// inner sink is a conformance checker.
    pub fn wrap(inner: TraceHandle, profiler: ProfilerHandle) -> Rc<RefCell<ProfiledSink>> {
        let category = if inner.borrow().conformance().is_some() {
            "conform"
        } else {
            "trace"
        };
        Rc::new(RefCell::new(ProfiledSink {
            inner,
            profiler,
            category,
        }))
    }
}

impl TraceSink for ProfiledSink {
    fn record(&mut self, at: Time, ev: TraceEvent) {
        let t0 = Instant::now();
        self.inner.borrow_mut().record(at, ev);
        self.profiler
            .borrow_mut()
            .add_sink(self.category, t0.elapsed().as_nanos() as u64);
    }

    fn flight_dump(&self) -> Option<String> {
        self.inner.borrow().flight_dump()
    }

    fn conformance(&self) -> Option<Result<(), String>> {
        self.inner.borrow().conformance()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RingRecorder;
    use tokencmp_proto::{AccessKind, Block, ProcId};

    #[test]
    fn profiled_sink_forwards_and_accounts() {
        let ring = RingRecorder::new(8).into_handle();
        let prof = HostProfiler::handle(1);
        let wrapped = ProfiledSink::wrap(ring.clone(), prof.clone());
        for i in 0..3 {
            wrapped.borrow_mut().record(
                Time::from_ns(i),
                TraceEvent::SeqIssue {
                    proc: ProcId(0),
                    block: Block(i),
                    kind: AccessKind::Load,
                },
            );
        }
        // Events reached the inner ring...
        assert_eq!(ring.borrow().len(), 3);
        // ...and were charged to sink.trace, one call each, exactly.
        let report = prof.borrow().report();
        let entry = report
            .entries
            .iter()
            .find(|e| e.category == "sink.trace")
            .expect("sink.trace entry");
        assert_eq!(entry.calls, 3);
        assert!(entry.exact);
        // The flight-recorder contract passes through the decorator.
        assert!(wrapped.borrow().flight_dump().unwrap().contains("last 3"));
        assert!(wrapped.borrow().conformance().is_none());
    }
}
