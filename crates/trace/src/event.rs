//! The trace event taxonomy.
//!
//! Events are plain data: constructing one allocates nothing and touches
//! no globals, so emission sites can stay inside
//! `if let Some(sink) = &self.trace` with no disabled-path cost.

use std::fmt;

use tokencmp_sim::{Dur, NodeId, Time};

use tokencmp_proto::{AccessKind, Block, MsgClass, ProcId};

use crate::latency::SegmentParts;

/// Which interconnect tier a message crossed.
///
/// Mirrors the interconnect crate's tier taxonomy without depending on
/// it (`tokencmp-net` depends on this crate's siblings, so the dependency
/// must point this way). `Local` covers zero-latency same-node hops that
/// the network never charges to a tier.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceTier {
    /// Processor↔L1 and other same-node hops (no interconnect).
    Local,
    /// The on-chip interconnect.
    Intra,
    /// The chip-to-chip interconnect.
    Inter,
    /// A memory-controller link.
    Mem,
}

impl TraceTier {
    /// Short lowercase label (`"intra"`, …).
    pub fn label(self) -> &'static str {
        match self {
            TraceTier::Local => "local",
            TraceTier::Intra => "intra",
            TraceTier::Inter => "inter",
            TraceTier::Mem => "mem",
        }
    }
}

/// What the fault layer did to a message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// Dropped outright (droppable classes only).
    Drop,
    /// Delivery delayed by bounded jitter.
    Jitter,
    /// Held for adversarial reordering on an unordered tier.
    Hold,
}

impl FaultKind {
    /// Uppercase label matching the legacy `eprintln!` hooks.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Drop => "DROP",
            FaultKind::Jitter => "JITTER",
            FaultKind::Hold => "HOLD",
        }
    }
}

/// One structured protocol event. Timestamps live outside the event (the
/// sink records the simulation time of emission); `arrive` fields are
/// *future* times computed by the network.
///
/// Component-emitted events are stamped at the handler's current time and
/// are therefore monotone in record order. Network-emitted events
/// ([`MsgSend`](TraceEvent::MsgSend), [`Fault`](TraceEvent::Fault)) are
/// stamped at *wire departure* — the sender's time plus its local
/// processing delay, the instant the kernel reserves link occupancy — so
/// they may run slightly ahead of adjacent component events.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum TraceEvent {
    /// The interconnect accepted a message for delivery.
    MsgSend {
        /// Sending node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Message class (paper Fig 7 taxonomy).
        class: MsgClass,
        /// Tier charged for the hop.
        tier: TraceTier,
        /// Wire size in bytes.
        bytes: u32,
        /// Block the message concerns, if any.
        block: Option<Block>,
        /// Scheduled arrival time.
        arrive: Time,
    },
    /// The fault layer dropped, jittered or held a message.
    Fault {
        /// What was done.
        kind: FaultKind,
        /// Class of the affected message.
        class: MsgClass,
        /// Tier on which the fault fired.
        tier: TraceTier,
        /// Block the message concerns, if any.
        block: Option<Block>,
    },
    /// A sequencer handed an access to its L1.
    SeqIssue {
        /// Issuing processor.
        proc: ProcId,
        /// Target block.
        block: Block,
        /// Operation kind.
        kind: AccessKind,
    },
    /// A sequencer observed the access complete.
    SeqCommit {
        /// Committing processor.
        proc: ProcId,
        /// Completed block.
        block: Block,
        /// Operation kind.
        kind: AccessKind,
    },
    /// Tokens (and possibly the owner token) moved between nodes.
    TokensMoved {
        /// Block whose tokens moved.
        block: Block,
        /// Supplying node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Token count in the bundle.
        count: u32,
        /// Whether the owner token was included.
        owner: bool,
    },
    /// A persistent request was activated for `proc` on `block`.
    PersistentActivate {
        /// Block under persistent request.
        block: Block,
        /// Starving processor.
        proc: ProcId,
    },
    /// The persistent request for `proc` on `block` was deactivated.
    PersistentDeactivate {
        /// Block whose request ended.
        block: Block,
        /// Formerly starving processor.
        proc: ProcId,
    },
    /// A cache installed a line (L1/L2 transition into a valid state).
    CacheFill {
        /// Cache node.
        node: NodeId,
        /// Installed block.
        block: Block,
        /// Human-readable resulting state (`"M"`, `"S"`, `"T=3+O"`, …).
        state: &'static str,
    },
    /// A cache evicted or invalidated a line.
    CacheEvict {
        /// Cache node.
        node: NodeId,
        /// Evicted block.
        block: Block,
        /// Human-readable prior state.
        state: &'static str,
    },
    /// A token bundle arrived at a holder and was folded into its state
    /// (or relayed onward; a relay emits a delivery followed by a fresh
    /// [`TokensMoved`](TraceEvent::TokensMoved)). Together with
    /// `TokensMoved` this brackets every bundle's flight, so a refinement
    /// checker can account in-flight tokens exactly.
    TokensDelivered {
        /// Block whose tokens arrived.
        block: Block,
        /// Receiving node.
        node: NodeId,
        /// Token count in the bundle.
        count: u32,
        /// Whether the owner token was included.
        owner: bool,
    },
    /// An L1 satisfied a processor access *at this instant* — the moment
    /// the substrate's read/write guard (≥ 1 token for reads, all `T`
    /// plus the owner token for writes) must hold. The later
    /// [`SeqCommit`](TraceEvent::SeqCommit) fires after the L1→processor
    /// latency, when tokens may already have moved on.
    AccessDone {
        /// The L1 that performed the access.
        node: NodeId,
        /// Owning processor.
        proc: ProcId,
        /// Accessed block.
        block: Block,
        /// Operation kind.
        kind: AccessKind,
    },
    /// A coherence node applied a persistent-request table message
    /// (activate or deactivate, distributed or arbiter style) to its
    /// local table.
    TableApply {
        /// Block the request concerns.
        block: Block,
        /// Node whose table changed.
        node: NodeId,
        /// Starving processor the entry belongs to.
        proc: ProcId,
        /// True for an activation, false for a deactivation.
        activate: bool,
        /// True for arbiter-style messages, false for distributed ones.
        arb: bool,
    },
    /// The home memory controller's arbiter received a persistent
    /// activation request (and enqueued or activated it).
    ArbRequest {
        /// Block under persistent request.
        block: Block,
        /// Requesting processor.
        proc: ProcId,
    },
    /// The home arbiter retired a completed persistent request (and may
    /// activate the next queued one).
    ArbDone {
        /// Block whose request completed.
        block: Block,
        /// Formerly starving processor.
        proc: ProcId,
    },
    /// A miss completed in the L1/MSHR path, with its latency decomposed
    /// into attribution segments (the segments sum exactly to `total`).
    MissCommit {
        /// Processor whose miss completed.
        proc: ProcId,
        /// Missed block.
        block: Block,
        /// Operation kind.
        kind: AccessKind,
        /// End-to-end miss latency.
        total: Dur,
        /// Per-segment attribution; sums to `total`.
        parts: SegmentParts,
    },
    /// The interconnect lost a token bundle under the opt-in token-lossy
    /// fault tier (§15). Pairs with the preceding
    /// [`TokensMoved`](TraceEvent::TokensMoved) so in-flight accounting
    /// stays exact: the bundle left `from` but will never be delivered.
    TokenLost {
        /// Block whose tokens were lost.
        block: Block,
        /// The destination the bundle will never reach.
        to: NodeId,
        /// Token count in the lost bundle.
        count: u32,
        /// Whether the owner token was lost with it.
        owner: bool,
        /// Recreation serial the lost tokens were minted under.
        serial: u32,
    },
    /// A node received a token bundle minted under an outdated recreation
    /// serial and destroyed it instead of folding it in.
    StaleDiscard {
        /// Discarding node.
        node: NodeId,
        /// Block the stale bundle belonged to.
        block: Block,
        /// Token count destroyed.
        count: u32,
        /// Whether the (stale) owner token was among them.
        owner: bool,
        /// The outdated serial the bundle carried.
        serial: u32,
    },
    /// A node applied a recreation invalidation: it bumped the block to
    /// the new serial and destroyed any tokens held under older ones.
    EpochInval {
        /// Node whose holding was invalidated.
        node: NodeId,
        /// Block being recreated.
        block: Block,
        /// The new serial now in force at this node.
        serial: u32,
        /// Tokens the node destroyed (0 if it held none).
        discarded: u32,
        /// Whether the destroyed holding included the owner token.
        owner: bool,
    },
    /// The token authority (home memory controller) began recreating a
    /// block's tokens under a new serial.
    RecreationStart {
        /// Block being recreated.
        block: Block,
        /// The serial being brought into force.
        serial: u32,
    },
    /// The token authority finished a recreation: all invalidation acks
    /// arrived, the drain window elapsed, and the full token set (plus
    /// owner) was minted afresh at memory under `serial`.
    RecreationDone {
        /// Recreated block.
        block: Block,
        /// The serial the new tokens carry.
        serial: u32,
    },
}

impl TraceEvent {
    /// The block this event concerns, if it concerns exactly one.
    pub fn block(&self) -> Option<Block> {
        match *self {
            TraceEvent::MsgSend { block, .. } | TraceEvent::Fault { block, .. } => block,
            TraceEvent::SeqIssue { block, .. }
            | TraceEvent::SeqCommit { block, .. }
            | TraceEvent::TokensMoved { block, .. }
            | TraceEvent::PersistentActivate { block, .. }
            | TraceEvent::PersistentDeactivate { block, .. }
            | TraceEvent::CacheFill { block, .. }
            | TraceEvent::CacheEvict { block, .. }
            | TraceEvent::TokensDelivered { block, .. }
            | TraceEvent::AccessDone { block, .. }
            | TraceEvent::TableApply { block, .. }
            | TraceEvent::ArbRequest { block, .. }
            | TraceEvent::ArbDone { block, .. }
            | TraceEvent::MissCommit { block, .. }
            | TraceEvent::TokenLost { block, .. }
            | TraceEvent::StaleDiscard { block, .. }
            | TraceEvent::EpochInval { block, .. }
            | TraceEvent::RecreationStart { block, .. }
            | TraceEvent::RecreationDone { block, .. } => Some(block),
        }
    }

    /// Short kind label for timelines and Chrome event names.
    pub fn kind_label(&self) -> &'static str {
        match self {
            TraceEvent::MsgSend { .. } => "msg",
            TraceEvent::Fault { .. } => "fault",
            TraceEvent::SeqIssue { .. } => "seq.issue",
            TraceEvent::SeqCommit { .. } => "seq.commit",
            TraceEvent::TokensMoved { .. } => "tokens",
            TraceEvent::PersistentActivate { .. } => "persistent.activate",
            TraceEvent::PersistentDeactivate { .. } => "persistent.deactivate",
            TraceEvent::CacheFill { .. } => "cache.fill",
            TraceEvent::CacheEvict { .. } => "cache.evict",
            TraceEvent::TokensDelivered { .. } => "tokens.delivered",
            TraceEvent::AccessDone { .. } => "access.done",
            TraceEvent::TableApply { .. } => "table.apply",
            TraceEvent::ArbRequest { .. } => "arb.request",
            TraceEvent::ArbDone { .. } => "arb.done",
            TraceEvent::MissCommit { .. } => "miss.commit",
            TraceEvent::TokenLost { .. } => "tokens.lost",
            TraceEvent::StaleDiscard { .. } => "tokens.stale",
            TraceEvent::EpochInval { .. } => "recreate.inval",
            TraceEvent::RecreationStart { .. } => "recreate.start",
            TraceEvent::RecreationDone { .. } => "recreate.done",
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TraceEvent::MsgSend {
                src,
                dst,
                class,
                tier,
                bytes,
                block,
                arrive,
            } => {
                write!(
                    f,
                    "msg {} n{}->n{} {}B on {} arrive {}",
                    class.label(),
                    src.0,
                    dst.0,
                    bytes,
                    tier.label(),
                    arrive
                )?;
                if let Some(b) = block {
                    write!(f, " block {b:?}")?;
                }
                Ok(())
            }
            TraceEvent::Fault {
                kind,
                class,
                tier,
                block,
            } => {
                write!(
                    f,
                    "fault {} {} on {}",
                    kind.label(),
                    class.label(),
                    tier.label()
                )?;
                if let Some(b) = block {
                    write!(f, " block {b:?}")?;
                }
                Ok(())
            }
            TraceEvent::SeqIssue { proc, block, kind } => {
                write!(f, "seq.issue p{} {kind:?} {block:?}", proc.0)
            }
            TraceEvent::SeqCommit { proc, block, kind } => {
                write!(f, "seq.commit p{} {kind:?} {block:?}", proc.0)
            }
            TraceEvent::TokensMoved {
                block,
                from,
                to,
                count,
                owner,
            } => write!(
                f,
                "tokens {block:?} n{}->n{} count {count}{}",
                from.0,
                to.0,
                if owner { "+owner" } else { "" }
            ),
            TraceEvent::PersistentActivate { block, proc } => {
                write!(f, "persistent.activate {block:?} for p{}", proc.0)
            }
            TraceEvent::PersistentDeactivate { block, proc } => {
                write!(f, "persistent.deactivate {block:?} for p{}", proc.0)
            }
            TraceEvent::CacheFill { node, block, state } => {
                write!(f, "cache.fill n{} {block:?} -> {state}", node.0)
            }
            TraceEvent::CacheEvict { node, block, state } => {
                write!(f, "cache.evict n{} {block:?} was {state}", node.0)
            }
            TraceEvent::TokensDelivered {
                block,
                node,
                count,
                owner,
            } => write!(
                f,
                "tokens.delivered {block:?} at n{} count {count}{}",
                node.0,
                if owner { "+owner" } else { "" }
            ),
            TraceEvent::AccessDone {
                node,
                proc,
                block,
                kind,
            } => write!(
                f,
                "access.done p{} {kind:?} {block:?} at n{}",
                proc.0, node.0
            ),
            TraceEvent::TableApply {
                block,
                node,
                proc,
                activate,
                arb,
            } => write!(
                f,
                "table.apply n{} {}{} p{} {block:?}",
                node.0,
                if arb { "arb-" } else { "" },
                if activate { "activate" } else { "deactivate" },
                proc.0
            ),
            TraceEvent::ArbRequest { block, proc } => {
                write!(f, "arb.request {block:?} p{}", proc.0)
            }
            TraceEvent::ArbDone { block, proc } => {
                write!(f, "arb.done {block:?} p{}", proc.0)
            }
            TraceEvent::MissCommit {
                proc,
                block,
                kind,
                total,
                parts,
            } => write!(
                f,
                "miss.commit p{} {kind:?} {block:?} total {total} [{parts}]",
                proc.0
            ),
            TraceEvent::TokenLost {
                block,
                to,
                count,
                owner,
                serial,
            } => write!(
                f,
                "tokens.lost {block:?} bound for n{} count {count}{} serial {serial}",
                to.0,
                if owner { "+owner" } else { "" }
            ),
            TraceEvent::StaleDiscard {
                node,
                block,
                count,
                owner,
                serial,
            } => write!(
                f,
                "tokens.stale n{} {block:?} count {count}{} serial {serial}",
                node.0,
                if owner { "+owner" } else { "" }
            ),
            TraceEvent::EpochInval {
                node,
                block,
                serial,
                discarded,
                owner,
            } => write!(
                f,
                "recreate.inval n{} {block:?} -> serial {serial} discarded {discarded}{}",
                node.0,
                if owner { "+owner" } else { "" }
            ),
            TraceEvent::RecreationStart { block, serial } => {
                write!(f, "recreate.start {block:?} serial {serial}")
            }
            TraceEvent::RecreationDone { block, serial } => {
                write!(f, "recreate.done {block:?} serial {serial}")
            }
        }
    }
}
