//! Trace sinks: where emitted events go.
//!
//! A run owns at most one sink, shared by every component through a
//! [`TraceHandle`] (`Rc<RefCell<..>>` — a simulation is single-threaded;
//! the sweep engine parallelises across runs, never within one). When no
//! sink is installed the per-component handle is `None` and emission
//! sites skip even constructing the event.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::rc::Rc;

use tokencmp_sim::Time;

use tokencmp_proto::Block;

use crate::event::TraceEvent;

/// A recorded event: global sequence number, emission time, payload.
/// Sequence numbers are assigned by the sink and never reused, so a
/// bounded recorder can report exactly how many events it evicted.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TraceRecord {
    /// Monotonic per-sink sequence number (0-based).
    pub seq: u64,
    /// Simulation time at emission.
    pub at: Time,
    /// The event.
    pub ev: TraceEvent,
}

/// Consumes trace events during a run.
pub trait TraceSink {
    /// Records one event emitted at simulation time `at`.
    fn record(&mut self, at: Time, ev: TraceEvent);

    /// Renders the sink's retained tail for a stall/panic diagnostic,
    /// if it retains one (the flight-recorder contract). `None` means
    /// this sink keeps no replayable history.
    fn flight_dump(&self) -> Option<String> {
        None
    }

    /// The sink's conformance verdict, if it is a checking sink (the
    /// refinement-checker contract — see `tokencmp-conform`). `None`
    /// means this sink performs no checking; `Some(Err(report))`
    /// carries a rendered violation report. Queried by the system
    /// runner at end of run when online conformance is enabled.
    fn conformance(&self) -> Option<Result<(), String>> {
        None
    }
}

/// Shared handle to a run's sink.
pub type TraceHandle = Rc<RefCell<dyn TraceSink>>;

/// The bounded ring-buffer recorder — the default sink and the flight
/// recorder. Keeps the most recent `capacity` events (older ones are
/// evicted but still counted), optionally filtered to a single block.
///
/// # Example
///
/// ```
/// use std::{cell::RefCell, rc::Rc};
/// use tokencmp_sim::Time;
/// use tokencmp_proto::{Block, ProcId, AccessKind};
/// use tokencmp_trace::{RingRecorder, TraceEvent, TraceSink};
///
/// let mut r = RingRecorder::new(2);
/// for i in 0..3 {
///     r.record(Time::from_ns(i), TraceEvent::SeqIssue {
///         proc: ProcId(0), block: Block(i), kind: AccessKind::Load,
///     });
/// }
/// assert_eq!(r.len(), 2); // bounded
/// assert_eq!(r.evicted(), 1);
/// assert_eq!(r.records()[0].seq, 1); // tail survives, head evicted
/// ```
#[derive(Debug)]
pub struct RingRecorder {
    buf: VecDeque<TraceRecord>,
    capacity: usize,
    next_seq: u64,
    evicted: u64,
    filtered: u64,
    block_filter: Option<Block>,
}

impl RingRecorder {
    /// Capacity used by [`RingRecorder::default`] and the system wiring
    /// when the caller does not choose one.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// How many tail events a [`flight_dump`](TraceSink::flight_dump)
    /// renders (the ring may retain more; a dump is for human eyes).
    pub const DUMP_TAIL: usize = 48;

    /// Creates a recorder keeping the last `capacity` events (min 1).
    pub fn new(capacity: usize) -> RingRecorder {
        RingRecorder {
            buf: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            next_seq: 0,
            evicted: 0,
            filtered: 0,
            block_filter: None,
        }
    }

    /// Restricts recording to events about `block` (events that concern
    /// no single block are also dropped). This is the structured
    /// replacement for the legacy per-block `eprintln!` filter.
    pub fn with_block_filter(mut self, block: Block) -> RingRecorder {
        self.block_filter = Some(block);
        self
    }

    /// Applies the process-wide `TOKENCMP_TRACE_BLOCK` filter, if set
    /// (see [`tokencmp_proto::trace_block`]).
    pub fn with_env_filter(self) -> RingRecorder {
        match tokencmp_proto::trace_block_filter() {
            Some(b) => self.with_block_filter(Block(b)),
            None => self,
        }
    }

    /// Wraps the recorder into the shared handle the system wiring
    /// installs into components.
    pub fn into_handle(self) -> Rc<RefCell<RingRecorder>> {
        Rc::new(RefCell::new(self))
    }

    /// Retained records, oldest first.
    pub fn records(&self) -> &VecDeque<TraceRecord> {
        &self.buf
    }

    /// Retained records as a fresh contiguous vector, oldest first.
    pub fn to_vec(&self) -> Vec<TraceRecord> {
        self.buf.iter().copied().collect()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted by the capacity bound (recorded, then displaced).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Events rejected by the block filter (never recorded).
    pub fn filtered(&self) -> u64 {
        self.filtered
    }

    /// Total events that passed the filter (retained + evicted).
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }
}

impl Default for RingRecorder {
    fn default() -> Self {
        RingRecorder::new(Self::DEFAULT_CAPACITY)
    }
}

impl TraceSink for RingRecorder {
    fn record(&mut self, at: Time, ev: TraceEvent) {
        if let Some(want) = self.block_filter {
            if ev.block() != Some(want) {
                self.filtered += 1;
                return;
            }
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.evicted += 1;
        }
        self.buf.push_back(TraceRecord {
            seq: self.next_seq,
            at,
            ev,
        });
        self.next_seq += 1;
    }

    fn flight_dump(&self) -> Option<String> {
        if self.buf.is_empty() {
            return None;
        }
        let tail = self.buf.len().min(Self::DUMP_TAIL);
        let skipped = self.recorded() - tail as u64;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "flight recorder: last {tail} of {} trace events{}",
            self.recorded(),
            if skipped > 0 {
                format!(" ({skipped} earlier not shown)")
            } else {
                String::new()
            }
        );
        for r in self.buf.iter().skip(self.buf.len() - tail) {
            let _ = writeln!(out, "  #{:<6} @{:>12} {}", r.seq, format!("{}", r.at), r.ev);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tokencmp_proto::{AccessKind, ProcId};

    fn ev(b: u64) -> TraceEvent {
        TraceEvent::SeqIssue {
            proc: ProcId(1),
            block: Block(b),
            kind: AccessKind::Store,
        }
    }

    #[test]
    fn ring_bounds_and_counts() {
        let mut r = RingRecorder::new(3);
        for i in 0..10 {
            r.record(Time::from_ns(i), ev(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.evicted(), 7);
        assert_eq!(r.recorded(), 10);
        let seqs: Vec<u64> = r.records().iter().map(|x| x.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9]);
    }

    #[test]
    fn block_filter_drops_other_blocks() {
        let mut r = RingRecorder::new(8).with_block_filter(Block(5));
        r.record(Time::ZERO, ev(4));
        r.record(Time::ZERO, ev(5));
        r.record(Time::ZERO, ev(6));
        assert_eq!(r.len(), 1);
        assert_eq!(r.filtered(), 2);
        assert_eq!(r.records()[0].ev.block(), Some(Block(5)));
    }

    #[test]
    fn flight_dump_shows_tail_with_counts() {
        let mut r = RingRecorder::new(4);
        assert!(r.flight_dump().is_none());
        for i in 0..100 {
            r.record(Time::from_ns(i), ev(i));
        }
        let dump = r.flight_dump().unwrap();
        assert!(dump.contains("flight recorder: last 4 of 100"));
        assert!(dump.contains("96 earlier not shown"));
        assert!(dump.contains("#99"));
        assert!(!dump.contains("#95 "));
    }
}
