//! Per-transaction miss-latency attribution.
//!
//! Every committed miss is decomposed into segments that sum *exactly*
//! (integer picoseconds) to the end-to-end latency, so per-segment
//! histograms explain the runtime decomposition the paper's Figure 6
//! reports rather than merely correlating with it.

use std::fmt;

use tokencmp_sim::{Histogram, Stats};

/// An attribution segment of one miss.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Segment {
    /// Time attributed to on-chip transfer (the supplier was on-chip, or
    /// the whole transaction stayed within the CMP).
    Intra,
    /// Time attributed to a chip-to-chip transfer.
    Inter,
    /// Time attributed to a memory-controller round trip.
    Mem,
    /// Time spent in timed-out transient attempts before the attempt
    /// that succeeded (TokenCMP retry path).
    Retry,
    /// Time spent waiting under an active persistent request.
    PersistentWait,
    /// Time spent in token-loss recovery: from the first recreation
    /// request the starving L1 sent until the miss completed (§15).
    /// Zero on every lossless run.
    Recovery,
}

impl Segment {
    /// All segments, in canonical (export and rendering) order.
    pub const ALL: [Segment; 6] = [
        Segment::Intra,
        Segment::Inter,
        Segment::Mem,
        Segment::Retry,
        Segment::PersistentWait,
        Segment::Recovery,
    ];

    /// Stable lowercase key, used in counter names and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Segment::Intra => "intra",
            Segment::Inter => "inter",
            Segment::Mem => "mem",
            Segment::Retry => "retry",
            Segment::PersistentWait => "persistent_wait",
            Segment::Recovery => "recovery",
        }
    }

    /// Dense index into per-segment arrays.
    pub fn index(self) -> usize {
        match self {
            Segment::Intra => 0,
            Segment::Inter => 1,
            Segment::Mem => 2,
            Segment::Retry => 3,
            Segment::PersistentWait => 4,
            Segment::Recovery => 5,
        }
    }
}

/// One miss's segment durations, in picoseconds. The invariant — parts
/// sum to the miss's total latency — is established by the L1 controllers
/// and checked when recording.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SegmentParts {
    /// Intra-CMP transfer picoseconds.
    pub intra: u64,
    /// Inter-CMP transfer picoseconds.
    pub inter: u64,
    /// Memory round-trip picoseconds.
    pub mem: u64,
    /// Retry/timeout picoseconds.
    pub retry: u64,
    /// Persistent-wait picoseconds.
    pub persistent_wait: u64,
    /// Token-loss recovery picoseconds.
    pub recovery: u64,
}

impl SegmentParts {
    /// The segment value for `s`.
    pub fn get(&self, s: Segment) -> u64 {
        match s {
            Segment::Intra => self.intra,
            Segment::Inter => self.inter,
            Segment::Mem => self.mem,
            Segment::Retry => self.retry,
            Segment::PersistentWait => self.persistent_wait,
            Segment::Recovery => self.recovery,
        }
    }

    /// Adds `ps` to segment `s`.
    pub fn add(&mut self, s: Segment, ps: u64) {
        match s {
            Segment::Intra => self.intra += ps,
            Segment::Inter => self.inter += ps,
            Segment::Mem => self.mem += ps,
            Segment::Retry => self.retry += ps,
            Segment::PersistentWait => self.persistent_wait += ps,
            Segment::Recovery => self.recovery += ps,
        }
    }

    /// Sum of all segments.
    pub fn total(&self) -> u64 {
        Segment::ALL.iter().map(|&s| self.get(s)).sum()
    }
}

impl fmt::Display for SegmentParts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for s in Segment::ALL {
            let v = self.get(s);
            if v == 0 {
                continue;
            }
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{}={}ps", s.label(), v)?;
            first = false;
        }
        if first {
            write!(f, "zero")?;
        }
        Ok(())
    }
}

/// Histograms of total miss latency and of each attribution segment.
///
/// Lives in each L1 controller's stats (attribution is always on — it is
/// pure arithmetic on MSHR timestamps, so it cannot perturb simulation),
/// merged across controllers at end of run, and exported into the run's
/// counter registry for sweep records and bench tables.
#[derive(Clone, Debug, Default)]
pub struct LatencyBreakdown {
    total: Histogram,
    segs: [Histogram; 6],
}

impl LatencyBreakdown {
    /// Creates an empty breakdown.
    pub fn new() -> LatencyBreakdown {
        LatencyBreakdown::default()
    }

    /// Records one committed miss.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `parts` does not sum to `total_ps` —
    /// the attribution invariant every caller must establish.
    pub fn record(&mut self, total_ps: u64, parts: SegmentParts) {
        debug_assert_eq!(
            parts.total(),
            total_ps,
            "attribution segments must sum to the miss latency"
        );
        self.total.record(total_ps);
        for s in Segment::ALL {
            self.segs[s.index()].record(parts.get(s));
        }
    }

    /// Number of recorded misses.
    pub fn count(&self) -> u64 {
        self.total.count()
    }

    /// The total-latency histogram.
    pub fn total(&self) -> &Histogram {
        &self.total
    }

    /// The histogram for segment `s`.
    pub fn segment(&self, s: Segment) -> &Histogram {
        &self.segs[s.index()]
    }

    /// Folds `other` into `self` (per-histogram merge).
    pub fn merge(&mut self, other: &LatencyBreakdown) {
        self.total.merge(&other.total);
        for s in Segment::ALL {
            self.segs[s.index()].merge(&other.segs[s.index()]);
        }
    }

    /// Exports the breakdown into a counter registry:
    /// `lat.total.{count,ps_sum,p50_ps,p99_ps,max_ps}` plus
    /// `lat.<segment>.ps_sum` for each segment. No keys are written for
    /// an empty breakdown (e.g. a run with zero misses), and the
    /// `lat.recovery.ps_sum` key appears only when recovery time was
    /// actually attributed, so lossless runs keep their historical key
    /// set bit-identically.
    pub fn export_into(&self, stats: &mut Stats) {
        if self.total.count() == 0 {
            return;
        }
        stats.add("lat.total.count", self.total.count());
        stats.add("lat.total.ps_sum", self.total.sum() as u64);
        stats.add(
            "lat.total.p50_ps",
            self.total.quantile_upper_bound(0.50).unwrap_or(0),
        );
        stats.add(
            "lat.total.p99_ps",
            self.total.quantile_upper_bound(0.99).unwrap_or(0),
        );
        stats.add("lat.total.max_ps", self.total.max().unwrap_or(0));
        for s in Segment::ALL {
            let sum = self.segs[s.index()].sum() as u64;
            if s == Segment::Recovery && sum == 0 {
                continue;
            }
            stats.add(&format!("lat.{}.ps_sum", s.label()), sum);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parts_sum_and_accessors() {
        let mut p = SegmentParts::default();
        p.add(Segment::Inter, 100);
        p.add(Segment::Retry, 50);
        p.add(Segment::Inter, 10);
        assert_eq!(p.get(Segment::Inter), 110);
        assert_eq!(p.total(), 160);
        assert_eq!(format!("{p}"), "inter=110ps retry=50ps");
        assert_eq!(format!("{}", SegmentParts::default()), "zero");
    }

    #[test]
    fn record_and_export_round_trip() {
        let mut l = LatencyBreakdown::new();
        l.record(
            150,
            SegmentParts {
                inter: 100,
                retry: 50,
                ..SegmentParts::default()
            },
        );
        l.record(
            40,
            SegmentParts {
                intra: 40,
                ..SegmentParts::default()
            },
        );
        assert_eq!(l.count(), 2);
        let mut s = Stats::new();
        l.export_into(&mut s);
        assert_eq!(s.counter("lat.total.count"), 2);
        assert_eq!(s.counter("lat.total.ps_sum"), 190);
        assert_eq!(s.counter("lat.inter.ps_sum"), 100);
        assert_eq!(s.counter("lat.retry.ps_sum"), 50);
        assert_eq!(s.counter("lat.intra.ps_sum"), 40);
        assert_eq!(s.counter("lat.mem.ps_sum"), 0);
        // segment sums account for every picosecond of total
        let seg_sum: u64 = Segment::ALL
            .iter()
            .map(|s2| l.segment(*s2).sum() as u64)
            .sum();
        assert_eq!(seg_sum, l.total().sum() as u64);
        assert!(s.counter("lat.total.p99_ps") >= s.counter("lat.total.p50_ps"));
    }

    #[test]
    fn recovery_key_exports_only_when_nonzero() {
        let mut l = LatencyBreakdown::new();
        l.record(
            40,
            SegmentParts {
                intra: 40,
                ..SegmentParts::default()
            },
        );
        let mut s = Stats::new();
        l.export_into(&mut s);
        assert!(!s.counters().any(|(k, _)| k == "lat.recovery.ps_sum"));

        l.record(
            90,
            SegmentParts {
                intra: 30,
                recovery: 60,
                ..SegmentParts::default()
            },
        );
        let mut s = Stats::new();
        l.export_into(&mut s);
        assert_eq!(s.counter("lat.recovery.ps_sum"), 60);
    }

    #[test]
    fn export_of_empty_breakdown_writes_nothing() {
        let mut s = Stats::new();
        LatencyBreakdown::new().export_into(&mut s);
        assert_eq!(s.counters().count(), 0);
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = LatencyBreakdown::new();
        let mut b = LatencyBreakdown::new();
        let mut both = LatencyBreakdown::new();
        let p1 = SegmentParts {
            mem: 300,
            retry: 20,
            ..SegmentParts::default()
        };
        let p2 = SegmentParts {
            intra: 75,
            ..SegmentParts::default()
        };
        a.record(320, p1);
        both.record(320, p1);
        b.record(75, p2);
        both.record(75, p2);
        a.merge(&b);
        let (mut sa, mut sb) = (Stats::new(), Stats::new());
        a.export_into(&mut sa);
        both.export_into(&mut sb);
        let dump = |s: &Stats| -> Vec<(String, u64)> {
            s.counters().map(|(k, v)| (k.to_string(), v)).collect()
        };
        assert_eq!(dump(&sa), dump(&sb));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "sum to the miss latency")]
    fn record_rejects_inconsistent_parts() {
        LatencyBreakdown::new().record(100, SegmentParts::default());
    }
}
