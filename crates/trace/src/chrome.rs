//! Chrome `trace_event` / Perfetto export and the textual per-block
//! timeline.
//!
//! The JSON emitted here loads directly in `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev): committed misses become complete
//! (`"X"`) spans — one parent span per transaction plus one child span
//! per non-zero attribution segment, laid end-to-end so the children
//! tile the parent exactly — and every other event becomes a thread-
//! scoped instant (`"i"`). Timestamps are microseconds (the format's
//! unit); simulation picoseconds survive exactly in each event's `args`.

use std::fmt::Write as _;

use tokencmp_sim::NodeId;

use tokencmp_proto::Block;

use crate::event::TraceEvent;
use crate::latency::Segment;
use crate::sink::TraceRecord;
use crate::timeseries::TimeSeries;

/// Microsecond timestamp string for a picosecond instant.
fn us(ps: u64) -> String {
    format!("{:.6}", ps as f64 / 1e6)
}

/// Appends one Chrome event: a complete (`"X"`) span when `dur_ps` is
/// present, a thread-scoped instant (`"i"`) otherwise.
fn push_event(
    out: &mut String,
    first: &mut bool,
    name: &str,
    ts_ps: u64,
    dur_ps: Option<u64>,
    tid: u64,
    args: &[(&str, String)],
) {
    if !*first {
        out.push(',');
    }
    *first = false;
    let ph = if dur_ps.is_some() { "X" } else { "i" };
    let _ = write!(
        out,
        "\n  {{\"name\":\"{name}\",\"ph\":\"{ph}\",\"ts\":{},\"pid\":0,\"tid\":{tid}",
        us(ts_ps)
    );
    if let Some(d) = dur_ps {
        let _ = write!(out, ",\"dur\":{}", us(d));
    } else {
        out.push_str(",\"s\":\"t\"");
    }
    if !args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (k, v)) in args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":{v}");
        }
        out.push('}');
    }
    out.push('}');
}

/// The thread lane an event renders on: the acting processor for
/// sequencer/miss events, the acting node otherwise.
fn lane(ev: &TraceEvent) -> u64 {
    match *ev {
        TraceEvent::SeqIssue { proc, .. }
        | TraceEvent::SeqCommit { proc, .. }
        | TraceEvent::MissCommit { proc, .. }
        | TraceEvent::PersistentActivate { proc, .. }
        | TraceEvent::PersistentDeactivate { proc, .. }
        | TraceEvent::ArbRequest { proc, .. }
        | TraceEvent::ArbDone { proc, .. } => proc.0 as u64,
        TraceEvent::MsgSend { src: NodeId(n), .. }
        | TraceEvent::TokensMoved {
            from: NodeId(n), ..
        }
        | TraceEvent::CacheFill {
            node: NodeId(n), ..
        }
        | TraceEvent::CacheEvict {
            node: NodeId(n), ..
        }
        | TraceEvent::TokensDelivered {
            node: NodeId(n), ..
        }
        | TraceEvent::AccessDone {
            node: NodeId(n), ..
        }
        | TraceEvent::TableApply {
            node: NodeId(n), ..
        }
        | TraceEvent::StaleDiscard {
            node: NodeId(n), ..
        }
        | TraceEvent::EpochInval {
            node: NodeId(n), ..
        } => n as u64,
        TraceEvent::TokenLost { to: NodeId(n), .. } => n as u64,
        TraceEvent::Fault { .. }
        | TraceEvent::RecreationStart { .. }
        | TraceEvent::RecreationDone { .. } => 0,
    }
}

/// Renders records as a Chrome `trace_event` JSON document
/// (`{"displayTimeUnit":"ns","traceEvents":[...]}`).
///
/// Every [`MissCommit`](TraceEvent::MissCommit) becomes a parent `"X"`
/// span of the full miss latency whose `args` carry the exact picosecond
/// attribution, tiled by one child span per non-zero segment in
/// transaction order (retry, then transfer, then persistent wait) — the
/// children's durations sum to the parent's by construction.
pub fn chrome_trace_json(records: &[TraceRecord]) -> String {
    chrome_trace_with_counters(records, None)
}

/// [`chrome_trace_json`] plus Perfetto **counter tracks**: each gauge
/// and rate key of `series` becomes a `"C"`-phase counter sampled at
/// the series' period, so one trace file shows event spans and state
/// trends (queue depth, token dispersion, persistent pressure, ...)
/// on a shared sim-time axis.
pub fn chrome_trace_with_counters(records: &[TraceRecord], series: Option<&TimeSeries>) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    if let Some(ts) = series {
        for s in &ts.samples {
            for (k, &v) in &s.gauges {
                push_counter(&mut out, &mut first, k, s.at_ps, v.to_string());
            }
            for (k, &v) in &s.rates {
                push_counter(&mut out, &mut first, k, s.at_ps, format!("{v:.3}"));
            }
        }
    }
    // Children tile the parent in the order the transaction experienced
    // them: timed-out attempts, then the winning transfer, then any
    // persistent wait.
    const SPAN_ORDER: [Segment; 6] = [
        Segment::Retry,
        Segment::Intra,
        Segment::Inter,
        Segment::Mem,
        Segment::PersistentWait,
        Segment::Recovery,
    ];
    for r in records {
        match r.ev {
            TraceEvent::MissCommit {
                proc,
                block,
                kind,
                total,
                parts,
            } => {
                let start = r.at.as_ps() - total.as_ps();
                let mut args: Vec<(&str, String)> = vec![
                    ("block", block.0.to_string()),
                    ("seq", r.seq.to_string()),
                    ("total_ps", total.as_ps().to_string()),
                ];
                for s in Segment::ALL {
                    args.push((seg_arg(s), parts.get(s).to_string()));
                }
                push_event(
                    &mut out,
                    &mut first,
                    &format!("miss {kind:?} block {}", block.0),
                    start,
                    Some(total.as_ps()),
                    proc.0 as u64,
                    &args,
                );
                let mut cursor = start;
                for s in SPAN_ORDER {
                    let d = parts.get(s);
                    if d == 0 {
                        continue;
                    }
                    push_event(
                        &mut out,
                        &mut first,
                        s.label(),
                        cursor,
                        Some(d),
                        proc.0 as u64,
                        &[("ps", d.to_string())],
                    );
                    cursor += d;
                }
            }
            ref ev => {
                let mut args: Vec<(&str, String)> = vec![("seq", r.seq.to_string())];
                if let Some(b) = ev.block() {
                    args.push(("block", b.0.to_string()));
                }
                push_event(
                    &mut out,
                    &mut first,
                    &format!("{ev}"),
                    r.at.as_ps(),
                    None,
                    lane(ev),
                    &args,
                );
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Appends one Perfetto counter (`"C"`) sample.
fn push_counter(out: &mut String, first: &mut bool, name: &str, ts_ps: u64, value: String) {
    if !*first {
        out.push(',');
    }
    *first = false;
    let _ = write!(
        out,
        "\n  {{\"name\":\"{name}\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\"args\":{{\"value\":{value}}}}}",
        us(ts_ps)
    );
}

fn seg_arg(s: Segment) -> &'static str {
    match s {
        Segment::Intra => "intra_ps",
        Segment::Inter => "inter_ps",
        Segment::Mem => "mem_ps",
        Segment::Retry => "retry_ps",
        Segment::PersistentWait => "persistent_wait_ps",
        Segment::Recovery => "recovery_ps",
    }
}

/// Renders a human-readable timeline of the records touching `block`
/// (all records if `block` is `None`) — the structured successor of the
/// legacy `TOKENCMP_TRACE_BLOCK` `eprintln!` hooks.
pub fn block_timeline(records: &[TraceRecord], block: Option<Block>) -> String {
    let mut out = String::new();
    for r in records {
        if let Some(want) = block {
            if r.ev.block() != Some(want) {
                continue;
            }
        }
        let _ = writeln!(out, "#{:<6} @{:>12} {}", r.seq, format!("{}", r.at), r.ev);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::SegmentParts;
    use tokencmp_proto::{AccessKind, ProcId};
    use tokencmp_sim::{Dur, Time};

    fn commit(at_ns: u64, total_ps: u64, parts: SegmentParts) -> TraceRecord {
        TraceRecord {
            seq: 0,
            at: Time::from_ns(at_ns),
            ev: TraceEvent::MissCommit {
                proc: ProcId(2),
                block: Block(9),
                kind: AccessKind::Load,
                total: Dur::from_ps(total_ps),
                parts,
            },
        }
    }

    #[test]
    fn miss_children_tile_the_parent() {
        let parts = SegmentParts {
            retry: 1_000,
            inter: 3_000,
            ..SegmentParts::default()
        };
        let json = chrome_trace_json(&[commit(10, 4_000, parts)]);
        // parent: starts at 10ns - 4ns = 6ns = 6.0 µs·1e-3 → 0.006 µs·...
        // (10_000ps - 4_000ps = 6_000ps = 0.006 µs)
        assert!(json.contains("\"ts\":0.006000,\"pid\":0,\"tid\":2,\"dur\":0.004000"));
        // retry child then inter child, end-to-end
        assert!(json.contains("\"name\":\"retry\",\"ph\":\"X\",\"ts\":0.006000"));
        assert!(json.contains("\"name\":\"inter\",\"ph\":\"X\",\"ts\":0.007000"));
        assert!(json.contains("\"total_ps\":4000"));
        assert!(json.contains("\"retry_ps\":1000"));
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn instants_and_timeline_filter() {
        let recs = [
            TraceRecord {
                seq: 0,
                at: Time::from_ns(1),
                ev: TraceEvent::SeqIssue {
                    proc: ProcId(0),
                    block: Block(4),
                    kind: AccessKind::Store,
                },
            },
            TraceRecord {
                seq: 1,
                at: Time::from_ns(2),
                ev: TraceEvent::SeqIssue {
                    proc: ProcId(1),
                    block: Block(5),
                    kind: AccessKind::Load,
                },
            },
        ];
        let json = chrome_trace_json(&recs);
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"s\":\"t\""));
        let tl = block_timeline(&recs, Some(Block(5)));
        assert!(tl.contains("B0x5") && !tl.contains("B0x4"));
        let all = block_timeline(&recs, None);
        assert_eq!(all.lines().count(), 2);
    }

    #[test]
    fn counter_tracks_merge_into_the_span_export() {
        use std::collections::BTreeMap;
        let mut ts = TimeSeries::new(Dur::from_ns(10), "wheel");
        for i in 0..2u64 {
            let mut gauges = BTreeMap::new();
            gauges.insert("kernel.queue_depth".to_string(), 3 + i);
            let mut rates = BTreeMap::new();
            rates.insert("rate.misses".to_string(), 1.5);
            ts.push(Time::from_ns(10 * i), gauges, rates);
        }
        let recs = [commit(30, 4_000, SegmentParts::default())];
        let json = chrome_trace_with_counters(&recs, Some(&ts));
        // Counters at 0 and 10 ns (0.000 / 0.010 µs)...
        assert!(json.contains(
            "{\"name\":\"kernel.queue_depth\",\"ph\":\"C\",\"ts\":0.000000,\"pid\":0,\"args\":{\"value\":3}}"
        ));
        assert!(json.contains("\"ts\":0.010000,\"pid\":0,\"args\":{\"value\":4}"));
        assert!(json.contains("{\"name\":\"rate.misses\",\"ph\":\"C\""));
        assert!(json.contains("\"value\":1.500"));
        // ...alongside the ordinary span export, in one valid document.
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        // Without a series the plain export is unchanged.
        assert_eq!(
            chrome_trace_json(&recs),
            chrome_trace_with_counters(&recs, None)
        );
    }
}
