//! The sim-time telemetry time series: periodic gauge snapshots.
//!
//! The event-level machinery in this crate answers "what happened";
//! the [`TimeSeries`] answers "how did state *evolve*" — queue depth,
//! in-flight traffic, token dispersion, persistent-table pressure —
//! sampled on a fixed simulated-time period by a kernel monitor (see
//! `tokencmp_sim::KernelMonitor`). Each [`Sample`] carries two maps:
//!
//! * `gauges` — instantaneous integer readings (a census at the sample
//!   instant), keyed by dotted names (see [`keys`]);
//! * `rates` — windowed derivatives of monotone `Stats` counters over
//!   the period ending at the sample, in events per simulated second.
//!
//! Sample times are deterministic (an arithmetic sequence of the
//! period), so two replays of the same seed produce `==` series — a
//! property the telemetry test suite enforces.
//!
//! The series is exported two ways: the serde-free JSON schema
//! `tokencmp-timeseries-v1` (`tokencmp_sweep::report`), and Perfetto
//! counter tracks merged into the span export
//! ([`crate::chrome::chrome_trace_with_counters`]).

use std::collections::BTreeMap;

use tokencmp_sim::{Dur, Time};

/// Schema identifier stamped into the JSON export of a [`TimeSeries`].
pub const TIMESERIES_SCHEMA: &str = "tokencmp-timeseries-v1";

/// Well-known gauge/rate key constants and patterns.
///
/// Keys are dotted paths; a segment in `<angle brackets>` below stands
/// for a family (one key per tier, class, ...). The full registry with
/// descriptions lives in the DESIGN.md counter appendix.
pub mod keys {
    /// Pending events in the active scheduler backend.
    pub const QUEUE_DEPTH: &str = "kernel.queue_depth";
    /// Pending wakeups (self-scheduled, not in-flight messages).
    pub const INFLIGHT_WAKES: &str = "inflight.wakes";
    /// In-flight message census per tier × class:
    /// `inflight.<intra|inter|mem>.<class>`.
    pub const INFLIGHT_PREFIX: &str = "inflight.";
    /// Blocks with at least one token held by a cache.
    pub const TOKEN_BLOCKS: &str = "tokens.blocks";
    /// Total cache holders across those blocks (dispersion numerator).
    pub const TOKEN_HOLDERS_SUM: &str = "tokens.holders_sum";
    /// Most caches holding tokens of any one block (dispersion peak).
    pub const TOKEN_HOLDERS_MAX: &str = "tokens.holders_max";
    /// Blocks whose owner token sits in a cache on its home chip.
    pub const TOKEN_OWNER_INTRA: &str = "tokens.owner_intra";
    /// Blocks whose owner token sits in a cache on a remote chip.
    pub const TOKEN_OWNER_INTER: &str = "tokens.owner_inter";
    /// Blocks whose owner token is at a memory controller.
    pub const TOKEN_OWNER_AT_MEM: &str = "tokens.owner_at_mem";
    /// Active persistent-request entries summed over arbiters' tables.
    pub const PERSISTENT_OCCUPANCY: &str = "persistent.occupancy";
    /// Age of the oldest active persistent request, picoseconds.
    pub const PERSISTENT_MAX_AGE_PS: &str = "persistent.max_age_ps";
    /// Valid L1 lines across all L1 caches.
    pub const OCC_L1_LINES: &str = "occ.l1.lines";
    /// Valid L2 lines across all banks.
    pub const OCC_L2_LINES: &str = "occ.l2.lines";
    /// Token recreations currently in progress at memory controllers.
    pub const RECREATE_ACTIVE: &str = "recreate.active";
    /// Token recreations completed so far (monotone).
    pub const RECREATE_COMPLETED: &str = "recreate.completed";
    /// Sum of per-block recreation serials (epoch activity).
    pub const RECREATE_SERIAL_SUM: &str = "recreate.serial_sum";
    /// Windowed counter rates: `rate.<misses|retries|persistent|faults>`
    /// in events per simulated second.
    pub const RATE_PREFIX: &str = "rate.";
}

/// One periodic snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Nominal sample time, picoseconds of simulated time.
    pub at_ps: u64,
    /// Instantaneous gauges (key → reading).
    pub gauges: BTreeMap<String, u64>,
    /// Windowed rates (key → events per simulated second).
    pub rates: BTreeMap<String, f64>,
}

/// An accumulated run telemetry series.
///
/// Bounded: past [`TimeSeries::MAX_SAMPLES`] retained samples the
/// series *decimates* — drops every other retained sample and doubles
/// its effective period — so arbitrarily long runs keep a bounded,
/// evenly spaced summary. Decimation is a pure function of the push
/// sequence, preserving replay determinism.
#[derive(Clone, Debug, PartialEq)]
pub struct TimeSeries {
    /// Effective sample period, picoseconds (doubles on decimation).
    pub period_ps: u64,
    /// Scheduler backend label the run executed on (`"heap"`/`"wheel"`).
    pub backend: String,
    /// Retained samples, oldest first.
    pub samples: Vec<Sample>,
}

impl TimeSeries {
    /// Retention bound; pushing past it halves the series in place.
    pub const MAX_SAMPLES: usize = 8192;

    /// An empty series with the given nominal period and backend label.
    pub fn new(period: Dur, backend: impl Into<String>) -> TimeSeries {
        TimeSeries {
            period_ps: period.as_ps(),
            backend: backend.into(),
            samples: Vec::new(),
        }
    }

    /// Appends a sample taken at `at`. Samples whose time is not on the
    /// current effective period grid (possible right after a decimation)
    /// are dropped, keeping retained samples evenly spaced.
    pub fn push(&mut self, at: Time, gauges: BTreeMap<String, u64>, rates: BTreeMap<String, f64>) {
        let at_ps = at.as_ps();
        if self.period_ps > 0 && !at_ps.is_multiple_of(self.period_ps) {
            return;
        }
        self.samples.push(Sample {
            at_ps,
            gauges,
            rates,
        });
        if self.samples.len() > Self::MAX_SAMPLES {
            self.decimate();
        }
    }

    /// Drops every other sample (keeping even indices) and doubles the
    /// effective period.
    fn decimate(&mut self) {
        let mut i = 0;
        self.samples.retain(|_| {
            let keep = i % 2 == 0;
            i += 1;
            keep
        });
        self.period_ps = self.period_ps.saturating_mul(2);
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing has been sampled.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// A copy decimated down to at most `max` samples (for embedding a
    /// compact series into sweep `PointRecord`s). Deterministic: applies
    /// the same halving rule as retention.
    pub fn downsample(&self, max: usize) -> TimeSeries {
        let mut out = self.clone();
        let max = max.max(1);
        while out.samples.len() > max {
            out.decimate();
        }
        out
    }

    /// Every gauge/rate key appearing anywhere in the series, sorted.
    pub fn key_union(&self) -> Vec<String> {
        let mut keys: Vec<String> = self
            .samples
            .iter()
            .flat_map(|s| s.gauges.keys().chain(s.rates.keys()).cloned())
            .collect();
        keys.sort();
        keys.dedup();
        keys
    }

    /// Renders the last `n` samples as a compact table for stall
    /// diagnostics: one row per sample, one column per key that is
    /// nonzero anywhere in the tail — a *trajectory* for the watchdog
    /// dump rather than a single instant.
    pub fn tail_table(&self, n: usize) -> String {
        use std::fmt::Write as _;
        let tail_start = self.samples.len().saturating_sub(n);
        let tail = &self.samples[tail_start..];
        let mut out = String::new();
        if tail.is_empty() {
            return out;
        }
        let mut cols: Vec<String> = tail
            .iter()
            .flat_map(|s| {
                s.gauges
                    .iter()
                    .filter(|&(_, &v)| v != 0)
                    .map(|(k, _)| k.clone())
                    .chain(
                        s.rates
                            .iter()
                            .filter(|&(_, &v)| v != 0.0)
                            .map(|(k, _)| k.clone()),
                    )
            })
            .collect();
        cols.sort();
        cols.dedup();
        let _ = writeln!(
            out,
            "telemetry tail: last {} of {} samples (period {} ps)",
            tail.len(),
            self.samples.len(),
            self.period_ps
        );
        for s in tail {
            let _ = write!(out, "  @{:>12}ps", s.at_ps);
            for k in &cols {
                if let Some(v) = s.gauges.get(k) {
                    let _ = write!(out, "  {k}={v}");
                } else if let Some(v) = s.rates.get(k) {
                    let _ = write!(out, "  {k}={v:.1}/s");
                }
            }
            let _ = writeln!(out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(pairs: &[(&str, u64)]) -> BTreeMap<String, u64> {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn push_accumulates_on_the_period_grid() {
        let mut ts = TimeSeries::new(Dur::from_ns(10), "wheel");
        for i in 0..5u64 {
            ts.push(
                Time::from_ns(10 * i),
                g(&[(keys::QUEUE_DEPTH, i)]),
                BTreeMap::new(),
            );
        }
        assert_eq!(ts.len(), 5);
        assert_eq!(ts.samples[3].at_ps, Dur::from_ns(30).as_ps());
        assert_eq!(ts.samples[3].gauges[keys::QUEUE_DEPTH], 3);
    }

    #[test]
    fn decimation_bounds_retention_and_doubles_period() {
        let mut ts = TimeSeries::new(Dur::from_ns(1), "heap");
        let n = TimeSeries::MAX_SAMPLES as u64 + 1;
        for i in 0..n {
            ts.push(Time::from_ns(i), g(&[("x", i)]), BTreeMap::new());
        }
        assert!(ts.len() <= TimeSeries::MAX_SAMPLES);
        assert_eq!(ts.period_ps, Dur::from_ns(2).as_ps());
        // Survivors sit on the new 2 ns grid.
        assert!(ts
            .samples
            .iter()
            .all(|s| s.at_ps.is_multiple_of(ts.period_ps)));
    }

    #[test]
    fn decimation_is_deterministic() {
        let build = || {
            let mut ts = TimeSeries::new(Dur::from_ns(1), "wheel");
            for i in 0..(TimeSeries::MAX_SAMPLES as u64 * 2 + 7) {
                ts.push(Time::from_ns(i), g(&[("x", i * 3)]), BTreeMap::new());
            }
            ts
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn downsample_halves_to_the_requested_bound() {
        let mut ts = TimeSeries::new(Dur::from_ns(1), "wheel");
        for i in 0..1000u64 {
            ts.push(Time::from_ns(i), g(&[("x", i)]), BTreeMap::new());
        }
        let small = ts.downsample(64);
        assert!(small.len() <= 64);
        assert!(small.len() > 16);
        assert_eq!(small.period_ps, Dur::from_ns(16).as_ps());
        // The original is untouched.
        assert_eq!(ts.len(), 1000);
    }

    #[test]
    fn tail_table_shows_trajectory_of_nonzero_keys() {
        let mut ts = TimeSeries::new(Dur::from_ns(5), "heap");
        for i in 0..4u64 {
            let mut rates = BTreeMap::new();
            rates.insert("rate.misses".to_string(), 2.5 * i as f64);
            ts.push(
                Time::from_ns(5 * i),
                g(&[(keys::QUEUE_DEPTH, 7 + i), ("always_zero", 0)]),
                rates,
            );
        }
        let t = ts.tail_table(2);
        assert!(t.contains("last 2 of 4 samples"));
        assert!(t.contains("kernel.queue_depth=10"));
        assert!(t.contains("rate.misses=7.5/s"));
        assert!(!t.contains("always_zero"));
        assert!(!t.contains("kernel.queue_depth=8")); // outside the tail
    }

    #[test]
    fn key_union_spans_all_samples() {
        let mut ts = TimeSeries::new(Dur::from_ns(1), "wheel");
        ts.push(Time::ZERO, g(&[("a", 1)]), BTreeMap::new());
        let mut rates = BTreeMap::new();
        rates.insert("b".to_string(), 1.0);
        ts.push(Time::from_ns(1), BTreeMap::new(), rates);
        assert_eq!(ts.key_union(), ["a", "b"]);
    }
}
