//! Structured observability for the TokenCMP simulator.
//!
//! The paper's evaluation is an exercise in *explaining* protocol
//! behaviour — runtime decomposition (Fig 6), traffic attribution
//! (Fig 7), persistent-request dynamics (Figs 2/3). This crate is the
//! substrate for those explanations:
//!
//! * [`TraceEvent`] / [`TraceSink`] — typed, sim-timestamped protocol
//!   events (message sends per tier/class, token transfers, persistent
//!   activations, cache transitions, sequencer issue/commit, injected
//!   faults), recorded through a sink handle installed per run.
//! * [`RingRecorder`] — the bounded ring-buffer sink, doubling as the
//!   **flight recorder**: when a run stalls or a bench completion assert
//!   fires, the ring's tail is dumped so "Stalled" comes with a
//!   replayable event timeline.
//! * [`LatencyBreakdown`] / [`SegmentParts`] — per-transaction miss
//!   latency attribution: every committed miss is decomposed into
//!   intra-CMP, inter-CMP, memory, retry and persistent-wait segments
//!   that sum exactly (in integer picoseconds) to the measured latency.
//! * [`chrome_trace_json`] — a Chrome `trace_event` / Perfetto exporter,
//!   and [`block_timeline`] — the textual per-block timeline that
//!   subsumes the old `TOKENCMP_TRACE_BLOCK` `eprintln!` hooks (the env
//!   var remains as a filter; see [`tokencmp_proto::trace_block`]).
//!
//! # Zero-cost when disabled
//!
//! Components hold an `Option<TraceHandle>` that defaults to `None`;
//! every emission site is `if let Some(t) = &self.trace { ... }`, so no
//! event is even *constructed* on the disabled path. Tracing never feeds
//! back into simulation state, so a traced run is bit-identical to an
//! untraced one (enforced by `tests/trace_events.rs`).

pub mod chrome;
pub mod event;
pub mod latency;
pub mod profile;
pub mod sink;
pub mod timeseries;

pub use chrome::{block_timeline, chrome_trace_json, chrome_trace_with_counters};
pub use event::{FaultKind, TraceEvent, TraceTier};
pub use latency::{LatencyBreakdown, Segment, SegmentParts};
pub use profile::{HostProfile, HostProfiler, ProfiledSink, ProfilerHandle};
pub use sink::{RingRecorder, TraceHandle, TraceRecord, TraceSink};
pub use timeseries::{Sample, TimeSeries, TIMESERIES_SCHEMA};
