//! Simulated time.
//!
//! All simulated time is kept in integer **picoseconds** so that sub-nanosecond
//! bandwidth terms (a 72-byte message on a 64 GB/s link occupies 1.125 ns)
//! accumulate without rounding error. The paper's Table 3 parameters are all
//! expressible exactly in picoseconds.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute simulated timestamp, in picoseconds since simulation start.
///
/// `Time` is ordered, copyable and cheap; arithmetic with [`Dur`] is the only
/// way to move it.
///
/// # Example
///
/// ```
/// use tokencmp_sim::{Dur, Time};
/// let t = Time::ZERO + Dur::from_ns(2);
/// assert_eq!(t.as_ps(), 2_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A span of simulated time, in picoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(u64);

impl Time {
    /// The start of simulation.
    pub const ZERO: Time = Time(0);

    /// A timestamp far beyond any practical simulation; used as a sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Constructs a timestamp from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Time {
        Time(ps)
    }

    /// Constructs a timestamp from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Time {
        Time(ns * 1_000)
    }

    /// Raw picoseconds since simulation start.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Time since start as (possibly fractional) nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    #[inline]
    pub fn since(self, earlier: Time) -> Dur {
        debug_assert!(earlier.0 <= self.0, "time went backwards");
        Dur(self.0 - earlier.0)
    }

    /// Saturating duration since `earlier` (zero if `earlier` is later).
    #[inline]
    pub fn saturating_since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }

    /// The later of two timestamps.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// `self + d`, or `None` if the sum would pass [`Time::MAX`].
    #[inline]
    pub const fn checked_add(self, d: Dur) -> Option<Time> {
        match self.0.checked_add(d.0) {
            Some(ps) => Some(Time(ps)),
            None => None,
        }
    }

    /// `self + d`, clamped to [`Time::MAX`] on overflow — for horizon
    /// math near the sentinel, where plain `+` would panic (debug) or
    /// wrap (release).
    #[inline]
    pub const fn saturating_add(self, d: Dur) -> Time {
        Time(self.0.saturating_add(d.0))
    }
}

impl Dur {
    /// The zero-length duration.
    pub const ZERO: Dur = Dur(0);

    /// Constructs a duration from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Dur {
        Dur(ps)
    }

    /// Constructs a duration from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Dur {
        Dur(ns * 1_000)
    }

    /// Raw picoseconds.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Duration as (possibly fractional) nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// True if this duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Duration scaled by an integer factor.
    #[inline]
    pub const fn times(self, n: u64) -> Dur {
        Dur(self.0 * n)
    }

    /// The occupancy of `bytes` on a link of `gbytes_per_sec` bandwidth.
    ///
    /// 1 GB/s moves one byte per nanosecond, so the occupancy in picoseconds
    /// is `bytes * 1000 / gbytes_per_sec`, rounded up to a picosecond.
    #[inline]
    pub fn from_bytes_at_gbps(bytes: u64, gbytes_per_sec: u64) -> Dur {
        debug_assert!(gbytes_per_sec > 0);
        Dur((bytes * 1_000).div_ceil(gbytes_per_sec))
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, other: Dur) -> Dur {
        Dur(self.0.max(other.0))
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    #[inline]
    fn add(self, d: Dur) -> Time {
        Time(self.0 + d.0)
    }
}

impl AddAssign<Dur> for Time {
    #[inline]
    fn add_assign(&mut self, d: Dur) {
        self.0 += d.0;
    }
}

impl Add for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, d: Dur) -> Dur {
        Dur(self.0 + d.0)
    }
}

impl AddAssign for Dur {
    #[inline]
    fn add_assign(&mut self, d: Dur) {
        self.0 += d.0;
    }
}

impl Sub for Dur {
    type Output = Dur;
    #[inline]
    fn sub(self, d: Dur) -> Dur {
        debug_assert!(d.0 <= self.0, "negative duration");
        Dur(self.0 - d.0)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ps", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ns", self.as_ns_f64())
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ps", self.0)
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ns", self.as_ns_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_conversion_round_trips() {
        assert_eq!(Time::from_ns(7).as_ps(), 7_000);
        assert_eq!(Dur::from_ns(3).as_ps(), 3_000);
        assert_eq!(Time::from_ns(2).as_ns_f64(), 2.0);
    }

    #[test]
    fn add_and_since() {
        let t0 = Time::from_ns(10);
        let t1 = t0 + Dur::from_ns(5);
        assert_eq!(t1.since(t0), Dur::from_ns(5));
        assert_eq!(t0.saturating_since(t1), Dur::ZERO);
    }

    #[test]
    fn bandwidth_occupancy_matches_table3() {
        // 72-byte data message on a 64 GB/s intra-CMP link: 1.125 ns.
        assert_eq!(Dur::from_bytes_at_gbps(72, 64).as_ps(), 1_125);
        // 72-byte data message on a 16 GB/s inter-CMP link: 4.5 ns.
        assert_eq!(Dur::from_bytes_at_gbps(72, 16).as_ps(), 4_500);
        // 8-byte control message on a 64 GB/s link: 0.125 ns.
        assert_eq!(Dur::from_bytes_at_gbps(8, 64).as_ps(), 125);
    }

    #[test]
    fn occupancy_rounds_up() {
        // 1 byte at 3 GB/s = 333.33.. ps, rounded up to 334.
        assert_eq!(Dur::from_bytes_at_gbps(1, 3).as_ps(), 334);
    }

    #[test]
    fn checked_and_saturating_add_handle_the_sentinel() {
        let near = Time::from_ps(u64::MAX - 10);
        assert_eq!(near.checked_add(Dur::from_ps(10)), Some(Time::MAX));
        assert_eq!(near.checked_add(Dur::from_ps(11)), None);
        assert_eq!(near.saturating_add(Dur::from_ps(10)), Time::MAX);
        assert_eq!(near.saturating_add(Dur::from_ps(999)), Time::MAX);
        assert_eq!(Time::MAX.saturating_add(Dur::ZERO), Time::MAX);
        assert_eq!(
            Time::ZERO.checked_add(Dur::from_ns(1)),
            Some(Time::from_ns(1))
        );
    }

    #[test]
    fn ordering_and_max() {
        assert!(Time::from_ns(1) < Time::from_ns(2));
        assert_eq!(Time::from_ns(1).max(Time::from_ns(2)), Time::from_ns(2));
        assert_eq!(Dur::from_ns(4).max(Dur::from_ns(2)), Dur::from_ns(4));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Time::from_ps(1_500)), "1.500ns");
        assert_eq!(format!("{:?}", Dur::from_ps(10)), "10ps");
    }
}
