//! The pending-event queue.
//!
//! A deterministic min-queue ordered by `(time, sequence)`; the sequence
//! number — assigned here, centrally, so every backend sees the same
//! numbering — makes tie-breaking FIFO among events scheduled for the
//! same picosecond, which in turn makes whole simulations reproducible.
//!
//! The storage/ordering engine behind the queue is a pluggable
//! [`Scheduler`](crate::sched::Scheduler) backend: the reference binary
//! heap or the calendar timing wheel (see [`crate::sched`]). The two are
//! bit-identical in pop order; the queue picks one at construction
//! ([`EventQueue::new`] honours `TOKENCMP_SCHEDULER`,
//! [`EventQueue::with_backend`] pins one explicitly).

use std::cmp::Ordering;

use crate::kernel::NodeId;
use crate::sched::{HeapScheduler, Scheduler, SchedulerKind, WheelScheduler};
use crate::time::Time;

/// What a queued event delivers to its destination component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind<M> {
    /// A message from another component (or injected externally).
    Msg {
        /// Sending component.
        src: NodeId,
        /// Protocol payload.
        msg: M,
    },
    /// A self-scheduled wakeup carrying an opaque tag.
    Wake {
        /// Component-defined discriminator (e.g. an MSHR index).
        tag: u64,
    },
}

/// A by-reference view of an [`EventKind`], as yielded by the census
/// ([`EventQueue::census`]) — the wheel backend stores message payloads
/// in a slab, so a borrowing census cannot hand out `&EventKind<M>`.
#[derive(Debug)]
pub enum EventKindRef<'a, M> {
    /// A pending message.
    Msg {
        /// Sending component.
        src: NodeId,
        /// Protocol payload.
        msg: &'a M,
    },
    /// A pending wakeup.
    Wake {
        /// Component-defined discriminator.
        tag: u64,
    },
}

impl<M> Clone for EventKindRef<'_, M> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<M> Copy for EventKindRef<'_, M> {}

/// One row of the pending-event census: delivery coordinates plus a
/// borrowed payload view.
#[derive(Debug)]
pub struct PendingEvent<'a, M> {
    /// Delivery time.
    pub time: Time,
    /// Queue sequence number (FIFO tie-break key).
    pub seq: u64,
    /// Destination component.
    pub dst: NodeId,
    /// Payload view.
    pub kind: EventKindRef<'a, M>,
}

impl<M> Clone for PendingEvent<'_, M> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<M> Copy for PendingEvent<'_, M> {}

impl<'a, M> PendingEvent<'a, M> {
    /// A census row borrowing an owned queued event.
    pub(crate) fn of(e: &'a QueuedEvent<M>) -> PendingEvent<'a, M> {
        PendingEvent {
            time: e.time,
            seq: e.seq,
            dst: e.dst,
            kind: match &e.kind {
                EventKind::Msg { src, msg } => EventKindRef::Msg { src: *src, msg },
                EventKind::Wake { tag } => EventKindRef::Wake { tag: *tag },
            },
        }
    }
}

/// An event plus its delivery coordinates.
#[derive(Debug, Clone)]
pub struct QueuedEvent<M> {
    /// Delivery time.
    pub time: Time,
    /// Destination component.
    pub dst: NodeId,
    /// Payload.
    pub kind: EventKind<M>,
    pub(crate) seq: u64,
}

impl<M> QueuedEvent<M> {
    /// The queue sequence number (FIFO tie-break key among same-time
    /// events). Assigned by [`EventQueue::push`], strictly increasing.
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

impl<M> PartialEq for QueuedEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for QueuedEvent<M> {}

impl<M> PartialOrd for QueuedEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for QueuedEvent<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap but we want earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The scheduler backend actually in use. A two-armed enum (rather than
/// `Box<dyn Scheduler>`) so the hot path stays a static match with both
/// implementations inlinable.
#[derive(Debug)]
enum Backend<M> {
    Heap(HeapScheduler<M>),
    // Boxed: the wheel's inline occupancy bitmap makes it an order of
    // magnitude larger than the heap arm, and `EventQueue` values move
    // through `Kernel` constructors by value.
    Wheel(Box<WheelScheduler<M>>),
}

/// A deterministic min-queue of simulation events.
///
/// # Example
///
/// ```
/// use tokencmp_sim::{EventKind, EventQueue, NodeId, Time};
/// let mut q: EventQueue<u32> = EventQueue::new();
/// q.push(Time::from_ns(5), NodeId(0), EventKind::Wake { tag: 1 });
/// q.push(Time::from_ns(2), NodeId(0), EventKind::Wake { tag: 2 });
/// assert_eq!(q.pop().unwrap().time, Time::from_ns(2));
/// ```
#[derive(Debug)]
pub struct EventQueue<M> {
    backend: Backend<M>,
    next_seq: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    /// Creates an empty queue on the process-default backend
    /// ([`SchedulerKind::from_env`]).
    pub fn new() -> EventQueue<M> {
        Self::with_backend(SchedulerKind::from_env())
    }

    /// Creates an empty queue on an explicitly chosen backend —
    /// differential suites pin both backends this way instead of racing
    /// on the environment.
    pub fn with_backend(kind: SchedulerKind) -> EventQueue<M> {
        EventQueue {
            backend: match kind {
                SchedulerKind::Heap => Backend::Heap(HeapScheduler::default()),
                SchedulerKind::Wheel => Backend::Wheel(Box::default()),
            },
            next_seq: 0,
        }
    }

    /// Which backend this queue runs on.
    pub fn backend_kind(&self) -> SchedulerKind {
        match self.backend {
            Backend::Heap(_) => SchedulerKind::Heap,
            Backend::Wheel(_) => SchedulerKind::Wheel,
        }
    }

    /// Schedules `kind` for delivery to `dst` at `time`.
    pub fn push(&mut self, time: Time, dst: NodeId, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        match &mut self.backend {
            Backend::Heap(s) => s.insert(time, seq, dst, kind),
            Backend::Wheel(s) => s.insert(time, seq, dst, kind),
        }
    }

    /// Removes and returns the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<QueuedEvent<M>> {
        match &mut self.backend {
            Backend::Heap(s) => s.remove_min(),
            Backend::Wheel(s) => s.remove_min(),
        }
    }

    /// Delivery time of the earliest pending event.
    pub fn next_time(&self) -> Option<Time> {
        match &self.backend {
            Backend::Heap(s) => s.next_time(),
            Backend::Wheel(s) => s.next_time(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Heap(s) => Scheduler::len(s),
            Backend::Wheel(s) => Scheduler::len(s.as_ref()),
        }
    }

    /// The sequence number the next [`push`](Self::push) will assign —
    /// equivalently, the number of events ever pushed.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// A snapshot of every pending event, sorted by `(time, seq)` — the
    /// order events would leave the queue — so watchdog stall dumps and
    /// flight-recorder diagnostics are stable across backends.
    pub fn census(&self) -> Vec<PendingEvent<'_, M>> {
        let mut out = self.census_unordered();
        out.sort_by_key(|e| (e.time, e.seq));
        out
    }

    /// [`census`](Self::census) in backend-internal order — for callers
    /// that only *count* pending events (the telemetry sampler) and
    /// should not pay for the stable sort.
    pub fn census_unordered(&self) -> Vec<PendingEvent<'_, M>> {
        let mut out = Vec::with_capacity(self.len());
        match &self.backend {
            Backend::Heap(s) => s.collect_pending(&mut out),
            Backend::Wheel(s) => s.collect_pending(&mut out),
        }
        out
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wake(tag: u64) -> EventKind<u8> {
        EventKind::Wake { tag }
    }

    fn both() -> [EventQueue<u8>; 2] {
        [
            EventQueue::with_backend(SchedulerKind::Heap),
            EventQueue::with_backend(SchedulerKind::Wheel),
        ]
    }

    #[test]
    fn pops_in_time_order() {
        for mut q in both() {
            q.push(Time::from_ns(30), NodeId(0), wake(3));
            q.push(Time::from_ns(10), NodeId(0), wake(1));
            q.push(Time::from_ns(20), NodeId(0), wake(2));
            let tags: Vec<u64> = std::iter::from_fn(|| q.pop())
                .map(|e| match e.kind {
                    EventKind::Wake { tag } => tag,
                    _ => unreachable!(),
                })
                .collect();
            assert_eq!(tags, vec![1, 2, 3]);
        }
    }

    #[test]
    fn ties_break_fifo() {
        for mut q in both() {
            let t = Time::from_ns(5);
            for tag in 0..10 {
                q.push(t, NodeId(0), wake(tag));
            }
            for expect in 0..10 {
                match q.pop().unwrap().kind {
                    EventKind::Wake { tag } => assert_eq!(tag, expect),
                    _ => unreachable!(),
                }
            }
        }
    }

    #[test]
    fn next_time_peeks_without_removing() {
        for mut q in both() {
            assert_eq!(q.next_time(), None);
            q.push(Time::from_ns(7), NodeId(1), wake(0));
            assert_eq!(q.next_time(), Some(Time::from_ns(7)));
            assert_eq!(q.len(), 1);
            assert!(!q.is_empty());
        }
    }

    #[test]
    fn census_is_sorted_by_time_then_seq_on_both_backends() {
        for mut q in both() {
            // Push in scrambled time order, with a same-time tie pair.
            q.push(Time::from_ns(9), NodeId(0), wake(0));
            q.push(Time::from_ns(1), NodeId(1), wake(1));
            q.push(Time::from_ns(9), NodeId(2), wake(2));
            q.push(Time::from_ns(4), NodeId(3), wake(3));
            let census = q.census();
            let order: Vec<(Time, u64)> = census.iter().map(|e| (e.time, e.seq)).collect();
            let mut sorted = order.clone();
            sorted.sort();
            assert_eq!(order, sorted, "census must be (time, seq)-sorted");
            // And it matches the pop order exactly.
            let popped: Vec<(Time, u64)> = std::iter::from_fn(|| q.pop())
                .map(|e| (e.time, e.seq()))
                .collect();
            assert_eq!(order, popped);
        }
    }

    #[test]
    fn next_seq_counts_every_push() {
        for mut q in both() {
            assert_eq!(q.next_seq(), 0);
            for i in 0..100 {
                q.push(Time::from_ns(i % 7), NodeId(0), wake(i));
            }
            assert_eq!(q.next_seq(), 100);
            q.pop();
            assert_eq!(q.next_seq(), 100, "pops do not consume sequence numbers");
        }
    }
}
