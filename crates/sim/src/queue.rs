//! The pending-event queue.
//!
//! A binary heap ordered by `(time, sequence)`; the sequence number makes
//! tie-breaking deterministic (FIFO among events scheduled for the same
//! picosecond), which in turn makes whole simulations reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::kernel::NodeId;
use crate::time::Time;

/// What a queued event delivers to its destination component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind<M> {
    /// A message from another component (or injected externally).
    Msg {
        /// Sending component.
        src: NodeId,
        /// Protocol payload.
        msg: M,
    },
    /// A self-scheduled wakeup carrying an opaque tag.
    Wake {
        /// Component-defined discriminator (e.g. an MSHR index).
        tag: u64,
    },
}

/// An event plus its delivery coordinates.
#[derive(Debug, Clone)]
pub struct QueuedEvent<M> {
    /// Delivery time.
    pub time: Time,
    /// Destination component.
    pub dst: NodeId,
    /// Payload.
    pub kind: EventKind<M>,
    seq: u64,
}

impl<M> PartialEq for QueuedEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for QueuedEvent<M> {}

impl<M> PartialOrd for QueuedEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for QueuedEvent<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap but we want earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-queue of simulation events.
///
/// # Example
///
/// ```
/// use tokencmp_sim::{EventKind, EventQueue, NodeId, Time};
/// let mut q: EventQueue<u32> = EventQueue::new();
/// q.push(Time::from_ns(5), NodeId(0), EventKind::Wake { tag: 1 });
/// q.push(Time::from_ns(2), NodeId(0), EventKind::Wake { tag: 2 });
/// assert_eq!(q.pop().unwrap().time, Time::from_ns(2));
/// ```
#[derive(Debug)]
pub struct EventQueue<M> {
    heap: BinaryHeap<QueuedEvent<M>>,
    next_seq: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<M> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `kind` for delivery to `dst` at `time`.
    pub fn push(&mut self, time: Time, dst: NodeId, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(QueuedEvent {
            time,
            dst,
            kind,
            seq,
        });
    }

    /// Removes and returns the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<QueuedEvent<M>> {
        self.heap.pop()
    }

    /// Delivery time of the earliest pending event.
    pub fn next_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Iterates over pending events in unspecified (but deterministic,
    /// heap-internal) order; for diagnostics, not for scheduling.
    pub fn iter(&self) -> impl Iterator<Item = &QueuedEvent<M>> {
        self.heap.iter()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wake(tag: u64) -> EventKind<u8> {
        EventKind::Wake { tag }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(30), NodeId(0), wake(3));
        q.push(Time::from_ns(10), NodeId(0), wake(1));
        q.push(Time::from_ns(20), NodeId(0), wake(2));
        let tags: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Wake { tag } => tag,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tags, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = Time::from_ns(5);
        for tag in 0..10 {
            q.push(t, NodeId(0), wake(tag));
        }
        for expect in 0..10 {
            match q.pop().unwrap().kind {
                EventKind::Wake { tag } => assert_eq!(tag, expect),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn next_time_peeks_without_removing() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_time(), None);
        q.push(Time::from_ns(7), NodeId(1), wake(0));
        assert_eq!(q.next_time(), Some(Time::from_ns(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
