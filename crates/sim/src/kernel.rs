//! The simulation kernel: components, message transport, and the run loop.

use std::any::Any;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use std::time::Instant;

use crate::profile::{HostProfiler, ProfilerHandle};
use crate::queue::{EventKind, EventQueue, PendingEvent};
use crate::sched::SchedulerKind;
use crate::stats::Stats;
use crate::time::{Dur, Time};

/// Identifies a component registered with a [`Kernel`].
///
/// Node ids are dense indices assigned in registration order; system
/// builders lay out ids deterministically so components can address each
/// other before construction completes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The transport's verdict on a message hand-off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Deliver at the given time.
    At(Time),
    /// The interconnect lost the message (fault injection); it is never
    /// enqueued, consumes no bandwidth, and is not charged to traffic.
    Dropped,
}

/// Computes message delivery times, modelling latency, bandwidth occupancy
/// and traffic accounting.
///
/// The interconnect crate provides the real implementation; tests can use
/// [`InstantTransport`].
pub trait Transport<M> {
    /// Returns the time at which `msg`, sent from `src` at `now`, arrives at
    /// `dst`. Implementations may mutate internal occupancy state and
    /// traffic statistics.
    fn deliver_at(&mut self, now: Time, src: NodeId, dst: NodeId, msg: &M) -> Time;

    /// Like [`deliver_at`](Transport::deliver_at), but may also decide to
    /// lose the message entirely. The default implementation never drops,
    /// so transports without fault injection behave exactly as before.
    fn dispatch(&mut self, now: Time, src: NodeId, dst: NodeId, msg: &M) -> Delivery {
        Delivery::At(self.deliver_at(now, src, dst, msg))
    }
}

/// A [`Transport`] with a fixed latency and infinite bandwidth; for tests.
#[derive(Debug, Clone, Copy)]
pub struct InstantTransport {
    /// One-way latency applied to every message.
    pub latency: Dur,
}

impl<M> Transport<M> for InstantTransport {
    fn deliver_at(&mut self, now: Time, _src: NodeId, _dst: NodeId, _msg: &M) -> Time {
        now + self.latency
    }
}

/// A simulated hardware unit (cache controller, memory controller,
/// processor sequencer, ...).
///
/// Components react to delivered messages and to self-scheduled wakeups;
/// they never block. The `as_any` methods allow system harnesses to downcast
/// components after a run to harvest results.
pub trait Component<M>: 'static {
    /// Handles a message delivered from `src`.
    fn on_msg(&mut self, src: NodeId, msg: M, ctx: &mut Ctx<'_, M>);

    /// Handles a wakeup previously scheduled with [`Ctx::wake_in`].
    fn on_wake(&mut self, tag: u64, ctx: &mut Ctx<'_, M>);

    /// Upcast for downcasting in harnesses. Implement as `self`.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast for downcasting in harnesses. Implement as `self`.
    fn as_any_mut(&mut self) -> &mut dyn Any;

    /// A short, static label for this component's *kind* (`"l1"`,
    /// `"mem"`, `"seq"`, ...), used by the host-time profiler to
    /// attribute handler wall-clock per controller kind. The default is
    /// deliberately generic so existing components keep working.
    fn kind(&self) -> &'static str {
        "component"
    }
}

/// An observer the kernel samples at a fixed *simulated-time* period
/// during [`Kernel::run_watched`]; the hook behind the telemetry
/// sampler in `tokencmp-system`.
///
/// Before the kernel processes an event at time `t`, every due sample
/// point `at <= t` fires (multiple, if an event gap spans several
/// periods), so sample times form a deterministic arithmetic sequence
/// regardless of event spacing. Monitors get `&Kernel` — they can read
/// queue depth, pending events, components, and stats, but cannot
/// perturb the simulation.
pub trait KernelMonitor<M> {
    /// Takes one sample. `at` is the nominal sample time (the kernel's
    /// own clock still reads the previous event's time).
    fn sample(&mut self, at: Time, kernel: &Kernel<M>);
}

struct MonitorSlot<M> {
    period: Dur,
    next_due: Time,
    monitor: Rc<RefCell<dyn KernelMonitor<M>>>,
}

/// The per-event view a component gets of the kernel: the clock, its own
/// id, message sending, and wakeup scheduling.
pub struct Ctx<'a, M> {
    /// Current simulated time.
    pub now: Time,
    /// The id of the component handling this event.
    pub self_id: NodeId,
    /// Shared statistics registry.
    pub stats: &'a mut Stats,
    queue: &'a mut EventQueue<M>,
    transport: &'a mut dyn Transport<M>,
    stopped: &'a mut bool,
    last_progress: &'a mut Time,
    /// Set only while the host-time profiler is sampling *this* event;
    /// the send/wake paths then time their dispatch and push scopes.
    profiler: Option<&'a RefCell<HostProfiler>>,
}

impl<M> Ctx<'_, M> {
    /// Sends `msg` to `dst` now; arrival time comes from the transport.
    pub fn send(&mut self, dst: NodeId, msg: M) {
        self.send_after(Dur::ZERO, dst, msg);
    }

    /// Sends `msg` to `dst` after a local processing delay of `delay`
    /// (e.g. a cache tag-array access before the reply hits the wire).
    ///
    /// The transport may drop the message (fault injection), in which case
    /// it is silently discarded — recovery is the protocol's job.
    pub fn send_after(&mut self, delay: Dur, dst: NodeId, msg: M) {
        let depart = self.now + delay;
        let src = self.self_id;
        let Some(prof) = self.profiler else {
            match self.transport.dispatch(depart, src, dst, &msg) {
                Delivery::At(arrive) => {
                    debug_assert!(arrive >= depart);
                    self.queue.push(arrive, dst, EventKind::Msg { src, msg });
                }
                Delivery::Dropped => {}
            }
            return;
        };
        let t0 = Instant::now();
        let verdict = self.transport.dispatch(depart, src, dst, &msg);
        let t1 = Instant::now();
        let push_ns = match verdict {
            Delivery::At(arrive) => {
                debug_assert!(arrive >= depart);
                self.queue.push(arrive, dst, EventKind::Msg { src, msg });
                t1.elapsed().as_nanos() as u64
            }
            Delivery::Dropped => 0,
        };
        prof.borrow_mut()
            .add_send(t1.duration_since(t0).as_nanos() as u64, push_ns);
    }

    /// Schedules a wakeup for this component `delay` from now.
    pub fn wake_in(&mut self, delay: Dur, tag: u64) {
        self.wake_at(self.now + delay, tag);
    }

    /// Schedules a wakeup for this component at absolute time `at`
    /// (clamped to now).
    pub fn wake_at(&mut self, at: Time, tag: u64) {
        let id = self.self_id;
        let Some(prof) = self.profiler else {
            self.queue
                .push(at.max(self.now), id, EventKind::Wake { tag });
            return;
        };
        let t0 = Instant::now();
        self.queue
            .push(at.max(self.now), id, EventKind::Wake { tag });
        prof.borrow_mut().add_push(t0.elapsed().as_nanos() as u64);
    }

    /// Requests that the kernel stop after the current event.
    pub fn stop(&mut self) {
        *self.stopped = true;
    }

    /// Marks forward progress (e.g. a sequencer committing a memory
    /// operation), resetting the watchdog of [`Kernel::run_watched`].
    pub fn progress(&mut self) {
        *self.last_progress = self.now;
    }
}

/// How a [`Kernel::run`] call ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// A component called [`Ctx::stop`].
    Stopped,
    /// The event queue drained.
    Idle,
    /// The event budget was exhausted — almost always a protocol livelock
    /// or a missing termination condition.
    EventLimit,
    /// Simulated time passed the configured horizon.
    TimeLimit,
    /// The progress watchdog fired: no component called [`Ctx::progress`]
    /// for a full stall window of simulated time ([`Kernel::run_watched`]).
    /// Unlike [`RunOutcome::EventLimit`], this catches a livelock after a
    /// bounded amount of *simulated time* rather than after billions of
    /// events.
    Stalled,
}

/// The discrete-event simulator: a clock, an event queue, a transport, and
/// a set of components.
pub struct Kernel<M> {
    time: Time,
    queue: EventQueue<M>,
    components: Vec<Box<dyn Component<M>>>,
    transport: Box<dyn Transport<M>>,
    stats: Stats,
    stopped: bool,
    events_processed: u64,
    last_progress: Time,
    monitor: Option<MonitorSlot<M>>,
    /// Mirror of `monitor`'s `next_due` (`Time::MAX` when unmonitored):
    /// the run loop compares against this plain field on every event
    /// instead of deref-ing the slot.
    monitor_due: Time,
    profiler: Option<ProfilerHandle>,
    /// Events until the next stride-sampled one; kept here as a plain
    /// integer so skipped events never borrow the profiler's `RefCell`.
    prof_countdown: u32,
    /// Skipped events not yet folded into the profiler's event count.
    prof_skipped: u64,
}

impl<M: 'static> Kernel<M> {
    /// Creates a kernel using the given transport, on the process-default
    /// scheduler backend ([`SchedulerKind::from_env`]).
    pub fn new(transport: Box<dyn Transport<M>>) -> Kernel<M> {
        Kernel::with_scheduler(transport, SchedulerKind::from_env())
    }

    /// Creates a kernel on an explicitly chosen scheduler backend;
    /// differential suites pin both backends this way instead of racing
    /// on `TOKENCMP_SCHEDULER`.
    pub fn with_scheduler(transport: Box<dyn Transport<M>>, sched: SchedulerKind) -> Kernel<M> {
        Kernel {
            time: Time::ZERO,
            queue: EventQueue::with_backend(sched),
            components: Vec::new(),
            transport,
            stats: Stats::new(),
            stopped: false,
            events_processed: 0,
            last_progress: Time::ZERO,
            monitor: None,
            monitor_due: Time::MAX,
            profiler: None,
            prof_countdown: 0,
            prof_skipped: 0,
        }
    }

    /// Installs a sim-time telemetry monitor, sampled every `period` of
    /// simulated time during [`run_watched`](Kernel::run_watched)
    /// (first sample at the current time). Replaces any prior monitor.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero (the sample loop would never advance).
    pub fn set_monitor(&mut self, period: Dur, monitor: Rc<RefCell<dyn KernelMonitor<M>>>) {
        assert!(period > Dur::ZERO, "monitor period must be positive");
        self.monitor = Some(MonitorSlot {
            period,
            next_due: self.time,
            monitor,
        });
        self.monitor_due = self.time;
    }

    /// Installs the host-time self-profiler; the kernel stride-samples
    /// event scopes into it (see [`HostProfiler`]).
    pub fn set_profiler(&mut self, profiler: ProfilerHandle) {
        self.profiler = Some(profiler);
        self.prof_countdown = 0;
        self.prof_skipped = 0;
    }

    /// Number of pending events in the scheduler, whichever backend is
    /// active — the sampler's queue-depth gauge.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Fires every monitor sample point due at or before `upto`.
    fn run_monitor(&mut self, upto: Time) {
        loop {
            let (due, monitor) = match &self.monitor {
                Some(slot) if slot.next_due <= upto => (slot.next_due, slot.monitor.clone()),
                _ => return,
            };
            // The Rc clone keeps the borrow of `self.monitor` out of
            // scope while the monitor reads `&self`.
            monitor.borrow_mut().sample(due, self);
            if let Some(slot) = &mut self.monitor {
                slot.next_due = due + slot.period;
                self.monitor_due = slot.next_due;
            }
        }
    }

    /// Which scheduler backend this kernel runs on.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        self.queue.backend_kind()
    }

    /// Creates a kernel whose transport delivers instantly (for tests).
    pub fn new_instant() -> Kernel<M> {
        Kernel::new(Box::new(InstantTransport { latency: Dur::ZERO }))
    }

    /// Registers a component, returning its id (dense, in order).
    pub fn add_component<C: Component<M>>(&mut self, c: C) -> NodeId {
        let id = NodeId(self.components.len() as u32);
        self.components.push(Box::new(c));
        id
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.time
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The shared statistics registry.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Mutable access to the statistics registry.
    pub fn stats_mut(&mut self) -> &mut Stats {
        &mut self.stats
    }

    /// The transport, for harvesting traffic statistics after a run.
    pub fn transport(&self) -> &dyn Transport<M> {
        self.transport.as_ref()
    }

    /// Downcasts a registered component to a concrete type.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn component_as<C: Component<M>>(&self, id: NodeId) -> Option<&C> {
        self.components[id.index()].as_any().downcast_ref::<C>()
    }

    /// Mutably downcasts a registered component to a concrete type.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn component_as_mut<C: Component<M>>(&mut self, id: NodeId) -> Option<&mut C> {
        self.components[id.index()].as_any_mut().downcast_mut::<C>()
    }

    /// Schedules a wakeup for `dst` at `delay` from the current time; used
    /// to bootstrap components (e.g. start every processor at t=0).
    pub fn wake(&mut self, dst: NodeId, delay: Dur, tag: u64) {
        self.queue
            .push(self.time + delay, dst, EventKind::Wake { tag });
    }

    /// Injects a message from `src` to `dst` through the transport; for
    /// tests and external stimulus. The transport may drop it.
    pub fn inject(&mut self, src: NodeId, dst: NodeId, msg: M) {
        match self.transport.dispatch(self.time, src, dst, &msg) {
            Delivery::At(arrive) => self.queue.push(arrive, dst, EventKind::Msg { src, msg }),
            Delivery::Dropped => {}
        }
    }

    /// A snapshot of the pending events, sorted by `(time, seq)` — the
    /// order they would be delivered in — used by harnesses to build an
    /// in-flight message census for watchdog diagnostics. The sort makes
    /// stall dumps stable across scheduler backends.
    pub fn pending_events(&self) -> Vec<PendingEvent<'_, M>> {
        self.queue.census()
    }

    /// [`pending_events`](Self::pending_events) in backend-internal
    /// order, for callers that only aggregate over the census (the
    /// telemetry sampler) and should not pay for the stable sort.
    pub fn pending_events_unordered(&self) -> Vec<PendingEvent<'_, M>> {
        self.queue.census_unordered()
    }

    /// Simulated time of the last [`Ctx::progress`] call (simulation start
    /// if none was ever made).
    pub fn last_progress(&self) -> Time {
        self.last_progress
    }

    /// Processes a single event. Returns `false` when the queue is empty.
    ///
    /// # Panics
    ///
    /// Panics if an event addresses an unregistered component.
    pub fn step(&mut self) -> bool {
        if self.queue.is_empty() {
            return false;
        }
        // Stride-sampling decision: `prof` is Some only for the one event
        // in `stride` whose scopes get timed. With no profiler installed
        // this is a single branch on a None option — the zero-cost path;
        // with one installed, a skipped event costs only the countdown
        // decrement (the profiler's RefCell is not touched).
        let prof: Option<ProfilerHandle> = match &self.profiler {
            None => None,
            Some(p) => {
                if self.prof_countdown == 0 {
                    let mut pb = p.borrow_mut();
                    pb.begin_sample(self.prof_skipped);
                    self.prof_countdown = pb.stride() - 1;
                    drop(pb);
                    self.prof_skipped = 0;
                    Some(p.clone())
                } else {
                    self.prof_countdown -= 1;
                    self.prof_skipped += 1;
                    None
                }
            }
        };
        let t0 = prof.as_ref().map(|_| Instant::now());
        let ev = self.queue.pop().expect("queue non-empty");
        let t1 = prof.as_ref().map(|_| Instant::now());
        debug_assert!(ev.time >= self.time, "event in the past");
        self.time = ev.time;
        self.events_processed += 1;
        let idx = ev.dst.index();
        assert!(
            idx < self.components.len(),
            "event for unknown {:?}",
            ev.dst
        );
        let kind = self.components[idx].kind();
        let mut ctx = Ctx {
            now: self.time,
            self_id: ev.dst,
            stats: &mut self.stats,
            queue: &mut self.queue,
            transport: self.transport.as_mut(),
            stopped: &mut self.stopped,
            last_progress: &mut self.last_progress,
            profiler: prof.as_deref(),
        };
        match ev.kind {
            EventKind::Msg { src, msg } => self.components[idx].on_msg(src, msg, &mut ctx),
            EventKind::Wake { tag } => self.components[idx].on_wake(tag, &mut ctx),
        }
        if let (Some(p), Some(t0), Some(t1)) = (prof, t0, t1) {
            let gross_ns = t1.elapsed().as_nanos() as u64;
            let mut p = p.borrow_mut();
            p.add_pop(t1.duration_since(t0).as_nanos() as u64);
            p.end_event(kind, gross_ns);
        }
        true
    }

    /// Runs until a stop request, an empty queue, `max_events`, or the
    /// `horizon` time limit — whichever comes first.
    pub fn run(&mut self, max_events: u64, horizon: Time) -> RunOutcome {
        self.run_watched(max_events, horizon, None)
    }

    /// [`run`](Kernel::run) with a progress watchdog: if the next pending
    /// event lies more than `stall_window` of simulated time after the
    /// last [`Ctx::progress`] call, the run stops with
    /// [`RunOutcome::Stalled`] *before* processing that event.
    ///
    /// The watchdog is purely an observer — it never reorders or drops
    /// events, so enabling it cannot change simulation results, only how
    /// a non-terminating run is reported.
    pub fn run_watched(
        &mut self,
        max_events: u64,
        horizon: Time,
        stall_window: Option<Dur>,
    ) -> RunOutcome {
        let outcome = self.run_watched_loop(max_events, horizon, stall_window);
        // Fold the tail of untimed events into the profiler so the
        // events/sampled scale covers the whole run.
        if self.prof_skipped > 0 {
            if let Some(p) = &self.profiler {
                p.borrow_mut().add_skipped(self.prof_skipped);
            }
            self.prof_skipped = 0;
        }
        outcome
    }

    fn run_watched_loop(
        &mut self,
        max_events: u64,
        horizon: Time,
        stall_window: Option<Dur>,
    ) -> RunOutcome {
        let budget_end = self.events_processed.saturating_add(max_events);
        // The window is measured from the start of this run if nothing
        // has progressed yet (relevant when resuming a stepped kernel).
        self.last_progress = self.last_progress.max(self.time);
        loop {
            if self.stopped {
                return RunOutcome::Stopped;
            }
            if self.events_processed >= budget_end {
                return RunOutcome::EventLimit;
            }
            match self.queue.next_time() {
                None => return RunOutcome::Idle,
                Some(t) if t > horizon => return RunOutcome::TimeLimit,
                Some(t) => {
                    if let Some(w) = stall_window {
                        if t.saturating_since(self.last_progress) > w {
                            return RunOutcome::Stalled;
                        }
                    }
                    if self.monitor_due <= t {
                        self.run_monitor(t);
                    }
                    self.step();
                }
            }
        }
    }

    /// Runs until the queue drains or a component stops the kernel.
    pub fn run_to_completion(&mut self) -> RunOutcome {
        self.run(u64::MAX, Time::MAX)
    }
}

impl<M> fmt::Debug for Kernel<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Kernel")
            .field("time", &self.time)
            .field("components", &self.components.len())
            .field("pending", &self.queue.len())
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Default)]
    struct Echo {
        received: Vec<(NodeId, u64)>,
        reply_to: Option<NodeId>,
    }

    impl Component<u64> for Echo {
        fn on_msg(&mut self, src: NodeId, msg: u64, ctx: &mut Ctx<'_, u64>) {
            self.received.push((src, msg));
            if let Some(peer) = self.reply_to {
                if msg > 0 {
                    ctx.send(peer, msg - 1);
                }
            }
        }
        fn on_wake(&mut self, tag: u64, ctx: &mut Ctx<'_, u64>) {
            if tag == 99 {
                ctx.stop();
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn ping_pong_counts_down() {
        let mut k = Kernel::new(Box::new(InstantTransport {
            latency: Dur::from_ns(3),
        }));
        let a = k.add_component(Echo {
            reply_to: Some(NodeId(1)),
            ..Default::default()
        });
        let b = k.add_component(Echo {
            reply_to: Some(NodeId(0)),
            ..Default::default()
        });
        k.inject(a, b, 5);
        assert_eq!(k.run_to_completion(), RunOutcome::Idle);
        // 5 arrives at b; 4 at a; 3 at b; 2 at a; 1 at b; 0 at a.
        let ea = k.component_as::<Echo>(a).unwrap();
        let eb = k.component_as::<Echo>(b).unwrap();
        assert_eq!(
            ea.received.iter().map(|&(_, m)| m).collect::<Vec<_>>(),
            [4, 2, 0]
        );
        assert_eq!(
            eb.received.iter().map(|&(_, m)| m).collect::<Vec<_>>(),
            [5, 3, 1]
        );
        // 6 messages * 3 ns each.
        assert_eq!(k.now(), Time::from_ns(18));
    }

    #[test]
    fn stop_request_halts_run() {
        let mut k: Kernel<u64> = Kernel::new_instant();
        let a = k.add_component(Echo::default());
        k.wake(a, Dur::from_ns(1), 99);
        k.wake(a, Dur::from_ns(2), 99);
        assert_eq!(k.run_to_completion(), RunOutcome::Stopped);
        assert_eq!(k.now(), Time::from_ns(1));
    }

    #[test]
    fn event_limit_detects_livelock() {
        #[derive(Debug)]
        struct Spinner;
        impl Component<u64> for Spinner {
            fn on_msg(&mut self, _: NodeId, _: u64, _: &mut Ctx<'_, u64>) {}
            fn on_wake(&mut self, tag: u64, ctx: &mut Ctx<'_, u64>) {
                ctx.wake_in(Dur::from_ns(1), tag);
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut k: Kernel<u64> = Kernel::new_instant();
        let a = k.add_component(Spinner);
        k.wake(a, Dur::ZERO, 0);
        assert_eq!(k.run(1_000, Time::MAX), RunOutcome::EventLimit);
        assert_eq!(k.run(u64::MAX, Time::from_ns(2_000)), RunOutcome::TimeLimit);
    }

    #[test]
    fn watchdog_stalls_a_progress_free_spin() {
        // A component that spins forever without ever calling progress():
        // the watchdog must fire after one stall window of simulated time,
        // long before the event budget is exhausted.
        #[derive(Debug)]
        struct Spinner;
        impl Component<u64> for Spinner {
            fn on_msg(&mut self, _: NodeId, _: u64, _: &mut Ctx<'_, u64>) {}
            fn on_wake(&mut self, tag: u64, ctx: &mut Ctx<'_, u64>) {
                ctx.wake_in(Dur::from_ns(1), tag);
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut k: Kernel<u64> = Kernel::new_instant();
        let a = k.add_component(Spinner);
        k.wake(a, Dur::ZERO, 0);
        let outcome = k.run_watched(u64::MAX, Time::MAX, Some(Dur::from_ns(50)));
        assert_eq!(outcome, RunOutcome::Stalled);
        // Stopped at the stall window, not after billions of events.
        assert!(k.now() <= Time::from_ns(51));
        assert!(k.events_processed() < 100);
    }

    #[test]
    fn watchdog_is_reset_by_progress() {
        // Spins like above, but marks progress every 10th wake: the
        // watchdog never fires and the run ends via the event budget.
        #[derive(Debug)]
        struct Worker(u64);
        impl Component<u64> for Worker {
            fn on_msg(&mut self, _: NodeId, _: u64, _: &mut Ctx<'_, u64>) {}
            fn on_wake(&mut self, tag: u64, ctx: &mut Ctx<'_, u64>) {
                self.0 += 1;
                if self.0.is_multiple_of(10) {
                    ctx.progress();
                }
                ctx.wake_in(Dur::from_ns(1), tag);
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut k: Kernel<u64> = Kernel::new_instant();
        let a = k.add_component(Worker(0));
        k.wake(a, Dur::ZERO, 0);
        let outcome = k.run_watched(1_000, Time::MAX, Some(Dur::from_ns(50)));
        assert_eq!(outcome, RunOutcome::EventLimit);
        assert!(k.last_progress() > Time::ZERO);
    }

    #[test]
    fn pending_events_expose_the_census() {
        use crate::queue::EventKindRef;
        let mut k: Kernel<u64> = Kernel::new_instant();
        let a = k.add_component(Echo::default());
        k.wake(a, Dur::from_ns(1), 7);
        k.inject(a, a, 42);
        let (mut wakes, mut msgs) = (0, 0);
        for ev in k.pending_events() {
            match ev.kind {
                EventKindRef::Wake { .. } => wakes += 1,
                EventKindRef::Msg { .. } => msgs += 1,
            }
        }
        assert_eq!((wakes, msgs), (1, 1));
    }

    #[test]
    fn pending_events_census_is_delivery_ordered() {
        // Regression: the census used to report heap-internal order, so
        // watchdog stall dumps differed between backends. It must be
        // sorted by (time, seq) on every backend.
        for sched in SchedulerKind::ALL {
            let mut k: Kernel<u64> =
                Kernel::with_scheduler(Box::new(InstantTransport { latency: Dur::ZERO }), sched);
            assert_eq!(k.scheduler_kind(), sched);
            let a = k.add_component(Echo::default());
            // Scrambled times plus same-time ties.
            for (delay, tag) in [(9, 0), (1, 1), (9, 2), (4, 3), (1, 4)] {
                k.wake(a, Dur::from_ns(delay), tag);
            }
            let order: Vec<(Time, u64)> =
                k.pending_events().iter().map(|e| (e.time, e.seq)).collect();
            let mut sorted = order.clone();
            sorted.sort();
            assert_eq!(order, sorted, "census unsorted on {sched}");
            assert_eq!(order.len(), 5);
        }
    }

    #[test]
    fn dropping_transport_loses_messages_but_not_wakes() {
        struct BlackHole;
        impl Transport<u64> for BlackHole {
            fn deliver_at(&mut self, now: Time, _: NodeId, _: NodeId, _: &u64) -> Time {
                now
            }
            fn dispatch(&mut self, _: Time, _: NodeId, _: NodeId, _: &u64) -> Delivery {
                Delivery::Dropped
            }
        }
        let mut k: Kernel<u64> = Kernel::new(Box::new(BlackHole));
        let a = k.add_component(Echo::default());
        k.inject(a, a, 1);
        assert_eq!(k.pending_events().len(), 0);
        k.wake(a, Dur::from_ns(1), 0);
        assert_eq!(k.run_to_completion(), RunOutcome::Idle);
        let e = k.component_as::<Echo>(a).unwrap();
        assert!(e.received.is_empty());
    }

    #[test]
    fn monitor_samples_on_a_fixed_period() {
        // A spinner waking every 1 ns; a monitor with a 10 ns period must
        // fire at 0, 10, 20, ... regardless of event spacing.
        #[derive(Debug)]
        struct Spinner(u64);
        impl Component<u64> for Spinner {
            fn on_msg(&mut self, _: NodeId, _: u64, _: &mut Ctx<'_, u64>) {}
            fn on_wake(&mut self, tag: u64, ctx: &mut Ctx<'_, u64>) {
                self.0 += 1;
                if self.0 < 100 {
                    ctx.wake_in(Dur::from_ns(1), tag);
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        struct Recorder {
            at: Vec<Time>,
            depths: Vec<usize>,
        }
        impl KernelMonitor<u64> for Recorder {
            fn sample(&mut self, at: Time, kernel: &Kernel<u64>) {
                self.at.push(at);
                self.depths.push(kernel.queue_depth());
            }
        }
        let mut k: Kernel<u64> = Kernel::new_instant();
        let a = k.add_component(Spinner(0));
        k.wake(a, Dur::ZERO, 0);
        let rec = Rc::new(RefCell::new(Recorder {
            at: Vec::new(),
            depths: Vec::new(),
        }));
        k.set_monitor(Dur::from_ns(10), rec.clone());
        assert_eq!(k.run_to_completion(), RunOutcome::Idle);
        let rec = rec.borrow();
        // 100 wakes spanning [0, 99] ns → samples at 0, 10, ..., 90.
        assert_eq!(
            rec.at,
            (0..10).map(|i| Time::from_ns(10 * i)).collect::<Vec<_>>()
        );
        assert!(rec.depths.iter().all(|&d| d == 1));
    }

    #[test]
    fn monitor_catches_up_across_event_gaps() {
        struct Recorder(Vec<Time>);
        impl KernelMonitor<u64> for Recorder {
            fn sample(&mut self, at: Time, _: &Kernel<u64>) {
                self.0.push(at);
            }
        }
        let mut k: Kernel<u64> = Kernel::new_instant();
        let a = k.add_component(Echo::default());
        // Two events 35 ns apart: every intermediate 10 ns tick fires.
        k.wake(a, Dur::from_ns(1), 0);
        k.wake(a, Dur::from_ns(36), 0);
        let rec = Rc::new(RefCell::new(Recorder(Vec::new())));
        k.set_monitor(Dur::from_ns(10), rec.clone());
        assert_eq!(k.run_to_completion(), RunOutcome::Idle);
        assert_eq!(rec.borrow().0, [0, 10, 20, 30].map(Time::from_ns).to_vec());
    }

    #[test]
    fn profiler_attributes_component_kinds() {
        #[derive(Debug)]
        struct Named(u64);
        impl Component<u64> for Named {
            fn on_msg(&mut self, _: NodeId, _: u64, _: &mut Ctx<'_, u64>) {}
            fn on_wake(&mut self, tag: u64, ctx: &mut Ctx<'_, u64>) {
                self.0 += 1;
                if self.0 < 50 {
                    ctx.wake_in(Dur::from_ns(1), tag);
                    ctx.send(ctx.self_id, 7);
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
            fn kind(&self) -> &'static str {
                "named"
            }
        }
        let mut k: Kernel<u64> = Kernel::new_instant();
        let a = k.add_component(Named(0));
        k.wake(a, Dur::ZERO, 0);
        let prof = HostProfiler::handle(1);
        k.set_profiler(prof.clone());
        assert_eq!(k.run_to_completion(), RunOutcome::Idle);
        let report = prof.borrow().report();
        assert_eq!(report.events, k.events_processed());
        assert_eq!(report.sampled_events, report.events);
        let cats: Vec<&str> = report.entries.iter().map(|e| e.category.as_str()).collect();
        for needle in ["sched.pop", "sched.push", "net.dispatch", "handler.named"] {
            assert!(cats.contains(&needle), "missing {needle} in {cats:?}");
        }
    }

    #[test]
    fn time_advances_monotonically() {
        let mut k: Kernel<u64> = Kernel::new_instant();
        let a = k.add_component(Echo::default());
        k.wake(a, Dur::from_ns(10), 0);
        k.wake(a, Dur::from_ns(5), 0);
        let mut last = Time::ZERO;
        while k.step() {
            assert!(k.now() >= last);
            last = k.now();
        }
        assert_eq!(last, Time::from_ns(10));
    }
}
