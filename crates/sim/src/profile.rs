//! The host-time self-profiler: where does the simulator's *wall clock*
//! go?
//!
//! The simulator has two clocks. Simulated time ([`crate::Time`]) is the
//! quantity being modeled; host time is what the model costs to run. The
//! [`HostProfiler`] attributes the latter to kernel-level categories —
//! scheduler pop/push, network dispatch, protocol handlers per component
//! kind ([`crate::Component::kind`]), and trace-sink work — so the
//! hot-path overhauls planned in the roadmap have a measured breakdown
//! to beat rather than a guess.
//!
//! # Accounting model
//!
//! Timing every scope of every event with `Instant::now` would cost more
//! than the scopes themselves (a kernel event is processed in a few
//! hundred nanoseconds; a clock read is ~25 ns). The profiler therefore
//! *stride-samples*: it fully times every `stride`-th event (all of that
//! event's pop / handler / push / dispatch scopes) and skips timing
//! entirely on the others. The stride countdown lives in the kernel as
//! a plain integer, so a skipped event costs one branch and a decrement
//! — it never touches the profiler's `RefCell`.
//! Reported per-category times are the sampled sums scaled by the
//! realized `events / sampled` ratio, which is unbiased as long as the
//! event mix is stationary over windows of `stride` events (it is: the
//! stride is far below any protocol phase length).
//!
//! Trace-sink scopes (recorded through
//! `tokencmp_trace::ProfiledSink`) are timed *exactly*, not sampled —
//! they only exist when tracing is enabled, which is already the slow
//! path. Exact categories are marked in the report.
//!
//! The profiler observes the simulation but never feeds back into it:
//! results with profiling on are bit-identical to results with it off
//! (enforced by `tests/telemetry.rs`).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Instant;

/// Shared handle to a run's profiler. The kernel, `Ctx` send paths, and
/// any `ProfiledSink` decorators all record into the same accumulator
/// (a simulation is single-threaded).
pub type ProfilerHandle = Rc<RefCell<HostProfiler>>;

/// Accumulated calls and nanoseconds for one category.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CatTotals {
    /// Timed invocations.
    pub calls: u64,
    /// Total measured wall time, nanoseconds.
    pub ns: u64,
}

impl CatTotals {
    fn add(&mut self, ns: u64) {
        self.calls += 1;
        self.ns += ns;
    }
}

/// The wall-clock attribution accumulator (see the module docs).
#[derive(Debug)]
pub struct HostProfiler {
    stride: u32,
    events_seen: u64,
    events_sampled: u64,
    /// True while a stride-sampled event's handler is on the stack; send
    /// and sink scopes recorded meanwhile also accumulate into
    /// `inner_ns` so the handler's *exclusive* time can be derived.
    in_event: bool,
    inner_ns: u64,
    sched_pop: CatTotals,
    sched_push: CatTotals,
    net_dispatch: CatTotals,
    /// Handler exclusive time per component kind.
    handlers: BTreeMap<&'static str, CatTotals>,
    /// Trace-sink categories (`trace` / `conform`), timed exactly.
    sinks: BTreeMap<&'static str, CatTotals>,
    started: Instant,
}

impl HostProfiler {
    /// Default sampling stride: time one event in 128. Keeps the
    /// enabled-path overhead well under the 5% budget while a
    /// million-event run still times thousands of events.
    pub const DEFAULT_STRIDE: u32 = 128;

    /// Creates a profiler timing every `stride`-th event (min 1 = every
    /// event).
    pub fn new(stride: u32) -> HostProfiler {
        HostProfiler {
            stride: stride.max(1),
            events_seen: 0,
            events_sampled: 0,
            in_event: false,
            inner_ns: 0,
            sched_pop: CatTotals::default(),
            sched_push: CatTotals::default(),
            net_dispatch: CatTotals::default(),
            handlers: BTreeMap::new(),
            sinks: BTreeMap::new(),
            started: Instant::now(),
        }
    }

    /// A fresh profiler wrapped into the shared handle the kernel and
    /// sink decorators record through.
    pub fn handle(stride: u32) -> ProfilerHandle {
        Rc::new(RefCell::new(HostProfiler::new(stride)))
    }

    /// The sampling stride in use.
    pub fn stride(&self) -> u32 {
        self.stride
    }

    /// Opens a fully-timed sample: counts the `skipped` untimed events
    /// since the previous sample plus this one, and arms the inner-time
    /// accumulator. The caller (the kernel) owns the stride countdown,
    /// so skipped events are batched into one call here instead of
    /// borrowing the handle's `RefCell` each.
    pub fn begin_sample(&mut self, skipped: u64) {
        self.events_seen += skipped + 1;
        self.events_sampled += 1;
        self.in_event = true;
        self.inner_ns = 0;
    }

    /// Counts untimed events that never reached the next sample point
    /// (the tail of a run), keeping the `events / sampled` scale exact.
    pub fn add_skipped(&mut self, n: u64) {
        self.events_seen += n;
    }

    /// Records the scheduler-pop scope of a sampled event.
    pub fn add_pop(&mut self, ns: u64) {
        self.sched_pop.add(ns);
    }

    /// Records one send's transport-dispatch and queue-push scopes
    /// (which also count toward the enclosing handler's inner time).
    pub fn add_send(&mut self, dispatch_ns: u64, push_ns: u64) {
        self.net_dispatch.add(dispatch_ns);
        self.sched_push.add(push_ns);
        self.inner_ns += dispatch_ns + push_ns;
    }

    /// Records a bare queue-push scope (wakeup scheduling: no transport).
    pub fn add_push(&mut self, ns: u64) {
        self.sched_push.add(ns);
        self.inner_ns += ns;
    }

    /// Closes a sampled event: `gross_ns` is the whole handler scope;
    /// the inner (send/push/sink) time recorded since
    /// [`begin_sample`](Self::begin_sample) is subtracted to yield the
    /// handler's exclusive time, attributed to the component `kind`.
    pub fn end_event(&mut self, kind: &'static str, gross_ns: u64) {
        let exclusive = gross_ns.saturating_sub(self.inner_ns);
        self.handlers.entry(kind).or_default().add(exclusive);
        self.in_event = false;
        self.inner_ns = 0;
    }

    /// Records a trace-sink scope (timed exactly, on every call). If a
    /// sampled event is on the stack, the time also counts as inner so
    /// the handler's exclusive time stays exclusive.
    pub fn add_sink(&mut self, category: &'static str, ns: u64) {
        self.sinks.entry(category).or_default().add(ns);
        if self.in_event {
            self.inner_ns += ns;
        }
    }

    /// Events seen so far (sampled or not).
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// Snapshots the attribution report.
    pub fn report(&self) -> HostProfile {
        let scale = if self.events_sampled == 0 {
            1.0
        } else {
            self.events_seen as f64 / self.events_sampled as f64
        };
        let est = |ns: u64| (ns as f64 * scale) as u64;
        let mut entries = Vec::new();
        let mut push = |category: String, t: CatTotals, exact: bool| {
            if t.calls > 0 {
                entries.push(ProfileEntry {
                    category,
                    calls: t.calls,
                    est_ns: if exact { t.ns } else { est(t.ns) },
                    exact,
                });
            }
        };
        push("sched.pop".into(), self.sched_pop, false);
        push("sched.push".into(), self.sched_push, false);
        push("net.dispatch".into(), self.net_dispatch, false);
        for (kind, t) in &self.handlers {
            push(format!("handler.{kind}"), *t, false);
        }
        for (cat, t) in &self.sinks {
            push(format!("sink.{cat}"), *t, true);
        }
        entries.sort_by(|a, b| b.est_ns.cmp(&a.est_ns).then(a.category.cmp(&b.category)));
        HostProfile {
            events: self.events_seen,
            sampled_events: self.events_sampled,
            stride: self.stride,
            wall_ns: self.started.elapsed().as_nanos() as u64,
            entries,
        }
    }
}

/// One category row of a [`HostProfile`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileEntry {
    /// Category name (`sched.pop`, `handler.l1`, `sink.trace`, ...).
    pub category: String,
    /// Timed invocations (sampled invocations for strided categories).
    pub calls: u64,
    /// Estimated total nanoseconds: sampled sum × realized stride for
    /// kernel categories, exact sum for sink categories.
    pub est_ns: u64,
    /// True when `est_ns` is an exact measurement, not a scaled sample.
    pub exact: bool,
}

/// A finished wall-clock attribution report.
#[derive(Clone, Debug, PartialEq)]
pub struct HostProfile {
    /// Kernel events processed while profiling.
    pub events: u64,
    /// Events whose scopes were fully timed.
    pub sampled_events: u64,
    /// Sampling stride ([`HostProfiler::DEFAULT_STRIDE`] unless
    /// overridden).
    pub stride: u32,
    /// Wall time from profiler creation to the report, nanoseconds.
    pub wall_ns: u64,
    /// Per-category attribution, largest first.
    pub entries: Vec<ProfileEntry>,
}

impl HostProfile {
    /// Estimated nanoseconds for one category (0 if absent).
    pub fn est_ns(&self, category: &str) -> u64 {
        self.entries
            .iter()
            .find(|e| e.category == category)
            .map_or(0, |e| e.est_ns)
    }

    /// Sum of all attributed category estimates.
    pub fn attributed_ns(&self) -> u64 {
        self.entries.iter().map(|e| e.est_ns).sum()
    }

    /// Category estimates keyed by name, for JSON export.
    pub fn category_ns(&self) -> BTreeMap<String, u64> {
        self.entries
            .iter()
            .map(|e| (e.category.clone(), e.est_ns))
            .collect()
    }

    /// Renders the per-run attribution table: one row per category with
    /// timed calls, estimated total, and share of the attributed time.
    pub fn table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "host-time attribution: {} events, {} sampled (stride {}), wall {:.3} ms",
            self.events,
            self.sampled_events,
            self.stride,
            self.wall_ns as f64 / 1e6,
        );
        let total = self.attributed_ns().max(1) as f64;
        let _ = writeln!(
            out,
            "  {:<18} {:>10} {:>12} {:>7}",
            "category", "calls", "est_ms", "share"
        );
        for e in &self.entries {
            let _ = writeln!(
                out,
                "  {:<18} {:>10} {:>12.3} {:>6.1}%{}",
                e.category,
                e.calls,
                e.est_ns as f64 / 1e6,
                100.0 * e.est_ns as f64 / total,
                if e.exact { " (exact)" } else { "" },
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_accounting_tracks_skipped_events() {
        let mut p = HostProfiler::new(4);
        p.begin_sample(0); // event 1, sampled
        p.begin_sample(3); // events 2-4 skipped, event 5 sampled
        p.add_skipped(2); // events 6-7 end the run before the next sample
        assert_eq!(p.events_seen(), 7);
        assert_eq!(p.report().sampled_events, 2);
    }

    #[test]
    fn handler_time_is_exclusive_of_inner_scopes() {
        let mut p = HostProfiler::new(1);
        p.begin_sample(0);
        p.add_pop(50);
        p.add_send(30, 20);
        p.add_push(10);
        p.end_event("l1", 1_000);
        let r = p.report();
        assert_eq!(r.est_ns("sched.pop"), 50);
        assert_eq!(r.est_ns("net.dispatch"), 30);
        assert_eq!(r.est_ns("sched.push"), 30);
        // 1000 gross − 60 inner = 940 exclusive.
        assert_eq!(r.est_ns("handler.l1"), 940);
    }

    #[test]
    fn report_scales_sampled_categories_by_realized_stride() {
        let mut p = HostProfiler::new(2);
        for skipped in [0, 1] {
            p.begin_sample(skipped);
            p.add_pop(100);
            p.end_event("mem", 100);
        }
        p.add_skipped(1);
        // 4 events, 2 sampled → scale 2×: pop 200 ns sampled → 400 est.
        let r = p.report();
        assert_eq!(r.events, 4);
        assert_eq!(r.sampled_events, 2);
        assert_eq!(r.est_ns("sched.pop"), 400);
    }

    #[test]
    fn sink_scopes_are_exact_and_count_as_inner() {
        let mut p = HostProfiler::new(1);
        p.begin_sample(0);
        p.add_sink("trace", 70);
        p.end_event("seq", 100);
        // Sink time is not scaled and the handler excludes it.
        let r = p.report();
        let sink = r
            .entries
            .iter()
            .find(|e| e.category == "sink.trace")
            .unwrap();
        assert!(sink.exact);
        assert_eq!(sink.est_ns, 70);
        assert_eq!(r.est_ns("handler.seq"), 30);
        // Sink work outside any sampled event still accumulates.
        p.add_sink("conform", 5);
        assert_eq!(p.report().est_ns("sink.conform"), 5);
    }

    #[test]
    fn table_renders_every_category_with_shares() {
        let mut p = HostProfiler::new(1);
        p.begin_sample(0);
        p.add_pop(25);
        p.add_send(10, 15);
        p.end_event("l2", 150);
        let table = p.report().table();
        for needle in [
            "sched.pop",
            "sched.push",
            "net.dispatch",
            "handler.l2",
            "share",
        ] {
            assert!(table.contains(needle), "missing {needle} in:\n{table}");
        }
    }
}
