//! Discrete-event simulation kernel for the TokenCMP coherence simulator.
//!
//! This crate is the lowest layer of the TokenCMP reproduction of
//! *"Improving Multiple-CMP Systems Using Token Coherence"* (HPCA 2005).
//! It knows nothing about caches or coherence: it provides
//!
//! * a picosecond-resolution simulated clock ([`Time`], [`Dur`]),
//! * a deterministic event queue and run loop ([`Kernel`]),
//! * a component abstraction ([`Component`]) with message delivery and
//!   self-scheduled wakeups ([`Ctx`]),
//! * a pluggable message transport ([`Transport`]) so the interconnect
//!   crate can model latency, bandwidth occupancy and traffic accounting,
//! * a statistics registry ([`Stats`], [`Histogram`], [`Ewma`]), and
//! * a deterministic, seedable random number generator ([`Rng`]).
//!
//! Determinism is a hard requirement: given one seed, a simulation is
//! bit-identical across runs. The event queue breaks time ties by insertion
//! sequence number, and no host randomness or wall-clock time is consulted.
//!
//! # Example
//!
//! ```
//! use tokencmp_sim::{Component, Ctx, Dur, Kernel, NodeId};
//!
//! #[derive(Debug)]
//! struct Ping { peer: NodeId, left: u32 }
//!
//! impl Component<u32> for Ping {
//!     fn on_msg(&mut self, _src: NodeId, msg: u32, ctx: &mut Ctx<'_, u32>) {
//!         if self.left > 0 {
//!             self.left -= 1;
//!             ctx.send(self.peer, msg + 1);
//!         }
//!     }
//!     fn on_wake(&mut self, _tag: u64, ctx: &mut Ctx<'_, u32>) {
//!         ctx.send(self.peer, 0);
//!     }
//!     fn as_any(&self) -> &dyn std::any::Any { self }
//!     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
//! }
//!
//! let mut k = Kernel::new_instant();
//! let a = k.add_component(Ping { peer: NodeId(1), left: 3 });
//! let b = k.add_component(Ping { peer: NodeId(0), left: 3 });
//! assert_eq!(a, NodeId(0));
//! k.wake(b, Dur::from_ns(1), 0);
//! k.run_to_completion();
//! ```

pub mod kernel;
pub mod profile;
pub mod queue;
pub mod rng;
pub mod sched;
pub mod stats;
pub mod time;

pub use kernel::{
    Component, Ctx, Delivery, InstantTransport, Kernel, KernelMonitor, NodeId, RunOutcome,
    Transport,
};
pub use profile::{CatTotals, HostProfile, HostProfiler, ProfileEntry, ProfilerHandle};
pub use queue::{EventKind, EventKindRef, EventQueue, PendingEvent, QueuedEvent};
pub use rng::Rng;
pub use sched::{HeapScheduler, Scheduler, SchedulerKind, WheelScheduler};
pub use stats::{Ewma, Histogram, Stats};
pub use time::{Dur, Time};
