//! Pluggable event-scheduler backends.
//!
//! The kernel's pending-event set is managed by a [`Scheduler`]: the
//! reference [`HeapScheduler`] (a binary heap of boxed-enum events, the
//! original implementation) and the fast [`WheelScheduler`] (a calendar
//! timing wheel over compact fixed-size records with slab-pooled message
//! payloads). Both implement the exact same contract:
//!
//! > events leave in ascending `(time, seq)` order — earliest delivery
//! > time first, FIFO by insertion sequence number among same-picosecond
//! > ties — for **every** interleaving of inserts and removals.
//!
//! Because the sequence number is assigned by [`crate::queue::EventQueue`]
//! before the backend ever sees the event, the pop order (and therefore
//! every simulation result downstream) is bit-identical across backends;
//! `tests/scheduler_equivalence.rs` and the differential property suite
//! prove it. The backend is selected per kernel ([`SchedulerKind`]),
//! defaulting to the wheel, with `TOKENCMP_SCHEDULER={heap,wheel}` as the
//! process-wide override.
//!
//! # Wheel geometry
//!
//! The wheel has [`WheelScheduler::BUCKETS`] buckets of
//! [`WheelScheduler::BUCKET_PS`] picoseconds each, covering a sliding
//! window of [`WheelScheduler::HORIZON_PS`] (~1 µs) from the current
//! cursor. An event inside the window lands in bucket
//! `(t / BUCKET_PS) % BUCKETS` in O(1); an event at or beyond the horizon
//! goes to a deterministic overflow min-heap keyed by `(time, seq)`.
//! When the wheel drains, the window jumps forward to the overflow
//! minimum and the in-window prefix of the overflow is redistributed into
//! buckets, so arbitrarily far horizons cost one amortized heap pass.
//! Within a bucket, events are stored as parallel arrays — a 16-byte
//! `(time, seq)` key array and a fixed-size body array holding
//! destination, source and the wake tag or payload-slab slot — kept in
//! lockstep as one binary min-heap over the key array, so the bucket
//! minimum is `keys[0]`, heap sifts compare only dense keys, and the
//! dispatch loop stays in L1 and never chases a pointer. Message
//! payloads live in a free-listed slab and are moved exactly twice: in
//! at insert, out at remove. The scheduler-wide minimum is additionally
//! memoized ([`Cell`]-cached) because the kernel peeks `next_time`
//! before every pop.

use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::OnceLock;

use crate::kernel::NodeId;
use crate::queue::{EventKind, EventKindRef, PendingEvent, QueuedEvent};
use crate::time::Time;

/// Which scheduler backend a kernel uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum SchedulerKind {
    /// The reference binary-heap scheduler ([`HeapScheduler`]).
    Heap,
    /// The calendar timing wheel ([`WheelScheduler`]).
    Wheel,
}

impl SchedulerKind {
    /// Both backends, heap (the reference) first — differential suites
    /// iterate this so a third backend cannot silently skip them.
    pub const ALL: [SchedulerKind; 2] = [SchedulerKind::Heap, SchedulerKind::Wheel];

    /// The default backend when `TOKENCMP_SCHEDULER` is unset.
    pub const DEFAULT: SchedulerKind = SchedulerKind::Wheel;

    /// The knob value naming this backend.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Heap => "heap",
            SchedulerKind::Wheel => "wheel",
        }
    }

    /// Parses a `TOKENCMP_SCHEDULER` value (case-insensitive).
    pub fn parse(s: &str) -> Option<SchedulerKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "heap" => Some(SchedulerKind::Heap),
            "wheel" => Some(SchedulerKind::Wheel),
            _ => None,
        }
    }

    /// The process-wide backend choice: `TOKENCMP_SCHEDULER` if set (a
    /// malformed value panics with the accepted spellings rather than
    /// silently measuring the wrong backend), [`Self::DEFAULT`]
    /// otherwise. Cached after the first read; tests that need a
    /// specific backend pass it explicitly instead of mutating the
    /// environment.
    pub fn from_env() -> SchedulerKind {
        static CHOICE: OnceLock<SchedulerKind> = OnceLock::new();
        *CHOICE.get_or_init(|| match std::env::var("TOKENCMP_SCHEDULER") {
            Ok(v) => SchedulerKind::parse(&v).unwrap_or_else(|| {
                panic!("TOKENCMP_SCHEDULER: `{v}` is not a scheduler; want `heap` or `wheel`")
            }),
            Err(_) => SchedulerKind::DEFAULT,
        })
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The backend contract behind [`crate::queue::EventQueue`].
///
/// Sequence numbers are assigned by the queue (strictly increasing per
/// insert) and define FIFO order among same-time events; implementations
/// must return events in ascending `(time, seq)` order from
/// [`remove_min`](Scheduler::remove_min) regardless of how inserts and
/// removals interleave.
pub trait Scheduler<M> {
    /// Inserts an event carrying an externally assigned sequence number.
    fn insert(&mut self, time: Time, seq: u64, dst: NodeId, kind: EventKind<M>);

    /// Removes and returns the event with the smallest `(time, seq)`.
    fn remove_min(&mut self) -> Option<QueuedEvent<M>>;

    /// Delivery time of the earliest pending event.
    fn next_time(&self) -> Option<Time>;

    /// Number of pending events.
    fn len(&self) -> usize;

    /// True if no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends every pending event to `out`, in unspecified order (the
    /// queue sorts the census; see [`crate::queue::EventQueue::census`]).
    fn collect_pending<'a>(&'a self, out: &mut Vec<PendingEvent<'a, M>>);
}

// ---- reference backend: binary heap ----------------------------------------------

/// The reference scheduler: a `BinaryHeap` of owned events ordered by
/// reversed `(time, seq)`. O(log n) per operation, allocation per
/// message hop — kept as the semantic baseline the wheel is verified
/// against, and selectable via `TOKENCMP_SCHEDULER=heap`.
#[derive(Debug)]
pub struct HeapScheduler<M> {
    heap: BinaryHeap<QueuedEvent<M>>,
}

impl<M> Default for HeapScheduler<M> {
    fn default() -> Self {
        HeapScheduler {
            heap: BinaryHeap::new(),
        }
    }
}

impl<M> Scheduler<M> for HeapScheduler<M> {
    fn insert(&mut self, time: Time, seq: u64, dst: NodeId, kind: EventKind<M>) {
        self.heap.push(QueuedEvent {
            time,
            dst,
            kind,
            seq,
        });
    }

    fn remove_min(&mut self) -> Option<QueuedEvent<M>> {
        self.heap.pop()
    }

    fn next_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn collect_pending<'a>(&'a self, out: &mut Vec<PendingEvent<'a, M>>) {
        out.extend(self.heap.iter().map(PendingEvent::of));
    }
}

// ---- fast backend: calendar timing wheel -----------------------------------------

/// A compact event body: everything but the `(time, seq)` sort key.
/// `arg` is the wake tag for wakeups and the payload-slab slot for
/// messages; `src` is meaningful for messages only.
#[derive(Debug, Clone, Copy)]
struct EvBody {
    dst: u32,
    src: u32,
    arg: u64,
    is_msg: bool,
}

/// One wheel bucket: structure-of-arrays event storage. `keys[i]` and
/// `body[i]` describe the same event; both arrays are kept in lockstep
/// as one binary min-heap ordered by the 16-byte key, so the bucket
/// minimum is `keys[0]` with no scan, and heap sifting compares only
/// the dense key array. An unsorted bucket with a linear min-scan looks
/// cheaper but degrades to O(k²) when a broadcast fans out tens of
/// same-tick messages into one bucket — the common case in coherence
/// runs.
#[derive(Debug)]
struct Bucket {
    keys: Vec<(u64, u64)>,
    body: Vec<EvBody>,
}

impl Bucket {
    const fn new() -> Bucket {
        Bucket {
            keys: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Pushes an event and restores the heap invariant. A same-tick
    /// burst arrives with ascending `seq`, so its sift-up terminates on
    /// the first comparison and the push is O(1) in that common case.
    fn push(&mut self, key: (u64, u64), body: EvBody) {
        self.keys.push(key);
        self.body.push(body);
        let mut i = self.keys.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.keys[i] >= self.keys[parent] {
                break;
            }
            self.keys.swap(i, parent);
            self.body.swap(i, parent);
            i = parent;
        }
    }

    /// Removes and returns the bucket minimum (`keys[0]`).
    fn pop(&mut self) -> ((u64, u64), EvBody) {
        let key = self.keys.swap_remove(0);
        let body = self.body.swap_remove(0);
        let n = self.keys.len();
        let mut i = 0;
        loop {
            let left = 2 * i + 1;
            if left >= n {
                break;
            }
            let right = left + 1;
            let child = if right < n && self.keys[right] < self.keys[left] {
                right
            } else {
                left
            };
            if self.keys[child] >= self.keys[i] {
                break;
            }
            self.keys.swap(i, child);
            self.body.swap(i, child);
            i = child;
        }
        (key, body)
    }
}

/// Occupancy-bitmap words; one bit per wheel bucket. Kept as a plain
/// module const because array lengths cannot mention the generic
/// scheduler's associated consts.
const OCC_WORDS: usize = 1024 / 64;

/// Where the scheduler's current minimum event lives (see
/// [`WheelScheduler::min_entry`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MinLoc {
    /// At the root of the given bucket's in-bucket heap.
    Bucket(usize),
    /// At the head of the far-horizon overflow heap.
    Overflow,
}

/// A memoized minimum: the `(time, seq)` key and where it is parked.
type MinEntry = (u64, u64, MinLoc);

/// An event parked beyond the wheel horizon. Field order gives the
/// derived `Ord` the `(time, seq)` key; `seq` uniqueness makes the order
/// total, so the overflow heap is deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct OverflowRec {
    time: u64,
    seq: u64,
    dst: u32,
    src: u32,
    arg: u64,
    is_msg: bool,
}

/// The calendar-wheel scheduler. See the [module docs](self) for the
/// geometry and the determinism argument.
#[derive(Debug)]
pub struct WheelScheduler<M> {
    buckets: Vec<Bucket>,
    /// One occupancy bit per bucket; `u64::trailing_zeros` finds the
    /// next live bucket without walking empties.
    occ: [u64; OCC_WORDS],
    /// Start of the wheel window, always a multiple of
    /// [`Self::BUCKET_PS`]; the cursor bucket is `win_start / BUCKET_PS
    /// % BUCKETS`. Monotonically non-decreasing.
    win_start: u64,
    /// Events currently in buckets (excludes the overflow heap).
    wheel_live: usize,
    overflow: BinaryHeap<Reverse<OverflowRec>>,
    /// Message-payload slab; `free` lists vacant slots for reuse.
    slots: Vec<Option<M>>,
    free: Vec<u32>,
    /// Memoized current minimum (`None` = unknown, recompute on
    /// demand). The kernel run loop peeks `next_time` before every pop;
    /// without this the wheel would pay its bitmap-and-bucket scan
    /// twice per event where the heap pays an O(1) peek.
    min_cache: Cell<Option<MinEntry>>,
}

impl<M> Default for WheelScheduler<M> {
    fn default() -> Self {
        WheelScheduler {
            buckets: (0..Self::BUCKETS).map(|_| Bucket::new()).collect(),
            occ: [0; OCC_WORDS],
            win_start: 0,
            wheel_live: 0,
            overflow: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            min_cache: Cell::new(None),
        }
    }
}

impl<M> WheelScheduler<M> {
    /// Bucket granularity in picoseconds (~1 ns). Finer events within
    /// one bucket are ordered exactly by the in-bucket heap. Buckets
    /// are deliberately narrow: the steady-state event stream is
    /// network hops, cache lookups and memory responses in the
    /// 0.5–150 ns range, and narrow buckets spread that traffic thin so
    /// in-bucket heaps stay shallow. (Widening buckets to pull µs-scale
    /// workload think times in-window was measured and rejected — it
    /// packs the hot sub-bucket-width traffic into the cursor bucket
    /// and loses more there than it saves on overflow, see
    /// `crates/sim/examples/sched_regimes.rs`.)
    pub const BUCKET_PS: u64 = 1 << Self::BUCKET_BITS;
    /// Number of buckets (one lap of the wheel).
    pub const BUCKETS: usize = 1024;
    /// The wheel window: events this far ahead of the cursor overflow
    /// to the far-horizon heap (~1 µs). Sparse long-delay events —
    /// workload think times, the starvation watchdog — wait there as
    /// compact records and pop directly off the overflow head when
    /// their time comes (the min competition below), so they never
    /// churn through buckets at all.
    pub const HORIZON_PS: u64 = (Self::BUCKETS as u64) << Self::BUCKET_BITS;

    const BUCKET_BITS: u32 = 10;

    #[inline]
    fn bucket_of(t: u64) -> usize {
        ((t >> Self::BUCKET_BITS) as usize) & (Self::BUCKETS - 1)
    }

    #[inline]
    fn cursor(&self) -> usize {
        Self::bucket_of(self.win_start)
    }

    fn alloc_slot(&mut self, msg: M) -> u64 {
        let slot = match self.free.pop() {
            Some(s) => s as usize,
            None => {
                self.slots.push(None);
                self.slots.len() - 1
            }
        };
        self.slots[slot] = Some(msg);
        slot as u64
    }

    fn park(&mut self, time: u64, seq: u64, body: EvBody) {
        // In-window events (including "past" events below the cursor,
        // which only adversarial schedules produce — the kernel never
        // delivers into the past) go to a bucket; the rest overflow.
        let loc = if time < self.win_start {
            // Clamp to the cursor bucket: it is scanned first and the
            // scan orders by full `(time, seq)` key, so an event earlier
            // than everything else still leaves first.
            Some(self.cursor())
        } else if time - self.win_start < Self::HORIZON_PS {
            Some(Self::bucket_of(time))
        } else {
            None
        };
        let loc = match loc {
            Some(idx) => {
                self.buckets[idx].push((time, seq), body);
                self.occ[idx / 64] |= 1 << (idx % 64);
                self.wheel_live += 1;
                MinLoc::Bucket(idx)
            }
            None => {
                self.overflow.push(Reverse(OverflowRec {
                    time,
                    seq,
                    dst: body.dst,
                    src: body.src,
                    arg: body.arg,
                    is_msg: body.is_msg,
                }));
                MinLoc::Overflow
            }
        };
        // Inserting can only lower a known minimum; an unknown one
        // (`None`) stays unknown until the next `min_entry` scan.
        if let Some((t, s, _)) = self.min_cache.get() {
            if (time, seq) < (t, s) {
                self.min_cache.set(Some((time, seq, loc)));
            }
        }
    }

    /// The global minimum — key and location — memoized until the next
    /// structural change. `None` means the scheduler is empty.
    fn min_entry(&self) -> Option<MinEntry> {
        if let Some(m) = self.min_cache.get() {
            return Some(m);
        }
        let wheel = if self.wheel_live == 0 {
            None
        } else {
            let idx = self
                .first_occupied_from(self.cursor())
                .expect("wheel_live > 0");
            let (t, s) = self.buckets[idx].keys[0];
            Some((t, s, MinLoc::Bucket(idx)))
        };
        // The window's forward march can bring an overflow event inside
        // it while the wheel still holds a later event, so the overflow
        // min competes for every observation on the full `(time, seq)`
        // key.
        let over = self
            .overflow
            .peek()
            .map(|&Reverse(r)| (r.time, r.seq, MinLoc::Overflow));
        let min = match (wheel, over) {
            (Some(a), Some(b)) => Some(if (a.0, a.1) <= (b.0, b.1) { a } else { b }),
            (a, b) => a.or(b),
        };
        self.min_cache.set(min);
        min
    }

    /// The first occupied bucket at or (circularly) after `start`, or
    /// `None` if the wheel is empty.
    fn first_occupied_from(&self, start: usize) -> Option<usize> {
        let words = self.occ.len();
        let mut w = start / 64;
        // Mask off bits below `start` in its word; after a full cycle the
        // word is revisited unmasked, covering the circular wrap.
        let mut word = self.occ[w] & (!0u64 << (start % 64));
        for _ in 0..=words {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
            w = (w + 1) % words;
            word = self.occ[w];
        }
        None
    }

    /// Moves the in-window prefix of the overflow heap into buckets
    /// after jumping the window to the overflow minimum. Called only
    /// with an empty wheel.
    fn refill_from_overflow(&mut self) {
        debug_assert_eq!(self.wheel_live, 0);
        // Redistribution moves events between overflow and buckets, so
        // any cached location is stale.
        self.min_cache.set(None);
        let Some(Reverse(min)) = self.overflow.peek() else {
            return;
        };
        // Quantize the window start down to a bucket boundary so bucket
        // mapping stays consistent; never moves the window backwards.
        self.win_start = self.win_start.max(min.time & !(Self::BUCKET_PS - 1));
        while let Some(Reverse(r)) = self.overflow.peek() {
            // saturating: the window may already sit past an overflow
            // event's time (it advances with the cursor while events
            // linger in the far heap) — such events are in-window too.
            if r.time.saturating_sub(self.win_start) >= Self::HORIZON_PS {
                break;
            }
            let Reverse(r) = self.overflow.pop().expect("peeked");
            let idx = if r.time < self.win_start {
                self.cursor() // same clamp as `park`
            } else {
                Self::bucket_of(r.time)
            };
            self.buckets[idx].push(
                (r.time, r.seq),
                EvBody {
                    dst: r.dst,
                    src: r.src,
                    arg: r.arg,
                    is_msg: r.is_msg,
                },
            );
            self.occ[idx / 64] |= 1 << (idx % 64);
            self.wheel_live += 1;
        }
    }

    /// Rehydrates a compact record into an owned event, reclaiming the
    /// payload slab slot for messages.
    fn materialize(&mut self, r: OverflowRec) -> QueuedEvent<M> {
        let kind = if r.is_msg {
            let slot = r.arg as usize;
            let msg = self.slots[slot].take().expect("live payload slot");
            self.free.push(slot as u32);
            EventKind::Msg {
                src: NodeId(r.src),
                msg,
            }
        } else {
            EventKind::Wake { tag: r.arg }
        };
        QueuedEvent {
            time: Time::from_ps(r.time),
            dst: NodeId(r.dst),
            kind,
            seq: r.seq,
        }
    }
}

impl<M> Scheduler<M> for WheelScheduler<M> {
    fn insert(&mut self, time: Time, seq: u64, dst: NodeId, kind: EventKind<M>) {
        let body = match kind {
            EventKind::Wake { tag } => EvBody {
                dst: dst.0,
                src: 0,
                arg: tag,
                is_msg: false,
            },
            EventKind::Msg { src, msg } => {
                let slot = self.alloc_slot(msg);
                EvBody {
                    dst: dst.0,
                    src: src.0,
                    arg: slot,
                    is_msg: true,
                }
            }
        };
        self.park(time.as_ps(), seq, body);
    }

    fn remove_min(&mut self) -> Option<QueuedEvent<M>> {
        if self.wheel_live == 0 {
            // Re-anchor the window on the overflow minimum before
            // popping, otherwise a long beyond-horizon phase would pin
            // the window in the past and degrade the wheel into a
            // slower heap. (Invalidates the cache.)
            self.refill_from_overflow();
        }
        let (_, _, loc) = self.min_entry()?;
        self.min_cache.set(None);
        match loc {
            MinLoc::Overflow => {
                let Reverse(r) = self.overflow.pop().expect("cached overflow head");
                Some(self.materialize(r))
            }
            MinLoc::Bucket(idx) => {
                // Advance the window with the cursor (skipped buckets
                // are empty, so every remaining wheel event stays
                // inside the new window).
                let cur = self.cursor();
                let steps = (idx + Self::BUCKETS - cur) % Self::BUCKETS;
                self.win_start += (steps as u64) << Self::BUCKET_BITS;
                let bucket = &mut self.buckets[idx];
                let ((t, seq), body) = bucket.pop();
                if bucket.keys.is_empty() {
                    self.occ[idx / 64] &= !(1 << (idx % 64));
                }
                self.wheel_live -= 1;
                Some(self.materialize(OverflowRec {
                    time: t,
                    seq,
                    dst: body.dst,
                    src: body.src,
                    arg: body.arg,
                    is_msg: body.is_msg,
                }))
            }
        }
    }

    fn next_time(&self) -> Option<Time> {
        self.min_entry().map(|(t, _, _)| Time::from_ps(t))
    }

    fn len(&self) -> usize {
        self.wheel_live + self.overflow.len()
    }

    fn collect_pending<'a>(&'a self, out: &mut Vec<PendingEvent<'a, M>>) {
        let view = |time: u64, seq: u64, body: &EvBody| PendingEvent {
            time: Time::from_ps(time),
            seq,
            dst: NodeId(body.dst),
            kind: if body.is_msg {
                EventKindRef::Msg {
                    src: NodeId(body.src),
                    msg: self.slots[body.arg as usize]
                        .as_ref()
                        .expect("live payload slot"),
                }
            } else {
                EventKindRef::Wake { tag: body.arg }
            },
        };
        // Walk the occupancy bitmap, not the bucket array: the sampler
        // takes this census every sample period, and a few live events
        // must not cost a 1024-bucket scan.
        for (w, &word) in self.occ.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let bucket = &self.buckets[w * 64 + bits.trailing_zeros() as usize];
                bits &= bits - 1;
                for (&(t, s), body) in bucket.keys.iter().zip(&bucket.body) {
                    out.push(view(t, s, body));
                }
            }
        }
        for Reverse(r) in self.overflow.iter() {
            out.push(view(
                r.time,
                r.seq,
                &EvBody {
                    dst: r.dst,
                    src: r.src,
                    arg: r.arg,
                    is_msg: r.is_msg,
                },
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type W = WheelScheduler<u32>;

    fn drain_tags(s: &mut impl Scheduler<u32>) -> Vec<(u64, u64)> {
        std::iter::from_fn(|| s.remove_min())
            .map(|e| {
                let tag = match e.kind {
                    EventKind::Wake { tag } => tag,
                    EventKind::Msg { msg, .. } => msg as u64,
                };
                (e.time.as_ps(), tag)
            })
            .collect()
    }

    #[test]
    fn kind_parses_and_displays() {
        assert_eq!(SchedulerKind::parse("heap"), Some(SchedulerKind::Heap));
        assert_eq!(SchedulerKind::parse(" WHEEL "), Some(SchedulerKind::Wheel));
        assert_eq!(SchedulerKind::parse("calendar"), None);
        assert_eq!(SchedulerKind::Wheel.to_string(), "wheel");
        assert_eq!(SchedulerKind::DEFAULT, SchedulerKind::Wheel);
    }

    #[test]
    fn wheel_pops_global_order_across_the_horizon_boundary() {
        let mut w = W::default();
        // One event per interesting offset: inside the window, exactly at
        // the horizon (first overflow time), just beyond, and multiple
        // laps out.
        let times = [
            1u64,
            W::HORIZON_PS - 1,
            W::HORIZON_PS,
            W::HORIZON_PS + 1,
            3 * W::HORIZON_PS + 17,
        ];
        for (i, &t) in times.iter().enumerate().rev() {
            w.insert(
                Time::from_ps(t),
                i as u64,
                NodeId(0),
                EventKind::Wake { tag: i as u64 },
            );
        }
        assert_eq!(w.len(), times.len());
        let popped = drain_tags(&mut w);
        let expect: Vec<(u64, u64)> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i as u64))
            .collect();
        assert_eq!(popped, expect);
        assert!(w.is_empty());
    }

    #[test]
    fn same_tick_ties_leave_in_seq_order() {
        let mut w = W::default();
        let t = Time::from_ps(4096);
        for seq in 0..64u64 {
            w.insert(t, seq, NodeId(0), EventKind::Wake { tag: seq });
        }
        let popped = drain_tags(&mut w);
        assert_eq!(popped, (0..64).map(|s| (4096, s)).collect::<Vec<_>>());
    }

    #[test]
    fn past_insert_after_cursor_advance_still_pops_first() {
        let mut w = W::default();
        w.insert(
            Time::from_ps(10_000),
            0,
            NodeId(0),
            EventKind::Wake { tag: 0 },
        );
        w.insert(
            Time::from_ps(20_000),
            1,
            NodeId(0),
            EventKind::Wake { tag: 1 },
        );
        // Advance the cursor to the 10 ns bucket.
        assert_eq!(w.remove_min().unwrap().time, Time::from_ps(10_000));
        // An adversarial "past" insert (earlier than everything pending).
        w.insert(Time::from_ps(5), 2, NodeId(0), EventKind::Wake { tag: 2 });
        assert_eq!(w.next_time(), Some(Time::from_ps(5)));
        assert_eq!(drain_tags(&mut w), vec![(5, 2), (20_000, 1)]);
    }

    #[test]
    fn overflow_refill_is_ordered_across_many_laps() {
        let mut w = W::default();
        // Far-future events scattered over dozens of laps, inserted in a
        // scrambled deterministic order.
        let mut times: Vec<u64> = (0..200u64)
            .map(|i| (i * 37 % 200) * W::HORIZON_PS / 3 + i)
            .collect();
        for (seq, &t) in times.iter().enumerate() {
            w.insert(
                Time::from_ps(t),
                seq as u64,
                NodeId(0),
                EventKind::Wake { tag: seq as u64 },
            );
        }
        let got: Vec<u64> = drain_tags(&mut w).iter().map(|&(t, _)| t).collect();
        times.sort_unstable();
        assert_eq!(got, times);
    }

    #[test]
    fn overflow_min_competes_once_the_window_advances() {
        // Regression: pop a late-window event so the window's forward
        // march swallows the overflow min's time, then add a wheel event
        // *later* than that overflow event. The overflow min must win
        // both next_time and the next pop.
        let mut w = W::default();
        let near_end = W::HORIZON_PS - 1;
        let just_over = W::HORIZON_PS + 2;
        let in_new_window = W::HORIZON_PS + 1023;
        w.insert(
            Time::from_ps(near_end),
            0,
            NodeId(0),
            EventKind::Wake { tag: 0 },
        );
        w.insert(
            Time::from_ps(just_over),
            1,
            NodeId(0),
            EventKind::Wake { tag: 1 },
        );
        assert_eq!(w.remove_min().unwrap().time.as_ps(), near_end);
        w.insert(
            Time::from_ps(in_new_window),
            2,
            NodeId(0),
            EventKind::Wake { tag: 2 },
        );
        assert_eq!(w.next_time(), Some(Time::from_ps(just_over)));
        assert_eq!(drain_tags(&mut w), vec![(just_over, 1), (in_new_window, 2)]);
    }

    #[test]
    fn time_max_adjacent_events_terminate() {
        let mut w = W::default();
        for (seq, t) in [u64::MAX, u64::MAX - 1, u64::MAX - W::HORIZON_PS]
            .into_iter()
            .enumerate()
        {
            w.insert(
                Time::from_ps(t),
                seq as u64,
                NodeId(0),
                EventKind::Wake { tag: seq as u64 },
            );
        }
        assert_eq!(w.next_time(), Some(Time::from_ps(u64::MAX - W::HORIZON_PS)));
        let got = drain_tags(&mut w);
        assert_eq!(
            got,
            vec![
                (u64::MAX - W::HORIZON_PS, 2),
                (u64::MAX - 1, 1),
                (u64::MAX, 0)
            ]
        );
        assert_eq!(w.remove_min().map(|e| e.seq), None);
    }

    #[test]
    fn message_payload_slots_are_reused() {
        let mut w = W::default();
        let mut seq = 0u64;
        for round in 0..100u64 {
            for i in 0..8u32 {
                w.insert(
                    Time::from_ps(round * 100),
                    seq,
                    NodeId(0),
                    EventKind::Msg {
                        src: NodeId(1),
                        msg: i,
                    },
                );
                seq += 1;
            }
            for _ in 0..8 {
                assert!(matches!(
                    w.remove_min().unwrap().kind,
                    EventKind::Msg { .. }
                ));
            }
        }
        // The slab never grew past one round's worth of live payloads.
        assert!(w.slots.len() <= 8, "slab grew to {}", w.slots.len());
        assert_eq!(w.free.len(), w.slots.len());
    }

    #[test]
    fn census_covers_wheel_and_overflow() {
        let mut w = W::default();
        w.insert(Time::from_ps(5), 0, NodeId(3), EventKind::Wake { tag: 9 });
        w.insert(
            Time::from_ps(10 * W::HORIZON_PS),
            1,
            NodeId(4),
            EventKind::Msg {
                src: NodeId(7),
                msg: 42,
            },
        );
        let mut out = Vec::new();
        w.collect_pending(&mut out);
        assert_eq!(out.len(), 2);
        out.sort_by_key(|e| (e.time, e.seq));
        assert!(matches!(out[0].kind, EventKindRef::Wake { tag: 9 }));
        match out[1].kind {
            EventKindRef::Msg { src, msg } => {
                assert_eq!((src, *msg), (NodeId(7), 42));
            }
            _ => panic!("expected message"),
        }
    }
}
