//! Statistics: counters, histograms, exponentially-weighted moving
//! averages, and the mean/standard-error helper the benchmark harnesses use
//! to print error bars (mirroring Alameldeen & Wood's methodology of
//! pseudo-random perturbation across runs).

use std::collections::BTreeMap;
use std::fmt;

use crate::time::Dur;

/// A string-keyed registry of counters and gauges.
///
/// Hot paths should keep local counters in component fields and fold them in
/// at the end of a run; `Stats` is intended for low-frequency events and
/// final aggregation.
///
/// # Example
///
/// ```
/// use tokencmp_sim::Stats;
/// let mut s = Stats::new();
/// s.bump("l1.miss");
/// s.add("l1.miss", 2);
/// assert_eq!(s.counter("l1.miss"), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Stats {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
}

impl Stats {
    /// Creates an empty registry.
    pub fn new() -> Stats {
        Stats::default()
    }

    /// Increments `key` by one.
    pub fn bump(&mut self, key: &str) {
        self.add(key, 1);
    }

    /// Increments `key` by `n`.
    pub fn add(&mut self, key: &str, n: u64) {
        if let Some(c) = self.counters.get_mut(key) {
            *c += n;
        } else {
            self.counters.insert(key.to_owned(), n);
        }
    }

    /// Reads a counter (zero if never written).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Sets a floating-point gauge.
    pub fn set_gauge(&mut self, key: &str, v: f64) {
        self.gauges.insert(key.to_owned(), v);
    }

    /// Reads a gauge, if set.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        self.gauges.get(key).copied()
    }

    /// Iterates counters in sorted key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates gauges in sorted key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Sums all counters whose key starts with `prefix`.
    pub fn counter_prefix_sum(&self, prefix: &str) -> u64 {
        self.counters
            .range(prefix.to_owned()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, &v)| v)
            .sum()
    }

    /// Folds `other` into `self`: counters are summed, gauges are
    /// last-write-wins (`other`'s value replaces an existing gauge).
    ///
    /// This is the end-of-run aggregation primitive: components keep local
    /// stats, the harness merges them into one registry.
    pub fn merge(&mut self, other: &Stats) {
        for (k, v) in other.counters() {
            self.add(k, v);
        }
        for (k, v) in other.gauges() {
            self.set_gauge(k, v);
        }
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.counters {
            writeln!(f, "{k} = {v}")?;
        }
        for (k, v) in &self.gauges {
            writeln!(f, "{k} = {v:.4}")?;
        }
        Ok(())
    }
}

/// A power-of-two bucketed latency histogram.
///
/// Bucket `i` holds samples with `floor(log2(value)) == i` (bucket 0 also
/// holds zero). Tracks count, sum, min and max exactly.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let b = if v == 0 {
            0
        } else {
            63 - v.leading_zeros() as usize
        };
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records a duration sample in picoseconds.
    pub fn record_dur(&mut self, d: Dur) {
        self.record(d.as_ps());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (zero if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample (`None` if empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` if empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// An upper bound for the `q`-quantile (`0.0..=1.0`), accurate to a
    /// power-of-two bucket and never outside the observed `[min, max]`
    /// range (a raw bucket boundary can overshoot the true maximum —
    /// e.g. 1023 for samples `1..=1000`).
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target.max(1) {
                let bound = if i >= 63 { u64::MAX } else { (2u64 << i) - 1 };
                return Some(bound.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Folds `other` into `self` bucket-by-bucket; the result is exactly
    /// the histogram that would have recorded both sample streams.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, &o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }
}

/// An exponentially-weighted moving average, used for the transient-request
/// timeout threshold (§4: TokenCMP sets the threshold from *memory*
/// response latencies only).
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Ewma {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        Ewma { alpha, value: None }
    }

    /// Folds in an observation.
    pub fn observe(&mut self, x: f64) {
        self.value = Some(match self.value {
            None => x,
            Some(v) => v + self.alpha * (x - v),
        });
    }

    /// Current average, if any observation has been made.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Current average or `default` before the first observation.
    pub fn value_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }
}

/// Sample mean and standard error of the mean; the harnesses report
/// `mean ± 1.96·stderr` as 95 % error bars over seeds.
///
/// Returns `(0.0, 0.0)` for an empty slice and stderr `0.0` for one sample.
pub fn mean_stderr(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    if xs.len() < 2 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
    (mean, (var / n).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new();
        s.bump("a");
        s.bump("a");
        s.add("b", 5);
        assert_eq!(s.counter("a"), 2);
        assert_eq!(s.counter("b"), 5);
        assert_eq!(s.counter("missing"), 0);
    }

    #[test]
    fn prefix_sum_selects_only_prefix() {
        let mut s = Stats::new();
        s.add("net.inter.data", 10);
        s.add("net.inter.ctrl", 5);
        s.add("net.intra.data", 100);
        assert_eq!(s.counter_prefix_sum("net.inter."), 15);
        assert_eq!(s.counter_prefix_sum("net."), 115);
        assert_eq!(s.counter_prefix_sum("nope"), 0);
    }

    #[test]
    fn gauges_round_trip() {
        let mut s = Stats::new();
        s.set_gauge("speedup", 1.5);
        assert_eq!(s.gauge("speedup"), Some(1.5));
        assert_eq!(s.gauge("x"), None);
    }

    #[test]
    fn histogram_basic_moments() {
        let mut h = Histogram::new();
        for v in [1, 2, 3, 4] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean(), 2.5);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(4));
    }

    #[test]
    fn histogram_handles_zero_and_large() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
    }

    #[test]
    fn stats_merge_sums_counters_and_overwrites_gauges() {
        let mut a = Stats::new();
        a.add("x", 3);
        a.add("only_a", 1);
        a.set_gauge("g", 1.0);
        a.set_gauge("only_a_gauge", 7.0);
        let mut b = Stats::new();
        b.add("x", 4);
        b.add("only_b", 2);
        b.set_gauge("g", 2.5);
        a.merge(&b);
        assert_eq!(a.counter("x"), 7);
        assert_eq!(a.counter("only_a"), 1);
        assert_eq!(a.counter("only_b"), 2);
        assert_eq!(a.gauge("g"), Some(2.5)); // last write wins
        assert_eq!(a.gauge("only_a_gauge"), Some(7.0));
        // b is untouched
        assert_eq!(b.counter("x"), 4);
    }

    #[test]
    fn stats_merge_empty_is_identity() {
        let mut a = Stats::new();
        a.add("k", 9);
        let before: Vec<_> = a.counters().map(|(k, v)| (k.to_string(), v)).collect();
        a.merge(&Stats::new());
        let after: Vec<_> = a.counters().map(|(k, v)| (k.to_string(), v)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn merge_into_empty_copies_everything() {
        let mut src = Stats::new();
        src.add("c", 4);
        src.set_gauge("g", 2.5);
        let mut dst = Stats::new();
        dst.merge(&src);
        assert_eq!(dst.counter("c"), 4);
        assert_eq!(dst.gauge("g"), Some(2.5));
        assert_eq!(
            dst.counters().collect::<Vec<_>>(),
            src.counters().collect::<Vec<_>>()
        );
    }

    #[test]
    fn merge_disjoint_keys_is_a_union() {
        let mut a = Stats::new();
        a.add("token.persistent", 3);
        let mut b = Stats::new();
        b.add("dir.forward", 8);
        b.set_gauge("dir.occupancy", 0.5);
        a.merge(&b);
        assert_eq!(a.counters().count(), 2);
        assert_eq!(a.counter("token.persistent"), 3);
        assert_eq!(a.counter("dir.forward"), 8);
        assert_eq!(a.gauge("dir.occupancy"), Some(0.5));
    }

    #[test]
    fn histogram_merge_of_empty_histograms_stays_empty() {
        let mut a = Histogram::new();
        a.merge(&Histogram::new());
        assert_eq!(a.count(), 0);
        assert_eq!(a.min(), None);
        assert_eq!(a.max(), None);
        assert_eq!(a.quantile_upper_bound(0.5), None);
    }

    #[test]
    fn histogram_merge_disjoint_ranges_preserves_quantile_bounds() {
        // Two latency populations that never overlap: merging must keep
        // p50 inside the low population's bucket and p99 inside the
        // high one's, both clamped to the observed [min, max].
        let mut low = Histogram::new();
        let mut high = Histogram::new();
        for _ in 0..100 {
            low.record(10);
            high.record(1_000_000);
        }
        low.merge(&high);
        assert_eq!(low.count(), 200);
        assert_eq!(low.min(), Some(10));
        assert_eq!(low.max(), Some(1_000_000));
        let p50 = low.quantile_upper_bound(0.5).unwrap();
        let p99 = low.quantile_upper_bound(0.99).unwrap();
        // p50 lands in 10's power-of-two bucket [8, 15]; p99 in the high
        // population's bucket, clamped to the true max.
        assert!((10..=15).contains(&p50), "p50 bound {p50}");
        assert_eq!(p99, 1_000_000);
        assert!(p50 <= p99);
    }

    #[test]
    fn histogram_merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [0u64, 1, 5, 100, 1 << 40] {
            a.record(v);
            both.record(v);
        }
        for v in [2u64, 7, 7, 3000] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.sum(), both.sum());
        assert_eq!(a.min(), both.min());
        assert_eq!(a.max(), both.max());
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(a.quantile_upper_bound(q), both.quantile_upper_bound(q));
        }
        // merging an empty histogram is the identity
        let count = a.count();
        a.merge(&Histogram::new());
        assert_eq!(a.count(), count);
    }

    #[test]
    fn quantile_upper_bound_never_exceeds_observed_range() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // bucket bound for q=1.0 would be 1023; the observed max is 1000
        assert_eq!(h.quantile_upper_bound(1.0), Some(1000));
        let mut z = Histogram::new();
        z.record(0);
        // bucket 0's raw bound is 1; the only sample is 0
        assert_eq!(z.quantile_upper_bound(0.5), Some(0));
        let mut one = Histogram::new();
        one.record(700);
        assert_eq!(one.quantile_upper_bound(0.5), Some(700));
    }

    #[test]
    fn quantile_upper_bound_is_monotone() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let q50 = h.quantile_upper_bound(0.5).unwrap();
        let q99 = h.quantile_upper_bound(0.99).unwrap();
        assert!(q50 <= q99);
        assert!(q50 >= 500); // upper bound property
        assert!(Histogram::new().quantile_upper_bound(0.5).is_none());
    }

    #[test]
    fn ewma_converges_toward_constant_input() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        assert_eq!(e.value_or(9.0), 9.0);
        for _ in 0..32 {
            e.observe(10.0);
        }
        assert!((e.value().unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_first_observation_is_exact() {
        let mut e = Ewma::new(0.1);
        e.observe(42.0);
        assert_eq!(e.value(), Some(42.0));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn mean_stderr_known_values() {
        let (m, se) = mean_stderr(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        // sample var = 1, stderr = sqrt(1/3)
        assert!((se - (1.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(mean_stderr(&[]), (0.0, 0.0));
        assert_eq!(mean_stderr(&[5.0]), (5.0, 0.0));
    }
}
