//! Deterministic pseudo-random number generation.
//!
//! The simulator must be bit-reproducible from a seed, so we keep a small
//! in-tree generator rather than depending on an external crate whose stream
//! might change between versions. The generator is xoshiro256\*\* seeded via
//! SplitMix64 (the construction recommended by its authors).

/// A seedable, deterministic PRNG (xoshiro256\*\*).
///
/// Not cryptographically secure; used only for workload perturbation and
/// pseudo-random protocol backoff, mirroring the paper's methodology of
/// pseudo-randomly perturbing simulations.
///
/// # Example
///
/// ```
/// use tokencmp_sim::Rng;
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Rng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derives an independent child generator; useful for giving each
    /// processor its own stream from one experiment seed.
    pub fn fork(&mut self, salt: u64) -> Rng {
        Rng::new(self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        r
    }

    /// Uniform value in `[0, n)` using Lemire's unbiased method.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Widening-multiply rejection sampling (unbiased).
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let lo = m as u64;
            if lo >= n || lo >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform value in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    #[inline]
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng::new(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            let v = r.below(8);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn range_inclusive_hits_both_ends() {
        let mut r = Rng::new(4);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2_000 {
            match r.range_inclusive(5, 9) {
                5 => lo_seen = true,
                9 => hi_seen = true,
                v => assert!((5..=9).contains(&v)),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn uniform_in_unit_interval_with_plausible_mean() {
        let mut r = Rng::new(5);
        let mut sum = 0.0;
        const N: usize = 10_000;
        for _ in 0..N {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / N as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(6);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut parent = Rng::new(8);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn pick_returns_slice_element() {
        let mut r = Rng::new(9);
        let xs = [10, 20, 30];
        for _ in 0..50 {
            assert!(xs.contains(r.pick(&xs)));
        }
    }
}
