//! Scheduler regime matrix: per-op cost of each backend across queue
//! regimes (depth × delta distribution × payload kind).
//!
//! This is the experiment behind the wheel's geometry choices (see the
//! constant docs in `sim::sched` and DESIGN.md §14): the `fine` regime
//! exposed the unsorted-bucket O(k²) burst pathology that motivated the
//! in-bucket lockstep min-heaps, and comparing `fine` against `bimodal`
//! under different bucket widths showed narrow 1 ns buckets (with µs
//! think times relegated to the overflow heap) beating wide buckets
//! that cover think times in-window.
//!
//! Run with `cargo run --release -p tokencmp-sim --example sched_regimes`.

use std::time::Instant;

use tokencmp_sim::{EventKind, EventQueue, NodeId, SchedulerKind, Time};

type Payload = [u64; 5]; // TokenMsg-sized

fn run(kind: SchedulerKind, depth: u64, deltas: &[u64], msgs: bool) -> f64 {
    let mut q: EventQueue<Payload> = EventQueue::with_backend(kind);
    let mut lcg: u64 = 0x9E3779B97F4A7C15 ^ depth;
    let mut step = || {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        lcg >> 33
    };
    for i in 0..depth {
        let d = deltas[(step() % deltas.len() as u64) as usize];
        q.push(
            Time::from_ps(d),
            NodeId((i % 16) as u32),
            EventKind::Wake { tag: i },
        );
    }
    let pops = 2_000_000u64;
    let start = Instant::now();
    for _ in 0..pops {
        let ev = q.pop().unwrap();
        let d = deltas[(step() % deltas.len() as u64) as usize];
        let t = Time::from_ps(ev.time.as_ps() + d);
        if msgs {
            q.push(
                t,
                ev.dst,
                EventKind::Msg {
                    src: ev.dst,
                    msg: [1, 2, 3, 4, 5],
                },
            );
        } else {
            q.push(t, ev.dst, EventKind::Wake { tag: 0 });
        }
    }
    start.elapsed().as_nanos() as f64 / pops as f64
}

fn main() {
    // ps deltas: "fine" = link/cache latencies, "think" = µs sleeps.
    let fine: Vec<u64> = vec![500, 1000, 2400, 10_000, 80_000, 150_000];
    let mut bimodal = fine.clone();
    bimodal.push(3_000_000); // 3 µs think time, 1 in 7 draws
    let uniform: Vec<u64> = (0..64).map(|i| i * 131_072 + 500).collect();
    for (dname, deltas) in [
        ("fine", &fine),
        ("bimodal", &bimodal),
        ("uniform", &uniform),
    ] {
        for depth in [16u64, 64, 512] {
            for msgs in [false, true] {
                let h = run(SchedulerKind::Heap, depth, deltas, msgs);
                let w = run(SchedulerKind::Wheel, depth, deltas, msgs);
                println!(
                    "{dname:8} depth={depth:<4} {} heap={h:6.1} wheel={w:6.1} ns/op ({:.2}x)",
                    if msgs { "msg " } else { "wake" },
                    h / w
                );
            }
        }
    }
}
