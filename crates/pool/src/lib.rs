//! Minimal deterministic worker pool shared by the sweep engine and the
//! model checker.
//!
//! The whole crate is one primitive — [`par_map_threads`] — plus the
//! thread-count policy ([`default_threads`] / [`parse_threads`]) that
//! every parallel consumer in the workspace shares. It deliberately
//! depends on nothing but `std`: the model checker (`tokencmp-mcheck`)
//! sits at the foundation of the crate graph and must not pull in the
//! simulator stack just to borrow a thread pool, while the sweep engine
//! (`tokencmp-sweep`) re-exports these functions unchanged so existing
//! callers keep compiling.
//!
//! The determinism contract: work is claimed dynamically (an atomic
//! cursor, so uneven item costs balance across workers), but each item
//! writes its result into a pre-assigned slot indexed by submission
//! order. Output order is therefore input order for any thread count,
//! which is what lets both the sweep engine and the parallel model
//! checker promise bit-identical results regardless of scheduling.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The number of worker threads [`par_map`] uses: the
/// `TOKENCMP_SWEEP_THREADS` environment variable if set to a positive
/// integer, otherwise [`std::thread::available_parallelism`]. A malformed
/// value aborts with a clear message instead of silently falling back —
/// a typo'd thread count should never masquerade as a measurement knob.
pub fn default_threads() -> usize {
    match parse_threads(std::env::var("TOKENCMP_SWEEP_THREADS").ok().as_deref()) {
        Ok(Some(n)) => n,
        Ok(None) => std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
}

/// Parses a `TOKENCMP_SWEEP_THREADS` value (`None` = variable unset,
/// which means "use available parallelism"). Separated from
/// [`default_threads`] so malformed inputs are unit-testable without
/// exercising a process exit.
pub fn parse_threads(var: Option<&str>) -> Result<Option<usize>, String> {
    let Some(raw) = var else {
        return Ok(None);
    };
    let v = raw.trim();
    if v.is_empty() {
        return Err(
            "TOKENCMP_SWEEP_THREADS is set but empty; unset it or give a positive \
             worker count"
                .into(),
        );
    }
    match v.parse::<usize>() {
        Ok(0) => {
            Err("TOKENCMP_SWEEP_THREADS must be at least 1 (0 workers cannot run anything)".into())
        }
        Ok(n) => Ok(Some(n)),
        Err(_) => Err(format!(
            "TOKENCMP_SWEEP_THREADS: `{raw}` is not a positive integer"
        )),
    }
}

/// Applies `f` to every item on a scoped worker pool and returns the
/// results **in input order** (the deterministic core of the engine,
/// usable for any independent fan-out, e.g. model-checking runs).
///
/// Work is distributed dynamically (an atomic cursor), so uneven item
/// costs balance across workers; output order is still input order
/// because each item writes to its pre-assigned slot. A panic in `f`
/// propagates after all workers finish.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    par_map_threads(items, default_threads(), f)
}

/// [`par_map`] with an explicit worker count (`threads <= 1` runs
/// inline, sequentially).
pub fn par_map_threads<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let jobs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = jobs[i].lock().unwrap().take().expect("job claimed twice");
                let result = f(item);
                *slots[i].lock().unwrap() = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .expect("worker exited before filling its slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        // Uneven costs: big items finish last on any schedule; order must
        // still be input order.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map_threads(items.clone(), 8, |x| {
            if x.is_multiple_of(7) {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_single_thread_is_sequential() {
        let out = par_map_threads(vec![1, 2, 3], 1, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn par_map_propagates_worker_panics() {
        let _ = par_map_threads(vec![0u32, 1, 2, 3], 2, |x| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn parse_threads_accepts_counts_and_unset() {
        assert_eq!(parse_threads(None).unwrap(), None);
        assert_eq!(parse_threads(Some("1")).unwrap(), Some(1));
        assert_eq!(parse_threads(Some(" 8 ")).unwrap(), Some(8));
    }

    #[test]
    fn parse_threads_rejects_malformed_values_with_clear_messages() {
        for (input, expect) in [
            ("", "set but empty"),
            ("  ", "set but empty"),
            ("0", "at least 1"),
            ("junk", "not a positive integer"),
            ("-2", "not a positive integer"),
            ("1.5", "not a positive integer"),
        ] {
            let err = parse_threads(Some(input)).expect_err(&format!("`{input}` must be rejected"));
            assert!(
                err.contains("TOKENCMP_SWEEP_THREADS") && err.contains(expect),
                "`{input}` -> `{err}` (expected to mention `{expect}`)"
            );
        }
    }
}
