//! The barrier micro-benchmark (Table 2, Table 4).
//!
//! Processors perform local work (3000 ns, optionally ± U(1000 ns)), then
//! enter a sense-reversing barrier: acquire a lock and increment a count
//! *in the same cache block*; non-last processors release and spin on a
//! flag in another block; the last processor resets the count, reverses
//! the sense, and releases. 100 rounds (configurable).

use tokencmp_proto::{AccessKind, Block, ProcId};
use tokencmp_sim::{Dur, Rng, Time};
use tokencmp_system::{uniform_work, Completed, Step, Workload};

/// Lock + counter share this block (as in the paper).
const LOCK_COUNT_BLOCK: Block = Block(0x20_000);
/// The sense flag lives in a different block.
const FLAG_BLOCK: Block = Block(0x20_040);

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Working,
    TestLock,
    SpinLock,
    SetLock,
    Increment,
    /// Release after incrementing (not the last arriver).
    ReleaseThenSpin,
    /// Check the flag after a release or a watch firing.
    TestFlag,
    SpinFlag,
    /// Last arriver: write the flag (reverse sense), then release.
    FlipFlag,
    ReleaseLast,
    Finished,
}

/// The Table 2 sense-reversing barrier benchmark.
#[derive(Debug)]
pub struct BarrierWorkload {
    procs: u32,
    rounds: u32,
    work: Dur,
    jitter: Dur,
    // Barrier state (the "values" of the shared blocks).
    lock_holder: Option<ProcId>,
    count: u32,
    sense: bool,
    // Per-processor state.
    phase: Vec<Phase>,
    local_sense: Vec<bool>,
    round: Vec<u32>,
    rng: Vec<Rng>,
    /// Completed barrier episodes (validation: == procs × rounds).
    pub passes: u64,
}

impl BarrierWorkload {
    /// Creates the benchmark: `rounds` barriers with `work` local work,
    /// uniformly jittered by ±`jitter`.
    pub fn new(procs: u32, rounds: u32, work: Dur, jitter: Dur, seed: u64) -> BarrierWorkload {
        let mut root = Rng::new(seed);
        BarrierWorkload {
            procs,
            rounds,
            work,
            jitter,
            lock_holder: None,
            count: 0,
            sense: false,
            phase: vec![Phase::Working; procs as usize],
            local_sense: vec![false; procs as usize],
            round: vec![0; procs as usize],
            rng: (0..procs).map(|i| root.fork(i as u64)).collect(),
            passes: 0,
        }
    }

    fn lock_load(&mut self, p: usize) -> Step {
        self.phase[p] = Phase::TestLock;
        Step::Access {
            kind: AccessKind::Load,
            block: LOCK_COUNT_BLOCK,
        }
    }

    fn passed(&mut self, p: usize) -> Step {
        self.passes += 1;
        self.round[p] += 1;
        if self.round[p] >= self.rounds {
            self.phase[p] = Phase::Finished;
            Step::Done
        } else {
            self.phase[p] = Phase::Working;
            let d = uniform_work(self.work, self.jitter, &mut self.rng[p]);
            Step::Think(d)
        }
    }
}

impl Workload for BarrierWorkload {
    fn next(&mut self, proc: ProcId, _now: Time, completed: Option<Completed>) -> Step {
        let p = proc.0 as usize;
        match self.phase[p] {
            Phase::Working => {
                if completed.is_none() && self.round[p] == 0 && self.local_sense[p] == self.sense {
                    // First entry for this processor: do the initial work.
                    // (Distinguished from the post-think call by phase
                    // transition below.)
                }
                // Work finished (or first entry): enter the barrier.
                if self.round[p] == 0 && completed.is_none() && self.phase[p] == Phase::Working {
                    // On the very first call we still need to do the work
                    // think; flip into TestLock so the next call enters.
                    self.phase[p] = Phase::TestLock;
                    let d = uniform_work(self.work, self.jitter, &mut self.rng[p]);
                    return Step::Think(d);
                }
                self.lock_load(p)
            }
            Phase::TestLock => match completed {
                None => Step::Access {
                    kind: AccessKind::Load,
                    block: LOCK_COUNT_BLOCK,
                },
                Some(_) => {
                    if self.lock_holder.is_none() {
                        self.phase[p] = Phase::SetLock;
                        Step::Access {
                            kind: AccessKind::Atomic,
                            block: LOCK_COUNT_BLOCK,
                        }
                    } else {
                        self.phase[p] = Phase::SpinLock;
                        Step::SpinUntil {
                            block: LOCK_COUNT_BLOCK,
                        }
                    }
                }
            },
            Phase::SpinLock => {
                self.phase[p] = Phase::TestLock;
                Step::Access {
                    kind: AccessKind::Load,
                    block: LOCK_COUNT_BLOCK,
                }
            }
            Phase::SetLock => {
                if self.lock_holder.is_none() {
                    self.lock_holder = Some(proc);
                    self.phase[p] = Phase::Increment;
                    // Increment the count (same block; a store hit).
                    Step::Access {
                        kind: AccessKind::Store,
                        block: LOCK_COUNT_BLOCK,
                    }
                } else {
                    self.phase[p] = Phase::SpinLock;
                    Step::SpinUntil {
                        block: LOCK_COUNT_BLOCK,
                    }
                }
            }
            Phase::Increment => {
                self.count += 1;
                if self.count == self.procs {
                    // Last arriver: reset, reverse the sense, release.
                    self.count = 0;
                    self.phase[p] = Phase::FlipFlag;
                    Step::Access {
                        kind: AccessKind::Store,
                        block: FLAG_BLOCK,
                    }
                } else {
                    self.phase[p] = Phase::ReleaseThenSpin;
                    Step::Access {
                        kind: AccessKind::Store,
                        block: LOCK_COUNT_BLOCK,
                    }
                }
            }
            Phase::ReleaseThenSpin => {
                assert_eq!(self.lock_holder, Some(proc), "release without lock");
                self.lock_holder = None;
                self.phase[p] = Phase::TestFlag;
                Step::Access {
                    kind: AccessKind::Load,
                    block: FLAG_BLOCK,
                }
            }
            Phase::TestFlag => match completed {
                None => Step::Access {
                    kind: AccessKind::Load,
                    block: FLAG_BLOCK,
                },
                Some(_) => {
                    if self.sense != self.local_sense[p] {
                        // Sense reversed: barrier passed.
                        self.local_sense[p] = self.sense;
                        self.passed(p)
                    } else {
                        self.phase[p] = Phase::SpinFlag;
                        Step::SpinUntil { block: FLAG_BLOCK }
                    }
                }
            },
            Phase::SpinFlag => {
                self.phase[p] = Phase::TestFlag;
                Step::Access {
                    kind: AccessKind::Load,
                    block: FLAG_BLOCK,
                }
            }
            Phase::FlipFlag => {
                // Flag store completed: reverse the shared sense.
                self.sense = !self.sense;
                self.phase[p] = Phase::ReleaseLast;
                Step::Access {
                    kind: AccessKind::Store,
                    block: LOCK_COUNT_BLOCK,
                }
            }
            Phase::ReleaseLast => {
                assert_eq!(self.lock_holder, Some(proc), "release without lock");
                self.lock_holder = None;
                self.local_sense[p] = self.sense;
                self.passed(p)
            }
            Phase::Finished => Step::Done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tokencmp_core::Variant;
    use tokencmp_proto::SystemConfig;
    use tokencmp_sim::RunOutcome;
    use tokencmp_system::{run_workload, Protocol, RunOptions};

    fn exercise(protocol: Protocol, jitter: Dur) {
        let cfg = SystemConfig::small_test();
        let procs = cfg.layout().procs();
        let w = BarrierWorkload::new(procs, 5, Dur::from_ns(3000), jitter, 13);
        let (res, w) = run_workload(&cfg, protocol, w, &RunOptions::default());
        assert_eq!(res.outcome, RunOutcome::Idle, "{protocol} deadlocked");
        assert_eq!(w.passes, 5 * procs as u64, "{protocol}: missed passes");
        // 5 rounds of ≥ 2000 ns work each bound the runtime from below.
        assert!(res.runtime_ns() >= 5.0 * 2000.0);
    }

    #[test]
    fn fixed_work_all_protocols() {
        for proto in [
            Protocol::Token(Variant::Arb0),
            Protocol::Token(Variant::Dst0),
            Protocol::Token(Variant::Dst4),
            Protocol::Token(Variant::Dst1),
            Protocol::Token(Variant::Dst1Pred),
            Protocol::Token(Variant::Dst1Filt),
            Protocol::Directory,
            Protocol::DirectoryZero,
            Protocol::PerfectL2,
        ] {
            exercise(proto, Dur::ZERO);
        }
    }

    #[test]
    fn jittered_work() {
        exercise(Protocol::Token(Variant::Dst1), Dur::from_ns(1000));
        exercise(Protocol::Directory, Dur::from_ns(1000));
    }
}
