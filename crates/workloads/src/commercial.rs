//! Synthetic commercial workloads (substituting for the paper's Apache,
//! OLTP and SPECjbb full-system runs — see DESIGN.md).
//!
//! Each processor executes a transaction loop: optionally acquire a lock
//! (test-and-test-and-set), perform a mix of memory operations — private
//! data, shared read-only data, *migratory* read-modify-write data,
//! instruction fetches — then release. The per-workload parameter presets
//! differ in exactly the dimension the paper says drives its Figure 6
//! result: the fraction of misses that are sharing misses (directory
//! indirections), highest for OLTP, lowest for SPECjbb.

use tokencmp_proto::{AccessKind, Block, ProcId, SystemConfig};
use tokencmp_sim::{Dur, Rng, Time};
use tokencmp_system::{Completed, Step, Workload};

const PRIVATE_BASE: u64 = 0x100_0000;
const SHARED_BASE: u64 = 0x200_0000;
const MIGRATORY_BASE: u64 = 0x300_0000;
const LOCK_BASE: u64 = 0x400_0000;
const CODE_BASE: u64 = 0x500_0000;

/// Parameters of a synthetic commercial workload.
#[derive(Clone, Copy, Debug)]
pub struct CommercialParams {
    /// Workload name (for reports).
    pub name: &'static str,
    /// Transactions per processor.
    pub txns_per_proc: u32,
    /// Memory operations per transaction.
    pub ops_per_txn: u32,
    /// Non-memory work between operations.
    pub think_per_op: Dur,
    /// Hot private working-set blocks per processor (sized to mostly hit
    /// in the L1 once warm, as commercial private data does).
    pub private_blocks: u64,
    /// Cold private region per processor (streamed through rarely; always
    /// misses and creates L2 pressure and writebacks).
    pub private_cold_blocks: u64,
    /// Probability a private access goes to the cold region.
    pub private_cold_prob: f64,
    /// Read-mostly shared blocks.
    pub shared_read_blocks: u64,
    /// Migratory (read-modify-write) shared blocks.
    pub migratory_blocks: u64,
    /// Lock blocks.
    pub locks: u64,
    /// Shared code blocks (instruction fetches).
    pub code_blocks: u64,
    /// Probability an operation touches private data.
    pub mix_private: f64,
    /// Probability an operation is a shared read.
    pub mix_shared_read: f64,
    /// Probability an operation is a migratory read-modify-write pair.
    pub mix_migratory: f64,
    /// Probability an operation is an instruction fetch (remaining mass
    /// also goes to private data).
    pub mix_ifetch: f64,
    /// Probability a transaction is lock-protected.
    pub lock_probability: f64,
    /// Fraction of private accesses that are stores.
    pub private_store_fraction: f64,
}

impl CommercialParams {
    /// OLTP (DB2/TPC-C-like): the most sharing-intensive — frequent
    /// migratory read-modify-write rows and hot locks.
    pub fn oltp() -> CommercialParams {
        CommercialParams {
            name: "OLTP",
            txns_per_proc: 100,
            ops_per_txn: 60,
            think_per_op: Dur::from_ns(10),
            private_blocks: 1280,
            private_cold_blocks: 65536,
            private_cold_prob: 0.20,
            shared_read_blocks: 8192,
            migratory_blocks: 256,
            locks: 64,
            code_blocks: 512,
            mix_private: 0.52,
            mix_shared_read: 0.14,
            mix_migratory: 0.19,
            mix_ifetch: 0.15,
            lock_probability: 0.6,
            private_store_fraction: 0.3,
        }
    }

    /// Apache (static web serving): moderate sharing, read-mostly shared
    /// document/metadata structures.
    pub fn apache() -> CommercialParams {
        CommercialParams {
            name: "Apache",
            txns_per_proc: 100,
            ops_per_txn: 60,
            think_per_op: Dur::from_ns(10),
            private_blocks: 1280,
            private_cold_blocks: 65536,
            private_cold_prob: 0.05,
            shared_read_blocks: 16384,
            migratory_blocks: 128,
            locks: 32,
            code_blocks: 1024,
            mix_private: 0.76,
            mix_shared_read: 0.11,
            mix_migratory: 0.015,
            mix_ifetch: 0.10,
            lock_probability: 0.12,
            private_store_fraction: 0.3,
        }
    }

    /// SPECjbb (Java middleware): dominated by private warehouse data;
    /// the least sharing.
    pub fn specjbb() -> CommercialParams {
        CommercialParams {
            name: "SpecJBB",
            txns_per_proc: 100,
            ops_per_txn: 60,
            think_per_op: Dur::from_ns(10),
            private_blocks: 1536,
            private_cold_blocks: 65536,
            private_cold_prob: 0.02,
            shared_read_blocks: 4096,
            migratory_blocks: 48,
            locks: 16,
            code_blocks: 512,
            mix_private: 0.91,
            mix_shared_read: 0.02,
            mix_migratory: 0.0,
            mix_ifetch: 0.07,
            lock_probability: 0.02,
            private_store_fraction: 0.3,
        }
    }

    /// All three presets, in the paper's Figure 6 order.
    pub fn all() -> [CommercialParams; 3] {
        [Self::oltp(), Self::apache(), Self::specjbb()]
    }

    /// The system configuration commercial runs use: Table 3, with the
    /// shared L2 scaled down to 512 kB per chip so the synthetic footprint
    /// stands in the same capacity relationship to the L2 as the paper's
    /// multi-gigabyte commercial footprints did to its 8 MB L2 (the
    /// simulations are minutes, not the paper's billions of warm-up
    /// instructions — scaling the cache preserves the miss/writeback
    /// behaviour; see DESIGN.md).
    pub fn scaled_config(base: &SystemConfig) -> SystemConfig {
        SystemConfig {
            l2_sets: 512, // 4 banks x 512 sets x 4 ways x 64 B = 512 kB/chip
            ..base.clone()
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    TxnStart,
    LockTest {
        lock: u64,
    },
    LockSpin {
        lock: u64,
    },
    LockSet {
        lock: u64,
    },
    /// Think completed; issue the next operation.
    OpIssue,
    /// An ordinary operation is outstanding.
    OpWait,
    /// The load half of a migratory pair completed; store next.
    MigStore {
        block: Block,
    },
    Release {
        lock: u64,
    },
    Finished,
}

#[derive(Debug)]
struct ProcState {
    phase: Phase,
    txns: u32,
    ops: u32,
    holding: Option<u64>,
}

/// A synthetic commercial workload instance.
#[derive(Debug)]
pub struct CommercialWorkload {
    params: CommercialParams,
    procs: Vec<ProcState>,
    lock_holder: Vec<Option<ProcId>>,
    mig_pending: Vec<Option<Block>>,
    rng: Vec<Rng>,
    /// Completed transactions (validation: == procs × txns_per_proc).
    pub transactions: u64,
}

impl CommercialWorkload {
    /// Creates the workload for `procs` processors.
    pub fn new(procs: u32, params: CommercialParams, seed: u64) -> CommercialWorkload {
        let mut root = Rng::new(seed ^ params.name.len() as u64);
        CommercialWorkload {
            lock_holder: vec![None; params.locks as usize],
            procs: (0..procs)
                .map(|_| ProcState {
                    phase: Phase::TxnStart,
                    txns: 0,
                    ops: 0,
                    holding: None,
                })
                .collect(),
            mig_pending: vec![None; procs as usize],
            rng: (0..procs).map(|i| root.fork(i as u64)).collect(),
            params,
            transactions: 0,
        }
    }

    /// The workload's name.
    pub fn name(&self) -> &'static str {
        self.params.name
    }

    fn lock_block(lock: u64) -> Block {
        Block(LOCK_BASE + lock)
    }

    fn issue_op(&mut self, p: usize, proc: ProcId) -> Step {
        let pr = &self.params;
        let r = self.rng[p].uniform();
        let (kind, block) = if r < pr.mix_migratory {
            let b = Block(MIGRATORY_BASE + self.rng[p].below(pr.migratory_blocks));
            // Read-modify-write: load now, store on completion.
            self.procs[p].phase = Phase::OpWait;
            return self.start_migratory(p, b);
        } else if r < pr.mix_migratory + pr.mix_shared_read {
            (
                AccessKind::Load,
                Block(SHARED_BASE + self.rng[p].below(pr.shared_read_blocks)),
            )
        } else if r < pr.mix_migratory + pr.mix_shared_read + pr.mix_ifetch {
            (
                AccessKind::IFetch,
                Block(CODE_BASE + self.rng[p].below(pr.code_blocks)),
            )
        } else {
            let kind = if self.rng[p].chance(pr.private_store_fraction) {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
            let (region, base_off) = if self.rng[p].chance(pr.private_cold_prob) {
                (pr.private_cold_blocks, 0x80_0000)
            } else {
                (pr.private_blocks, 0)
            };
            (
                kind,
                Block(PRIVATE_BASE + base_off + proc.0 as u64 * region + self.rng[p].below(region)),
            )
        };
        self.procs[p].phase = Phase::OpWait;
        Step::Access { kind, block }
    }

    fn start_migratory(&mut self, p: usize, block: Block) -> Step {
        // Read-modify-write: the pending store half is issued when the
        // load completes (see `Phase::OpWait`).
        self.procs[p].phase = Phase::OpWait;
        self.mig_pending[p] = Some(block);
        Step::Access {
            kind: AccessKind::Load,
            block,
        }
    }

    fn after_op(&mut self, p: usize, proc: ProcId) -> Step {
        let st = &mut self.procs[p];
        st.ops += 1;
        if st.ops < self.params.ops_per_txn {
            st.phase = Phase::OpIssue;
            return Step::Think(self.params.think_per_op);
        }
        // Transaction body done.
        if let Some(lock) = st.holding {
            st.phase = Phase::Release { lock };
            return Step::Access {
                kind: AccessKind::Store,
                block: Self::lock_block(lock),
            };
        }
        self.end_txn(p, proc)
    }

    fn end_txn(&mut self, p: usize, _proc: ProcId) -> Step {
        self.transactions += 1;
        let st = &mut self.procs[p];
        st.txns += 1;
        st.ops = 0;
        if st.txns >= self.params.txns_per_proc {
            st.phase = Phase::Finished;
            Step::Done
        } else {
            st.phase = Phase::TxnStart;
            Step::Think(self.params.think_per_op)
        }
    }
}

impl Workload for CommercialWorkload {
    fn next(&mut self, proc: ProcId, _now: Time, completed: Option<Completed>) -> Step {
        let p = proc.0 as usize;
        match self.procs[p].phase {
            Phase::TxnStart => {
                if self.rng[p].chance(self.params.lock_probability) {
                    let lock = self.rng[p].below(self.params.locks);
                    self.procs[p].phase = Phase::LockTest { lock };
                    Step::Access {
                        kind: AccessKind::Load,
                        block: Self::lock_block(lock),
                    }
                } else {
                    self.procs[p].phase = Phase::OpIssue;
                    self.issue_op(p, proc)
                }
            }
            Phase::LockTest { lock } => match completed {
                None => Step::Access {
                    kind: AccessKind::Load,
                    block: Self::lock_block(lock),
                },
                Some(_) => {
                    if self.lock_holder[lock as usize].is_none() {
                        self.procs[p].phase = Phase::LockSet { lock };
                        Step::Access {
                            kind: AccessKind::Atomic,
                            block: Self::lock_block(lock),
                        }
                    } else {
                        self.procs[p].phase = Phase::LockSpin { lock };
                        Step::SpinUntil {
                            block: Self::lock_block(lock),
                        }
                    }
                }
            },
            Phase::LockSpin { lock } => {
                self.procs[p].phase = Phase::LockTest { lock };
                Step::Access {
                    kind: AccessKind::Load,
                    block: Self::lock_block(lock),
                }
            }
            Phase::LockSet { lock } => {
                if self.lock_holder[lock as usize].is_none() {
                    self.lock_holder[lock as usize] = Some(proc);
                    self.procs[p].holding = Some(lock);
                    self.procs[p].phase = Phase::OpIssue;
                    self.issue_op(p, proc)
                } else {
                    self.procs[p].phase = Phase::LockSpin { lock };
                    Step::SpinUntil {
                        block: Self::lock_block(lock),
                    }
                }
            }
            Phase::OpIssue => self.issue_op(p, proc),
            Phase::OpWait => {
                let c = completed.expect("operation must complete");
                if c.kind == AccessKind::Load {
                    if let Some(b) = self.mig_pending[p].take() {
                        if b == c.block {
                            self.procs[p].phase = Phase::MigStore { block: b };
                            return Step::Access {
                                kind: AccessKind::Store,
                                block: b,
                            };
                        }
                    }
                }
                self.after_op(p, proc)
            }
            Phase::MigStore { .. } => self.after_op(p, proc),
            Phase::Release { lock } => {
                assert_eq!(
                    self.lock_holder[lock as usize],
                    Some(proc),
                    "released a lock we do not hold"
                );
                self.lock_holder[lock as usize] = None;
                self.procs[p].holding = None;
                self.end_txn(p, proc)
            }
            Phase::Finished => Step::Done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tokencmp_core::Variant;
    use tokencmp_proto::SystemConfig;
    use tokencmp_sim::RunOutcome;
    use tokencmp_system::{run_workload, Protocol, RunOptions};

    fn quick(params: CommercialParams) -> CommercialParams {
        CommercialParams {
            txns_per_proc: 4,
            ops_per_txn: 10,
            private_blocks: 256,
            ..params
        }
    }

    #[test]
    fn oltp_runs_on_token_and_directory() {
        let cfg = SystemConfig::small_test();
        let procs = cfg.layout().procs();
        for proto in [
            Protocol::Token(Variant::Dst1),
            Protocol::Directory,
            Protocol::PerfectL2,
        ] {
            let w = CommercialWorkload::new(procs, quick(CommercialParams::oltp()), 3);
            let (res, w) = run_workload(&cfg, proto, w, &RunOptions::default());
            assert_eq!(res.outcome, RunOutcome::Idle, "{proto}");
            assert_eq!(w.transactions, 4 * procs as u64);
        }
    }

    #[test]
    fn presets_are_ordered_by_sharing_intensity() {
        let [oltp, apache, jbb] = CommercialParams::all();
        assert!(oltp.mix_migratory > apache.mix_migratory);
        assert!(apache.mix_migratory > jbb.mix_migratory);
        assert!(oltp.lock_probability > jbb.lock_probability);
        assert_eq!(oltp.name, "OLTP");
    }

    #[test]
    fn all_presets_complete_on_dst1() {
        let cfg = SystemConfig::small_test();
        let procs = cfg.layout().procs();
        for params in CommercialParams::all() {
            let w = CommercialWorkload::new(procs, quick(params), 9);
            let (res, w) = run_workload(
                &cfg,
                Protocol::Token(Variant::Dst1),
                w,
                &RunOptions::default(),
            );
            assert_eq!(res.outcome, RunOutcome::Idle, "{}", params.name);
            assert_eq!(w.transactions, 4 * procs as u64);
        }
    }
}
