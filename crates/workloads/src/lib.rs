//! # Workloads (Table 2 of the paper)
//!
//! * [`LockingWorkload`] — the locking micro-benchmark: random
//!   test-and-test-and-set acquisitions with 10 ns think/hold times,
//!   contention controlled by the lock count.
//! * [`BarrierWorkload`] — the sense-reversing barrier micro-benchmark:
//!   work, lock-protected counter increment (same cache block as the
//!   lock), spin on a flag in another block, 100 rounds.
//! * [`CommercialWorkload`] — synthetic stand-ins for the paper's
//!   Apache / OLTP / SPECjbb commercial workloads (see DESIGN.md for the
//!   substitution argument): transaction loops mixing private accesses,
//!   shared read-only data, migratory read-modify-write data, lock
//!   acquisitions and instruction fetches, with per-workload mixes.
//!
//! All workloads double as correctness oracles: they panic on mutual
//! exclusion or barrier-ordering violations.

pub mod barrier;
pub mod commercial;
pub mod locking;

pub use barrier::BarrierWorkload;
pub use commercial::{CommercialParams, CommercialWorkload};
pub use locking::LockingWorkload;
