//! The locking micro-benchmark (Table 2).
//!
//! Each processor thinks for 10 ns, acquires a random lock (different from
//! the last lock it acquired) with test-and-test-and-set, holds it for
//! 10 ns, releases it, and repeats until it has performed a fixed number
//! of acquires. Contention is varied by the number of locks (2 = high,
//! 512 = low).
//!
//! The workload also acts as a protocol correctness oracle: acquisition
//! outcomes are decided at atomic-completion instants (totally ordered by
//! the single-writer invariant), and the workload panics if mutual
//! exclusion is ever violated.

use tokencmp_proto::{AccessKind, Block, ProcId};
use tokencmp_sim::{Dur, Rng, Time};
use tokencmp_system::{Completed, Step, Workload};

/// Where lock blocks live in the address space (distinct cache blocks,
/// spread across banks and homes).
const LOCK_BASE: u64 = 0x10_000;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// About to start (or just released): think, then pick a lock.
    Think,
    /// Test: load the lock word.
    Testing { lock: u32 },
    /// Loaded it held: spinning until the line changes hands.
    Spinning { lock: u32 },
    /// Test-and-set issued.
    Setting { lock: u32 },
    /// Holding the lock: after the hold time, release.
    Holding { lock: u32 },
    /// Release store issued.
    Releasing { lock: u32 },
    /// Quota reached.
    Finished,
}

/// The Table 2 locking micro-benchmark.
#[derive(Debug)]
pub struct LockingWorkload {
    locks: u32,
    acquires_per_proc: u32,
    think: Dur,
    hold: Dur,
    holder: Vec<Option<ProcId>>,
    phase: Vec<Phase>,
    last_lock: Vec<Option<u32>>,
    acquired: Vec<u32>,
    rng: Vec<Rng>,
    /// Total successful acquires (for validation).
    pub total_acquires: u64,
    /// Test-and-set attempts that found the lock already held.
    pub failed_tas: u64,
}

impl LockingWorkload {
    /// Creates the benchmark for `procs` processors and `locks` locks,
    /// with `acquires_per_proc` acquisitions each and the paper's 10 ns
    /// think and hold times.
    ///
    /// # Panics
    ///
    /// Panics if `locks < 2` (a processor must be able to pick a lock
    /// different from its last).
    pub fn new(procs: u32, locks: u32, acquires_per_proc: u32, seed: u64) -> LockingWorkload {
        assert!(locks >= 2, "need at least two locks");
        let mut root = Rng::new(seed);
        LockingWorkload {
            locks,
            acquires_per_proc,
            think: Dur::from_ns(10),
            hold: Dur::from_ns(10),
            holder: vec![None; locks as usize],
            phase: vec![Phase::Think; procs as usize],
            last_lock: vec![None; procs as usize],
            acquired: vec![0; procs as usize],
            rng: (0..procs).map(|i| root.fork(i as u64)).collect(),
            total_acquires: 0,
            failed_tas: 0,
        }
    }

    fn lock_block(lock: u32) -> Block {
        Block(LOCK_BASE + lock as u64)
    }

    fn pick_lock(&mut self, p: usize) -> u32 {
        loop {
            let l = self.rng[p].below(self.locks as u64) as u32;
            if self.last_lock[p] != Some(l) {
                return l;
            }
        }
    }
}

impl Workload for LockingWorkload {
    fn next(&mut self, proc: ProcId, _now: Time, completed: Option<Completed>) -> Step {
        let p = proc.0 as usize;
        match self.phase[p] {
            Phase::Think => {
                // Entry point: think, then test the chosen lock.
                let lock = self.pick_lock(p);
                self.last_lock[p] = Some(lock);
                self.phase[p] = Phase::Testing { lock };
                Step::Think(self.think)
            }
            Phase::Testing { lock } => {
                match completed {
                    None => {
                        // Think finished (or spin watch fired): issue the
                        // test load.
                        Step::Access {
                            kind: AccessKind::Load,
                            block: Self::lock_block(lock),
                        }
                    }
                    Some(c) => {
                        debug_assert_eq!(c.kind, AccessKind::Load);
                        if self.holder[lock as usize].is_none() {
                            // Looks free: attempt the set.
                            self.phase[p] = Phase::Setting { lock };
                            Step::Access {
                                kind: AccessKind::Atomic,
                                block: Self::lock_block(lock),
                            }
                        } else {
                            // Held: spin in cache until the line leaves.
                            self.phase[p] = Phase::Spinning { lock };
                            Step::SpinUntil {
                                block: Self::lock_block(lock),
                            }
                        }
                    }
                }
            }
            Phase::Spinning { lock } => {
                // Watch fired: re-test.
                self.phase[p] = Phase::Testing { lock };
                Step::Access {
                    kind: AccessKind::Load,
                    block: Self::lock_block(lock),
                }
            }
            Phase::Setting { lock } => {
                let c = completed.expect("atomic must complete");
                debug_assert_eq!(c.kind, AccessKind::Atomic);
                match self.holder[lock as usize] {
                    None => {
                        // Acquired. Mutual exclusion holds by construction
                        // (single-writer ordering of atomic completions).
                        self.holder[lock as usize] = Some(proc);
                        self.total_acquires += 1;
                        self.phase[p] = Phase::Holding { lock };
                        Step::Think(self.hold)
                    }
                    Some(other) => {
                        assert_ne!(other, proc, "re-acquired a held lock");
                        self.failed_tas += 1;
                        self.phase[p] = Phase::Spinning { lock };
                        Step::SpinUntil {
                            block: Self::lock_block(lock),
                        }
                    }
                }
            }
            Phase::Holding { lock } => {
                // Hold time over: release.
                self.phase[p] = Phase::Releasing { lock };
                Step::Access {
                    kind: AccessKind::Store,
                    block: Self::lock_block(lock),
                }
            }
            Phase::Releasing { lock } => {
                let c = completed.expect("release must complete");
                debug_assert_eq!(c.kind, AccessKind::Store);
                assert_eq!(
                    self.holder[lock as usize],
                    Some(proc),
                    "released a lock we do not hold"
                );
                self.holder[lock as usize] = None;
                self.acquired[p] += 1;
                if self.acquired[p] >= self.acquires_per_proc {
                    self.phase[p] = Phase::Finished;
                    Step::Done
                } else {
                    let lock = self.pick_lock(p);
                    self.last_lock[p] = Some(lock);
                    self.phase[p] = Phase::Testing { lock };
                    Step::Think(self.think)
                }
            }
            Phase::Finished => Step::Done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tokencmp_core::Variant;
    use tokencmp_proto::SystemConfig;
    use tokencmp_sim::RunOutcome;
    use tokencmp_system::{run_workload, Protocol, RunOptions};

    fn exercise(protocol: Protocol, locks: u32) {
        let cfg = SystemConfig::small_test();
        let procs = cfg.layout().procs();
        let w = LockingWorkload::new(procs, locks, 8, 42);
        let (res, w) = run_workload(&cfg, protocol, w, &RunOptions::default());
        assert_eq!(res.outcome, RunOutcome::Idle, "{protocol} deadlocked");
        assert_eq!(
            w.total_acquires,
            8 * procs as u64,
            "{protocol}: wrong acquire count"
        );
        assert!(res.runtime_ns() > 0.0);
    }

    #[test]
    fn high_contention_two_locks_all_protocols() {
        for proto in [
            Protocol::Token(Variant::Arb0),
            Protocol::Token(Variant::Dst0),
            Protocol::Token(Variant::Dst4),
            Protocol::Token(Variant::Dst1),
            Protocol::Token(Variant::Dst1Pred),
            Protocol::Token(Variant::Dst1Filt),
            Protocol::Directory,
            Protocol::DirectoryZero,
            Protocol::PerfectL2,
        ] {
            exercise(proto, 2);
        }
    }

    #[test]
    fn low_contention_many_locks() {
        exercise(Protocol::Token(Variant::Dst1), 64);
        exercise(Protocol::Directory, 64);
    }

    #[test]
    fn contention_raises_failed_tas() {
        let cfg = SystemConfig::small_test();
        let procs = cfg.layout().procs();
        let run = |locks| {
            let w = LockingWorkload::new(procs, locks, 12, 7);
            let (_, w) = run_workload(
                &cfg,
                Protocol::Token(Variant::Dst1),
                w,
                &RunOptions::default(),
            );
            w.failed_tas
        };
        // Not strictly monotone, but 2 locks must generate substantially
        // more failed test-and-sets than 64 locks.
        assert!(run(2) >= run(64));
    }

    #[test]
    #[should_panic(expected = "at least two locks")]
    fn rejects_single_lock() {
        let _ = LockingWorkload::new(4, 1, 1, 0);
    }
}
