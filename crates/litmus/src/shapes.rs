//! The classic litmus shapes (herd/diy naming), over variables
//! `x = v0`, `y = v1`.
//!
//! Each constructor attaches the shape's textbook *forbidden* outcome —
//! the observation pattern sequential consistency rules out but weaker
//! models (TSO store buffering, non-multi-copy-atomic fabrics) admit.
//! The SC oracle does not need these predicates; they label histograms
//! and seed the mutation tests that prove the oracle can fail.

use crate::ir::{Op, Predicate, Program};

const X: usize = 0;
const Y: usize = 1;

fn st(var: usize, value: u64) -> Op {
    Op::Store { var, value }
}

fn ld(var: usize) -> Op {
    Op::Load { var }
}

/// Store buffering (Dekker): both threads store then read the other's
/// variable. Forbidden: both loads read the initial value — the classic
/// TSO-visible reordering a store buffer introduces.
pub fn sb() -> Program {
    Program::new("SB", vec![vec![st(X, 1), ld(Y)], vec![st(Y, 1), ld(X)]]).with_forbidden(
        Predicate {
            loads: vec![(0, 1, 0), (1, 1, 0)],
            final_mem: vec![(X, 1), (Y, 1)],
        },
    )
}

/// Message passing: data then flag; the reader sees the flag but not the
/// data. Forbidden: `r(y)=1, r(x)=0`.
pub fn mp() -> Program {
    Program::new("MP", vec![vec![st(X, 1), st(Y, 1)], vec![ld(Y), ld(X)]]).with_forbidden(
        Predicate {
            loads: vec![(1, 0, 1), (1, 1, 0)],
            final_mem: vec![],
        },
    )
}

/// Load buffering: each thread loads one variable then stores the other.
/// Forbidden: both loads observe the other thread's (program-later)
/// store — a causality cycle.
pub fn lb() -> Program {
    Program::new("LB", vec![vec![ld(X), st(Y, 1)], vec![ld(Y), st(X, 1)]]).with_forbidden(
        Predicate {
            loads: vec![(0, 0, 1), (1, 0, 1)],
            final_mem: vec![],
        },
    )
}

/// Independent reads of independent writes: two writers, two readers
/// disagreeing on the order of the writes. Forbidden: reader 2 sees
/// `x` before `y`, reader 3 sees `y` before `x` — the canonical
/// multi-copy-atomicity test, and the shape most sensitive to the
/// inter-CMP broadcast races this repo's protocols navigate.
pub fn iriw() -> Program {
    Program::new(
        "IRIW",
        vec![
            vec![st(X, 1)],
            vec![st(Y, 1)],
            vec![ld(X), ld(Y)],
            vec![ld(Y), ld(X)],
        ],
    )
    .with_forbidden(Predicate {
        loads: vec![(2, 0, 1), (2, 1, 0), (3, 0, 1), (3, 1, 0)],
        final_mem: vec![],
    })
}

/// Coherence read-read: two program-ordered reads of one variable must
/// not observe its coherence order backwards. Forbidden: new value then
/// old value.
pub fn corr() -> Program {
    Program::new("CoRR", vec![vec![st(X, 1)], vec![ld(X), ld(X)]]).with_forbidden(Predicate {
        loads: vec![(1, 0, 1), (1, 1, 0)],
        final_mem: vec![],
    })
}

/// Coherence write-write: two program-ordered writes to one variable
/// must settle in program order. Forbidden: the first write survives.
pub fn coww() -> Program {
    Program::new("CoWW", vec![vec![st(X, 1), st(X, 2)]]).with_forbidden(Predicate {
        loads: vec![],
        final_mem: vec![(X, 1)],
    })
}

/// Write-to-read causality: T1 reads T0's write then writes its own;
/// T2 sees T1's write but not T0's. Forbidden: causality chain broken
/// (`r(x)=1` in T1, `r(y)=1, r(x)=0` in T2).
pub fn wrc() -> Program {
    Program::new(
        "WRC",
        vec![vec![st(X, 1)], vec![ld(X), st(Y, 1)], vec![ld(Y), ld(X)]],
    )
    .with_forbidden(Predicate {
        loads: vec![(1, 0, 1), (2, 0, 1), (2, 1, 0)],
        final_mem: vec![],
    })
}

/// 2+2W: both threads write both variables in opposite orders.
/// Forbidden: each variable keeps the *first* write of one thread —
/// a coherence-order cycle with program order.
pub fn two_plus_two_w() -> Program {
    Program::new(
        "2+2W",
        vec![vec![st(X, 1), st(Y, 2)], vec![st(Y, 1), st(X, 2)]],
    )
    .with_forbidden(Predicate {
        loads: vec![],
        final_mem: vec![(X, 1), (Y, 1)],
    })
}

/// All eight classic shapes, in a stable order.
pub fn classic_shapes() -> Vec<Program> {
    vec![
        sb(),
        mp(),
        lb(),
        iriw(),
        corr(),
        coww(),
        wrc(),
        two_plus_two_w(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;

    #[test]
    fn eight_shapes_with_stable_names() {
        let names: Vec<String> = classic_shapes().into_iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec!["SB", "MP", "LB", "IRIW", "CoRR", "CoWW", "WRC", "2+2W"]
        );
    }

    #[test]
    fn every_forbidden_predicate_is_truly_sc_forbidden() {
        // No SC-reachable outcome may satisfy a shape's forbidden
        // predicate — otherwise the predicate (or the shape) is wrong.
        for p in classic_shapes() {
            let forbidden = p.forbidden.clone().unwrap();
            for o in oracle::enumerate_outcomes(&p) {
                assert!(
                    !forbidden.matches(&o),
                    "{}: SC admits 'forbidden' outcome {o}",
                    p.name
                );
            }
        }
    }

    #[test]
    fn every_shape_admits_at_least_two_outcomes_or_is_deterministic() {
        for p in classic_shapes() {
            let outcomes = oracle::enumerate_outcomes(&p);
            assert!(!outcomes.is_empty(), "{}", p.name);
            if p.name == "CoWW" {
                // Single-threaded: exactly one SC outcome.
                assert_eq!(outcomes.len(), 1);
            } else {
                assert!(outcomes.len() >= 2, "{} admits {}", p.name, outcomes.len());
            }
        }
    }
}
