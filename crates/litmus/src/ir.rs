//! The litmus-test intermediate representation.
//!
//! A litmus test is a handful of threads, each a straight-line program of
//! loads and stores over a few shared variables, plus (optionally) the
//! classic "forbidden" outcome the shape is named for. Variables are
//! abstract indices `0..vars`; the adapter maps them onto cache blocks
//! spread across L2 banks and home chips (see [`crate::adapter`]).
//!
//! Every load has an implicit observed-value register, identified by its
//! `(thread, op index)` position; an [`Outcome`] records the value each
//! register observed plus the final memory image, and the SC oracle
//! ([`crate::oracle`]) classifies the pair as SC-allowed or forbidden.

use std::fmt;

/// One straight-line operation of a litmus thread.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Op {
    /// Read variable `var` into this position's observed-value register.
    Load {
        /// Variable index.
        var: usize,
    },
    /// Write `value` to variable `var`.
    Store {
        /// Variable index.
        var: usize,
        /// Value written. Must be nonzero (zero is the initial value) and
        /// unique among the stores to `var`, so observations identify
        /// their writer unambiguously.
        value: u64,
    },
}

impl Op {
    /// The variable this operation touches.
    pub fn var(&self) -> usize {
        match *self {
            Op::Load { var } | Op::Store { var, .. } => var,
        }
    }

    /// True for loads.
    pub fn is_load(&self) -> bool {
        matches!(self, Op::Load { .. })
    }
}

/// One expected register observation of a [`Predicate`]: thread, op
/// index, observed value.
pub type RegExpect = (usize, usize, u64);

/// A final-state predicate: the conjunction of register observations and
/// final-memory values that the shape's *forbidden* (non-SC) outcome
/// exhibits. Used to label histograms and to seed mutation tests; the
/// oracle itself needs no predicate — it classifies any outcome.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Predicate {
    /// Expected register observations.
    pub loads: Vec<RegExpect>,
    /// Expected final values, as `(var, value)` pairs.
    pub final_mem: Vec<(usize, u64)>,
}

impl Predicate {
    /// True if `outcome` satisfies every conjunct.
    pub fn matches(&self, outcome: &Outcome) -> bool {
        self.loads
            .iter()
            .all(|&(t, i, v)| outcome.loads[t][i] == Some(v))
            && self
                .final_mem
                .iter()
                .all(|&(var, v)| outcome.final_mem[var] == v)
    }
}

/// A litmus test: named threads of straight-line loads/stores.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Program {
    /// Shape name (`"SB"`, `"IRIW"`, `"rand-42"`, ...).
    pub name: String,
    /// Per-thread operation lists.
    pub threads: Vec<Vec<Op>>,
    /// The shape's classic forbidden outcome, if it has one.
    pub forbidden: Option<Predicate>,
    vars: usize,
}

impl Program {
    /// Creates a program, inferring the variable count.
    ///
    /// # Panics
    ///
    /// Panics if the program is malformed: no threads, no operations, a
    /// store of value zero, or two stores of the same value to the same
    /// variable (observed values must identify their writer).
    pub fn new(name: impl Into<String>, threads: Vec<Vec<Op>>) -> Program {
        let name = name.into();
        assert!(!threads.is_empty(), "{name}: a litmus test needs threads");
        assert!(
            threads.iter().any(|t| !t.is_empty()),
            "{name}: a litmus test needs operations"
        );
        let vars = threads
            .iter()
            .flatten()
            .map(|op| op.var() + 1)
            .max()
            .unwrap_or(0);
        let mut seen: Vec<Vec<u64>> = vec![Vec::new(); vars];
        for op in threads.iter().flatten() {
            if let Op::Store { var, value } = *op {
                assert!(value != 0, "{name}: store of 0 to v{var} (0 is initial)");
                assert!(
                    !seen[var].contains(&value),
                    "{name}: duplicate store of {value} to v{var}"
                );
                seen[var].push(value);
            }
        }
        Program {
            name,
            threads,
            forbidden: None,
            vars,
        }
    }

    /// Attaches the shape's classic forbidden outcome.
    pub fn with_forbidden(mut self, forbidden: Predicate) -> Program {
        for &(t, i, _) in &forbidden.loads {
            assert!(
                self.threads
                    .get(t)
                    .and_then(|ops| ops.get(i))
                    .is_some_and(Op::is_load),
                "{}: predicate register ({t},{i}) is not a load",
                self.name
            );
        }
        for &(var, _) in &forbidden.final_mem {
            assert!(
                var < self.vars,
                "{}: predicate var v{var} unused",
                self.name
            );
        }
        self.forbidden = Some(forbidden);
        self
    }

    /// Number of distinct variables (indices `0..vars`).
    pub fn vars(&self) -> usize {
        self.vars
    }

    /// Total operations across all threads.
    pub fn ops(&self) -> usize {
        self.threads.iter().map(Vec::len).sum()
    }

    /// Every value the program can leave in `var`: the initial zero plus
    /// each stored value (the SC oracle's value-domain prune).
    pub fn value_domain(&self, var: usize) -> Vec<u64> {
        let mut d = vec![0];
        for op in self.threads.iter().flatten() {
            if let Op::Store { var: v, value } = *op {
                if v == var {
                    d.push(value);
                }
            }
        }
        d
    }

    /// An empty [`Outcome`] template matching this program's shape.
    pub fn blank_outcome(&self) -> Outcome {
        Outcome {
            loads: self.threads.iter().map(|t| vec![None; t.len()]).collect(),
            final_mem: vec![0; self.vars],
        }
    }

    /// Checks that `outcome` has this program's shape: one `Some` per
    /// load, one `None` per store, `vars` final-memory cells.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatch.
    pub fn validate_outcome(&self, outcome: &Outcome) -> Result<(), String> {
        if outcome.loads.len() != self.threads.len() {
            return Err(format!(
                "{}: outcome has {} threads, program has {}",
                self.name,
                outcome.loads.len(),
                self.threads.len()
            ));
        }
        for (t, (ops, obs)) in self.threads.iter().zip(&outcome.loads).enumerate() {
            if ops.len() != obs.len() {
                return Err(format!(
                    "{}: thread {t} has {} ops but {} observations",
                    self.name,
                    ops.len(),
                    obs.len()
                ));
            }
            for (i, (op, o)) in ops.iter().zip(obs).enumerate() {
                if op.is_load() != o.is_some() {
                    return Err(format!(
                        "{}: ({t},{i}) is {op:?} but observation is {o:?}",
                        self.name
                    ));
                }
            }
        }
        if outcome.final_mem.len() != self.vars {
            return Err(format!(
                "{}: outcome has {} memory cells, program has {}",
                self.name,
                outcome.final_mem.len(),
                self.vars
            ));
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:", self.name)?;
        for (t, ops) in self.threads.iter().enumerate() {
            write!(f, " T{t}[")?;
            for (i, op) in ops.iter().enumerate() {
                if i > 0 {
                    f.write_str("; ")?;
                }
                match op {
                    Op::Load { var } => write!(f, "r=v{var}")?,
                    Op::Store { var, value } => write!(f, "v{var}={value}")?,
                }
            }
            f.write_str("]")?;
        }
        Ok(())
    }
}

/// What one simulated (or enumerated) execution of a [`Program`]
/// observed: a value per load register, plus the final memory image.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Outcome {
    /// `loads[t][i]` is the value thread `t`'s op `i` observed (`Some`
    /// exactly for loads).
    pub loads: Vec<Vec<Option<u64>>>,
    /// `final_mem[var]` is the variable's value at quiescence.
    pub final_mem: Vec<u64>,
}

impl Outcome {
    /// A compact, histogram-friendly rendering: every register
    /// observation, then the final memory image.
    pub fn key(&self) -> String {
        let mut s = String::new();
        for (t, obs) in self.loads.iter().enumerate() {
            for (i, o) in obs.iter().enumerate() {
                if let Some(v) = o {
                    if !s.is_empty() {
                        s.push(' ');
                    }
                    s.push_str(&format!("{t}:{i}={v}"));
                }
            }
        }
        if !s.is_empty() {
            s.push(' ');
        }
        s.push_str("mem=[");
        for (var, v) in self.final_mem.iter().enumerate() {
            if var > 0 {
                s.push(',');
            }
            s.push_str(&v.to_string());
        }
        s.push(']');
        s
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mp() -> Program {
        Program::new(
            "MP",
            vec![
                vec![
                    Op::Store { var: 0, value: 1 },
                    Op::Store { var: 1, value: 1 },
                ],
                vec![Op::Load { var: 1 }, Op::Load { var: 0 }],
            ],
        )
    }

    #[test]
    fn program_infers_vars_and_counts_ops() {
        let p = mp();
        assert_eq!(p.vars(), 2);
        assert_eq!(p.ops(), 4);
        assert_eq!(p.value_domain(0), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "duplicate store")]
    fn duplicate_store_values_rejected() {
        Program::new(
            "bad",
            vec![vec![
                Op::Store { var: 0, value: 1 },
                Op::Store { var: 0, value: 1 },
            ]],
        );
    }

    #[test]
    #[should_panic(expected = "0 is initial")]
    fn zero_store_rejected() {
        Program::new("bad", vec![vec![Op::Store { var: 0, value: 0 }]]);
    }

    #[test]
    fn outcome_validation_checks_shape() {
        let p = mp();
        let mut o = p.blank_outcome();
        assert!(p.validate_outcome(&o).is_err(), "loads unobserved");
        o.loads[1] = vec![Some(1), Some(0)];
        assert!(p.validate_outcome(&o).is_ok());
        o.loads[0][0] = Some(9);
        let err = p.validate_outcome(&o).unwrap_err();
        assert!(err.contains("(0,0)"), "{err}");
    }

    #[test]
    fn outcome_key_is_stable_and_readable() {
        let p = mp();
        let mut o = p.blank_outcome();
        o.loads[1] = vec![Some(1), Some(0)];
        o.final_mem = vec![1, 1];
        assert_eq!(o.key(), "1:0=1 1:1=0 mem=[1,1]");
        assert_eq!(o.to_string(), o.key());
    }

    #[test]
    fn predicate_matches_its_outcome() {
        let p = mp().with_forbidden(Predicate {
            loads: vec![(1, 0, 1), (1, 1, 0)],
            final_mem: vec![(0, 1), (1, 1)],
        });
        let mut o = p.blank_outcome();
        o.loads[1] = vec![Some(1), Some(0)];
        o.final_mem = vec![1, 1];
        assert!(p.forbidden.as_ref().unwrap().matches(&o));
        o.loads[1][1] = Some(1);
        assert!(!p.forbidden.as_ref().unwrap().matches(&o));
    }

    #[test]
    #[should_panic(expected = "not a load")]
    fn predicate_register_must_be_a_load() {
        mp().with_forbidden(Predicate {
            loads: vec![(0, 0, 1)],
            final_mem: vec![],
        });
    }

    #[test]
    fn display_renders_threads() {
        let s = mp().to_string();
        assert_eq!(s, "MP: T0[v0=1; v1=1] T1[r=v1; r=v0]");
    }
}
