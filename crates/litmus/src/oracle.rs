//! The axiomatic sequential-consistency oracle.
//!
//! An outcome is **SC-allowed** iff some interleaving of the threads'
//! operations — respecting each thread's program order, with every load
//! returning the latest store to its variable (or the initial zero) —
//! reproduces every observed register value and the final memory image.
//! [`sc_allowed`] decides this by exhaustive witness search; because the
//! programs are straight-line, the search space is finite and small.
//!
//! Three prunings keep IRIW-sized tests (and the random-program property
//! suite) fast without giving up exhaustiveness:
//!
//! 1. **Value-domain prune** — a load observation outside
//!    `{0} ∪ stores(var)` (or a final value outside it) is forbidden with
//!    no search at all.
//! 2. **Observation-constrained expansion** — a branch only executes a
//!    load when the current memory value equals the observed value, so
//!    the DFS explores exactly the interleavings consistent with the
//!    prefix of observations, never all `n!/(∏ nᵢ!)` of them.
//! 3. **Memoized state hashing** — the reachable-state graph is a DAG on
//!    `(program counters, memory image)`; a state whose subtree failed
//!    once can never succeed later (observations are position-dependent,
//!    not history-dependent), so each state is expanded at most once.
//!
//! [`enumerate_outcomes`] is the deliberately unpruned brute-force
//! interleaver: it walks every interleaving and collects every reachable
//! outcome. It exists to validate the oracle (the property suite checks
//! `sc_allowed(p, o) ⇔ o ∈ enumerate_outcomes(p)` on small programs) and
//! to prove shapes' forbidden predicates unreachable; use the oracle for
//! anything larger.

use std::collections::{BTreeSet, HashSet};

use crate::ir::{Op, Outcome, Program};

/// Statistics from one witness search, for reporting and for the pruning
/// tests.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SearchStats {
    /// States expanded by the DFS.
    pub expanded: u64,
    /// Branches cut by the memo table.
    pub memo_hits: u64,
}

/// Decides whether `outcome` is sequentially consistent for `program`.
///
/// # Panics
///
/// Panics if the outcome does not match the program's shape (use
/// [`Program::validate_outcome`] first for a graceful error).
pub fn sc_allowed(program: &Program, outcome: &Outcome) -> bool {
    sc_witness(program, outcome).is_some()
}

/// Like [`sc_allowed`], but returns the witness interleaving — the
/// sequence of `(thread, op index)` steps — when one exists.
pub fn sc_witness(program: &Program, outcome: &Outcome) -> Option<Vec<(usize, usize)>> {
    sc_witness_with_stats(program, outcome).0
}

/// [`sc_witness`] plus search statistics.
pub fn sc_witness_with_stats(
    program: &Program,
    outcome: &Outcome,
) -> (Option<Vec<(usize, usize)>>, SearchStats) {
    program
        .validate_outcome(outcome)
        .expect("outcome shape mismatch");
    let mut stats = SearchStats::default();

    // Prune 1: value domains.
    if !value_domains_ok(program, outcome) {
        return (None, stats);
    }

    let mut search = Search {
        program,
        outcome,
        memo: HashSet::new(),
        trail: Vec::with_capacity(program.ops()),
        stats: &mut stats,
    };
    let mut pcs = vec![0usize; program.threads.len()];
    let mut mem = vec![0u64; program.vars()];
    if search.dfs(&mut pcs, &mut mem) {
        let trail = search.trail.clone();
        (Some(trail), stats)
    } else {
        (None, stats)
    }
}

fn value_domains_ok(program: &Program, outcome: &Outcome) -> bool {
    let domains: Vec<Vec<u64>> = (0..program.vars())
        .map(|v| program.value_domain(v))
        .collect();
    for (ops, obs) in program.threads.iter().zip(&outcome.loads) {
        for (op, o) in ops.iter().zip(obs) {
            if let (Op::Load { var }, Some(v)) = (op, o) {
                if !domains[*var].contains(v) {
                    return false;
                }
            }
        }
    }
    outcome
        .final_mem
        .iter()
        .enumerate()
        .all(|(var, v)| domains[var].contains(v))
}

struct Search<'a> {
    program: &'a Program,
    outcome: &'a Outcome,
    /// States whose subtree contains no witness (prune 3). Key: packed
    /// program counters followed by the memory image.
    memo: HashSet<Vec<u64>>,
    trail: Vec<(usize, usize)>,
    stats: &'a mut SearchStats,
}

impl Search<'_> {
    fn key(&self, pcs: &[usize], mem: &[u64]) -> Vec<u64> {
        let mut k = Vec::with_capacity(pcs.len() + mem.len());
        k.extend(pcs.iter().map(|&p| p as u64));
        k.extend_from_slice(mem);
        k
    }

    fn dfs(&mut self, pcs: &mut [usize], mem: &mut [u64]) -> bool {
        if pcs
            .iter()
            .zip(&self.program.threads)
            .all(|(&pc, ops)| pc == ops.len())
        {
            return mem == &self.outcome.final_mem[..];
        }
        let key = self.key(pcs, mem);
        if self.memo.contains(&key) {
            self.stats.memo_hits += 1;
            return false;
        }
        self.stats.expanded += 1;
        for t in 0..pcs.len() {
            let pc = pcs[t];
            let Some(&op) = self.program.threads[t].get(pc) else {
                continue;
            };
            match op {
                Op::Load { var } => {
                    // Prune 2: the load must observe the current value.
                    if self.outcome.loads[t][pc] != Some(mem[var]) {
                        continue;
                    }
                    pcs[t] = pc + 1;
                    self.trail.push((t, pc));
                    if self.dfs(pcs, mem) {
                        return true;
                    }
                    self.trail.pop();
                    pcs[t] = pc;
                }
                Op::Store { var, value } => {
                    let old = mem[var];
                    mem[var] = value;
                    pcs[t] = pc + 1;
                    self.trail.push((t, pc));
                    if self.dfs(pcs, mem) {
                        return true;
                    }
                    self.trail.pop();
                    pcs[t] = pc;
                    mem[var] = old;
                }
            }
        }
        self.memo.insert(key);
        false
    }
}

/// Renders a human-readable account of why `outcome` is forbidden (or a
/// note that it is allowed): the value-domain verdict and the exhaustive
/// search statistics.
pub fn explain(program: &Program, outcome: &Outcome) -> String {
    if !value_domains_ok(program, outcome) {
        return format!(
            "{}: outcome {} observes a value outside its variable's \
             write set — no interleaving can produce it",
            program.name, outcome
        );
    }
    let (witness, stats) = sc_witness_with_stats(program, outcome);
    match witness {
        Some(w) => {
            let steps: Vec<String> = w.iter().map(|(t, i)| format!("T{t}.{i}")).collect();
            format!(
                "{}: outcome {} is SC-allowed; witness interleaving: {}",
                program.name,
                outcome,
                steps.join(" → ")
            )
        }
        None => format!(
            "{}: outcome {} is SC-FORBIDDEN — exhaustive witness search \
             exhausted {} states ({} memo hits) without explaining the \
             observed values under any program-order-respecting \
             interleaving",
            program.name, outcome, stats.expanded, stats.memo_hits
        ),
    }
}

/// Every SC-reachable outcome of `program`, by unpruned brute-force
/// enumeration of all interleavings. Exponential — for oracle validation
/// and tiny programs only.
pub fn enumerate_outcomes(program: &Program) -> BTreeSet<Outcome> {
    let mut out = BTreeSet::new();
    let mut pcs = vec![0usize; program.threads.len()];
    let mut mem = vec![0u64; program.vars()];
    let mut obs = program.blank_outcome();
    brute(program, &mut pcs, &mut mem, &mut obs, &mut out);
    out
}

fn brute(
    program: &Program,
    pcs: &mut [usize],
    mem: &mut [u64],
    obs: &mut Outcome,
    out: &mut BTreeSet<Outcome>,
) {
    let mut done = true;
    for t in 0..pcs.len() {
        let pc = pcs[t];
        let Some(&op) = program.threads[t].get(pc) else {
            continue;
        };
        done = false;
        pcs[t] = pc + 1;
        match op {
            Op::Load { var } => {
                obs.loads[t][pc] = Some(mem[var]);
                brute(program, pcs, mem, obs, out);
                obs.loads[t][pc] = None;
            }
            Op::Store { var, value } => {
                let old = mem[var];
                mem[var] = value;
                brute(program, pcs, mem, obs, out);
                mem[var] = old;
            }
        }
        pcs[t] = pc;
    }
    if done {
        let mut o = obs.clone();
        o.final_mem = mem.to_vec();
        out.insert(o);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes;

    fn outcome_of(_p: &Program, loads: &[&[Option<u64>]], mem: &[u64]) -> Outcome {
        Outcome {
            loads: loads.iter().map(|l| l.to_vec()).collect(),
            final_mem: mem.to_vec(),
        }
    }

    #[test]
    fn sb_allows_three_and_forbids_the_fourth() {
        let p = shapes::sb();
        let o = |a: u64, b: u64| outcome_of(&p, &[&[None, Some(a)], &[None, Some(b)]], &[1, 1]);
        assert!(sc_allowed(&p, &o(1, 1)));
        assert!(sc_allowed(&p, &o(0, 1)));
        assert!(sc_allowed(&p, &o(1, 0)));
        assert!(
            !sc_allowed(&p, &o(0, 0)),
            "Dekker failure must be forbidden"
        );
    }

    #[test]
    fn mp_forbids_flag_without_data() {
        let p = shapes::mp();
        let o = |y: u64, x: u64, fx: u64, fy: u64| {
            outcome_of(&p, &[&[None, None], &[Some(y), Some(x)]], &[fx, fy])
        };
        assert!(sc_allowed(&p, &o(0, 0, 1, 1)));
        assert!(sc_allowed(&p, &o(0, 1, 1, 1)));
        assert!(sc_allowed(&p, &o(1, 1, 1, 1)));
        assert!(!sc_allowed(&p, &o(1, 0, 1, 1)));
    }

    #[test]
    fn iriw_forbids_disagreeing_readers() {
        let p = shapes::iriw();
        let o = |r2: (u64, u64), r3: (u64, u64)| {
            outcome_of(
                &p,
                &[
                    &[None],
                    &[None],
                    &[Some(r2.0), Some(r2.1)],
                    &[Some(r3.0), Some(r3.1)],
                ],
                &[1, 1],
            )
        };
        assert!(sc_allowed(&p, &o((1, 1), (1, 1))));
        assert!(sc_allowed(&p, &o((1, 0), (0, 1))), "x-then-y agreed order");
        assert!(!sc_allowed(&p, &o((1, 0), (1, 0))), "readers disagree");
    }

    #[test]
    fn corr_forbids_backwards_coherence_reads() {
        let p = shapes::corr();
        let o = |a: u64, b: u64, m: u64| outcome_of(&p, &[&[None], &[Some(a), Some(b)]], &[m]);
        assert!(sc_allowed(&p, &o(0, 0, 1)));
        assert!(sc_allowed(&p, &o(0, 1, 1)));
        assert!(sc_allowed(&p, &o(1, 1, 1)));
        assert!(!sc_allowed(&p, &o(1, 0, 1)));
    }

    #[test]
    fn final_memory_is_checked() {
        let p = shapes::coww();
        assert!(sc_allowed(&p, &outcome_of(&p, &[&[None, None]], &[2])));
        assert!(!sc_allowed(&p, &outcome_of(&p, &[&[None, None]], &[1])));
    }

    #[test]
    fn value_domain_prune_fires_without_search() {
        let p = shapes::mp();
        let o = outcome_of(&p, &[&[None, None], &[Some(7), Some(0)]], &[1, 1]);
        let (w, stats) = sc_witness_with_stats(&p, &o);
        assert!(w.is_none());
        assert_eq!(stats.expanded, 0, "domain prune must precede search");
        assert!(explain(&p, &o).contains("outside its variable's write set"));
    }

    #[test]
    fn witness_is_a_valid_interleaving() {
        let p = shapes::wrc();
        let o = outcome_of(
            &p,
            &[&[None], &[Some(1), None], &[Some(1), Some(1)]],
            &[1, 1],
        );
        let w = sc_witness(&p, &o).expect("causal outcome is allowed");
        assert_eq!(w.len(), p.ops());
        // Program order per thread.
        for t in 0..p.threads.len() {
            let idxs: Vec<usize> = w
                .iter()
                .filter(|(wt, _)| *wt == t)
                .map(|&(_, i)| i)
                .collect();
            let mut sorted = idxs.clone();
            sorted.sort_unstable();
            assert_eq!(idxs, sorted, "thread {t} out of program order");
        }
    }

    #[test]
    fn oracle_agrees_with_brute_force_on_every_sb_candidate() {
        let p = shapes::sb();
        let reachable = enumerate_outcomes(&p);
        // All 4 load combinations over the value domains.
        for a in [0u64, 1] {
            for b in [0u64, 1] {
                let o = outcome_of(&p, &[&[None, Some(a)], &[None, Some(b)]], &[1, 1]);
                assert_eq!(
                    sc_allowed(&p, &o),
                    reachable.contains(&o),
                    "disagreement on ({a},{b})"
                );
            }
        }
    }

    #[test]
    fn memoization_prunes_repeated_states() {
        // IRIW's two single-store writer threads create many interleavings
        // that converge on identical (pcs, mem) states; the memo table
        // must collapse them.
        let p = shapes::iriw();
        let o = outcome_of(
            &p,
            &[&[None], &[None], &[Some(0), Some(0)], &[Some(0), Some(0)]],
            &[1, 1],
        );
        let (w, stats) = sc_witness_with_stats(&p, &o);
        assert!(w.is_some());
        assert!(stats.expanded > 0);
    }

    #[test]
    fn explain_names_the_verdict() {
        let p = shapes::sb();
        let good = outcome_of(&p, &[&[None, Some(1)], &[None, Some(1)]], &[1, 1]);
        let bad = outcome_of(&p, &[&[None, Some(0)], &[None, Some(0)]], &[1, 1]);
        assert!(explain(&p, &good).contains("witness interleaving"));
        assert!(explain(&p, &bad).contains("SC-FORBIDDEN"));
    }
}
