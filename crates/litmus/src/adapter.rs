//! Driving litmus programs through the real protocol stacks.
//!
//! [`LitmusWorkload`] adapts a [`Program`] to the system layer's
//! [`Workload`] interface: each litmus thread is pinned to one processor,
//! each variable is mapped to a cache block chosen to rotate L2 banks
//! *and* home chips, and values are applied/sampled against a
//! [`ValueStore`] at commit instants — the harvesting discipline whose
//! SC-soundness DESIGN.md §12 argues from the single-writer invariant.
//!
//! The adapter also hosts the harness's *mutation*: in
//! [`Mode::StoreBuffer`] it deliberately mis-harvests values through
//! per-thread store buffers (stores never reach shared memory until the
//! end; loads forward from the local buffer), reproducing exactly the
//! TSO-style reordering the SB shape is named for. The protocols
//! underneath still run faithfully — only the value harvesting lies —
//! so the oracle must flag the outcome, proving the checker can fail.

use tokencmp_proto::{AccessKind, Block, ProcId, SystemConfig};
use tokencmp_sim::{Dur, Rng, Time};
use tokencmp_system::{Completed, Step, ValueStore, Workload};

use crate::ir::{Op, Outcome, Program};

/// How litmus threads are placed on processors.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Pinning {
    /// Round-robin across chips: consecutive threads land on different
    /// CMPs, so every inter-thread race crosses the slow inter-CMP
    /// fabric — the interesting case for a Multiple-CMP protocol.
    Spread,
    /// Consecutive processors: threads pack onto the first chip(s),
    /// exercising the intra-CMP fast path.
    Packed,
}

impl Pinning {
    /// The processor litmus thread `t` runs on.
    pub fn proc_of(self, cfg: &SystemConfig, t: usize) -> ProcId {
        let cmps = cfg.cmps as usize;
        let per = cfg.procs_per_cmp as usize;
        match self {
            Pinning::Spread => ProcId(((t % cmps) * per + t / cmps) as u16),
            Pinning::Packed => ProcId(t as u16),
        }
    }
}

/// Maps each variable to a cache block.
///
/// The stride is coprime to the (power-of-two) bank-selection modulus
/// and larger than it, so consecutive variables land in different L2
/// banks *and* walk different home chips — no accidental colocation
/// hides a protocol race.
pub fn var_blocks(cfg: &SystemConfig, vars: usize) -> Vec<Block> {
    let stride = (cfg.banks_per_cmp as u64).next_power_of_two() + 1;
    (0..vars as u64).map(|v| Block(v * stride)).collect()
}

/// Value-harvesting mode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Honest commit-instant harvesting (the real harness).
    Faithful,
    /// Deliberately broken TSO-style store-buffer harvesting (the
    /// mutation the oracle must catch).
    StoreBuffer,
}

/// A [`Program`] adapted to the [`Workload`] interface.
pub struct LitmusWorkload {
    program: Program,
    blocks: Vec<Block>,
    /// `thread_of[p]` is the litmus thread pinned to processor `p`.
    thread_of: Vec<Option<usize>>,
    pos: Vec<usize>,
    started: Vec<bool>,
    stagger: Vec<Dur>,
    observed: Vec<Vec<Option<u64>>>,
    mem: ValueStore,
    mode: Mode,
    /// Per-thread store buffers, used only in [`Mode::StoreBuffer`].
    buffers: Vec<Vec<(usize, u64)>>,
}

impl LitmusWorkload {
    /// Adapts `program` for `cfg`, staggering each thread's start by a
    /// seed-derived think time in `[0, stagger_max]` so different seeds
    /// explore different interleavings.
    ///
    /// # Panics
    ///
    /// Panics if the program has more threads than the system has
    /// processors.
    pub fn new(
        cfg: &SystemConfig,
        program: &Program,
        pinning: Pinning,
        seed: u64,
        stagger_max: Dur,
    ) -> LitmusWorkload {
        Self::with_mode(cfg, program, pinning, seed, stagger_max, Mode::Faithful)
    }

    /// [`LitmusWorkload::new`] with store-buffer harvesting — the
    /// deliberately broken mock for mutation tests.
    pub fn broken(
        cfg: &SystemConfig,
        program: &Program,
        pinning: Pinning,
        seed: u64,
        stagger_max: Dur,
    ) -> LitmusWorkload {
        Self::with_mode(cfg, program, pinning, seed, stagger_max, Mode::StoreBuffer)
    }

    fn with_mode(
        cfg: &SystemConfig,
        program: &Program,
        pinning: Pinning,
        seed: u64,
        stagger_max: Dur,
        mode: Mode,
    ) -> LitmusWorkload {
        let layout = cfg.layout();
        let threads = program.threads.len();
        assert!(
            threads <= layout.procs() as usize,
            "{}: {} threads but only {} processors",
            program.name,
            threads,
            layout.procs()
        );
        let mut thread_of = vec![None; layout.procs() as usize];
        for t in 0..threads {
            let p = pinning.proc_of(cfg, t).0 as usize;
            assert!(
                thread_of[p].is_none(),
                "{}: pinning maps two threads to processor {p}",
                program.name
            );
            thread_of[p] = Some(t);
        }
        let mut rng = Rng::new(seed ^ 0x0001_1BAD_CAFE);
        let stagger = (0..threads)
            .map(|_| {
                if stagger_max.is_zero() {
                    Dur::ZERO
                } else {
                    Dur::from_ps(rng.below(stagger_max.as_ps() + 1))
                }
            })
            .collect();
        LitmusWorkload {
            blocks: var_blocks(cfg, program.vars()),
            thread_of,
            pos: vec![0; threads],
            started: vec![false; threads],
            stagger,
            observed: program
                .threads
                .iter()
                .map(|t| vec![None; t.len()])
                .collect(),
            mem: ValueStore::new(program.vars()),
            mode,
            buffers: vec![Vec::new(); threads],
            program: program.clone(),
        }
    }

    /// The block carrying variable `var`.
    pub fn block_of(&self, var: usize) -> Block {
        self.blocks[var]
    }

    /// True once every thread has committed its whole program.
    pub fn is_complete(&self) -> bool {
        self.pos
            .iter()
            .zip(&self.program.threads)
            .all(|(&pos, ops)| pos == ops.len())
    }

    /// Harvests the run's [`Outcome`].
    ///
    /// In [`Mode::StoreBuffer`] the final memory image drains the
    /// per-thread buffers in thread order, mimicking a lazy store-buffer
    /// flush after the program ends.
    ///
    /// # Panics
    ///
    /// Panics if any thread has uncommitted operations.
    pub fn outcome(&self) -> Outcome {
        assert!(
            self.is_complete(),
            "{}: harvest before quiescence",
            self.program.name
        );
        let mut final_mem = self.mem.snapshot().to_vec();
        for buf in &self.buffers {
            for &(var, value) in buf {
                final_mem[var] = value;
            }
        }
        Outcome {
            loads: self.observed.clone(),
            final_mem,
        }
    }

    fn apply_commit(&mut self, t: usize, completed: Completed) {
        let i = self.pos[t];
        let op = self.program.threads[t][i];
        let (want_kind, want_block) = match op {
            Op::Load { var } => (AccessKind::Load, self.blocks[var]),
            Op::Store { var, .. } => (AccessKind::Store, self.blocks[var]),
        };
        assert_eq!(
            (completed.kind, completed.block),
            (want_kind, want_block),
            "{}: T{t} op {i} completion mismatch",
            self.program.name
        );
        match (op, self.mode) {
            (Op::Load { var }, Mode::Faithful) => {
                self.observed[t][i] = Some(self.mem.load(var));
            }
            (Op::Store { var, value }, Mode::Faithful) => {
                self.mem.store(var, value);
            }
            (Op::Load { var }, Mode::StoreBuffer) => {
                // Store-to-load forwarding from the thread's own buffer;
                // otherwise read shared memory (which, since buffered
                // stores never drain, still holds the initial value).
                let fwd = self.buffers[t].iter().rev().find(|&&(v, _)| v == var);
                self.observed[t][i] = Some(match fwd {
                    Some(&(_, value)) => value,
                    None => self.mem.snapshot()[var],
                });
            }
            (Op::Store { var, value }, Mode::StoreBuffer) => {
                self.buffers[t].push((var, value));
            }
        }
        self.pos[t] += 1;
    }
}

impl Workload for LitmusWorkload {
    fn next(&mut self, p: ProcId, _now: Time, completed: Option<Completed>) -> Step {
        let Some(t) = self.thread_of[p.0 as usize] else {
            return Step::Done;
        };
        if !self.started[t] {
            self.started[t] = true;
            return Step::Think(self.stagger[t]);
        }
        if let Some(c) = completed {
            self.apply_commit(t, c);
        }
        match self.program.threads[t].get(self.pos[t]) {
            Some(&Op::Load { var }) => Step::Access {
                kind: AccessKind::Load,
                block: self.blocks[var],
            },
            Some(&Op::Store { var, .. }) => Step::Access {
                kind: AccessKind::Store,
                block: self.blocks[var],
            },
            None => Step::Done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes;

    #[test]
    fn spread_pinning_is_injective_and_crosses_chips() {
        let cfg = SystemConfig::small_test();
        let procs: Vec<ProcId> = (0..4).map(|t| Pinning::Spread.proc_of(&cfg, t)).collect();
        let mut uniq = procs.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), 4, "pinning must be injective: {procs:?}");
        let layout = cfg.layout();
        // The first two threads must land on different chips.
        assert_ne!(
            layout.cmp_of_proc(procs[0]),
            layout.cmp_of_proc(procs[1]),
            "spread pinning keeps thread 0 and 1 on one chip"
        );
    }

    #[test]
    fn var_blocks_rotate_banks_and_homes() {
        let cfg = SystemConfig::default();
        let blocks = var_blocks(&cfg, 2);
        assert_ne!(blocks[0], blocks[1]);
        assert_ne!(cfg.l2_bank_of(blocks[0]), cfg.l2_bank_of(blocks[1]));
        assert_ne!(cfg.home_of(blocks[0]), cfg.home_of(blocks[1]));
    }

    fn drive_threads_round_robin(w: &mut LitmusWorkload, cfg: &SystemConfig) {
        // A tiny in-process interpreter: repeatedly offer each processor
        // its next step and immediately complete any access, until all
        // are done. Exercises the Workload state machine without a kernel.
        let procs = cfg.layout().procs();
        let mut pending: Vec<Option<Completed>> = vec![None; procs as usize];
        let mut active = true;
        while active {
            active = false;
            for p in 0..procs as u16 {
                let step = w.next(ProcId(p), Time::ZERO, pending[p as usize].take());
                match step {
                    Step::Think(_) => {
                        active = true;
                    }
                    Step::Access { kind, block } => {
                        active = true;
                        pending[p as usize] = Some(Completed { kind, block });
                    }
                    Step::SpinUntil { .. } => unreachable!("litmus never spins"),
                    Step::Done => {}
                }
            }
        }
    }

    #[test]
    fn faithful_round_robin_mp_is_causal() {
        let cfg = SystemConfig::small_test();
        let p = shapes::mp();
        let mut w = LitmusWorkload::new(&cfg, &p, Pinning::Packed, 1, Dur::ZERO);
        drive_threads_round_robin(&mut w, &cfg);
        let o = w.outcome();
        p.validate_outcome(&o).unwrap();
        // Round-robin: T0 stores x, then T1 loads y (=0), T0 stores y,
        // T1 loads x (=1) — an SC outcome, and final memory is complete.
        assert_eq!(o.final_mem, vec![1, 1]);
        assert!(crate::oracle::sc_allowed(&p, &o));
    }

    #[test]
    fn store_buffer_mock_reproduces_dekker_failure() {
        let cfg = SystemConfig::small_test();
        let p = shapes::sb();
        let mut w = LitmusWorkload::broken(&cfg, &p, Pinning::Packed, 1, Dur::ZERO);
        drive_threads_round_robin(&mut w, &cfg);
        let o = w.outcome();
        p.validate_outcome(&o).unwrap();
        assert_eq!(o.loads[0][1], Some(0), "store buffered ⇒ load misses it");
        assert_eq!(o.loads[1][1], Some(0));
        assert_eq!(o.final_mem, vec![1, 1], "buffers drain at the end");
        assert!(p.forbidden.as_ref().unwrap().matches(&o));
        assert!(!crate::oracle::sc_allowed(&p, &o));
    }

    #[test]
    fn unpinned_processors_are_idle() {
        let cfg = SystemConfig::default(); // 16 procs, 2 litmus threads
        let p = shapes::sb();
        let mut w = LitmusWorkload::new(&cfg, &p, Pinning::Spread, 3, Dur::from_ns(10));
        let unpinned = (0..16)
            .filter(|&i| w.next(ProcId(i), Time::ZERO, None) == Step::Done)
            .count();
        assert_eq!(unpinned, 14);
    }
}
