//! # Litmus-test engine with an axiomatic SC oracle
//!
//! Memory-consistency litmus testing for the M-CMP protocol stacks, in
//! the herd/diy tradition: small multi-threaded programs whose observed
//! values distinguish sequential consistency from weaker behaviours.
//!
//! The pieces (see DESIGN.md §12):
//!
//! - [`ir`] — the test IR: straight-line per-thread loads/stores over a
//!   few variables, per-load observed-value registers, an [`ir::Outcome`]
//!   per run, and optional classic *forbidden* predicates.
//! - [`shapes`] — the eight classic shapes (SB, MP, LB, IRIW, CoRR,
//!   CoWW, WRC, 2+2W); [`gen`] — seeded random programs.
//! - [`oracle`] — the axiomatic SC oracle: memoized,
//!   observation-constrained interleaving search, plus an unpruned
//!   brute-force enumerator that validates it.
//! - [`adapter`] — runs a program through the real protocol stacks via
//!   the system layer's [`Workload`](tokencmp_system::Workload)
//!   interface, pinning threads across CMP boundaries and harvesting
//!   values at commit instants; also hosts the deliberately broken
//!   store-buffer harvesting used for mutation-testing the oracle.
//! - [`diff`] — the differential harness: program × protocol × seed
//!   (× fault plan), every outcome judged, violations reported with a
//!   flight-recorder tail for the suspect block.
//! - [`grid`] — the shape × protocol outcome grid behind the
//!   `litmus_outcomes` bench and EXPERIMENTS.md histograms.
//!
//! The protocols move *permissions*, not values, so SC here is a
//! checked property of the whole stack: the protocol's completion
//! ordering plus the substrate's single-writer invariant must make
//! commit-instant value harvesting equivalent to an atomic-memory
//! execution. The oracle then confirms every harvested outcome has an
//! SC witness — and the store-buffer mutation proves it can say no.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapter;
pub mod diff;
pub mod gen;
pub mod grid;
pub mod ir;
pub mod oracle;
pub mod shapes;

pub use adapter::{var_blocks, LitmusWorkload, Mode, Pinning};
pub use diff::{differential_check, run_litmus, DiffOptions, ShapeReport, Violation};
pub use gen::{random_program, GenLimits};
pub use grid::{export_grid, grid_to_json, histogram_table, litmus_grid, GridPoint};
pub use ir::{Op, Outcome, Predicate, Program};
pub use oracle::{enumerate_outcomes, explain, sc_allowed, sc_witness};
pub use shapes::classic_shapes;
