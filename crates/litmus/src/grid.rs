//! The litmus outcome grid: shapes × protocols × seeds, run in parallel
//! through the deterministic sweep engine, exported as JSON and rendered
//! as the per-shape outcome-histogram tables in EXPERIMENTS.md.

use std::collections::BTreeMap;

use tokencmp_proto::SystemConfig;
use tokencmp_sim::Dur;
use tokencmp_sweep::json::Value;
use tokencmp_sweep::{par_map, write_value};
use tokencmp_system::Protocol;

use crate::adapter::Pinning;
use crate::ir::Program;
use crate::oracle;

/// One (shape, protocol, seed) cell of the grid.
#[derive(Clone, Debug)]
pub struct GridPoint {
    /// Shape name.
    pub shape: String,
    /// Protocol name.
    pub protocol: String,
    /// Run seed.
    pub seed: u64,
    /// Harvested-outcome key ([`crate::ir::Outcome::key`]).
    pub key: String,
    /// Oracle verdict: SC-allowed?
    pub allowed: bool,
    /// Whether the shape's classic forbidden predicate matched.
    pub forbidden_hit: bool,
    /// Run length in simulated nanoseconds.
    pub runtime_ns: f64,
}

/// Runs every shape on every protocol for every seed (in parallel, in
/// deterministic input order) and classifies each harvested outcome.
pub fn litmus_grid(
    cfg: &SystemConfig,
    shapes: &[Program],
    protocols: &[Protocol],
    seeds: &[u64],
    pinning: Pinning,
) -> Vec<GridPoint> {
    let mut cells = Vec::new();
    for shape in shapes {
        for &protocol in protocols {
            for &seed in seeds {
                cells.push((shape.clone(), protocol, seed));
            }
        }
    }
    par_map(cells, |(shape, protocol, seed)| {
        let workload =
            crate::adapter::LitmusWorkload::new(cfg, &shape, pinning, seed, Dur::from_ns(40));
        let opts = tokencmp_system::RunOptions {
            seed,
            ..Default::default()
        };
        let (result, workload) = tokencmp_system::run_workload(cfg, protocol, workload, &opts);
        assert_eq!(
            result.outcome,
            tokencmp_sim::kernel::RunOutcome::Idle,
            "{}: {} (seed {seed}) did not quiesce",
            shape.name,
            protocol
        );
        let outcome = workload.outcome();
        GridPoint {
            shape: shape.name.clone(),
            protocol: protocol.name().to_string(),
            seed,
            key: outcome.key(),
            allowed: oracle::sc_allowed(&shape, &outcome),
            forbidden_hit: shape
                .forbidden
                .as_ref()
                .is_some_and(|f| f.matches(&outcome)),
            runtime_ns: result.runtime_ns(),
        }
    })
}

/// Serializes grid points as a JSON array of objects.
pub fn grid_to_json(points: &[GridPoint]) -> Value {
    Value::Arr(
        points
            .iter()
            .map(|p| {
                let mut o = BTreeMap::new();
                o.insert("shape".into(), Value::Str(p.shape.clone()));
                o.insert("protocol".into(), Value::Str(p.protocol.clone()));
                o.insert("seed".into(), Value::Int(p.seed));
                o.insert("outcome".into(), Value::Str(p.key.clone()));
                o.insert("sc_allowed".into(), Value::Bool(p.allowed));
                o.insert("forbidden_hit".into(), Value::Bool(p.forbidden_hit));
                o.insert("runtime_ns".into(), Value::Float(p.runtime_ns));
                Value::Obj(o)
            })
            .collect(),
    )
}

/// Writes the grid to `target/sweep/<name>.json`.
pub fn export_grid(name: &str, points: &[GridPoint]) -> std::io::Result<std::path::PathBuf> {
    write_value(name, &grid_to_json(points))
}

/// Renders a per-shape outcome histogram as a markdown-ish table:
/// one row per (shape, outcome), one count column per protocol.
pub fn histogram_table(points: &[GridPoint]) -> String {
    use std::fmt::Write as _;
    let mut protocols: Vec<&str> = Vec::new();
    for p in points {
        if !protocols.contains(&p.protocol.as_str()) {
            protocols.push(&p.protocol);
        }
    }
    // (shape, outcome key) → protocol → count, shapes in first-seen order.
    let mut shapes: Vec<&str> = Vec::new();
    let mut rows: BTreeMap<(usize, String), BTreeMap<&str, usize>> = BTreeMap::new();
    for p in points {
        let si = match shapes.iter().position(|&s| s == p.shape) {
            Some(i) => i,
            None => {
                shapes.push(&p.shape);
                shapes.len() - 1
            }
        };
        *rows
            .entry((si, p.key.clone()))
            .or_default()
            .entry(&p.protocol)
            .or_insert(0) += 1;
    }
    let mut s = String::new();
    let _ = write!(s, "| shape | outcome |");
    for proto in &protocols {
        let _ = write!(s, " {proto} |");
    }
    let _ = writeln!(s);
    let _ = write!(s, "|---|---|");
    for _ in &protocols {
        let _ = write!(s, "---|");
    }
    let _ = writeln!(s);
    for ((si, key), counts) in &rows {
        let _ = write!(s, "| {} | `{key}` |", shapes[*si]);
        for proto in &protocols {
            let _ = write!(s, " {} |", counts.get(proto).copied().unwrap_or(0));
        }
        let _ = writeln!(s);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::run_litmus;
    use crate::shapes;

    #[test]
    fn tiny_grid_runs_and_serializes() {
        let cfg = SystemConfig::small_test();
        let shapes = vec![shapes::corr()];
        let protocols = [Protocol::ALL[0], Protocol::PerfectL2];
        let points = litmus_grid(&cfg, &shapes, &protocols, &[1, 2], Pinning::Spread);
        assert_eq!(points.len(), 4);
        assert!(points.iter().all(|p| p.allowed && !p.forbidden_hit));
        // Deterministic input-order results.
        assert_eq!(points[0].protocol, Protocol::ALL[0].name());
        assert_eq!(points[0].seed, 1);
        let json = grid_to_json(&points).to_string();
        assert!(json.contains("\"sc_allowed\":true"), "{json}");
        let table = histogram_table(&points);
        assert!(table.contains("| CoRR |"), "{table}");
        assert!(table.contains("PerfectL2"), "{table}");
    }

    #[test]
    fn run_litmus_is_reused_consistently_with_grid_runs() {
        // The grid runs untraced; run_litmus runs traced. Tracing must
        // not perturb outcomes, so the two paths agree bit-for-bit.
        let cfg = SystemConfig::small_test();
        let shape = shapes::mp();
        let proto = Protocol::ALL[1];
        let points = litmus_grid(
            &cfg,
            std::slice::from_ref(&shape),
            &[proto],
            &[5],
            Pinning::Spread,
        );
        let traced = run_litmus(
            &cfg,
            proto,
            &shape,
            5,
            tokencmp_net::FaultPlan::none(),
            Pinning::Spread,
            Dur::from_ns(40),
            false,
        );
        assert_eq!(points[0].key, traced.key());
    }
}
