//! Seeded random litmus-program generation.
//!
//! Random programs complement the classic shapes: the shapes probe the
//! famous weak-memory corners, while random programs probe whatever the
//! protocols actually get wrong. Generation is driven entirely by the
//! simulator's deterministic [`Rng`], so a seed fully identifies a
//! program and a failing seed can be replayed forever.

use tokencmp_sim::Rng;

use crate::ir::{Op, Program};

/// Size limits for [`random_program`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GenLimits {
    /// Maximum thread count (min 2 — single-threaded programs have
    /// nothing to disagree about).
    pub max_threads: usize,
    /// Maximum operations per thread (min 1).
    pub max_ops: usize,
    /// Maximum distinct variables (min 1).
    pub max_vars: usize,
}

impl Default for GenLimits {
    fn default() -> Self {
        GenLimits {
            max_threads: 4,
            max_ops: 6,
            max_vars: 3,
        }
    }
}

/// Generates a random straight-line litmus program, named `rand-<seed>`.
///
/// Stores get per-variable unique nonzero values (a counter per
/// variable), so any observation identifies its writer — the property
/// the SC oracle's value-domain prune and the IR's constructor both
/// rely on. Threads are biased toward touching a shared variable early
/// so the programs actually race.
pub fn random_program(seed: u64, limits: GenLimits) -> Program {
    assert!(limits.max_threads >= 2, "need at least 2 threads");
    assert!(limits.max_ops >= 1 && limits.max_vars >= 1);
    let mut rng = Rng::new(seed ^ 0x11F3_05C0_DE00);
    let threads = rng.range_inclusive(2, limits.max_threads as u64) as usize;
    let vars = rng.range_inclusive(1, limits.max_vars as u64) as usize;
    let mut next_value = vec![1u64; vars];
    let mut program = Vec::with_capacity(threads);
    for _ in 0..threads {
        let ops = rng.range_inclusive(1, limits.max_ops as u64) as usize;
        let mut thread = Vec::with_capacity(ops);
        for _ in 0..ops {
            let var = rng.below(vars as u64) as usize;
            if rng.chance(0.5) {
                thread.push(Op::Load { var });
            } else {
                let value = next_value[var];
                next_value[var] += 1;
                thread.push(Op::Store { var, value });
            }
        }
        program.push(thread);
    }
    Program::new(format!("rand-{seed}"), program)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = random_program(42, GenLimits::default());
        let b = random_program(42, GenLimits::default());
        assert_eq!(a, b);
        assert_eq!(a.name, "rand-42");
    }

    #[test]
    fn different_seeds_give_different_programs() {
        let distinct: std::collections::HashSet<String> = (0..16)
            .map(|s| random_program(s, GenLimits::default()).to_string())
            .collect();
        assert!(
            distinct.len() > 8,
            "only {} distinct programs",
            distinct.len()
        );
    }

    #[test]
    fn limits_are_respected_and_programs_well_formed() {
        let limits = GenLimits {
            max_threads: 3,
            max_ops: 4,
            max_vars: 2,
        };
        for seed in 0..64 {
            // Program::new re-validates store-value uniqueness on every
            // construction, so this loop doubles as a well-formedness check.
            let p = random_program(seed, limits);
            assert!((2..=3).contains(&p.threads.len()), "{p}");
            assert!(p.threads.iter().all(|t| (1..=4).contains(&t.len())), "{p}");
            assert!(p.vars() <= 2, "{p}");
        }
    }
}
