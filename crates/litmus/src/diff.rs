//! The differential harness: every program × every protocol × many
//! seeds (× optional fault plans), each run's harvested outcome judged
//! by the SC oracle.
//!
//! A forbidden outcome is reported as a [`Violation`] carrying the full
//! reproduction coordinates, the oracle's explanation, and a
//! flight-recorder tail for the suspect block — captured by
//! deterministically re-running the identical simulation with a
//! block-filtered [`RingRecorder`] installed (tracing never perturbs a
//! run, so the replay is bit-identical to the offending one).

use std::collections::BTreeMap;
use std::fmt;

use tokencmp_net::FaultPlan;
use tokencmp_proto::{Block, SystemConfig};
use tokencmp_sim::kernel::RunOutcome;
use tokencmp_sim::Dur;
use tokencmp_system::{run_workload_traced, Protocol, RunOptions};
use tokencmp_trace::{RingRecorder, TraceSink};

use crate::adapter::{LitmusWorkload, Pinning};
use crate::ir::{Op, Outcome, Program};
use crate::oracle;

/// Differential-harness knobs.
#[derive(Clone, Debug)]
pub struct DiffOptions {
    /// Seeds to run per (protocol, plan) cell.
    pub seeds: Vec<u64>,
    /// Named fault plans; lossy plans are skipped for the DirectoryCMP
    /// protocols (they have no message-loss recovery path).
    pub plans: Vec<(String, FaultPlan)>,
    /// Thread placement.
    pub pinning: Pinning,
    /// Upper bound of the per-thread seeded start stagger.
    pub stagger_max: Dur,
    /// Use the deliberately broken store-buffer harvesting (mutation
    /// testing of the oracle itself).
    pub broken: bool,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            seeds: (1..=8).collect(),
            plans: vec![("none".to_string(), FaultPlan::none())],
            pinning: Pinning::Spread,
            stagger_max: Dur::from_ns(40),
            broken: false,
        }
    }
}

impl DiffOptions {
    /// Replaces the seed list.
    pub fn with_seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> DiffOptions {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Replaces the fault-plan list.
    pub fn with_plans(mut self, plans: Vec<(String, FaultPlan)>) -> DiffOptions {
        self.plans = plans;
        self
    }

    /// Sets the pinning.
    pub fn with_pinning(mut self, pinning: Pinning) -> DiffOptions {
        self.pinning = pinning;
        self
    }

    /// Switches to the broken store-buffer harvesting.
    pub fn with_broken(mut self) -> DiffOptions {
        self.broken = true;
        self
    }
}

/// One SC-forbidden outcome, with everything needed to reproduce and
/// debug it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The offending program (display form).
    pub program: String,
    /// Protocol under test.
    pub protocol: Protocol,
    /// Run seed.
    pub seed: u64,
    /// Fault-plan name.
    pub plan: String,
    /// The forbidden outcome.
    pub outcome: Outcome,
    /// The oracle's account of why no interleaving explains it.
    pub explanation: String,
    /// The variable whose observation the report centres on.
    pub suspect_var: usize,
    /// The block carrying that variable.
    pub suspect_block: Block,
    /// Flight-recorder tail for the suspect block, from a bit-identical
    /// replay of the offending run.
    pub flight_tail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "SC violation: {} on {} (seed {}, faults '{}')",
            self.program, self.protocol, self.seed, self.plan
        )?;
        writeln!(f, "  outcome: {}", self.outcome)?;
        writeln!(f, "  {}", self.explanation)?;
        writeln!(
            f,
            "  flight recorder tail for v{} ({:?}):",
            self.suspect_var, self.suspect_block
        )?;
        f.write_str(&self.flight_tail)
    }
}

/// What one program's differential sweep saw (when no violation).
#[derive(Clone, Debug)]
pub struct ShapeReport {
    /// Program name.
    pub name: String,
    /// Total runs performed.
    pub runs: usize,
    /// Outcome histogram over all runs: [`Outcome::key`] → count.
    pub histogram: BTreeMap<String, usize>,
}

impl ShapeReport {
    /// Number of distinct outcomes observed.
    pub fn distinct(&self) -> usize {
        self.histogram.len()
    }
}

/// Runs `program` once and harvests its [`Outcome`].
///
/// # Panics
///
/// Panics (with the watchdog diagnostic) if the run does not end cleanly
/// — a litmus program must always quiesce.
#[allow(clippy::too_many_arguments)] // the args *are* the reproduction coordinates
pub fn run_litmus(
    cfg: &SystemConfig,
    protocol: Protocol,
    program: &Program,
    seed: u64,
    plan: FaultPlan,
    pinning: Pinning,
    stagger_max: Dur,
    broken: bool,
) -> Outcome {
    let workload = if broken {
        LitmusWorkload::broken(cfg, program, pinning, seed, stagger_max)
    } else {
        LitmusWorkload::new(cfg, program, pinning, seed, stagger_max)
    };
    let opts = RunOptions {
        seed,
        faults: plan,
        ..RunOptions::default()
    };
    let trace = RingRecorder::default().into_handle();
    let (result, workload) = run_workload_traced(cfg, protocol, workload, &opts, Some(trace));
    assert_eq!(
        result.outcome,
        RunOutcome::Idle,
        "{}: {} (seed {seed}) did not quiesce\n{}",
        program.name,
        protocol,
        result.diagnostic.as_deref().unwrap_or("<no diagnostic>"),
    );
    workload.outcome()
}

/// The variable (and its block) a violation report should centre on:
/// the first load the forbidden predicate constrains, else the
/// program's first load, else variable 0.
fn suspect_var(program: &Program, _outcome: &Outcome) -> usize {
    if let Some(f) = &program.forbidden {
        if let Some(&(t, i, _)) = f.loads.first() {
            return program.threads[t][i].var();
        }
    }
    program
        .threads
        .iter()
        .flatten()
        .find(|op| op.is_load())
        .map(Op::var)
        .unwrap_or(0)
}

/// Replays the offending run with a block-filtered flight recorder and
/// returns the recorder's tail (replays are bit-identical: tracing
/// observes the simulation without feeding back into it).
#[allow(clippy::too_many_arguments)]
fn capture_flight_tail(
    cfg: &SystemConfig,
    protocol: Protocol,
    program: &Program,
    seed: u64,
    plan: FaultPlan,
    pinning: Pinning,
    stagger_max: Dur,
    broken: bool,
    block: Block,
) -> String {
    let workload = if broken {
        LitmusWorkload::broken(cfg, program, pinning, seed, stagger_max)
    } else {
        LitmusWorkload::new(cfg, program, pinning, seed, stagger_max)
    };
    let opts = RunOptions {
        seed,
        faults: plan,
        ..RunOptions::default()
    };
    let trace = RingRecorder::new(RingRecorder::DEFAULT_CAPACITY)
        .with_block_filter(block)
        .into_handle();
    let (_, _) = run_workload_traced(cfg, protocol, workload, &opts, Some(trace.clone()));
    let dump = trace.borrow().flight_dump();
    dump.unwrap_or_else(|| "  <no events recorded for block>\n".to_string())
}

/// Runs `program` across `protocols` × plans × seeds, checking every
/// harvested outcome against the SC oracle.
///
/// # Errors
///
/// Returns the first [`Violation`] found, with its oracle explanation
/// and flight-recorder tail.
pub fn differential_check(
    cfg: &SystemConfig,
    program: &Program,
    protocols: &[Protocol],
    opts: &DiffOptions,
) -> Result<ShapeReport, Box<Violation>> {
    let mut histogram = BTreeMap::new();
    let mut runs = 0usize;
    for &protocol in protocols {
        for (plan_name, plan) in &opts.plans {
            let lossless = plan.max_drop_rate() <= 0.0;
            if !lossless && matches!(protocol, Protocol::Directory | Protocol::DirectoryZero) {
                // DirectoryCMP has no message-loss recovery; run_workload
                // rejects lossy plans for it by design.
                continue;
            }
            for &seed in &opts.seeds {
                let outcome = run_litmus(
                    cfg,
                    protocol,
                    program,
                    seed,
                    *plan,
                    opts.pinning,
                    opts.stagger_max,
                    opts.broken,
                );
                program
                    .validate_outcome(&outcome)
                    .expect("harvested outcome shape");
                runs += 1;
                if !oracle::sc_allowed(program, &outcome) {
                    let var = suspect_var(program, &outcome);
                    let block = crate::adapter::var_blocks(cfg, program.vars())[var];
                    let flight_tail = capture_flight_tail(
                        cfg,
                        protocol,
                        program,
                        seed,
                        *plan,
                        opts.pinning,
                        opts.stagger_max,
                        opts.broken,
                        block,
                    );
                    return Err(Box::new(Violation {
                        program: program.to_string(),
                        protocol,
                        seed,
                        plan: plan_name.clone(),
                        outcome: outcome.clone(),
                        explanation: oracle::explain(program, &outcome),
                        suspect_var: var,
                        suspect_block: block,
                        flight_tail,
                    }));
                }
                *histogram.entry(outcome.key()).or_insert(0) += 1;
            }
        }
    }
    Ok(ShapeReport {
        name: program.name.clone(),
        runs,
        histogram,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes;

    #[test]
    fn mp_on_one_token_variant_is_sc() {
        let cfg = SystemConfig::small_test();
        let opts = DiffOptions::default().with_seeds(1..=2);
        let report = differential_check(
            &cfg,
            &shapes::mp(),
            &[Protocol::Token(tokencmp_core::Variant::Dst1)],
            &opts,
        )
        .expect("MP must be SC on a token protocol");
        assert_eq!(report.runs, 2);
        assert!(!report.histogram.is_empty());
    }

    #[test]
    fn replayed_seeds_harvest_identical_outcomes() {
        let cfg = SystemConfig::small_test();
        let p = shapes::sb();
        let proto = Protocol::Token(tokencmp_core::Variant::Arb0);
        let run = || {
            run_litmus(
                &cfg,
                proto,
                &p,
                7,
                FaultPlan::none(),
                Pinning::Spread,
                Dur::from_ns(40),
                false,
            )
        };
        assert_eq!(run(), run(), "same seed must replay bit-identically");
    }

    #[test]
    fn broken_harvesting_is_flagged_with_flight_tail() {
        let cfg = SystemConfig::small_test();
        let opts = DiffOptions::default().with_seeds([1]).with_broken();
        let err = differential_check(
            &cfg,
            &shapes::sb(),
            &[Protocol::Token(tokencmp_core::Variant::Dst1)],
            &opts,
        )
        .expect_err("store-buffer harvesting must violate SC on SB");
        assert!(err.explanation.contains("SC-FORBIDDEN"), "{err}");
        let text = err.to_string();
        assert!(text.contains("flight recorder tail"), "{text}");
        assert!(text.contains("seed 1"), "{text}");
    }

    #[test]
    fn lossy_plans_are_skipped_for_directory() {
        let cfg = SystemConfig::small_test();
        let opts = DiffOptions::default()
            .with_seeds([1])
            .with_plans(vec![("drop".into(), FaultPlan::none().dropping(0.05))]);
        let report = differential_check(&cfg, &shapes::corr(), &[Protocol::Directory], &opts)
            .expect("skipped cell cannot violate");
        assert_eq!(report.runs, 0, "lossy plan must be skipped, not run");
    }
}
