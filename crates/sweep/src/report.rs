//! Structured JSON export of sweep results, and the parser that reads
//! them back.
//!
//! Each [`PointResult`](crate::PointResult) becomes one [`PointRecord`]:
//! protocol name, seed, outcome, exact picosecond runtime, event count,
//! the full counter snapshot, and per-tier per-class traffic. The export
//! is a single JSON array (deterministic field order, `u64` values kept
//! lossless — see [`crate::json`]), written under `target/sweep/` so
//! figure scripts and regression tooling can post-process runs without
//! re-simulating.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use tokencmp_net::Tier;
use tokencmp_proto::MsgClass;
use tokencmp_trace::timeseries::Sample;
use tokencmp_trace::{Segment, TimeSeries, TIMESERIES_SCHEMA};

use crate::json::{parse, JsonError, Value};
use crate::PointResult;

/// Samples kept when a run's [`TimeSeries`] is embedded into a
/// [`PointRecord`] — a compact trajectory, not the full-resolution
/// series (export that separately via [`series_to_value`]).
pub const EMBEDDED_SERIES_SAMPLES: usize = 64;

/// One sweep point, flattened to plain data for export / re-aggregation.
#[derive(Clone, Debug, PartialEq)]
pub struct PointRecord {
    /// The point's label (protocol name for [`crate::Sweep::push_grid`]
    /// grids, free-form otherwise).
    pub label: String,
    /// Protocol name (`"Dst1"`, `"DirectoryCMP"`, ...).
    pub protocol: String,
    /// The point's seed.
    pub seed: u64,
    /// Kernel outcome (`"Idle"` is the success case).
    pub outcome: String,
    /// Last-processor-done time in exact picoseconds.
    pub runtime_ps: u64,
    /// Events processed.
    pub events: u64,
    /// Counter snapshot (`l1.misses`, `l1.persistent`, ...).
    pub counters: BTreeMap<String, u64>,
    /// Traffic bytes keyed `"<tier>/<class>"` (e.g.
    /// `"inter/Response Data"`); zero entries are omitted.
    pub traffic_bytes: BTreeMap<String, u64>,
    /// Traffic message counts, keyed like [`Self::traffic_bytes`].
    pub traffic_msgs: BTreeMap<String, u64>,
    /// The run's telemetry series, downsampled to at most
    /// [`EMBEDDED_SERIES_SAMPLES`] samples; `None` when the point ran
    /// without sampling (the default).
    pub series: Option<TimeSeries>,
}

fn tier_name(tier: Tier) -> &'static str {
    match tier {
        Tier::Intra => "intra",
        Tier::Inter => "inter",
        Tier::Mem => "mem",
    }
}

impl PointRecord {
    /// Flattens a completed sweep point.
    pub fn from_point(p: &PointResult) -> PointRecord {
        let mut traffic_bytes = BTreeMap::new();
        let mut traffic_msgs = BTreeMap::new();
        for tier in Tier::ALL {
            for class in MsgClass::ALL {
                let key = format!("{}/{}", tier_name(tier), class.label());
                let bytes = p.result.traffic.bytes(tier, class);
                let msgs = p.result.traffic.msgs(tier, class);
                if bytes > 0 {
                    traffic_bytes.insert(key.clone(), bytes);
                }
                if msgs > 0 {
                    traffic_msgs.insert(key, msgs);
                }
            }
        }
        PointRecord {
            label: p.point.label.clone(),
            protocol: p.point.protocol.name().to_owned(),
            seed: p.point.seed,
            outcome: format!("{:?}", p.result.outcome),
            runtime_ps: p.result.runtime.as_ps(),
            events: p.result.events,
            counters: p
                .result
                .counters
                .counters()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
            traffic_bytes,
            traffic_msgs,
            series: p
                .result
                .series
                .as_ref()
                .map(|s| s.downsample(EMBEDDED_SERIES_SAMPLES)),
        }
    }

    /// Runtime in (possibly fractional) nanoseconds.
    pub fn runtime_ns(&self) -> f64 {
        self.runtime_ps as f64 / 1_000.0
    }

    /// Reads a counter (zero if absent, matching
    /// [`Stats::counter`](tokencmp_sim::Stats::counter)).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Number of committed misses with latency attribution (the
    /// `lat.total.count` counter); zero when the run had no misses or
    /// the protocol does not attribute (PerfectL2).
    pub fn miss_count(&self) -> u64 {
        self.counter("lat.total.count")
    }

    /// Mean committed-miss latency in nanoseconds, or `None` when no
    /// misses were attributed.
    pub fn miss_latency_mean_ns(&self) -> Option<f64> {
        let n = self.miss_count();
        (n > 0).then(|| self.counter("lat.total.ps_sum") as f64 / n as f64 / 1_000.0)
    }

    /// Median (p50 upper-bound) committed-miss latency in nanoseconds.
    pub fn miss_latency_p50_ns(&self) -> Option<f64> {
        (self.miss_count() > 0).then(|| self.counter("lat.total.p50_ps") as f64 / 1_000.0)
    }

    /// Tail (p99 upper-bound) committed-miss latency in nanoseconds.
    pub fn miss_latency_p99_ns(&self) -> Option<f64> {
        (self.miss_count() > 0).then(|| self.counter("lat.total.p99_ps") as f64 / 1_000.0)
    }

    /// Total traffic bytes on one tier.
    pub fn tier_bytes(&self, tier: Tier) -> u64 {
        let prefix = format!("{}/", tier_name(tier));
        self.traffic_bytes
            .iter()
            .filter(|(k, _)| k.starts_with(&prefix))
            .map(|(_, &v)| v)
            .sum()
    }

    fn to_value(&self) -> Value {
        let map_obj = |m: &BTreeMap<String, u64>| {
            Value::Obj(m.iter().map(|(k, &v)| (k.clone(), Value::Int(v))).collect())
        };
        let mut traffic = BTreeMap::new();
        traffic.insert("bytes".to_owned(), map_obj(&self.traffic_bytes));
        traffic.insert("msgs".to_owned(), map_obj(&self.traffic_msgs));
        let mut obj = BTreeMap::new();
        obj.insert("label".to_owned(), Value::Str(self.label.clone()));
        obj.insert("protocol".to_owned(), Value::Str(self.protocol.clone()));
        obj.insert("seed".to_owned(), Value::Int(self.seed));
        obj.insert("outcome".to_owned(), Value::Str(self.outcome.clone()));
        obj.insert("runtime_ps".to_owned(), Value::Int(self.runtime_ps));
        obj.insert("runtime_ns".to_owned(), Value::Float(self.runtime_ns()));
        obj.insert("events".to_owned(), Value::Int(self.events));
        obj.insert("counters".to_owned(), map_obj(&self.counters));
        obj.insert("traffic".to_owned(), Value::Obj(traffic));
        if let Some(s) = &self.series {
            obj.insert("series".to_owned(), series_to_value(s));
        }
        Value::Obj(obj)
    }

    fn from_value(v: &Value) -> Result<PointRecord, JsonError> {
        let field_err = |name: &str| JsonError {
            offset: 0,
            message: format!("record missing or mistyped field '{name}'"),
        };
        let str_field = |name: &str| {
            v.get(name)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| field_err(name))
        };
        let int_field = |name: &str| {
            v.get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| field_err(name))
        };
        let int_map = |v: Option<&Value>, name: &str| -> Result<BTreeMap<String, u64>, JsonError> {
            let Some(obj) = v.and_then(Value::as_obj) else {
                return Ok(BTreeMap::new());
            };
            obj.iter()
                .map(|(k, v)| {
                    v.as_u64()
                        .map(|n| (k.clone(), n))
                        .ok_or_else(|| field_err(name))
                })
                .collect()
        };
        let traffic = v.get("traffic");
        Ok(PointRecord {
            label: str_field("label")?,
            protocol: str_field("protocol")?,
            seed: int_field("seed")?,
            outcome: str_field("outcome")?,
            runtime_ps: int_field("runtime_ps")?,
            events: int_field("events")?,
            counters: int_map(v.get("counters"), "counters")?,
            traffic_bytes: int_map(traffic.and_then(|t| t.get("bytes")), "traffic.bytes")?,
            traffic_msgs: int_map(traffic.and_then(|t| t.get("msgs")), "traffic.msgs")?,
            series: v.get("series").map(series_from_value).transpose()?,
        })
    }
}

/// Serializes a [`TimeSeries`] to the `tokencmp-timeseries-v1` JSON
/// schema: `{schema, period_ps, backend, samples: [{at_ps, gauges,
/// rates}, ...]}`. Integer gauges stay lossless; rates are floats.
pub fn series_to_value(series: &TimeSeries) -> Value {
    let samples = series
        .samples
        .iter()
        .map(|s| {
            let mut obj = BTreeMap::new();
            obj.insert("at_ps".to_owned(), Value::Int(s.at_ps));
            obj.insert(
                "gauges".to_owned(),
                Value::Obj(
                    s.gauges
                        .iter()
                        .map(|(k, &v)| (k.clone(), Value::Int(v)))
                        .collect(),
                ),
            );
            obj.insert(
                "rates".to_owned(),
                Value::Obj(
                    s.rates
                        .iter()
                        .map(|(k, &v)| (k.clone(), Value::Float(v)))
                        .collect(),
                ),
            );
            Value::Obj(obj)
        })
        .collect();
    let mut obj = BTreeMap::new();
    obj.insert(
        "schema".to_owned(),
        Value::Str(TIMESERIES_SCHEMA.to_owned()),
    );
    obj.insert("period_ps".to_owned(), Value::Int(series.period_ps));
    obj.insert("backend".to_owned(), Value::Str(series.backend.clone()));
    obj.insert("samples".to_owned(), Value::Arr(samples));
    Value::Obj(obj)
}

/// Parses a `tokencmp-timeseries-v1` JSON value back into a
/// [`TimeSeries`]; rejects unknown schema identifiers rather than
/// misreading a future format.
pub fn series_from_value(v: &Value) -> Result<TimeSeries, JsonError> {
    let err = |message: String| JsonError { offset: 0, message };
    let schema = v
        .get("schema")
        .and_then(Value::as_str)
        .ok_or_else(|| err("series missing 'schema'".into()))?;
    if schema != TIMESERIES_SCHEMA {
        return Err(err(format!(
            "unknown time-series schema '{schema}' (expected '{TIMESERIES_SCHEMA}')"
        )));
    }
    let period_ps = v
        .get("period_ps")
        .and_then(Value::as_u64)
        .ok_or_else(|| err("series missing 'period_ps'".into()))?;
    let backend = v
        .get("backend")
        .and_then(Value::as_str)
        .ok_or_else(|| err("series missing 'backend'".into()))?
        .to_owned();
    let mut samples = Vec::new();
    for s in v
        .get("samples")
        .and_then(Value::as_arr)
        .ok_or_else(|| err("series missing 'samples'".into()))?
    {
        let at_ps = s
            .get("at_ps")
            .and_then(Value::as_u64)
            .ok_or_else(|| err("sample missing 'at_ps'".into()))?;
        let mut gauges = BTreeMap::new();
        if let Some(obj) = s.get("gauges").and_then(Value::as_obj) {
            for (k, v) in obj {
                gauges.insert(
                    k.clone(),
                    v.as_u64()
                        .ok_or_else(|| err(format!("gauge '{k}' is not an integer")))?,
                );
            }
        }
        let mut rates = BTreeMap::new();
        if let Some(obj) = s.get("rates").and_then(Value::as_obj) {
            for (k, v) in obj {
                rates.insert(
                    k.clone(),
                    v.as_f64()
                        .ok_or_else(|| err(format!("rate '{k}' is not a number")))?,
                );
            }
        }
        samples.push(Sample {
            at_ps,
            gauges,
            rates,
        });
    }
    Ok(TimeSeries {
        period_ps,
        backend,
        samples,
    })
}

/// Renders the per-record miss-latency attribution as an aligned text
/// table: one row per record with mean/p50/p99 miss latency (ns) and
/// each attribution segment's share of the total latency-weighted time.
/// Records without attribution counters (no misses, PerfectL2) are
/// listed with dashes so every input record stays visible.
pub fn latency_table(records: &[PointRecord]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(out, "{:<14} {:>6}", "protocol", "seed");
    for col in ["misses", "mean", "p50", "p99"] {
        let _ = write!(out, " {col:>9}");
    }
    for seg in Segment::ALL {
        let _ = write!(out, " {:>9}", seg.label());
    }
    out.push('\n');
    for r in records {
        let _ = write!(out, "{:<14} {:>6}", r.protocol, r.seed);
        let n = r.miss_count();
        if n == 0 {
            for _ in 0..4 + Segment::ALL.len() {
                let _ = write!(out, " {:>9}", "-");
            }
            out.push('\n');
            continue;
        }
        let _ = write!(out, " {n:>9}");
        for q in [
            r.miss_latency_mean_ns(),
            r.miss_latency_p50_ns(),
            r.miss_latency_p99_ns(),
        ] {
            let _ = write!(out, " {:>9.1}", q.unwrap_or(0.0));
        }
        let total = r.counter("lat.total.ps_sum").max(1) as f64;
        for seg in Segment::ALL {
            let share = r.counter(&format!("lat.{}.ps_sum", seg.label())) as f64 / total;
            let _ = write!(out, " {:>8.1}%", 100.0 * share);
        }
        out.push('\n');
    }
    out
}

/// Serializes completed sweep points to a JSON array (one record each,
/// newline-separated for diffability).
pub fn points_to_json(points: &[PointResult]) -> String {
    let mut out = String::from("[\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&PointRecord::from_point(p).to_value().to_string());
        if i + 1 < points.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out
}

/// Parses a JSON export (as produced by [`points_to_json`]) back into
/// records, for mechanical re-aggregation.
pub fn parse_records(text: &str) -> Result<Vec<PointRecord>, JsonError> {
    let doc = parse(text)?;
    let arr = doc.as_arr().ok_or(JsonError {
        offset: 0,
        message: "expected a top-level array of records".to_owned(),
    })?;
    arr.iter().map(PointRecord::from_value).collect()
}

/// The directory JSON exports land in: `$CARGO_TARGET_DIR/sweep`, or
/// `<nearest ancestor with a target dir>/target/sweep`, or `target/sweep`
/// under the current directory as a last resort.
pub fn sweep_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        if !dir.is_empty() {
            return Path::new(&dir).join("sweep");
        }
    }
    if let Ok(cwd) = std::env::current_dir() {
        for dir in cwd.ancestors() {
            let target = dir.join("target");
            if target.is_dir() {
                return target.join("sweep");
            }
        }
    }
    Path::new("target").join("sweep")
}

/// Writes `points` to `target/sweep/<name>.json` and returns the path.
pub fn write_json(name: &str, points: &[PointResult]) -> std::io::Result<PathBuf> {
    write_text(name, &points_to_json(points))
}

/// Writes any JSON value to `target/sweep/<name>.json` and returns the
/// path — the generic exporter behind [`write_json`], for grids whose
/// records are not [`PointResult`]s (e.g. the litmus outcome grid).
pub fn write_value(name: &str, value: &crate::json::Value) -> std::io::Result<PathBuf> {
    write_text(name, &value.to_string())
}

fn write_text(name: &str, text: &str) -> std::io::Result<PathBuf> {
    let dir = sweep_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let mut f = std::fs::File::create(&path)?;
    f.write_all(text.as_bytes())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sweep;
    use tokencmp_core::Variant;
    use tokencmp_proto::{AccessKind, Block, SystemConfig};
    use tokencmp_system::{Protocol, RunOptions, ScriptedWorkload};

    fn sample_points() -> Vec<PointResult> {
        let cfg = SystemConfig::small_test();
        let mut sweep = Sweep::new();
        sweep.push_grid(
            &cfg,
            &[Protocol::Token(Variant::Dst1), Protocol::Directory],
            &[11, 23],
            RunOptions::default(),
            |_| {
                ScriptedWorkload::new(vec![
                    vec![(AccessKind::Load, Block(1)), (AccessKind::Store, Block(2))],
                    vec![(AccessKind::Store, Block(1))],
                    vec![],
                    vec![],
                ])
            },
        );
        sweep.run_on(2)
    }

    #[test]
    fn export_round_trips() {
        let points = sample_points();
        let text = points_to_json(&points);
        let records = parse_records(&text).unwrap();
        assert_eq!(records.len(), points.len());
        for (r, p) in records.iter().zip(&points) {
            assert_eq!(r, &PointRecord::from_point(p));
            assert_eq!(r.protocol, p.point.protocol.name());
            assert_eq!(r.seed, p.point.seed);
            assert_eq!(r.outcome, "Idle");
            assert_eq!(r.runtime_ps, p.result.runtime.as_ps());
            assert_eq!(r.events, p.result.events);
            assert_eq!(
                r.counter("l1.misses"),
                p.result.counters.counter("l1.misses")
            );
        }
    }

    #[test]
    fn records_carry_traffic() {
        let points = sample_points();
        let r = PointRecord::from_point(&points[0]);
        // A cross-chip store sweep moves bytes on at least one tier.
        let total: u64 = Tier::ALL.iter().map(|&t| r.tier_bytes(t)).sum();
        assert!(total > 0, "no traffic recorded: {r:?}");
        // And the flattened account matches the source Traffic.
        for tier in Tier::ALL {
            assert_eq!(
                r.tier_bytes(tier),
                points[0].result.traffic.total_bytes(tier)
            );
        }
    }

    #[test]
    fn runtime_ns_matches_result() {
        let points = sample_points();
        for p in &points {
            let r = PointRecord::from_point(p);
            assert_eq!(r.runtime_ns(), p.result.runtime_ns());
        }
    }

    #[test]
    fn latency_quantiles_and_table_surface_attribution() {
        let points = sample_points();
        let records: Vec<PointRecord> = points.iter().map(PointRecord::from_point).collect();
        // Both protocols miss at least once, so attribution must be present.
        for r in &records {
            assert!(r.miss_count() > 0, "no attributed misses in {r:?}");
            let mean = r.miss_latency_mean_ns().unwrap();
            let p50 = r.miss_latency_p50_ns().unwrap();
            let p99 = r.miss_latency_p99_ns().unwrap();
            assert!(mean > 0.0 && p50 > 0.0 && p99 >= p50);
        }
        let table = latency_table(&records);
        assert!(table.contains("protocol") && table.contains("p99"));
        // One header plus one row per record.
        assert_eq!(table.lines().count(), 1 + records.len());
        // A record without attribution renders as dashes, not a panic.
        let empty = PointRecord {
            counters: BTreeMap::new(),
            ..records[0].clone()
        };
        assert!(latency_table(&[empty])
            .lines()
            .nth(1)
            .unwrap()
            .contains('-'));
    }

    #[test]
    fn parse_rejects_non_arrays_and_bad_records() {
        assert!(parse_records("{}").is_err());
        assert!(parse_records("[{\"label\":\"x\"}]").is_err());
        assert!(parse_records("not json").is_err());
    }

    #[test]
    fn sampled_points_embed_and_round_trip_a_series() {
        use tokencmp_sim::Dur;
        let cfg = SystemConfig::small_test();
        let mut sweep = Sweep::new();
        sweep.push_grid(
            &cfg,
            &[Protocol::Token(Variant::Dst1)],
            &[11],
            RunOptions::default().with_sampling(Dur::from_ns(50)),
            |_| {
                ScriptedWorkload::new(vec![
                    vec![(AccessKind::Load, Block(1)), (AccessKind::Store, Block(2))],
                    vec![(AccessKind::Store, Block(1))],
                    vec![],
                    vec![],
                ])
            },
        );
        let points = sweep.run_on(1);
        let rec = PointRecord::from_point(&points[0]);
        let series = rec.series.as_ref().expect("sampled run embeds a series");
        assert!(!series.is_empty());
        assert!(series.len() <= EMBEDDED_SERIES_SAMPLES);
        // JSON round trip preserves the embedded series exactly.
        let text = points_to_json(&points);
        assert!(text.contains(TIMESERIES_SCHEMA));
        let parsed = &parse_records(&text).unwrap()[0];
        assert_eq!(parsed, &rec);
        // The standalone series round trip is exact too.
        let v = series_to_value(series);
        assert_eq!(&series_from_value(&v).unwrap(), series);
        // Unknown schemas are rejected, not misread.
        let mut obj = match v {
            Value::Obj(m) => m,
            _ => unreachable!(),
        };
        obj.insert("schema".to_owned(), Value::Str("bogus-v9".to_owned()));
        assert!(series_from_value(&Value::Obj(obj)).is_err());
    }

    #[test]
    fn missing_optional_maps_default_empty() {
        let text = r#"[{"label":"a","protocol":"Dst1","seed":7,"outcome":"Idle",
                        "runtime_ps":123,"events":9}]"#;
        let rec = &parse_records(text).unwrap()[0];
        assert!(rec.counters.is_empty());
        assert!(rec.traffic_bytes.is_empty());
        assert_eq!(rec.seed, 7);
        assert_eq!(rec.runtime_ps, 123);
    }
}
