//! A minimal JSON value model, writer and recursive-descent parser.
//!
//! The sweep report format (see [`crate::report`]) must be producible
//! and re-parsable without external crates (the workspace builds with no
//! registry access), so the small JSON subset it needs lives here:
//! objects, arrays, strings, booleans, null, and numbers split into
//! lossless unsigned integers ([`Value::Int`]) versus floats
//! ([`Value::Float`]) so `u64` counters round-trip exactly.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fraction or exponent, kept lossless.
    Int(u64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, key-sorted (BTreeMap) for deterministic output.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as `u64`, if it is a lossless integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object map.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Float(x) => {
                if x.is_finite() {
                    // Rust's shortest round-trip float formatting; always
                    // parseable as JSON (adds `.0` to integral floats so
                    // the reader keeps them in the Float branch).
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        write!(f, "{x:.1}")
                    } else {
                        write!(f, "{x}")
                    }
                } else {
                    // JSON has no Inf/NaN; degrade to null.
                    f.write_str("null")
                }
            }
            Value::Str(s) => write_escaped(f, s),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A parse failure: byte offset and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (trailing whitespace allowed).
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: consume a run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by the report
                            // schema; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for (text, value) in [
            ("null", Value::Null),
            ("true", Value::Bool(true)),
            ("false", Value::Bool(false)),
            ("42", Value::Int(42)),
            ("0", Value::Int(0)),
            ("18446744073709551615", Value::Int(u64::MAX)),
            ("\"hi\"", Value::Str("hi".into())),
        ] {
            assert_eq!(parse(text).unwrap(), value, "{text}");
            assert_eq!(parse(&value.to_string()).unwrap(), value, "{text}");
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.5, 1.0, -2.25, 123456.789, 1e-9, std::f64::consts::PI] {
            let v = Value::Float(x);
            let parsed = parse(&v.to_string()).unwrap();
            assert_eq!(parsed.as_f64(), Some(x), "{x}");
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let mut obj = BTreeMap::new();
        obj.insert("name".to_owned(), Value::Str("dst1 \"quoted\"\n".into()));
        obj.insert(
            "seeds".to_owned(),
            Value::Arr(vec![Value::Int(11), Value::Int(23)]),
        );
        obj.insert("ok".to_owned(), Value::Bool(true));
        let v = Value::Arr(vec![Value::Obj(obj), Value::Null]);
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn integral_floats_stay_floats() {
        let v = Value::Float(3.0);
        let s = v.to_string();
        assert_eq!(s, "3.0");
        assert_eq!(parse(&s).unwrap(), v);
    }
}
