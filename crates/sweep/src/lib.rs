//! Deterministic parallel sweep engine for multi-seed / multi-protocol
//! experiments.
//!
//! Every figure and table of the paper's evaluation is a sweep over
//! `(protocol × variant × seed × workload)` in which each simulation is
//! an independent, deterministic function of its inputs. This crate
//! turns such a grid into data-parallel work:
//!
//! * [`Sweep`] collects [`SweepPoint`]s (protocol, seed, run options,
//!   and a workload factory) in *grid order*;
//! * [`Sweep::run`] fans the points out over a [`std::thread::scope`]
//!   worker pool (size from [`default_threads`], overridable per call or
//!   via the `TOKENCMP_SWEEP_THREADS` environment variable) and collects
//!   per-point [`RunResult`]s **in grid order** — so aggregated output is
//!   bit-identical to a sequential loop regardless of thread count or
//!   scheduling;
//! * [`report`] exports one JSON record per point (protocol name, seed,
//!   runtime, counters, traffic) and parses it back for mechanical
//!   post-processing.
//!
//! The determinism guarantee rests on two facts: each simulation runs
//! entirely inside one worker thread with no shared mutable state (the
//! kernel's `Rc`/`RefCell` graph is built and torn down thread-locally),
//! and results are written to pre-assigned slots indexed by submission
//! order, never by completion order.
//!
//! ```
//! use tokencmp_sweep::Sweep;
//! use tokencmp_system::{Protocol, RunOptions, ScriptedWorkload};
//! use tokencmp_proto::{AccessKind, Block, SystemConfig};
//! use tokencmp_core::Variant;
//!
//! let cfg = SystemConfig::small_test();
//! let mut sweep = Sweep::new();
//! sweep.push_grid(
//!     &cfg,
//!     &[Protocol::Token(Variant::Dst1), Protocol::Directory],
//!     &[11, 23],
//!     RunOptions::default(),
//!     |_seed| ScriptedWorkload::new(vec![vec![(AccessKind::Load, Block(1))], vec![], vec![], vec![]]),
//! );
//! let points = sweep.run();
//! assert_eq!(points.len(), 4); // 2 protocols × 2 seeds, in grid order
//! ```

use std::sync::Arc;

use tokencmp_proto::SystemConfig;
use tokencmp_system::{run_workload, Protocol, RunOptions, RunResult, Workload};

pub mod json;
pub mod report;

pub use report::{
    latency_table, parse_records, points_to_json, series_from_value, series_to_value, write_json,
    write_value, PointRecord, EMBEDDED_SERIES_SAMPLES,
};

// The worker pool itself lives in `tokencmp-pool` (a std-only crate also
// used by the model checker, which must not depend on the simulator
// stack); re-exported here so existing sweep callers keep compiling.
pub use tokencmp_pool::{default_threads, par_map, par_map_threads, parse_threads};

/// One cell of a sweep grid: which protocol and seed to run, under which
/// run options. The workload itself is produced lazily inside the worker
/// thread by the factory passed to [`Sweep::push`].
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Free-form tag grouping related points (e.g. `"locks=8"`).
    pub label: String,
    /// Protocol under test.
    pub protocol: Protocol,
    /// Seed for all pseudo-random protocol behaviour (also handed to the
    /// workload factory).
    pub seed: u64,
    /// Run limits and reproducibility knobs.
    pub opts: RunOptions,
}

/// A completed sweep cell: the point and its simulation result.
#[derive(Clone, Debug)]
pub struct PointResult {
    /// The grid cell that produced this result.
    pub point: SweepPoint,
    /// The simulation outcome.
    pub result: RunResult,
}

type Job = Box<dyn FnOnce() -> RunResult + Send>;

/// A declarative grid of independent simulations, executed in parallel
/// with results in submission order.
#[derive(Default)]
pub struct Sweep {
    points: Vec<SweepPoint>,
    jobs: Vec<Job>,
}

impl Sweep {
    /// Creates an empty sweep.
    pub fn new() -> Sweep {
        Sweep::default()
    }

    /// Number of queued points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the sweep has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Queues one point. `mk` runs inside the worker thread, receiving
    /// the point's seed; the workload it builds never crosses threads,
    /// so it does not need to be `Send`.
    pub fn push<W, F>(
        &mut self,
        label: impl Into<String>,
        cfg: &SystemConfig,
        protocol: Protocol,
        seed: u64,
        opts: RunOptions,
        mk: F,
    ) where
        W: Workload + 'static,
        F: FnOnce(u64) -> W + Send + 'static,
    {
        let cfg = cfg.clone();
        self.points.push(SweepPoint {
            label: label.into(),
            protocol,
            seed,
            opts,
        });
        self.jobs.push(Box::new(move || {
            let (result, _workload) = run_workload(&cfg, protocol, mk(seed), &opts);
            result
        }));
    }

    /// Queues a full `protocols × seeds` sub-grid sharing one workload
    /// factory, protocol-major (all seeds of the first protocol, then
    /// the next), labelled with the protocol name.
    pub fn push_grid<W, F>(
        &mut self,
        cfg: &SystemConfig,
        protocols: &[Protocol],
        seeds: &[u64],
        opts: RunOptions,
        mk: F,
    ) where
        W: Workload + 'static,
        F: Fn(u64) -> W + Send + Sync + 'static,
    {
        let mk = Arc::new(mk);
        for &protocol in protocols {
            for &seed in seeds {
                let mk = Arc::clone(&mk);
                self.push(protocol.name(), cfg, protocol, seed, opts, move |s| mk(s));
            }
        }
    }

    /// Runs every point on [`default_threads`] workers; results come
    /// back in submission order.
    pub fn run(self) -> Vec<PointResult> {
        self.run_on(default_threads())
    }

    /// Runs every point on an explicit number of workers. Any thread
    /// count produces identical results; `threads <= 1` degenerates to a
    /// plain sequential loop in submission order.
    pub fn run_on(self, threads: usize) -> Vec<PointResult> {
        let results = par_map_threads(self.jobs, threads, |job| job());
        self.points
            .into_iter()
            .zip(results)
            .map(|(point, result)| PointResult { point, result })
            .collect()
    }

    /// Explicit sequential execution (the baseline the determinism tests
    /// compare against).
    pub fn run_sequential(self) -> Vec<PointResult> {
        self.run_on(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tokencmp_core::Variant;
    use tokencmp_proto::{AccessKind, Block};
    use tokencmp_sim::RunOutcome;
    use tokencmp_system::ScriptedWorkload;

    fn tiny_script() -> Vec<Vec<(AccessKind, Block)>> {
        vec![
            vec![(AccessKind::Load, Block(1)), (AccessKind::Store, Block(4))],
            vec![(AccessKind::Store, Block(1))],
            vec![],
            vec![],
        ]
    }

    #[test]
    fn pool_reexports_preserve_input_order() {
        // The pool crate owns the full par_map suite; this pins the
        // re-export path sweep callers use.
        let items: Vec<u64> = (0..16).collect();
        let out = par_map_threads(items.clone(), 4, |x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sweep_results_come_back_in_grid_order() {
        let cfg = SystemConfig::small_test();
        let protocols = [Protocol::Token(Variant::Dst1), Protocol::Directory];
        let seeds = [11u64, 23, 47];
        let mut sweep = Sweep::new();
        sweep.push_grid(&cfg, &protocols, &seeds, RunOptions::default(), |_| {
            ScriptedWorkload::new(tiny_script())
        });
        assert_eq!(sweep.len(), 6);
        let points = sweep.run_on(4);
        let mut i = 0;
        for &protocol in &protocols {
            for &seed in &seeds {
                assert_eq!(points[i].point.protocol, protocol);
                assert_eq!(points[i].point.seed, seed);
                assert_eq!(points[i].result.outcome, RunOutcome::Idle);
                i += 1;
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let cfg = SystemConfig::small_test();
        let mk_sweep = || {
            let mut sweep = Sweep::new();
            sweep.push_grid(
                &cfg,
                &[Protocol::Token(Variant::Dst4), Protocol::Directory],
                &[3, 9],
                RunOptions::default(),
                |_| ScriptedWorkload::new(tiny_script()),
            );
            sweep
        };
        let seq = mk_sweep().run_sequential();
        for threads in [2, 4, 16] {
            let par = mk_sweep().run_on(threads);
            assert_eq!(par.len(), seq.len());
            for (a, b) in par.iter().zip(&seq) {
                assert_eq!(a.result.runtime, b.result.runtime, "{threads} threads");
                assert_eq!(a.result.events, b.result.events);
                let ca: Vec<_> = a.result.counters.counters().collect();
                let cb: Vec<_> = b.result.counters.counters().collect();
                assert_eq!(ca, cb);
            }
        }
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
