//! Parallel state-space exploration with symmetry and partial-order
//! reduction.
//!
//! [`check_parallel`] rebuilds the sequential BFS of [`crate::check`]
//! for scale while keeping every [`Model`] spec untouched:
//!
//! * **Parallel frontier expansion.** Exploration is level-synchronous:
//!   the frontier of one BFS level fans out over the shared
//!   [`tokencmp_pool`] worker pool (dynamic work claiming, results in
//!   submission order), while the state store stays *frozen* — workers
//!   only read it. A sequential merge phase then folds the expansions
//!   back in frontier order, successors in generation order. Because
//!   the sequential BFS also assigns ids in exactly that order, the
//!   parallel explorer reproduces its state count, transition count,
//!   depth, and first-violation trace *bit for bit* at any worker count
//!   when both reductions are off — which is what the differential
//!   suite in `tests/mcheck_parallel.rs` pins.
//!
//! * **Hashed state store.** States are deduplicated by 128-bit
//!   fingerprint (two independently seeded hash passes) in a sharded
//!   table, retaining 16 bytes per state instead of a full clone. At
//!   n = 10⁷ states the collision probability is about n²/2¹²⁹ ≈ 10⁻²⁵
//!   (see DESIGN.md §17). `CheckOptions::collision_audit` additionally
//!   retains full states on a 1/16 fingerprint stripe and asserts that
//!   every dedup hit on the stripe compares equal.
//!
//! * **Symmetry reduction** quotients states by the model's
//!   [`Model::canonicalize`] (identity by default — always sound).
//!
//! * **Partial-order reduction** expands only an *ample subset* of a
//!   state's successors when the model declares a class of actions
//!   ([`ActionMeta::class`]) whose combined footprint conflicts with no
//!   co-enabled action, subject to a BFS cycle proviso: at least one
//!   ample successor must be new to the frozen store, guaranteeing the
//!   deferred actions are re-examined at a strictly later level.
//!
//! Soundness arguments for both reductions, per model, live in
//! DESIGN.md §17.

use std::collections::{BTreeSet, HashMap};
use std::hash::{DefaultHasher, Hash, Hasher};
use std::time::Instant;

use tokencmp_pool::{default_threads, par_map_threads};

use crate::checker::{ActionMeta, CheckOptions, Model, Violation};

/// 128-bit state fingerprint: two independent 64-bit hash passes over
/// the same value, distinguished by a seed prefix. `DefaultHasher::new`
/// is specified to produce identical streams across instances, so
/// fingerprints are stable within a build — which is all the store
/// needs (they are never persisted).
pub fn fingerprint<S: Hash>(s: &S) -> u128 {
    let mut lo = DefaultHasher::new();
    0u64.hash(&mut lo);
    s.hash(&mut lo);
    let mut hi = DefaultHasher::new();
    0x9E37_79B9_7F4A_7C15u64.hash(&mut hi);
    s.hash(&mut hi);
    ((hi.finish() as u128) << 64) | lo.finish() as u128
}

/// All permutations of `0..n` in lexicographic order (identity first) —
/// the helper the protocol models use to canonicalize over node
/// identity. Intended for the tiny downscaled configurations the
/// verification study runs (n ≤ 4).
pub fn permutations(n: usize) -> Vec<Vec<usize>> {
    fn rec(rest: &mut Vec<usize>, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if rest.is_empty() {
            out.push(cur.clone());
            return;
        }
        for i in 0..rest.len() {
            let v = rest.remove(i);
            cur.push(v);
            rec(rest, cur, out);
            cur.pop();
            rest.insert(i, v);
        }
    }
    let mut out = Vec::new();
    rec(&mut (0..n).collect(), &mut Vec::new(), &mut out);
    out
}

const SHARDS: usize = 16;

/// Sharded fingerprint → state-id table. Sharding by the top fingerprint
/// bits keeps per-map load factors low at millions of states; workers
/// share it read-only during expansion, the merge phase writes.
struct FpStore {
    shards: Vec<HashMap<u128, u32>>,
    len: usize,
}

impl FpStore {
    fn new() -> FpStore {
        FpStore {
            shards: (0..SHARDS).map(|_| HashMap::new()).collect(),
            len: 0,
        }
    }

    fn shard(fp: u128) -> usize {
        (fp >> 124) as usize & (SHARDS - 1)
    }

    fn get(&self, fp: u128) -> Option<u32> {
        self.shards[FpStore::shard(fp)].get(&fp).copied()
    }

    fn insert(&mut self, fp: u128, id: u32) {
        if self.shards[FpStore::shard(fp)].insert(fp, id).is_none() {
            self.len += 1;
        }
    }
}

/// Statistics from a [`check_parallel`] run. Superset of
/// [`crate::CheckReport`]: the extra fields record reduction and audit
/// activity plus the transition-kind universe (first word of every
/// generated label, *including* labels pruned by the partial-order
/// reduction — reduction saves stored and expanded states, never
/// coverage accounting).
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Distinct stored states (canonical representatives).
    pub states: usize,
    /// Transitions taken (equals the sequential count when POR is off).
    pub transitions: u64,
    /// Maximum BFS depth reached.
    pub depth: usize,
    /// Wall-clock seconds spent.
    pub seconds: f64,
    /// Whether the EF-quiescence progress check ran and passed.
    pub progress_checked: bool,
    /// Worker threads used.
    pub workers: usize,
    /// Expanded states at which an ample subset was taken.
    pub por_states_reduced: usize,
    /// Successor edges pruned by the partial-order reduction.
    pub por_pruned: u64,
    /// Dedup hits verified against a retained full state (audit mode).
    pub audited: u64,
    /// Every transition kind generated anywhere in the explored space.
    pub kinds: BTreeSet<String>,
}

/// One frontier state's expansion, produced by a worker against the
/// frozen store and folded in deterministically by the merge phase.
struct Expansion<S> {
    id: u32,
    quiescent: bool,
    /// `Some(pretty-printed state)` iff non-quiescent with no successors.
    deadlock: Option<String>,
    /// An ample subset was taken (POR applied at this state).
    reduced: bool,
    /// Successors pruned by the reduction.
    pruned: u32,
    /// Kind (label head) of every generated successor, pruned included.
    kind_heads: Vec<String>,
    /// Taken successors in generation order: label, canonical state,
    /// fingerprint, and the invariant error if the worker found one
    /// (only evaluated for states absent from the frozen store).
    taken: Vec<(String, S, u128, Option<String>)>,
}

/// Expands one frontier state against the frozen store.
fn expand<M: Model>(
    model: &M,
    store: &FpStore,
    opts: &CheckOptions,
    id: u32,
    s: &M::State,
) -> Expansion<M::State> {
    let mut succs = Vec::new();
    model.successors(s, &mut succs);
    let quiescent = model.is_quiescent(s);
    if succs.is_empty() && !quiescent {
        return Expansion {
            id,
            quiescent,
            deadlock: Some(format!("{s:?}")),
            reduced: false,
            pruned: 0,
            kind_heads: Vec::new(),
            taken: Vec::new(),
        };
    }

    let mut kind_heads: BTreeSet<String> = BTreeSet::new();
    for (label, _) in &succs {
        kind_heads.insert(label.split_whitespace().next().unwrap_or("").to_string());
    }

    // Canonicalize + fingerprint lazily (ample selection may avoid the
    // work for pruned successors).
    let canon_fp = |t: &M::State| -> (M::State, u128) {
        let c = if opts.symmetry {
            model.canonicalize(t)
        } else {
            t.clone()
        };
        let fp = fingerprint(&c);
        (c, fp)
    };

    // Ample-set selection: for each declared class (ascending id), take
    // its members alone iff (C1/C2, via the model's class promise plus a
    // mechanical footprint check) no co-enabled non-member conflicts
    // with the class, and (C3, cycle proviso) at least one member leads
    // out of the frozen store — i.e. to a state expanded at a strictly
    // later level, so deferred actions cannot be postponed forever
    // around a cycle.
    type Canon<S> = Vec<(S, u128)>;
    let mut ample: Option<(Vec<usize>, Canon<M::State>)> = None;
    if opts.por && succs.len() > 1 {
        let metas: Vec<ActionMeta> = succs
            .iter()
            .map(|(label, _)| model.action_meta(s, label))
            .collect();
        let classes: BTreeSet<u32> = metas.iter().filter_map(|m| m.class).collect();
        'class: for c in classes {
            let members: Vec<usize> = (0..succs.len())
                .filter(|&i| metas[i].class == Some(c))
                .collect();
            if members.len() == succs.len() {
                continue; // no reduction to be had
            }
            let combined = members.iter().fold(ActionMeta::rw(0, 0), |acc, &i| {
                ActionMeta::rw(acc.reads | metas[i].reads, acc.writes | metas[i].writes)
            });
            for (i, meta) in metas.iter().enumerate() {
                if metas[i].class != Some(c) && combined.dependent(meta) {
                    continue 'class;
                }
            }
            let canon: Vec<(M::State, u128)> =
                members.iter().map(|&i| canon_fp(&succs[i].1)).collect();
            if canon.iter().any(|(_, fp)| store.get(*fp).is_none()) {
                ample = Some((members, canon));
                break;
            }
        }
    }

    let (taken_idx, canon): (Vec<usize>, Vec<(M::State, u128)>) = match ample {
        Some(v) => v,
        None => {
            let idx: Vec<usize> = (0..succs.len()).collect();
            let canon = succs.iter().map(|(_, t)| canon_fp(t)).collect();
            (idx, canon)
        }
    };
    let reduced = taken_idx.len() < succs.len();
    let pruned = (succs.len() - taken_idx.len()) as u32;

    let taken = taken_idx
        .into_iter()
        .zip(canon)
        .map(|(i, (c, fp))| {
            let inv_err = if store.get(fp).is_none() {
                model.invariant(&c).err()
            } else {
                None
            };
            (succs[i].0.clone(), c, fp, inv_err)
        })
        .collect();

    Expansion {
        id,
        quiescent,
        deadlock: None,
        reduced,
        pruned,
        kind_heads: kind_heads.into_iter().collect(),
        taken,
    }
}

/// Exhaustively explores `model` in parallel, checking the invariant on
/// every state, flagging non-quiescent deadlocks, and (optionally)
/// verifying EF-quiescence — the parallel, reducible counterpart of
/// [`crate::check`].
///
/// With `opts.symmetry` and `opts.por` both off, the verdict, state
/// count, transition count, depth, and first-violation trace are
/// identical to the sequential checker's at any worker count. With
/// reductions on, the verdict and the transition-kind universe are
/// preserved; states and transitions shrink.
///
/// # Errors
///
/// Returns the first [`Violation`] found, with a minimal-length trace.
///
/// # Panics
///
/// Panics if the state count exceeds `opts.max_states`.
pub fn check_parallel<M>(model: &M, opts: &CheckOptions) -> Result<ExploreReport, Box<Violation>>
where
    M: Model + Sync,
    M::State: Send + Sync,
{
    let start = Instant::now();
    let workers = if opts.workers == 0 {
        default_threads()
    } else {
        opts.workers
    };

    let mut store = FpStore::new();
    // Full canonical states retained on the audit stripe (fp low nibble
    // zero, 1/16 of states) when collision auditing is on.
    let mut stripe: HashMap<u128, M::State> = HashMap::new();
    let mut audited: u64 = 0;
    // Per-id data. Labels are interned: the parent chain stores (parent
    // id, label index); roots are self-parented.
    let mut fps: Vec<u128> = Vec::new();
    let mut parent: Vec<(u32, u32)> = Vec::new();
    let mut edges: Vec<Vec<u32>> = Vec::new();
    let mut quiescent: Vec<bool> = Vec::new();
    let mut labels: Vec<String> = Vec::new();
    let mut label_ids: HashMap<String, u32> = HashMap::new();

    let mut kinds: BTreeSet<String> = BTreeSet::new();
    let mut transitions: u64 = 0;
    let mut depth = 0usize;
    let mut por_states_reduced = 0usize;
    let mut por_pruned: u64 = 0;

    let mut frontier: Vec<(u32, M::State)> = Vec::new();
    for s in model.initial() {
        if let Err(m) = model.invariant(&s) {
            return Err(Box::new(Violation {
                message: m,
                trace: vec![],
                state: format!("{s:?}"),
            }));
        }
        let c = if opts.symmetry {
            model.canonicalize(&s)
        } else {
            s
        };
        let fp = fingerprint(&c);
        if store.get(fp).is_none() {
            let id = fps.len() as u32;
            store.insert(fp, id);
            fps.push(fp);
            parent.push((id, u32::MAX));
            edges.push(Vec::new());
            quiescent.push(false);
            if opts.collision_audit && fp & 0xF == 0 {
                stripe.insert(fp, c.clone());
            }
            frontier.push((id, c));
        }
    }

    let trace_to = |idx: u32, parent: &[(u32, u32)], labels: &[String]| -> Vec<String> {
        let mut trace = Vec::new();
        let mut cur = idx;
        while parent[cur as usize].0 != cur {
            let (p, l) = parent[cur as usize];
            trace.push(labels[l as usize].clone());
            cur = p;
        }
        trace.reverse();
        trace
    };

    while !frontier.is_empty() {
        // Fan the level out in deterministic batches: the pool claims
        // batches dynamically but returns results in submission order,
        // so the merge below is schedule-independent.
        let batch = (frontier.len() / (workers.max(1) * 8)).clamp(1, 1024);
        let level: Vec<Vec<(u32, M::State)>> = {
            let mut batches = Vec::new();
            let mut it = frontier.into_iter().peekable();
            while it.peek().is_some() {
                batches.push(it.by_ref().take(batch).collect());
            }
            batches
        };
        let results: Vec<Vec<Expansion<M::State>>> = par_map_threads(level, workers, |chunk| {
            chunk
                .iter()
                .map(|(id, s)| expand(model, &store, opts, *id, s))
                .collect()
        });

        // Sequential merge in frontier order, successors in generation
        // order — exactly the order the sequential BFS discovers them.
        let mut next: Vec<(u32, M::State)> = Vec::new();
        for exp in results.into_iter().flatten() {
            let id = exp.id;
            quiescent[id as usize] = exp.quiescent;
            if let Some(state) = exp.deadlock {
                return Err(Box::new(Violation {
                    message: "deadlock: non-quiescent state with no successors".into(),
                    trace: trace_to(id, &parent, &labels),
                    state,
                }));
            }
            if exp.reduced {
                por_states_reduced += 1;
                por_pruned += u64::from(exp.pruned);
            }
            kinds.extend(exp.kind_heads);
            for (label, c, fp, inv_err) in exp.taken {
                transitions += 1;
                let t_id = match store.get(fp) {
                    Some(i) => {
                        if let Some(full) = stripe.get(&fp) {
                            assert!(
                                *full == c,
                                "fingerprint collision: distinct states share {fp:#034x}"
                            );
                            audited += 1;
                        }
                        i
                    }
                    None => {
                        if let Some(m) = inv_err {
                            let mut trace = trace_to(id, &parent, &labels);
                            trace.push(label);
                            return Err(Box::new(Violation {
                                message: m,
                                trace,
                                state: format!("{c:?}"),
                            }));
                        }
                        let i = fps.len() as u32;
                        assert!(
                            (i as usize) < opts.max_states,
                            "state space exceeded {} states",
                            opts.max_states
                        );
                        let l = *label_ids.entry(label).or_insert_with_key(|k| {
                            labels.push(k.clone());
                            (labels.len() - 1) as u32
                        });
                        store.insert(fp, i);
                        fps.push(fp);
                        parent.push((id, l));
                        edges.push(Vec::new());
                        quiescent.push(false);
                        if opts.collision_audit && fp & 0xF == 0 {
                            stripe.insert(fp, c.clone());
                        }
                        next.push((i, c));
                        i
                    }
                };
                edges[id as usize].push(t_id);
            }
        }
        if !next.is_empty() {
            depth += 1;
        }
        frontier = next;
    }

    // Progress: every state can reach a quiescent state (EF quiescence),
    // via backward reachability — same algorithm as the sequential
    // checker, over the (possibly reduced) explored graph.
    if opts.check_progress {
        let n = fps.len();
        let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (u, outs) in edges.iter().enumerate() {
            for &v in outs {
                rev[v as usize].push(u as u32);
            }
        }
        let mut ok = vec![false; n];
        let mut stack: Vec<u32> = (0..n as u32).filter(|&i| quiescent[i as usize]).collect();
        for &i in &stack {
            ok[i as usize] = true;
        }
        while let Some(u) = stack.pop() {
            for &v in &rev[u as usize] {
                if !ok[v as usize] {
                    ok[v as usize] = true;
                    stack.push(v);
                }
            }
        }
        if let Some(bad) = (0..n as u32).find(|&i| !ok[i as usize]) {
            let trace = trace_to(bad, &parent, &labels);
            let state = replay_state(model, opts, &trace, &fps, bad, &parent)
                .unwrap_or_else(|| "<state not reconstructed>".into());
            return Err(Box::new(Violation {
                message: "progress violation: no quiescent state reachable (livelock)".into(),
                trace,
                state,
            }));
        }
    }

    Ok(ExploreReport {
        states: fps.len(),
        transitions,
        depth,
        seconds: start.elapsed().as_secs_f64(),
        progress_checked: opts.check_progress,
        workers,
        por_states_reduced,
        por_pruned,
        audited,
        kinds,
    })
}

/// Reconstructs the concrete (canonical) state at the end of `trace` by
/// replaying it from the matching initial state — the store only keeps
/// fingerprints, so pretty-printing a progress-violation state requires
/// walking the trace and disambiguating same-labelled successors by
/// fingerprint.
fn replay_state<M: Model>(
    model: &M,
    opts: &CheckOptions,
    trace: &[String],
    fps: &[u128],
    bad: u32,
    parent: &[(u32, u32)],
) -> Option<String> {
    let mut path = vec![bad];
    let mut cur = bad;
    while parent[cur as usize].0 != cur {
        cur = parent[cur as usize].0;
        path.push(cur);
    }
    path.reverse(); // root .. bad, one id per trace step plus the root
    let root = path[0];
    let canon = |s: &M::State| {
        if opts.symmetry {
            model.canonicalize(s)
        } else {
            s.clone()
        }
    };
    let mut state = model
        .initial()
        .into_iter()
        .map(|s| canon(&s))
        .find(|c| fingerprint(c) == fps[root as usize])?;
    let mut succs = Vec::new();
    for (label, &next_id) in trace.iter().zip(&path[1..]) {
        succs.clear();
        model.successors(&state, &mut succs);
        state = succs
            .drain(..)
            .filter(|(l, _)| l == label)
            .map(|(_, t)| canon(&t))
            .find(|c| fingerprint(c) == fps[next_id as usize])?;
    }
    Some(format!("{state:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::check;

    /// The checker test models, re-stated locally: a counter with
    /// optional planted violations.
    struct Counter {
        max: u8,
        broken_invariant: bool,
        deadlock_at_max: bool,
    }

    impl Model for Counter {
        type State = u8;
        fn initial(&self) -> Vec<u8> {
            vec![0]
        }
        fn successors(&self, s: &u8, out: &mut Vec<(String, u8)>) {
            if *s < self.max {
                out.push((format!("inc {s}"), s + 1));
            } else if !self.deadlock_at_max {
                out.push(("reset".into(), 0));
            }
        }
        fn invariant(&self, s: &u8) -> Result<(), String> {
            if self.broken_invariant && *s == 3 {
                Err("reached 3".into())
            } else {
                Ok(())
            }
        }
        fn is_quiescent(&self, s: &u8) -> bool {
            *s == 0
        }
    }

    #[test]
    fn fingerprints_separate_nearby_values() {
        let fps: std::collections::HashSet<u128> =
            (0u64..10_000).map(|i| fingerprint(&i)).collect();
        assert_eq!(fps.len(), 10_000);
        // Both halves carry entropy.
        let a = fingerprint(&1u64);
        let b = fingerprint(&2u64);
        assert_ne!(a >> 64, b >> 64);
        assert_ne!(a as u64, b as u64);
    }

    #[test]
    fn parallel_matches_sequential_on_clean_model() {
        let m = Counter {
            max: 5,
            broken_invariant: false,
            deadlock_at_max: false,
        };
        let seq = check(&m, &CheckOptions::default()).unwrap();
        for workers in [1, 2, 4] {
            let opts = CheckOptions {
                workers,
                ..CheckOptions::default()
            };
            let par = check_parallel(&m, &opts).unwrap();
            assert_eq!(par.states, seq.states);
            assert_eq!(par.transitions, seq.transitions);
            assert_eq!(par.depth, seq.depth);
            assert!(par.progress_checked);
            assert_eq!(
                par.kinds.iter().map(String::as_str).collect::<Vec<_>>(),
                ["inc", "reset"]
            );
        }
    }

    #[test]
    fn parallel_finds_same_violation_trace() {
        let m = Counter {
            max: 5,
            broken_invariant: true,
            deadlock_at_max: false,
        };
        let seq = check(&m, &CheckOptions::default()).unwrap_err();
        let par = check_parallel(&m, &CheckOptions::default()).unwrap_err();
        assert_eq!(par.message, seq.message);
        assert_eq!(par.trace, seq.trace);
        assert_eq!(par.state, seq.state);
    }

    #[test]
    fn parallel_finds_deadlock_with_sequential_trace() {
        let m = Counter {
            max: 2,
            broken_invariant: false,
            deadlock_at_max: true,
        };
        let seq = check(&m, &CheckOptions::default()).unwrap_err();
        let par = check_parallel(&m, &CheckOptions::default()).unwrap_err();
        assert_eq!(par.message, seq.message);
        assert_eq!(par.trace, seq.trace);
    }

    /// Two states cycling without ever reaching quiescence.
    struct Livelock;
    impl Model for Livelock {
        type State = u8;
        fn initial(&self) -> Vec<u8> {
            vec![1]
        }
        fn successors(&self, s: &u8, out: &mut Vec<(String, u8)>) {
            out.push(("spin".into(), 3 - s));
        }
        fn invariant(&self, _: &u8) -> Result<(), String> {
            Ok(())
        }
        fn is_quiescent(&self, s: &u8) -> bool {
            *s == 0
        }
    }

    #[test]
    fn parallel_finds_livelock_and_replays_state() {
        let v = check_parallel(&Livelock, &CheckOptions::default()).unwrap_err();
        assert!(v.message.contains("progress"), "{}", v.message);
        assert_eq!(v.state, "1", "replay must reconstruct the bad state");
    }

    #[test]
    #[should_panic(expected = "state space exceeded")]
    fn parallel_respects_state_budget() {
        let m = Counter {
            max: 100,
            broken_invariant: false,
            deadlock_at_max: false,
        };
        let _ = check_parallel(
            &m,
            &CheckOptions {
                max_states: 10,
                check_progress: false,
                ..CheckOptions::default()
            },
        );
    }

    /// Two independent per-node counters plus a classed, commuting
    /// "tick" self-loop family: symmetry folds node permutations, POR
    /// collapses tick interleavings.
    struct TwoSym;
    impl Model for TwoSym {
        type State = (u8, u8);
        fn initial(&self) -> Vec<(u8, u8)> {
            vec![(0, 0)]
        }
        fn successors(&self, s: &(u8, u8), out: &mut Vec<(String, (u8, u8))>) {
            if s.0 < 2 {
                out.push(("inc a".into(), (s.0 + 1, s.1)));
            }
            if s.1 < 2 {
                out.push(("inc b".into(), (s.0, s.1 + 1)));
            }
        }
        fn invariant(&self, _: &(u8, u8)) -> Result<(), String> {
            Ok(())
        }
        fn is_quiescent(&self, _: &(u8, u8)) -> bool {
            true
        }
        fn canonicalize(&self, s: &(u8, u8)) -> (u8, u8) {
            (s.0.min(s.1), s.0.max(s.1))
        }
    }

    #[test]
    fn symmetry_shrinks_states_and_keeps_kinds() {
        let seq = check(&TwoSym, &CheckOptions::default()).unwrap();
        assert_eq!(seq.states, 9);
        let par = check_parallel(
            &TwoSym,
            &CheckOptions {
                symmetry: true,
                ..CheckOptions::default()
            },
        )
        .unwrap();
        assert_eq!(par.states, 6, "unordered pairs of 0..=2");
        assert_eq!(
            par.kinds.iter().map(String::as_str).collect::<Vec<_>>(),
            ["inc"]
        );
    }

    /// Independent classed increments on two nodes: POR may take one
    /// node's action alone at each state; the (2,2) corner and kind set
    /// must survive.
    struct TwoPor;
    impl Model for TwoPor {
        type State = (u8, u8);
        fn initial(&self) -> Vec<(u8, u8)> {
            vec![(0, 0)]
        }
        fn successors(&self, s: &(u8, u8), out: &mut Vec<(String, (u8, u8))>) {
            if s.0 < 2 {
                out.push(("inca".into(), (s.0 + 1, s.1)));
            }
            if s.1 < 2 {
                out.push(("incb".into(), (s.0, s.1 + 1)));
            }
        }
        fn invariant(&self, s: &(u8, u8)) -> Result<(), String> {
            if *s == (2, 2) {
                Err("corner reached".into())
            } else {
                Ok(())
            }
        }
        fn is_quiescent(&self, _: &(u8, u8)) -> bool {
            true
        }
        fn action_meta(&self, _: &(u8, u8), label: &str) -> ActionMeta {
            match label {
                "inca" => ActionMeta {
                    reads: 0b01,
                    writes: 0b01,
                    class: Some(0),
                },
                "incb" => ActionMeta {
                    reads: 0b10,
                    writes: 0b10,
                    class: Some(1),
                },
                _ => ActionMeta::OPAQUE,
            }
        }
    }

    #[test]
    fn por_prunes_interleavings_but_finds_the_violation() {
        let seq = check(&TwoPor, &CheckOptions::default()).unwrap_err();
        assert!(seq.message.contains("corner"));
        let opts = CheckOptions {
            por: true,
            ..CheckOptions::default()
        };
        let par = check_parallel(&TwoPor, &opts).unwrap_err();
        assert_eq!(par.message, seq.message);
        assert_eq!(par.trace.len(), seq.trace.len(), "minimal trace length");
        // And on the clean variant it actually reduces.
        struct Clean;
        impl Model for Clean {
            type State = (u8, u8);
            fn initial(&self) -> Vec<(u8, u8)> {
                TwoPor.initial()
            }
            fn successors(&self, s: &(u8, u8), out: &mut Vec<(String, (u8, u8))>) {
                TwoPor.successors(s, out);
            }
            fn invariant(&self, _: &(u8, u8)) -> Result<(), String> {
                Ok(())
            }
            fn is_quiescent(&self, _: &(u8, u8)) -> bool {
                true
            }
            fn action_meta(&self, s: &(u8, u8), label: &str) -> ActionMeta {
                TwoPor.action_meta(s, label)
            }
        }
        let full = check(&Clean, &CheckOptions::default()).unwrap();
        let red = check_parallel(&Clean, &opts).unwrap();
        assert!(red.por_states_reduced > 0);
        assert!(red.transitions < full.transitions);
        assert_eq!(red.kinds.len(), 2, "pruned kinds still collected");
    }

    /// A 32×32 grid with independent increments: hundreds of diamond
    /// reconvergences, so the 1/16 audit stripe sees dedup hits with
    /// certainty for any reasonable hash.
    struct Grid;
    impl Model for Grid {
        type State = (u8, u8);
        fn initial(&self) -> Vec<(u8, u8)> {
            vec![(0, 0)]
        }
        fn successors(&self, s: &(u8, u8), out: &mut Vec<(String, (u8, u8))>) {
            if s.0 < 31 {
                out.push(("inca".into(), (s.0 + 1, s.1)));
            }
            if s.1 < 31 {
                out.push(("incb".into(), (s.0, s.1 + 1)));
            }
        }
        fn invariant(&self, _: &(u8, u8)) -> Result<(), String> {
            Ok(())
        }
        fn is_quiescent(&self, _: &(u8, u8)) -> bool {
            true
        }
    }

    #[test]
    fn collision_audit_runs_on_the_stripe() {
        let r = check_parallel(
            &Grid,
            &CheckOptions {
                collision_audit: true,
                ..CheckOptions::default()
            },
        )
        .unwrap();
        assert_eq!(r.states, 32 * 32);
        let dedup_hits = r.transitions - (r.states as u64 - 1);
        assert!(dedup_hits > 500, "grid must reconverge heavily");
        assert!(r.audited > 0, "audit stripe must see dedup hits");
    }
}
