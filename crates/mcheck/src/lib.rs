//! # Verification substrate (Section 5 of the paper)
//!
//! An in-tree explicit-state model checker ([`check`]) plus protocol
//! specifications:
//!
//! * [`TokenModel`] — the flat token coherence correctness substrate, in
//!   three variants (safety-only, distributed activation, arbiter
//!   activation), verified under a *nondeterministic performance-policy
//!   interface* so the result covers **every** performance policy,
//!   hierarchical ones included — the paper's central verification claim.
//! * [`DirModel`] — a flat simplification of DirectoryCMP (the only form
//!   a hierarchical directory protocol can be model-checked in, as the
//!   paper notes).
//!
//! The `sec5_model_checking` bench target reproduces the paper's
//! complexity comparison: reachable-state counts, wall time, and
//! specification sizes ([`spec_lines`]).

pub mod checker;
pub mod dir_model;
pub mod token_model;

pub use checker::{check, CheckOptions, CheckReport, Model, Violation};
pub use dir_model::{DirModel, DirModelParams};
pub use token_model::{SubstrateMode, TokenModel, TokenModelParams};

/// Non-comment, non-blank line counts of the protocol specifications —
/// the analogue of the paper's TLA+ line-count comparison (383/396 lines
/// of token substrate vs 1025 of flat directory).
pub fn spec_lines() -> [(&'static str, usize); 2] {
    fn count(src: &str) -> usize {
        src.lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with("//"))
            .count()
    }
    [
        (
            "token substrate spec",
            count(include_str!("token_model.rs")),
        ),
        ("flat directory spec", count(include_str!("dir_model.rs"))),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_line_counts_are_plausible() {
        let [(tn, tl), (dn, dl)] = spec_lines();
        assert!(tn.contains("token"));
        assert!(dn.contains("directory"));
        assert!(tl > 100 && dl > 100);
    }
}
