//! # Verification substrate (Section 5 of the paper)
//!
//! An in-tree explicit-state model checker ([`check`]) plus protocol
//! specifications:
//!
//! * [`TokenModel`] — the flat token coherence correctness substrate, in
//!   three variants (safety-only, distributed activation, arbiter
//!   activation), verified under a *nondeterministic performance-policy
//!   interface* so the result covers **every** performance policy,
//!   hierarchical ones included — the paper's central verification claim.
//! * [`DirModel`] — a flat simplification of DirectoryCMP (the only form
//!   a hierarchical directory protocol can be model-checked in, as the
//!   paper notes).
//!
//! The `sec5_model_checking` bench target reproduces the paper's
//! complexity comparison: reachable-state counts, wall time, and
//! specification sizes ([`spec_lines`]).

pub mod checker;
pub mod dir_model;
pub mod explore;
pub mod token_model;

pub use checker::{
    check, reachable_kinds, ActionMeta, CheckOptions, CheckReport, Model, Violation,
};
pub use dir_model::{DirModel, DirModelParams};
pub use explore::{check_parallel, ExploreReport};
pub use token_model::{SubstrateMode, TokenModel, TokenModelParams};

/// Non-comment, non-blank line counts of the protocol specifications —
/// the analogue of the paper's TLA+ line-count comparison (383/396 lines
/// of token substrate vs 1025 of flat directory).
pub fn spec_lines() -> [(&'static str, usize); 2] {
    [
        (
            "token substrate spec",
            count_code_lines(include_str!("token_model.rs")),
        ),
        (
            "flat directory spec",
            count_code_lines(include_str!("dir_model.rs")),
        ),
    ]
}

/// Lines of `src` carrying actual code: blank lines, `//` comments,
/// `/* … */` block comments (including multi-line spans), and
/// attribute-only `#[…]` lines are all excluded.
fn count_code_lines(src: &str) -> usize {
    let mut in_block = false;
    let mut n = 0;
    for line in src.lines() {
        let mut l = line.trim();
        // Strip any `/* … */` spans (possibly several per line) and
        // track multi-line block comments; count what's left only if
        // real code remains.
        let mut code = String::new();
        loop {
            if in_block {
                match l.find("*/") {
                    Some(i) => {
                        in_block = false;
                        l = &l[i + 2..];
                    }
                    None => {
                        l = "";
                        break;
                    }
                }
            } else {
                match l.find("/*") {
                    Some(i) => {
                        code.push_str(&l[..i]);
                        in_block = true;
                        l = &l[i + 2..];
                    }
                    None => {
                        code.push_str(l);
                        break;
                    }
                }
            }
        }
        let code = code.trim();
        let attr_only = code.starts_with("#[") && code.ends_with(']');
        if !code.is_empty() && !code.starts_with("//") && !attr_only {
            n += 1;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_line_counts_are_plausible() {
        let [(tn, tl), (dn, dl)] = spec_lines();
        assert!(tn.contains("token"));
        assert!(dn.contains("directory"));
        assert!(tl > 100 && dl > 100);
    }

    #[test]
    fn line_count_excludes_comments_and_attributes() {
        let count = count_code_lines;
        let src = "\
// line comment\n\
\n\
/* one-line block */\n\
/* multi\n\
   line\n\
   block */\n\
#[derive(Clone, Debug)]\n\
#[cfg(test)]\n\
let x = 1; /* trailing */\n\
/* leading */ let y = 2;\n\
/* a */ /* b */\n\
let z = 3;\n";
        assert_eq!(count(src), 3, "only the three `let` lines are code");
        // And the public counts actually dropped relative to the naive
        // rule (both specs contain attributes).
        let naive = |s: &str| {
            s.lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with("//"))
                .count()
        };
        let [(_, tl), (_, dl)] = spec_lines();
        assert!(tl < naive(include_str!("token_model.rs")));
        assert!(dl < naive(include_str!("dir_model.rs")));
    }
}
