//! Model-checkable specifications of the token coherence correctness
//! substrate (§5).
//!
//! Three variants, as in the paper:
//!
//! * [`SubstrateMode::SafetyOnly`] — the bare counting substrate with a
//!   *nondeterministic performance-policy interface*: any node may send
//!   any legal token bundle to any node at any time. Verifying this model
//!   verifies safety under **every possible performance policy**, which is
//!   the paper's key verification claim.
//! * [`SubstrateMode::Distributed`] — adds the distributed-activation
//!   persistent request mechanism (tables at every node, fixed priority,
//!   wave marking), with activation/deactivation as real network messages.
//! * [`SubstrateMode::Arbiter`] — adds the original arbiter-based
//!   mechanism (FIFO arbiter at memory).
//!
//! Checked properties: token conservation, single owner, the coherence
//! invariant (one writer xor readers, enforced by counting), a **serial
//! view of memory** (every readable copy equals the last written value —
//! an invariant over all reachable states, hence over every possible
//! read), plus deadlock-freedom and EF-quiescence progress for the
//! persistent mechanisms.
//!
//! Configurations are downscaled in the standard way (few caches, few
//! tokens, bounded in-flight messages, bounded writes to keep the value
//! domain exact).

use crate::checker::{ActionMeta, Model};
use crate::explore::permutations;

/// Which starvation-avoidance mechanism the model includes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SubstrateMode {
    /// No persistent requests; safety only.
    SafetyOnly,
    /// Distributed activation (TokenCMP-dst).
    Distributed,
    /// Arbiter-based activation (TokenCMP-arb).
    Arbiter,
}

/// Model parameters (downscaled configuration).
#[derive(Clone, Copy, Debug)]
pub struct TokenModelParams {
    /// Cache nodes (memory is one extra node).
    pub caches: usize,
    /// Tokens per block, `T` (must exceed `caches + 1` for persistent
    /// reads to be non-blocking, mirroring the real constraint).
    pub tokens: u8,
    /// Maximum in-flight token-carrying messages.
    pub max_inflight: usize,
    /// Maximum in-flight persistent control messages.
    pub max_ctl_inflight: usize,
    /// Total writes to explore (bounds the exact value domain).
    pub max_writes: u8,
    /// Mechanism under verification.
    pub mode: SubstrateMode,
    /// Token-loss recovery (§15): let the interconnect lose droppable
    /// token bundles and model the serial-bumping recreation protocol.
    pub recovery: bool,
    /// Recreation budget: how many serial bumps the model may explore
    /// (losses are only allowed while budget to repair them remains,
    /// keeping EF-quiescence meaningful).
    pub max_serials: u8,
}

impl TokenModelParams {
    /// The default downscaled configuration used by the Section 5
    /// reproduction: 2 caches + memory, T = 4.
    pub fn small(mode: SubstrateMode) -> TokenModelParams {
        TokenModelParams {
            caches: 2,
            tokens: 4,
            max_inflight: if mode == SubstrateMode::Arbiter { 1 } else { 2 },
            max_ctl_inflight: if mode == SubstrateMode::SafetyOnly {
                2
            } else {
                1
            },
            max_writes: if mode == SubstrateMode::SafetyOnly {
                2
            } else {
                1
            },
            mode,
            recovery: false,
            max_serials: 0,
        }
    }

    /// The downscaled token-loss recovery configuration (§15):
    /// [`small`](TokenModelParams::small) plus interconnect loss of
    /// droppable bundles and one recreation of the block's tokens.
    /// One write keeps the exact value domain small enough for the
    /// enlarged (serial-tagged) state space.
    pub fn small_recovery(mode: SubstrateMode) -> TokenModelParams {
        TokenModelParams {
            recovery: true,
            max_serials: 1,
            max_writes: 1,
            ..TokenModelParams::small(mode)
        }
    }
}

/// Per-node token state (caches and memory obey identical rules — the
/// substrate is flat).
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NodeSt {
    /// Tokens held.
    pub tokens: u8,
    /// Owner token held.
    pub owner: bool,
    /// Valid data held (forced false at zero tokens).
    pub data: bool,
    /// Data version (meaningful when `data`).
    pub val: u8,
}

/// Read or write persistent request.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum PKind {
    /// Needs one token (and leaves read permission elsewhere).
    Read,
    /// Needs all tokens.
    Write,
}

/// A network message.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum TMsg {
    /// A token bundle to `dst`.
    Tokens {
        /// Destination node.
        dst: u8,
        /// Token count.
        count: u8,
        /// Owner token included.
        owner: bool,
        /// Data included.
        data: bool,
        /// Data version (0 when `!data`).
        val: u8,
        /// Recreation serial the tokens were minted under (always 0
        /// without recovery).
        serial: u8,
    },
    /// Recreation invalidation: adopt `serial`, destroy holdings minted
    /// under older serials, then ack (recovery only).
    RecreateInval {
        /// Destination node.
        dst: u8,
        /// The serial being brought into force.
        serial: u8,
    },
    /// Recreation-invalidation ack back to the token authority
    /// (recovery only).
    RecreateAck {
        /// The serial acknowledged.
        serial: u8,
    },
    /// Distributed activation broadcast element.
    Activate {
        /// Destination node.
        dst: u8,
        /// Requesting cache.
        proc: u8,
        /// Request kind.
        kind: PKind,
    },
    /// Distributed deactivation broadcast element.
    Deactivate {
        /// Destination node.
        dst: u8,
        /// Requesting cache.
        proc: u8,
    },
    /// Arbiter request (to memory).
    ArbRequest {
        /// Requesting cache.
        proc: u8,
        /// Request kind.
        kind: PKind,
    },
    /// Arbiter activation broadcast element.
    ArbActivate {
        /// Destination node.
        dst: u8,
        /// Requesting cache.
        proc: u8,
        /// Request kind.
        kind: PKind,
    },
    /// Requester → arbiter completion notice.
    ArbDone {
        /// Requesting cache.
        proc: u8,
    },
    /// Arbiter deactivation broadcast element.
    ArbDeactivate {
        /// Destination node.
        dst: u8,
        /// Requesting cache.
        proc: u8,
    },
}

/// A persistent-table entry at some node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct TableEntry {
    /// Request kind.
    pub kind: PKind,
    /// Wave-marked (blocks local re-issue).
    pub marked: bool,
}

/// The global model state.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct TState {
    /// Caches `0..caches`, then memory at index `caches`.
    pub nodes: Vec<NodeSt>,
    /// In-flight messages (kept sorted: a multiset).
    pub net: Vec<TMsg>,
    /// Specification variable: the last written version.
    pub current: u8,
    /// Writes performed so far.
    pub writes: u8,
    /// Per-cache outstanding persistent request.
    pub my_req: Vec<Option<PKind>>,
    /// `tables[node][proc]`: remembered persistent requests.
    pub tables: Vec<Vec<Option<TableEntry>>>,
    /// Arbiter queue at memory (FIFO).
    pub arb_queue: Vec<(u8, PKind)>,
    /// Arbiter's currently active request.
    pub arb_current: Option<(u8, PKind)>,
    /// Per-node recreation serial (all 0 without recovery). The
    /// authority's entry (`serials[mem]`) is the block's current serial.
    pub serials: Vec<u8>,
    /// An in-progress recreation at the authority: `(serial, acks
    /// still awaited)`.
    pub recreating: Option<(u8, u8)>,
    /// Tokens the interconnect destroyed, indexed by serial:
    /// `(count, owner lost)`. Conservation holds per epoch *modulo*
    /// this ledger.
    pub lost: Vec<(u8, bool)>,
}

/// The token substrate model.
#[derive(Clone, Copy, Debug)]
pub struct TokenModel {
    /// Parameters.
    pub p: TokenModelParams,
}

impl TokenModel {
    /// Creates the model.
    pub fn new(p: TokenModelParams) -> TokenModel {
        assert!(p.tokens as usize > p.caches + 1, "need T > holders");
        TokenModel { p }
    }

    fn n_nodes(&self) -> usize {
        self.p.caches + 1
    }

    fn mem(&self) -> usize {
        self.p.caches
    }

    fn push(out: &mut Vec<(String, TState)>, label: String, mut s: TState) {
        s.net.sort();
        out.push((label, s));
    }

    /// The active (highest-priority) distributed request known at `node`.
    fn dist_active(&self, s: &TState, node: usize) -> Option<(u8, PKind)> {
        s.tables[node]
            .iter()
            .enumerate()
            .find_map(|(p, e)| e.map(|e| (p as u8, e.kind)))
    }

    /// What `node` should forward to an active request of `kind`.
    fn grant(st: &NodeSt, kind: PKind) -> Option<(u8, bool, bool)> {
        // (count, owner, data)
        match kind {
            PKind::Write => {
                if st.tokens > 0 {
                    Some((st.tokens, st.owner, st.data))
                } else {
                    None
                }
            }
            PKind::Read => {
                if st.tokens >= 2 {
                    Some((st.tokens - 1, false, st.data))
                } else {
                    None
                }
            }
        }
    }

    fn apply_grant(st: &mut NodeSt, g: (u8, bool, bool)) {
        st.tokens -= g.0;
        if g.1 {
            st.owner = false;
        }
        if st.tokens == 0 {
            st.data = false;
            st.owner = false;
        }
    }

    fn broadcast(&self, s: &mut TState, except: usize, f: impl Fn(u8) -> TMsg) {
        for d in 0..self.n_nodes() {
            if d != except {
                s.net.push(f(d as u8));
            }
        }
    }

    fn token_inflight(&self, s: &TState) -> usize {
        s.net
            .iter()
            .filter(|m| matches!(m, TMsg::Tokens { .. }))
            .count()
    }

    fn ctl_inflight(&self, s: &TState) -> usize {
        s.net.len() - self.token_inflight(s)
    }
}

impl Model for TokenModel {
    type State = TState;

    fn initial(&self) -> Vec<TState> {
        let n = self.n_nodes();
        let mut nodes = vec![
            NodeSt {
                tokens: 0,
                owner: false,
                data: false,
                val: 0,
            };
            n
        ];
        nodes[self.mem()] = NodeSt {
            tokens: self.p.tokens,
            owner: true,
            data: true,
            val: 0,
        };
        vec![TState {
            nodes,
            net: Vec::new(),
            current: 0,
            writes: 0,
            my_req: vec![None; self.p.caches],
            tables: vec![vec![None; self.p.caches]; n],
            arb_queue: Vec::new(),
            arb_current: None,
            serials: vec![0; n],
            recreating: None,
            lost: vec![(0, false); self.p.max_serials as usize + 1],
        }]
    }

    fn successors(&self, s: &TState, out: &mut Vec<(String, TState)>) {
        let n = self.n_nodes();

        // --- nondeterministic performance-policy interface: sends -------
        //
        // In SafetyOnly mode every legal bundle may move between any two
        // nodes at any time — verifying safety under *all* performance
        // policies (the paper's TokenCMP-safety model). The persistent-
        // mechanism models restrict policy sends to memory grants and
        // writebacks so their larger control state stays tractable,
        // mirroring the paper's decomposition into a safety model and
        // per-mechanism models.
        let policy_sends = self.p.mode == SubstrateMode::SafetyOnly;
        if policy_sends && self.token_inflight(s) < self.p.max_inflight {
            for i in 0..n {
                let st = &s.nodes[i];
                if st.tokens == 0 {
                    continue;
                }
                for dst in 0..n {
                    if dst == i {
                        continue;
                    }
                    // Send everything (owner travels with data).
                    let mut t = s.clone();
                    let bundle = (st.tokens, st.owner, st.data);
                    Self::apply_grant(&mut t.nodes[i], bundle);
                    t.net.push(TMsg::Tokens {
                        dst: dst as u8,
                        count: bundle.0,
                        owner: bundle.1,
                        data: bundle.2,
                        val: if bundle.2 { st.val } else { 0 },
                        serial: s.serials[i],
                    });
                    Self::push(out, format!("send-all {i}->{dst}"), t);
                    // Send one non-owner token, with and without data.
                    if st.tokens >= 2 {
                        for data in [false, true] {
                            if data && !st.data {
                                continue;
                            }
                            let mut t = s.clone();
                            t.nodes[i].tokens -= 1;
                            t.net.push(TMsg::Tokens {
                                dst: dst as u8,
                                count: 1,
                                owner: false,
                                data,
                                val: if data { st.val } else { 0 },
                                serial: s.serials[i],
                            });
                            Self::push(out, format!("send-1 {i}->{dst} data={data}"), t);
                        }
                    }
                }
            }
        }

        if !policy_sends && self.token_inflight(s) < self.p.max_inflight {
            // Memory grants everything to any cache (a transient-request
            // response), and any cache may write everything back.
            let mem = self.mem();
            if s.nodes[mem].tokens > 0 {
                for dst in 0..self.p.caches {
                    let mut t = s.clone();
                    let st = s.nodes[mem].clone();
                    let bundle = (st.tokens, st.owner, st.data);
                    Self::apply_grant(&mut t.nodes[mem], bundle);
                    t.net.push(TMsg::Tokens {
                        dst: dst as u8,
                        count: bundle.0,
                        owner: bundle.1,
                        data: bundle.2,
                        val: if bundle.2 { st.val } else { 0 },
                        serial: s.serials[mem],
                    });
                    Self::push(out, format!("mem-grant ->{dst}"), t);
                }
            }
            for i in 0..self.p.caches {
                let st = &s.nodes[i];
                if st.tokens > 0 {
                    let mut t = s.clone();
                    let bundle = (st.tokens, st.owner, st.data);
                    let val = st.val;
                    Self::apply_grant(&mut t.nodes[i], bundle);
                    t.net.push(TMsg::Tokens {
                        dst: mem as u8,
                        count: bundle.0,
                        owner: bundle.1,
                        data: bundle.2,
                        val: if bundle.2 { val } else { 0 },
                        serial: s.serials[i],
                    });
                    Self::push(out, format!("writeback {i}->mem"), t);
                }
            }
        }

        // --- message delivery -------------------------------------------
        for (mi, m) in s.net.iter().enumerate() {
            let mut t = s.clone();
            t.net.remove(mi);
            match *m {
                TMsg::Tokens {
                    dst,
                    count,
                    owner,
                    data,
                    val,
                    serial,
                } => {
                    if serial < t.serials[dst as usize] {
                        // Minted under a superseded serial: destroy at
                        // receipt. A stale owner still hands its data
                        // back to the authority's backing store (the
                        // StaleDataReturn path; for a clean owner the
                        // store already matches, so this is a no-op).
                        if owner && data {
                            t.nodes[self.mem()].val = val;
                        }
                        Self::push(out, format!("deliver-stale ->{dst}"), t);
                    } else {
                        let d = &mut t.nodes[dst as usize];
                        d.tokens += count;
                        if owner {
                            d.owner = true;
                        }
                        if data {
                            d.data = true;
                            d.val = val;
                        }
                        // Unreachable above the node's serial (the mint
                        // waits for every ack), mirrored defensively
                        // from the implementation's fold path.
                        t.serials[dst as usize] = t.serials[dst as usize].max(serial);
                        // (Remembered persistent requests capture these tokens
                        // via the separate forwarding action below.)
                        Self::push(out, format!("deliver-tokens ->{dst}"), t);
                    }
                }
                TMsg::RecreateInval { dst, serial } => {
                    let d = dst as usize;
                    t.serials[d] = serial;
                    let nd = t.nodes[d].clone();
                    if nd.owner && nd.data {
                        // StaleDataReturn: a destroyed owner hands its
                        // data back to the authority before the ack
                        // releases the mint (the drain window covers
                        // the return's flight time).
                        t.nodes[self.mem()].val = nd.val;
                    }
                    t.nodes[d] = NodeSt {
                        tokens: 0,
                        owner: false,
                        data: false,
                        val: 0,
                    };
                    t.net.push(TMsg::RecreateAck { serial });
                    Self::push(out, format!("deliver-inval ->{dst}"), t);
                }
                TMsg::RecreateAck { serial } => {
                    let (ns, awaiting) = t.recreating.expect("ack outside a recreation");
                    debug_assert_eq!(ns, serial);
                    t.recreating = Some((ns, awaiting - 1));
                    Self::push(out, format!("deliver-ack s{serial}"), t);
                }
                TMsg::Activate { dst, proc, kind } => {
                    t.tables[dst as usize][proc as usize] = Some(TableEntry {
                        kind,
                        marked: false,
                    });
                    Self::push(out, format!("deliver-activate p{proc}->{dst}"), t);
                }
                TMsg::Deactivate { dst, proc } => {
                    t.tables[dst as usize][proc as usize] = None;
                    Self::push(out, format!("deliver-deactivate p{proc}->{dst}"), t);
                }
                TMsg::ArbRequest { proc, kind } => {
                    if t.arb_current.is_none() {
                        t.arb_current = Some((proc, kind));
                        // The arbiter's own (memory) table updates locally;
                        // caches learn via activation messages.
                        let mem = self.mem();
                        t.tables[mem][proc as usize] = Some(TableEntry {
                            kind,
                            marked: false,
                        });
                        self.broadcast(&mut t, mem, |d| TMsg::ArbActivate { dst: d, proc, kind });
                    } else {
                        t.arb_queue.push((proc, kind));
                    }
                    Self::push(out, format!("arb-request p{proc}"), t);
                }
                TMsg::ArbActivate { dst, proc, kind } => {
                    t.tables[dst as usize][proc as usize] = Some(TableEntry {
                        kind,
                        marked: false,
                    });
                    Self::push(out, format!("deliver-arb-activate p{proc}->{dst}"), t);
                }
                TMsg::ArbDone { proc } => {
                    // A request satisfied before activation — tokens can
                    // arrive from ordinary transfers — must still be
                    // withdrawn from the arbiter's queue, or the arbiter
                    // would later activate a ghost request.
                    if t.arb_current.map(|(p, _)| p) != Some(proc) {
                        if let Some(pos) = t.arb_queue.iter().position(|&(p, _)| p == proc) {
                            t.arb_queue.remove(pos);
                        }
                    }
                    if t.arb_current.map(|(p, _)| p) == Some(proc) {
                        // Deactivation is applied atomically at every table
                        // (a downscaling simplification that keeps the
                        // activation/token races, which are the interesting
                        // ones, fully modeled).
                        for node in 0..self.n_nodes() {
                            t.tables[node][proc as usize] = None;
                        }
                        t.net.retain(
                            |m| !matches!(m, TMsg::ArbActivate { proc: p, .. } if *p == proc),
                        );
                        t.arb_current = if t.arb_queue.is_empty() {
                            None
                        } else {
                            let (np, nk) = t.arb_queue.remove(0);
                            let mem = self.mem();
                            t.tables[mem][np as usize] = Some(TableEntry {
                                kind: nk,
                                marked: false,
                            });
                            self.broadcast(&mut t, mem, |d| TMsg::ArbActivate {
                                dst: d,
                                proc: np,
                                kind: nk,
                            });
                            Some((np, nk))
                        };
                    }
                    Self::push(out, format!("arb-done p{proc}"), t);
                }
                TMsg::ArbDeactivate { dst, proc } => {
                    t.tables[dst as usize][proc as usize] = None;
                    Self::push(out, format!("deliver-arb-deactivate p{proc}->{dst}"), t);
                }
            }
        }

        // --- token loss and recreation (§15) ----------------------------
        if self.p.recovery {
            let mem = self.mem();
            let current = s.serials[mem];
            // The interconnect loses a droppable bundle: never a dirty
            // owner (committed stores travel acknowledged), and — a
            // downscaling of the unbounded real schedule — only while a
            // recreation remains available to repair the epoch, so
            // EF-quiescence stays meaningful.
            for (mi, m) in s.net.iter().enumerate() {
                let TMsg::Tokens {
                    dst,
                    count,
                    owner,
                    data,
                    val,
                    serial,
                } = *m
                else {
                    continue;
                };
                let dirty_owner = owner && data && val != s.nodes[mem].val;
                let repairable = serial < current || current < self.p.max_serials;
                if dirty_owner || !repairable {
                    continue;
                }
                let mut t = s.clone();
                t.net.remove(mi);
                let e = &mut t.lost[serial as usize];
                e.0 += count;
                e.1 |= owner;
                Self::push(out, format!("lose ->{dst}"), t);
            }
            // The authority starts a recreation: bump the serial,
            // destroy its own (now stale) holding, broadcast
            // invalidations. Enabled whenever budget remains — the real
            // timeout may fire on a merely-slow block, so safety must
            // hold under spurious recreation too.
            if s.recreating.is_none() && current < self.p.max_serials {
                let mut t = s.clone();
                let ns = current + 1;
                t.serials[mem] = ns;
                t.nodes[mem].tokens = 0;
                t.nodes[mem].owner = false;
                t.nodes[mem].data = false;
                self.broadcast(&mut t, mem, |d| TMsg::RecreateInval { dst: d, serial: ns });
                t.recreating = Some((ns, self.p.caches as u8));
                Self::push(out, "recreate-start".into(), t);
            }
            // The mint: every invalidation acked and every stale bundle
            // drained (the drain window's postcondition — before the
            // mint, *any* in-flight token bundle is stale by
            // construction, so the guard is simply an empty token net).
            if s.recreating == Some((current, 0))
                && !s.net.iter().any(|m| matches!(m, TMsg::Tokens { .. }))
            {
                let mut t = s.clone();
                t.nodes[mem].tokens = self.p.tokens;
                t.nodes[mem].owner = true;
                t.nodes[mem].data = true;
                t.recreating = None;
                Self::push(out, "recreate-done".into(), t);
            }
        }

        // --- writes (any cache holding everything may commit a store) ---
        if s.writes < self.p.max_writes {
            for i in 0..self.p.caches {
                let st = &s.nodes[i];
                if st.tokens == self.p.tokens && st.data {
                    debug_assert!(st.owner);
                    let mut t = s.clone();
                    t.writes += 1;
                    t.current = t.writes;
                    t.nodes[i].val = t.writes;
                    Self::push(out, format!("write c{i} v{}", t.writes), t);
                }
            }
        }

        if self.p.mode == SubstrateMode::SafetyOnly {
            return;
        }

        // --- persistent request issue ------------------------------------
        if self.ctl_inflight(s) < self.p.max_ctl_inflight {
            for i in 0..self.p.caches {
                if s.my_req[i].is_some() {
                    continue;
                }
                // Wave rule: no marked entries in the local table.
                if s.tables[i].iter().flatten().any(|e| e.marked) {
                    continue;
                }
                for kind in [PKind::Read, PKind::Write] {
                    let mut t = s.clone();
                    t.my_req[i] = Some(kind);
                    match self.p.mode {
                        SubstrateMode::Distributed => {
                            t.tables[i][i] = Some(TableEntry {
                                kind,
                                marked: false,
                            });
                            self.broadcast(&mut t, i, |d| TMsg::Activate {
                                dst: d,
                                proc: i as u8,
                                kind,
                            });
                        }
                        SubstrateMode::Arbiter => {
                            t.net.push(TMsg::ArbRequest {
                                proc: i as u8,
                                kind,
                            });
                        }
                        SubstrateMode::SafetyOnly => unreachable!(),
                    }
                    Self::push(out, format!("issue c{i} {kind:?}"), t);
                }
            }
        }

        // --- forwarding to remembered active requests ----------------------
        if self.token_inflight(s) < self.p.max_inflight {
            for i in 0..n {
                let active = match self.p.mode {
                    SubstrateMode::Distributed => self.dist_active(s, i),
                    SubstrateMode::Arbiter => self.arb_known(s, i),
                    SubstrateMode::SafetyOnly => None,
                };
                let Some((proc, kind)) = active else {
                    continue;
                };
                if proc as usize == i {
                    continue;
                }
                let Some(g) = Self::grant(&s.nodes[i], kind) else {
                    continue;
                };
                let mut t = s.clone();
                let val = t.nodes[i].val;
                Self::apply_grant(&mut t.nodes[i], g);
                t.net.push(TMsg::Tokens {
                    dst: proc,
                    count: g.0,
                    owner: g.1,
                    data: g.2,
                    val: if g.2 { val } else { 0 },
                    serial: s.serials[i],
                });
                Self::push(out, format!("forward {i}->p{proc}"), t);
            }
        }

        // --- persistent completion -----------------------------------------
        for i in 0..self.p.caches {
            let Some(kind) = s.my_req[i] else {
                continue;
            };
            let st = &s.nodes[i];
            let satisfied = match kind {
                PKind::Write => st.tokens == self.p.tokens && st.data,
                PKind::Read => st.tokens >= 1 && st.data,
            };
            if !satisfied {
                continue;
            }
            if self.ctl_inflight(s) >= self.p.max_ctl_inflight {
                continue;
            }
            let mut t = s.clone();
            t.my_req[i] = None;
            if kind == PKind::Write && t.writes < self.p.max_writes {
                t.writes += 1;
                t.current = t.writes;
                t.nodes[i].val = t.writes;
            }
            match self.p.mode {
                SubstrateMode::Distributed => {
                    t.tables[i][i] = None;
                    // Wave rule: mark every other outstanding request.
                    for e in t.tables[i].iter_mut().flatten() {
                        e.marked = true;
                    }
                    self.broadcast(&mut t, i, |d| TMsg::Deactivate {
                        dst: d,
                        proc: i as u8,
                    });
                }
                SubstrateMode::Arbiter => {
                    t.net.push(TMsg::ArbDone { proc: i as u8 });
                }
                SubstrateMode::SafetyOnly => unreachable!(),
            }
            Self::push(out, format!("complete c{i} {kind:?}"), t);
        }
    }

    fn invariant(&self, s: &TState) -> Result<(), String> {
        let mem = self.mem();
        let current = s.serials[mem];
        // Conservation per epoch. A node's held tokens belong to the
        // node's tracked serial; bundles carry their own. Without a
        // recreation in progress every epoch-`current` token (and the
        // owner) is accounted exactly, modulo the lost ledger; during
        // one, the superseding epoch must still be empty (the mint
        // comes last) and the old epoch may only deflate (invalidations
        // destroy tokens without recording them anywhere).
        let held_at = |e: u8| -> (u32, u32) {
            let mut tokens = 0;
            let mut owners = 0;
            for (i, nd) in s.nodes.iter().enumerate() {
                if s.serials[i] == e {
                    tokens += nd.tokens as u32;
                    owners += nd.owner as u32;
                }
            }
            (tokens, owners)
        };
        let flying_at = |e: u8| -> (u32, u32) {
            let mut tokens = 0;
            let mut owners = 0;
            for m in &s.net {
                if let TMsg::Tokens {
                    count,
                    owner,
                    serial,
                    ..
                } = m
                {
                    if *serial == e {
                        tokens += *count as u32;
                        owners += *owner as u32;
                    }
                }
            }
            (tokens, owners)
        };
        for m in &s.net {
            if let TMsg::Tokens { serial, .. } = m {
                if *serial > current {
                    return Err(format!(
                        "bundle minted under future serial {serial} (current {current})"
                    ));
                }
            }
        }
        match s.recreating {
            None => {
                if let Some(i) = (0..s.serials.len()).find(|&i| s.serials[i] != current) {
                    return Err(format!(
                        "node {i} at serial {} after recreation to {current} completed",
                        s.serials[i]
                    ));
                }
                let (held, howners) = held_at(current);
                let (flying, fowners) = flying_at(current);
                let (lost, lost_owner) = s.lost[current as usize];
                if held + flying + lost as u32 != self.p.tokens as u32 {
                    return Err(format!(
                        "epoch {current} conservation: {held} held + {flying} in \
                         flight + {lost} lost != {}",
                        self.p.tokens
                    ));
                }
                let owners = howners + fowners + lost_owner as u32;
                if owners != 1 {
                    return Err(format!("epoch {current} owner count {owners} != 1"));
                }
            }
            Some((ns, awaiting)) => {
                if ns != current {
                    return Err(format!(
                        "recreating serial {ns} but authority tracks {current}"
                    ));
                }
                let (new_held, _) = held_at(ns);
                let (new_flying, _) = flying_at(ns);
                if new_held + new_flying != 0 {
                    return Err(format!(
                        "epoch {ns} has {new_held} held + {new_flying} in flight \
                         before its mint"
                    ));
                }
                let old = ns - 1;
                let (held, howners) = held_at(old);
                let (flying, fowners) = flying_at(old);
                let (lost, lost_owner) = s.lost[old as usize];
                if held + flying + lost as u32 > self.p.tokens as u32 {
                    return Err(format!(
                        "epoch {old} inflation during recreation: {held} held + \
                         {flying} in flight + {lost} lost > {}",
                        self.p.tokens
                    ));
                }
                if howners + fowners + lost_owner as u32 > 1 {
                    return Err(format!("epoch {old} has multiple owners"));
                }
                let handshakes = s
                    .net
                    .iter()
                    .filter(|m| matches!(m, TMsg::RecreateInval { .. } | TMsg::RecreateAck { .. }))
                    .count();
                if handshakes != awaiting as usize {
                    return Err(format!(
                        "awaiting {awaiting} acks but {handshakes} handshake \
                         message(s) in flight"
                    ));
                }
            }
        }
        if s.recreating.is_none()
            && s.net
                .iter()
                .any(|m| matches!(m, TMsg::RecreateInval { .. } | TMsg::RecreateAck { .. }))
        {
            return Err("recreation handshake in flight outside a recreation".into());
        }
        for (i, nd) in s.nodes.iter().enumerate() {
            // Coherence invariant / serial view: every readable copy holds
            // the last written value.
            if nd.tokens >= 1 && nd.data && nd.val != s.current {
                return Err(format!(
                    "serial view: node {i} readable with v{} but current is v{}",
                    nd.val, s.current
                ));
            }
            if nd.tokens == 0 && nd.data {
                return Err(format!("node {i} keeps data without tokens"));
            }
            if nd.owner && !nd.data {
                return Err(format!("node {i} owns without data"));
            }
        }
        // Owner messages must carry data.
        for m in &s.net {
            if let TMsg::Tokens {
                owner: true,
                data: false,
                ..
            } = m
            {
                return Err("owner token in flight without data".into());
            }
        }
        // One writer XOR multiple readers: implied by counting; check the
        // explicit form anyway.
        let writers = s.nodes.iter().filter(|n| n.tokens == self.p.tokens).count();
        let readers = s.nodes.iter().filter(|n| n.tokens >= 1).count();
        if writers == 1 && readers > 1 {
            return Err("writer coexists with another reader".into());
        }
        Ok(())
    }

    fn is_quiescent(&self, s: &TState) -> bool {
        s.net.is_empty() && s.my_req.iter().all(Option::is_none) && s.recreating.is_none()
    }

    /// Cache-permutation quotient — **safety-only substrate only**. In
    /// that mode every rule, the invariant, and quiescence treat caches
    /// exchangeably (the nondeterministic policy interface quantifies
    /// over all of them uniformly), so relabelling caches maps runs to
    /// runs. The persistent-request modes are *not* exchangeable: both
    /// activation mechanisms resolve races by fixed lowest-index
    /// priority (`dist_active`/`arb_known`), so a relabelled state can
    /// take different transitions — there the canonical form is the
    /// identity. See DESIGN.md §17.
    fn canonicalize(&self, s: &TState) -> TState {
        if self.p.mode != SubstrateMode::SafetyOnly {
            return s.clone();
        }
        let mut best = s.clone();
        for perm in permutations(self.p.caches).into_iter().skip(1) {
            let t = self.permute(s, &perm);
            if t < best {
                best = t;
            }
        }
        best
    }

    /// Footprints over the resource universe: bit *i* = node *i* (its
    /// `NodeSt`, serial, table row, outstanding request), plus the
    /// budget and global-control bits below. The one ample-eligible
    /// class is recreation-ack delivery (class 0): acks pairwise
    /// commute (each removes a distinct message and decrements the
    /// awaited count), every other control action carries the control
    /// budget and therefore conflicts mechanically, and the invariant
    /// never reads the in-flight ack multiset except through the
    /// handshake count the decrement preserves — the full argument is
    /// in DESIGN.md §17.
    fn action_meta(&self, _s: &TState, label: &str) -> ActionMeta {
        const TOKEN_BUDGET: u64 = 1 << 16;
        const CTL_BUDGET: u64 = 1 << 17;
        const RECREATING: u64 = 1 << 18;
        const ARB: u64 = 1 << 19;
        const SPEC: u64 = 1 << 20;
        let mem = 1u64 << self.mem();
        let mut words = label.split_whitespace();
        let kind = words.next().unwrap_or("");
        let arg = words.next().unwrap_or("");
        // `{i}->…` / `c{i}` / `p{i}` / `->{dst}` index parsers.
        let src = || arg.split("->").next().and_then(|w| w.parse::<u64>().ok());
        let tagged = || {
            arg.strip_prefix(['c', 'p'])
                .and_then(|w| w.parse::<u64>().ok())
        };
        let dst = || {
            arg.split("->")
                .nth(1)
                .and_then(|w| w.parse::<u64>().ok())
                .filter(|&d| d < self.n_nodes() as u64)
        };
        let node = |i: Option<u64>| i.map_or(u64::MAX, |i| 1 << i);
        match kind {
            "send-all" | "send-1" => {
                ActionMeta::rw(node(src()) | TOKEN_BUDGET, node(src()) | TOKEN_BUDGET)
            }
            "mem-grant" => ActionMeta::rw(mem | TOKEN_BUDGET, mem | TOKEN_BUDGET),
            "writeback" | "forward" => {
                ActionMeta::rw(node(src()) | TOKEN_BUDGET, node(src()) | TOKEN_BUDGET)
            }
            "deliver-tokens" => {
                ActionMeta::rw(node(dst()) | TOKEN_BUDGET, node(dst()) | TOKEN_BUDGET)
            }
            "deliver-stale" => ActionMeta::rw(node(dst()) | mem | TOKEN_BUDGET, mem | TOKEN_BUDGET),
            "deliver-inval" => ActionMeta::rw(
                node(dst()) | mem | CTL_BUDGET,
                node(dst()) | mem | CTL_BUDGET,
            ),
            "deliver-ack" => ActionMeta {
                reads: CTL_BUDGET | RECREATING,
                writes: CTL_BUDGET | RECREATING,
                class: Some(0),
            },
            "lose" => ActionMeta::rw(mem | TOKEN_BUDGET | RECREATING, TOKEN_BUDGET | RECREATING),
            "recreate-start" => {
                ActionMeta::rw(mem | RECREATING | CTL_BUDGET, mem | RECREATING | CTL_BUDGET)
            }
            "recreate-done" => ActionMeta::rw(mem | RECREATING | TOKEN_BUDGET, mem | RECREATING),
            "write" => ActionMeta::rw(node(tagged()) | SPEC, node(tagged()) | SPEC),
            "issue" => ActionMeta::rw(node(tagged()) | CTL_BUDGET, node(tagged()) | CTL_BUDGET),
            "complete" => ActionMeta::rw(
                node(tagged()) | CTL_BUDGET | SPEC,
                node(tagged()) | CTL_BUDGET | SPEC,
            ),
            "deliver-activate"
            | "deliver-deactivate"
            | "deliver-arb-activate"
            | "deliver-arb-deactivate" => {
                ActionMeta::rw(node(dst()) | CTL_BUDGET, node(dst()) | CTL_BUDGET)
            }
            "arb-request" => ActionMeta::rw(ARB | mem | CTL_BUDGET, ARB | mem | CTL_BUDGET),
            // `arb-done` edits the queue, every table, and filters the
            // net wholesale — opaque.
            _ => ActionMeta::OPAQUE,
        }
    }
}

impl TokenModel {
    /// The arbiter-activated request as known *locally* at `node`.
    fn arb_known(&self, s: &TState, node: usize) -> Option<(u8, PKind)> {
        s.tables[node]
            .iter()
            .enumerate()
            .find_map(|(p, e)| e.map(|e| (p as u8, e.kind)))
    }

    /// Applies a cache permutation `perm` (memory fixed): node state,
    /// serials, outstanding requests, table rows *and* columns, arbiter
    /// bookkeeping, and every message's node fields move together, so
    /// the result is the same global state with caches relabelled.
    fn permute(&self, s: &TState, perm: &[usize]) -> TState {
        let nc = self.p.caches;
        let node_map = |i: usize| if i < nc { perm[i] } else { i };
        let mut t = s.clone();
        for (i, &to) in perm.iter().enumerate() {
            t.nodes[to] = s.nodes[i].clone();
            t.serials[to] = s.serials[i];
            t.my_req[to] = s.my_req[i];
        }
        for i in 0..self.n_nodes() {
            for (p, &to) in perm.iter().enumerate() {
                t.tables[node_map(i)][to] = s.tables[i][p];
            }
        }
        t.arb_queue = s
            .arb_queue
            .iter()
            .map(|&(p, k)| (perm[p as usize] as u8, k))
            .collect();
        t.arb_current = s.arb_current.map(|(p, k)| (perm[p as usize] as u8, k));
        let map_dst = |d: u8| node_map(d as usize) as u8;
        let map_proc = |p: u8| perm[p as usize] as u8;
        for m in &mut t.net {
            match m {
                TMsg::Tokens { dst, .. } | TMsg::RecreateInval { dst, .. } => *dst = map_dst(*dst),
                TMsg::RecreateAck { .. } => {}
                TMsg::Activate { dst, proc, .. }
                | TMsg::Deactivate { dst, proc }
                | TMsg::ArbActivate { dst, proc, .. }
                | TMsg::ArbDeactivate { dst, proc } => {
                    *dst = map_dst(*dst);
                    *proc = map_proc(*proc);
                }
                TMsg::ArbRequest { proc, .. } | TMsg::ArbDone { proc } => *proc = map_proc(*proc),
            }
        }
        t.net.sort();
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{check, CheckOptions};

    #[test]
    fn safety_substrate_verifies() {
        let m = TokenModel::new(TokenModelParams::small(SubstrateMode::SafetyOnly));
        let r = check(&m, &CheckOptions::default()).expect("safety substrate must verify");
        assert!(r.states > 100, "suspiciously small space: {}", r.states);
    }

    #[test]
    fn distributed_substrate_verifies() {
        let m = TokenModel::new(TokenModelParams::small(SubstrateMode::Distributed));
        let r = check(&m, &CheckOptions::default()).expect("dst substrate must verify");
        assert!(r.progress_checked);
    }

    #[test]
    fn arbiter_substrate_verifies() {
        let m = TokenModel::new(TokenModelParams::small(SubstrateMode::Arbiter));
        let r = check(&m, &CheckOptions::default()).expect("arb substrate must verify");
        assert!(r.states > 100);
    }

    #[test]
    fn recovery_substrate_verifies() {
        let m = TokenModel::new(TokenModelParams::small_recovery(SubstrateMode::SafetyOnly));
        let r = check(&m, &CheckOptions::default()).expect("recovery substrate must verify");
        assert!(r.progress_checked, "EF-quiescence must hold under loss");
        assert!(r.states > 100, "suspiciously small space: {}", r.states);
    }

    #[test]
    fn recovery_reaches_every_recreation_kind() {
        use crate::checker::reachable_kinds;
        let m = TokenModel::new(TokenModelParams::small_recovery(SubstrateMode::SafetyOnly));
        let kinds = reachable_kinds(&m, 5_000_000);
        for k in [
            "lose",
            "recreate-start",
            "deliver-inval",
            "deliver-ack",
            "deliver-stale",
            "recreate-done",
        ] {
            assert!(
                kinds.contains(k),
                "recovery universe missing {k}: {kinds:?}"
            );
        }
    }

    /// Tokens that vanish without a lost-ledger entry must break the
    /// per-epoch conservation invariant.
    #[test]
    fn invariant_rejects_unledgered_loss() {
        let m = TokenModel::new(TokenModelParams::small_recovery(SubstrateMode::SafetyOnly));
        let mut s = m.initial().remove(0);
        s.nodes[m.mem()].tokens -= 1; // destroyed with no ledger entry
        let err = m.invariant(&s).unwrap_err();
        assert!(err.contains("conservation"), "{err}");
    }

    /// A bundle claiming a serial the authority never minted is
    /// inadmissible.
    #[test]
    fn invariant_rejects_future_serial_bundle() {
        let m = TokenModel::new(TokenModelParams::small_recovery(SubstrateMode::SafetyOnly));
        let mut s = m.initial().remove(0);
        s.nodes[m.mem()].tokens -= 1;
        s.net.push(TMsg::Tokens {
            dst: 0,
            count: 1,
            owner: false,
            data: false,
            val: 0,
            serial: 3,
        });
        let err = m.invariant(&s).unwrap_err();
        assert!(err.contains("future serial"), "{err}");
    }

    #[test]
    #[should_panic(expected = "need T > holders")]
    fn rejects_too_few_tokens() {
        let _ = TokenModel::new(TokenModelParams {
            tokens: 3,
            ..TokenModelParams::small(SubstrateMode::SafetyOnly)
        });
    }

    /// Mutation test: breaking conservation (a node that duplicates its
    /// tokens on send) must be caught. We simulate by checking that the
    /// invariant rejects a corrupted state.
    #[test]
    fn invariant_rejects_forged_tokens() {
        let m = TokenModel::new(TokenModelParams::small(SubstrateMode::SafetyOnly));
        let mut s = m.initial().remove(0);
        s.nodes[0].tokens = 1; // forged: memory still has all T
        s.nodes[0].data = true;
        assert!(m.invariant(&s).is_err());
    }

    #[test]
    fn invariant_rejects_stale_readable_copy() {
        let m = TokenModel::new(TokenModelParams::small(SubstrateMode::SafetyOnly));
        let mut s = m.initial().remove(0);
        // Move one token + stale data to cache 0, pretend a write happened.
        s.nodes[m.mem()].tokens -= 1;
        s.nodes[0] = NodeSt {
            tokens: 1,
            owner: false,
            data: true,
            val: 0,
        };
        s.current = 1;
        s.writes = 1;
        s.nodes[m.mem()].val = 1;
        let err = m.invariant(&s).unwrap_err();
        assert!(err.contains("serial view"), "{err}");
    }
}
