//! A small explicit-state model checker.
//!
//! Breadth-first exhaustive exploration with invariant checking, deadlock
//! detection, counterexample traces, and an `EF quiescence` progress check
//! (from every reachable state, a state with no pending work must be
//! reachable — catching both deadlocks and inescapable livelocks). This is
//! the same methodology the paper uses with TLA+/TLC (§5), in-tree so the
//! verification study is reproducible without external tooling.

use std::collections::HashMap;
use std::fmt::Debug;
use std::hash::Hash;
use std::time::Instant;

/// A transition system with invariants.
pub trait Model {
    /// The (hashable) global state.
    type State: Clone + Eq + Hash + Debug;

    /// Initial states.
    fn initial(&self) -> Vec<Self::State>;

    /// All successors of `s`, with human-readable action labels.
    fn successors(&self, s: &Self::State, out: &mut Vec<(String, Self::State)>);

    /// Safety invariant; return a description of the violation if broken.
    ///
    /// # Errors
    ///
    /// An error describes the violated property for the counterexample.
    fn invariant(&self, s: &Self::State) -> Result<(), String>;

    /// True if `s` is allowed to have no successors, and is a valid
    /// target for the progress (EF-quiescence) check.
    fn is_quiescent(&self, s: &Self::State) -> bool;

    /// Takes the single labeled step `label` from `s`, if the model
    /// offers it — the refinement-checker entry point: an observed
    /// implementation action conforms iff the model can take the
    /// matching transition from its current abstract state.
    fn step_labeled(&self, s: &Self::State, label: &str) -> Option<Self::State> {
        let mut succ = Vec::new();
        self.successors(s, &mut succ);
        succ.into_iter().find(|(l, _)| l == label).map(|(_, t)| t)
    }

    /// The canonical representative of `s`'s symmetry orbit, used by
    /// [`crate::explore::check_parallel`] when `CheckOptions::symmetry`
    /// is on. The default is the identity (a trivial symmetry group),
    /// which is always sound. A model overriding this promises that its
    /// transition relation, invariant, and quiescence predicate are all
    /// invariant under the group it quotients by — the soundness
    /// arguments per model live in DESIGN.md §17.
    fn canonicalize(&self, s: &Self::State) -> Self::State {
        s.clone()
    }

    /// Footprint metadata for the enabled action labelled `label` in
    /// state `s`, used by the partial-order reduction in
    /// [`crate::explore::check_parallel`]. The default is
    /// [`ActionMeta::OPAQUE`] (conflicts with everything, never
    /// reducible), which is always sound. See DESIGN.md §17 for the
    /// obligations a model takes on by declaring anything finer.
    fn action_meta(&self, s: &Self::State, label: &str) -> ActionMeta {
        let _ = (s, label);
        ActionMeta::OPAQUE
    }
}

/// Per-action footprint metadata for partial-order reduction.
///
/// `reads`/`writes` are bitmasks over a resource universe the model
/// chooses (per-node state, budgets, global control — at most 64
/// resources). Two actions are treated as *dependent* when one's writes
/// intersect the other's reads-or-writes. `class` groups actions the
/// model additionally certifies as an *ample-eligible class*: members
/// pairwise commute semantically, and no action dependent on the class
/// can become enabled by firing actions outside it (the future-enabling
/// obligation — argued per class in DESIGN.md §17).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ActionMeta {
    /// Resources the action's guard or effect reads.
    pub reads: u64,
    /// Resources the action's effect writes.
    pub writes: u64,
    /// Ample-eligible class id, or `None` for plain actions.
    pub class: Option<u32>,
}

impl ActionMeta {
    /// Conservative default: touches every resource, never reducible.
    pub const OPAQUE: ActionMeta = ActionMeta {
        reads: u64::MAX,
        writes: u64::MAX,
        class: None,
    };

    /// A plain (classless) action with the given footprint.
    pub const fn rw(reads: u64, writes: u64) -> ActionMeta {
        ActionMeta {
            reads,
            writes,
            class: None,
        }
    }

    /// True if `self` and `other` may not commute (write overlap).
    pub fn dependent(&self, other: &ActionMeta) -> bool {
        self.writes & (other.reads | other.writes) != 0
            || other.writes & (self.reads | self.writes) != 0
    }
}

/// The set of distinct transition *kinds* (first whitespace-separated
/// word of each action label) fired anywhere in the model's reachable
/// state space, up to `max_states` distinct states.
///
/// This is the coverage universe for conformance accounting: a kind in
/// this set that a simulator trace never maps to is either dead spec or
/// a missing test.
///
/// # Panics
///
/// Panics if the reachable state count exceeds `max_states`.
pub fn reachable_kinds<M: Model>(
    model: &M,
    max_states: usize,
) -> std::collections::BTreeSet<String> {
    // Dedup by 128-bit fingerprint instead of retaining a full clone of
    // every visited state: at the 5M-state scale the conformance
    // coverage universes run at, that is 16 bytes per state rather than
    // a whole protocol state (hundreds of bytes each for TokenModel).
    // The collision risk is negligible (~n²/2^129; see DESIGN.md §17),
    // and a collision could only drop a kind that is reachable via
    // other states anyway.
    let mut kinds = std::collections::BTreeSet::new();
    let mut seen: std::collections::HashSet<u128> = std::collections::HashSet::new();
    let mut frontier: Vec<M::State> = Vec::new();
    for s in model.initial() {
        if seen.insert(crate::explore::fingerprint(&s)) {
            frontier.push(s);
        }
    }
    let mut succ = Vec::new();
    while let Some(s) = frontier.pop() {
        succ.clear();
        model.successors(&s, &mut succ);
        for (label, t) in succ.drain(..) {
            let kind = label.split_whitespace().next().unwrap_or("").to_string();
            kinds.insert(kind);
            let fp = crate::explore::fingerprint(&t);
            if !seen.contains(&fp) {
                assert!(
                    seen.len() < max_states,
                    "state space exceeded {max_states} states"
                );
                seen.insert(fp);
                frontier.push(t);
            }
        }
    }
    kinds
}

/// A property violation plus the action trace leading to it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// What went wrong.
    pub message: String,
    /// Action labels from an initial state to the violating state.
    pub trace: Vec<String>,
    /// The violating state, pretty-printed.
    pub state: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "violation: {}", self.message)?;
        writeln!(f, "state: {}", self.state)?;
        writeln!(f, "trace ({} steps):", self.trace.len())?;
        for (i, a) in self.trace.iter().enumerate() {
            writeln!(f, "  {i:3}. {a}")?;
        }
        Ok(())
    }
}

/// Statistics from an exhaustive exploration.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Distinct reachable states.
    pub states: usize,
    /// Transitions explored.
    pub transitions: u64,
    /// Maximum BFS depth.
    pub depth: usize,
    /// Wall-clock seconds spent.
    pub seconds: f64,
    /// Whether the progress (EF-quiescence) check was run and passed.
    pub progress_checked: bool,
}

/// Options for [`check`] and [`crate::explore::check_parallel`].
///
/// The sequential [`check`] reads only `max_states` and
/// `check_progress`; the remaining knobs configure the parallel
/// explorer and are ignored here.
#[derive(Debug, Clone, Copy)]
pub struct CheckOptions {
    /// Abort after this many distinct states (guards against blow-up).
    pub max_states: usize,
    /// Run the EF-quiescence progress check after reachability.
    pub check_progress: bool,
    /// Worker threads for [`crate::explore::check_parallel`]
    /// (`0` = [`tokencmp_pool::default_threads`]).
    pub workers: usize,
    /// Quotient the state space by the model's symmetry group
    /// ([`Model::canonicalize`]).
    pub symmetry: bool,
    /// Apply partial-order reduction using [`Model::action_meta`].
    pub por: bool,
    /// Retain full states on a sampled fingerprint stripe and assert
    /// that every dedup hit there compares equal (collision audit).
    pub collision_audit: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            max_states: 5_000_000,
            check_progress: true,
            workers: 0,
            symmetry: false,
            por: false,
            collision_audit: false,
        }
    }
}

/// Exhaustively explores `model`, checking the invariant on every state,
/// flagging non-quiescent deadlocks, and (optionally) verifying that a
/// quiescent state stays reachable from everywhere.
///
/// # Errors
///
/// Returns the first [`Violation`] found, with a minimal-length trace
/// (BFS order).
///
/// # Panics
///
/// Panics if the state count exceeds `opts.max_states`.
pub fn check<M: Model>(model: &M, opts: &CheckOptions) -> Result<CheckReport, Box<Violation>> {
    let start = Instant::now();
    let mut ids: HashMap<M::State, usize> = HashMap::new();
    let mut states: Vec<M::State> = Vec::new();
    let mut parent: Vec<Option<(usize, String)>> = Vec::new();
    let mut depth_of: Vec<usize> = Vec::new();
    let mut edges: Vec<Vec<usize>> = Vec::new(); // forward adjacency (by id)
    let mut quiescent: Vec<bool> = Vec::new();
    let mut frontier: Vec<usize> = Vec::new();
    let mut transitions: u64 = 0;
    let mut max_depth = 0;

    let trace_to = |idx: usize, parent: &Vec<Option<(usize, String)>>, states: &Vec<M::State>| {
        let mut trace = Vec::new();
        let mut cur = idx;
        while let Some((p, a)) = &parent[cur] {
            trace.push(a.clone());
            cur = *p;
        }
        trace.reverse();
        (trace, format!("{:?}", states[idx]))
    };

    for s in model.initial() {
        if let Err(m) = model.invariant(&s) {
            return Err(Box::new(Violation {
                message: m,
                trace: vec![],
                state: format!("{s:?}"),
            }));
        }
        let id = states.len();
        if ids.insert(s.clone(), id).is_none() {
            states.push(s);
            parent.push(None);
            depth_of.push(0);
            edges.push(Vec::new());
            quiescent.push(false);
            frontier.push(id);
        }
    }

    let mut succ = Vec::new();
    let mut head = 0;
    while head < frontier.len() {
        let id = frontier[head];
        head += 1;
        let s = states[id].clone();
        succ.clear();
        model.successors(&s, &mut succ);
        quiescent[id] = model.is_quiescent(&s);
        if succ.is_empty() && !quiescent[id] {
            let (trace, state) = trace_to(id, &parent, &states);
            return Err(Box::new(Violation {
                message: "deadlock: non-quiescent state with no successors".into(),
                trace,
                state,
            }));
        }
        for (label, t) in succ.drain(..) {
            transitions += 1;
            let t_id = match ids.get(&t) {
                Some(&i) => i,
                None => {
                    if let Err(m) = model.invariant(&t) {
                        let (mut trace, _) = trace_to(id, &parent, &states);
                        trace.push(label.clone());
                        return Err(Box::new(Violation {
                            message: m,
                            trace,
                            state: format!("{t:?}"),
                        }));
                    }
                    let i = states.len();
                    assert!(
                        i < opts.max_states,
                        "state space exceeded {} states",
                        opts.max_states
                    );
                    ids.insert(t.clone(), i);
                    states.push(t);
                    parent.push(Some((id, label)));
                    let d = depth_of[id] + 1;
                    depth_of.push(d);
                    max_depth = max_depth.max(d);
                    edges.push(Vec::new());
                    quiescent.push(false);
                    frontier.push(i);
                    i
                }
            };
            edges[id].push(t_id);
        }
    }

    // Progress: every state can reach a quiescent state (EF quiescence).
    if opts.check_progress {
        let n = states.len();
        // Backward reachability from quiescent states.
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (u, outs) in edges.iter().enumerate() {
            for &v in outs {
                rev[v].push(u);
            }
        }
        let mut ok = vec![false; n];
        let mut stack: Vec<usize> = (0..n).filter(|&i| quiescent[i]).collect();
        for &i in &stack {
            ok[i] = true;
        }
        while let Some(u) = stack.pop() {
            for &v in &rev[u] {
                if !ok[v] {
                    ok[v] = true;
                    stack.push(v);
                }
            }
        }
        if let Some(bad) = (0..n).find(|&i| !ok[i]) {
            let (trace, state) = trace_to(bad, &parent, &states);
            return Err(Box::new(Violation {
                message: "progress violation: no quiescent state reachable (livelock)".into(),
                trace,
                state,
            }));
        }
    }

    Ok(CheckReport {
        states: states.len(),
        transitions,
        depth: max_depth,
        seconds: start.elapsed().as_secs_f64(),
        progress_checked: opts.check_progress,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A counter that may increment up to `max` and reset from `max`.
    struct Counter {
        max: u8,
        broken_invariant: bool,
        deadlock_at_max: bool,
    }

    impl Model for Counter {
        type State = u8;
        fn initial(&self) -> Vec<u8> {
            vec![0]
        }
        fn successors(&self, s: &u8, out: &mut Vec<(String, u8)>) {
            if *s < self.max {
                out.push((format!("inc {s}"), s + 1));
            } else if !self.deadlock_at_max {
                out.push(("reset".into(), 0));
            }
        }
        fn invariant(&self, s: &u8) -> Result<(), String> {
            if self.broken_invariant && *s == 3 {
                Err("reached 3".into())
            } else {
                Ok(())
            }
        }
        fn is_quiescent(&self, s: &u8) -> bool {
            *s == 0
        }
    }

    #[test]
    fn explores_all_states() {
        let m = Counter {
            max: 5,
            broken_invariant: false,
            deadlock_at_max: false,
        };
        let r = check(&m, &CheckOptions::default()).unwrap();
        assert_eq!(r.states, 6);
        assert_eq!(r.transitions, 6);
        assert_eq!(r.depth, 5);
        assert!(r.progress_checked);
    }

    #[test]
    fn finds_invariant_violation_with_minimal_trace() {
        let m = Counter {
            max: 5,
            broken_invariant: true,
            deadlock_at_max: false,
        };
        let v = check(&m, &CheckOptions::default()).unwrap_err();
        assert!(v.message.contains("reached 3"));
        assert_eq!(v.trace.len(), 3);
        assert!(v.to_string().contains("trace (3 steps)"));
    }

    #[test]
    fn finds_deadlock() {
        let m = Counter {
            max: 2,
            broken_invariant: false,
            deadlock_at_max: true,
        };
        let v = check(&m, &CheckOptions::default()).unwrap_err();
        assert!(v.message.contains("deadlock"), "{}", v.message);
        assert_eq!(v.trace.len(), 2);
    }

    /// Two states cycling without ever reaching quiescence.
    struct Livelock;
    impl Model for Livelock {
        type State = u8;
        fn initial(&self) -> Vec<u8> {
            vec![1]
        }
        fn successors(&self, s: &u8, out: &mut Vec<(String, u8)>) {
            out.push(("spin".into(), 3 - s)); // 1 <-> 2
        }
        fn invariant(&self, _: &u8) -> Result<(), String> {
            Ok(())
        }
        fn is_quiescent(&self, s: &u8) -> bool {
            *s == 0 // unreachable
        }
    }

    #[test]
    fn finds_livelock_via_progress_check() {
        let v = check(&Livelock, &CheckOptions::default()).unwrap_err();
        assert!(v.message.contains("progress"), "{}", v.message);
        // Without the progress check it passes.
        let r = check(
            &Livelock,
            &CheckOptions {
                check_progress: false,
                ..CheckOptions::default()
            },
        )
        .unwrap();
        assert_eq!(r.states, 2);
    }

    #[test]
    fn step_labeled_follows_exactly_one_transition() {
        let m = Counter {
            max: 5,
            broken_invariant: false,
            deadlock_at_max: false,
        };
        assert_eq!(m.step_labeled(&2, "inc 2"), Some(3));
        assert_eq!(m.step_labeled(&2, "inc 3"), None, "label must match state");
        assert_eq!(m.step_labeled(&5, "reset"), Some(0));
        assert_eq!(m.step_labeled(&5, "inc 5"), None);
    }

    #[test]
    fn reachable_kinds_collects_label_heads() {
        let m = Counter {
            max: 3,
            broken_invariant: false,
            deadlock_at_max: false,
        };
        let kinds = reachable_kinds(&m, 1000);
        let kinds: Vec<&str> = kinds.iter().map(String::as_str).collect();
        assert_eq!(kinds, ["inc", "reset"]);
    }

    #[test]
    #[should_panic(expected = "state space exceeded")]
    fn reachable_kinds_respects_state_budget() {
        let m = Counter {
            max: 100,
            broken_invariant: false,
            deadlock_at_max: false,
        };
        let _ = reachable_kinds(&m, 10);
    }

    #[test]
    #[should_panic(expected = "state space exceeded")]
    fn respects_state_budget() {
        let m = Counter {
            max: 100,
            broken_invariant: false,
            deadlock_at_max: false,
        };
        let _ = check(
            &m,
            &CheckOptions {
                max_states: 10,
                check_progress: false,
                ..CheckOptions::default()
            },
        );
    }
}
