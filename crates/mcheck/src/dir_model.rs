//! A model-checkable specification of a *flat* (non-hierarchical)
//! simplification of DirectoryCMP, as in the paper's Section 5 comparison:
//! the intra-CMP level is abstracted away and a single MOESI directory at
//! memory serializes requests with a busy state, a deferred queue,
//! three-phase writebacks and unblock messages.
//!
//! Note how much more specification this protocol needs than the token
//! substrate even *after* flattening — the paper's TLA+ line counts
//! (1025 vs ~390) reflect the same asymmetry; the benchmark harness
//! reports the line counts of these Rust specs alongside the state
//! counts.

use crate::checker::{ActionMeta, Model};
use crate::explore::permutations;
use crate::token_model::PKind;

/// Cache line states (MOESI; absent `I` data is meaningless).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum CSt {
    /// Invalid.
    I,
    /// Shared, memory or an owner is responsible.
    S,
    /// Owned: shared but dirty; this cache is responsible for the data.
    O,
    /// Exclusive clean.
    E,
    /// Modified.
    M,
}

/// Directory states.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum DSt {
    /// Memory only; memory data current.
    Uncached,
    /// Sharer bitmask; memory data current.
    Shared(u8),
    /// `owner` holds dirty data (O); `mask` are the sharers (incl. owner).
    Owned {
        /// Responsible cache.
        owner: u8,
        /// All caches with copies.
        mask: u8,
    },
    /// One cache in E or M.
    Excl(u8),
}

/// Network messages.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum DMsg {
    /// Cache → directory request.
    Req {
        /// Requester.
        proc: u8,
        /// Read or write.
        kind: PKind,
    },
    /// Directory → owner: surrender to `proc` per `kind`.
    Fwd {
        /// Owner being forwarded to.
        dst: u8,
        /// Requester data goes to.
        proc: u8,
        /// Read or write.
        kind: PKind,
    },
    /// Directory → sharer: invalidate, ack to `proc`.
    Inv {
        /// Sharer being invalidated.
        dst: u8,
        /// Requester acks go to.
        proc: u8,
    },
    /// Sharer → requester invalidation ack.
    InvAck {
        /// Requester.
        dst: u8,
    },
    /// Directory → requester: how many acks to expect on a forwarded
    /// transaction.
    AckInfo {
        /// Requester.
        dst: u8,
        /// Expected acks.
        acks: u8,
    },
    /// Data grant from memory (carries the expected ack count inline).
    MemData {
        /// Requester.
        dst: u8,
        /// Granted state.
        state: CSt,
        /// Data version.
        val: u8,
        /// Expected acks.
        acks: u8,
    },
    /// Data grant from a forwarded owner.
    OwnerData {
        /// Requester.
        dst: u8,
        /// Granted state (M for writes/migration, S otherwise).
        state: CSt,
        /// Data version.
        val: u8,
        /// True if the previous owner kept dirty responsibility (O).
        owner_kept: bool,
    },
    /// Requester → directory: transaction done.
    Unblock {
        /// Requester.
        proc: u8,
        /// The requester's resulting state class.
        excl: bool,
        /// The previous owner kept dirty responsibility.
        owner_kept: bool,
    },
    /// Cache → directory: three-phase writeback request.
    WbReq {
        /// Writer.
        proc: u8,
    },
    /// Directory → cache: writeback grant.
    WbGrant {
        /// Writer.
        dst: u8,
    },
    /// Cache → directory: writeback data (phase 3).
    WbData {
        /// Writer.
        proc: u8,
        /// Data version (meaningful if `dirty`).
        val: u8,
        /// Modified data included.
        dirty: bool,
        /// False if the line was lost to a racing forward/invalidate.
        valid: bool,
    },
}

/// An outstanding miss at a cache.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Pending {
    /// Read or write.
    pub kind: PKind,
    /// Expected ack count, once known.
    pub expected: Option<u8>,
    /// Acks received so far.
    pub got: u8,
    /// Data received.
    pub have_data: bool,
    /// Previous owner kept responsibility (from the data message).
    pub owner_kept: bool,
    /// Tentative grant, installed only at completion (the line must not
    /// become visible before all invalidation acks arrive).
    pub grant: CSt,
    /// Tentative data version.
    pub gval: u8,
}

/// Per-cache model state.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct DCache {
    /// Line state.
    pub st: CSt,
    /// Data version (meaningful unless `I`).
    pub val: u8,
    /// Outstanding request.
    pub pending: Option<Pending>,
    /// A writeback handshake is outstanding (line parked in the buffer).
    pub wb: Option<(CSt, u8)>,
}

/// Global model state.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct DState {
    /// Caches.
    pub caches: Vec<DCache>,
    /// Directory state.
    pub dir: DSt,
    /// Directory busy serving `proc` (`true` = writeback handshake).
    pub busy: Option<(u8, bool)>,
    /// Requests deferred at the directory.
    pub deferred: Vec<DMsg>,
    /// Memory's data version.
    pub memval: u8,
    /// In-flight messages (sorted multiset).
    pub net: Vec<DMsg>,
    /// Last written version (spec variable).
    pub current: u8,
    /// Writes so far.
    pub writes: u8,
}

/// Parameters for the flat directory model.
#[derive(Clone, Copy, Debug)]
pub struct DirModelParams {
    /// Number of caches.
    pub caches: usize,
    /// Write bound (exact value domain).
    pub max_writes: u8,
    /// In-flight message bound (gates new requests, not responses).
    pub max_inflight: usize,
}

impl DirModelParams {
    /// The downscaled configuration matching the token models.
    pub fn small() -> DirModelParams {
        DirModelParams {
            caches: 2,
            max_writes: 2,
            max_inflight: 4,
        }
    }
}

/// The flat MOESI directory model.
#[derive(Clone, Copy, Debug)]
pub struct DirModel {
    /// Parameters.
    pub p: DirModelParams,
}

impl DirModel {
    /// Creates the model.
    pub fn new(p: DirModelParams) -> DirModel {
        DirModel { p }
    }

    fn push(out: &mut Vec<(String, DState)>, label: String, mut s: DState) {
        s.net.sort();
        out.push((label, s));
    }

    /// Directory request processing (shared by fresh and deferred paths).
    fn process_req(&self, s: &mut DState, proc: u8, kind: PKind) {
        let bit = 1u8 << proc;
        match (kind, s.dir) {
            (PKind::Read, DSt::Uncached) => {
                s.net.push(DMsg::MemData {
                    dst: proc,
                    state: CSt::E,
                    val: s.memval,
                    acks: 0,
                });
            }
            (PKind::Read, DSt::Shared(_)) => {
                s.net.push(DMsg::MemData {
                    dst: proc,
                    state: CSt::S,
                    val: s.memval,
                    acks: 0,
                });
            }
            (PKind::Read, DSt::Owned { owner, .. }) | (PKind::Read, DSt::Excl(owner)) => {
                s.net.push(DMsg::Fwd {
                    dst: owner,
                    proc,
                    kind,
                });
                s.net.push(DMsg::AckInfo { dst: proc, acks: 0 });
            }
            (PKind::Write, DSt::Uncached) => {
                s.net.push(DMsg::MemData {
                    dst: proc,
                    state: CSt::M,
                    val: s.memval,
                    acks: 0,
                });
            }
            (PKind::Write, DSt::Shared(mask)) => {
                let others = mask & !bit;
                let n = others.count_ones() as u8;
                for d in 0..self.p.caches as u8 {
                    if others & (1 << d) != 0 {
                        s.net.push(DMsg::Inv { dst: d, proc });
                    }
                }
                s.net.push(DMsg::MemData {
                    dst: proc,
                    state: CSt::M,
                    val: s.memval,
                    acks: n,
                });
            }
            (PKind::Write, DSt::Owned { owner, mask }) => {
                let others = mask & !bit & !(1 << owner);
                let n = others.count_ones() as u8;
                for d in 0..self.p.caches as u8 {
                    if others & (1 << d) != 0 {
                        s.net.push(DMsg::Inv { dst: d, proc });
                    }
                }
                if owner == proc {
                    // Upgrade by the owner: it already has the data.
                    s.net.push(DMsg::AckInfo { dst: proc, acks: n });
                } else {
                    s.net.push(DMsg::Fwd {
                        dst: owner,
                        proc,
                        kind,
                    });
                    s.net.push(DMsg::AckInfo { dst: proc, acks: n });
                }
            }
            (PKind::Write, DSt::Excl(o)) => {
                debug_assert_ne!(o, proc);
                s.net.push(DMsg::Fwd { dst: o, proc, kind });
                s.net.push(DMsg::AckInfo { dst: proc, acks: 0 });
            }
        }
        s.busy = Some((proc, false));
    }

    fn process_wb_req(&self, s: &mut DState, proc: u8) {
        s.busy = Some((proc, true));
        s.net.push(DMsg::WbGrant { dst: proc });
    }

    /// Completes a directory transaction and pops one deferred request.
    fn unbusy(&self, s: &mut DState) {
        s.busy = None;
        if let Some(m) = s.deferred.first().copied() {
            s.deferred.remove(0);
            match m {
                DMsg::Req { proc, kind } => self.process_req(s, proc, kind),
                DMsg::WbReq { proc } => self.process_wb_req(s, proc),
                _ => unreachable!("only requests are deferred"),
            }
        }
    }

    fn try_complete(&self, s: &mut DState, p: usize) {
        let Some(pd) = s.caches[p].pending else {
            return;
        };
        if !pd.have_data || pd.expected != Some(pd.got) {
            return;
        }
        let excl;
        match pd.kind {
            PKind::Read => {
                s.caches[p].st = pd.grant;
                s.caches[p].val = pd.gval;
                excl = matches!(pd.grant, CSt::E | CSt::M);
            }
            PKind::Write => {
                s.caches[p].st = CSt::M;
                s.writes += 1;
                s.current = s.writes;
                s.caches[p].val = s.writes;
                excl = true;
            }
        }
        s.caches[p].pending = None;
        s.net.push(DMsg::Unblock {
            proc: p as u8,
            excl,
            owner_kept: pd.owner_kept,
        });
    }

    /// An owner cache (or its writeback buffer) answers a forward.
    fn serve_fwd(&self, t: &mut DState, dst: usize, proc: u8, kind: PKind) {
        let (st, val, from_wb) = if let Some((wst, wval)) = t.caches[dst].wb {
            (wst, wval, true)
        } else {
            (t.caches[dst].st, t.caches[dst].val, false)
        };
        debug_assert!(
            matches!(st, CSt::E | CSt::M | CSt::O),
            "fwd to non-owner {st:?}"
        );
        let dirty = matches!(st, CSt::M | CSt::O);
        let (new_st, grant, owner_kept) = match kind {
            PKind::Write => (CSt::I, CSt::M, false),
            PKind::Read => {
                if dirty {
                    // MOESI: the dirty owner keeps responsibility as O.
                    (CSt::O, CSt::S, true)
                } else {
                    (CSt::S, CSt::S, false)
                }
            }
        };
        if from_wb {
            if new_st == CSt::I {
                t.caches[dst].wb = None;
            } else {
                t.caches[dst].wb = Some((new_st, val));
            }
        } else {
            t.caches[dst].st = new_st;
        }
        if kind == PKind::Write {
            // If this owner has its own upgrade in flight, its preset
            // "I already have the data" no longer holds: fresh data will
            // arrive from the new owner when the directory serves it.
            if let Some(pd) = &mut t.caches[dst].pending {
                pd.have_data = false;
            }
        }
        t.net.push(DMsg::OwnerData {
            dst: proc,
            state: grant,
            val,
            owner_kept,
        });
    }

    /// Applies a cache permutation `perm`: cache slots, every mask bit
    /// and owner id in the directory state, and every message's node
    /// fields move together. The deferred queue keeps its FIFO *order*
    /// (the directory serves by arrival, never by index, which is what
    /// makes the model exchangeable).
    fn permute(&self, s: &DState, perm: &[usize]) -> DState {
        let mask_map = |mask: u8| {
            (0..perm.len()).fold(0u8, |acc, p| {
                if mask & (1 << p) != 0 {
                    acc | 1 << perm[p]
                } else {
                    acc
                }
            })
        };
        let pm = |p: u8| perm[p as usize] as u8;
        let remap = |m: &DMsg| -> DMsg {
            let mut m = *m;
            match &mut m {
                DMsg::Req { proc, .. }
                | DMsg::Unblock { proc, .. }
                | DMsg::WbReq { proc }
                | DMsg::WbData { proc, .. } => *proc = pm(*proc),
                DMsg::Fwd { dst, proc, .. } | DMsg::Inv { dst, proc } => {
                    *dst = pm(*dst);
                    *proc = pm(*proc);
                }
                DMsg::InvAck { dst }
                | DMsg::AckInfo { dst, .. }
                | DMsg::MemData { dst, .. }
                | DMsg::OwnerData { dst, .. }
                | DMsg::WbGrant { dst } => *dst = pm(*dst),
            }
            m
        };
        let mut t = s.clone();
        for (p, &to) in perm.iter().enumerate() {
            t.caches[to] = s.caches[p];
        }
        t.dir = match s.dir {
            DSt::Uncached => DSt::Uncached,
            DSt::Shared(m) => DSt::Shared(mask_map(m)),
            DSt::Owned { owner, mask } => DSt::Owned {
                owner: pm(owner),
                mask: mask_map(mask),
            },
            DSt::Excl(o) => DSt::Excl(pm(o)),
        };
        t.busy = s.busy.map(|(p, wb)| (pm(p), wb));
        t.deferred = s.deferred.iter().map(remap).collect();
        t.net = s.net.iter().map(remap).collect();
        t.net.sort();
        t
    }
}

impl Model for DirModel {
    type State = DState;

    fn initial(&self) -> Vec<DState> {
        vec![DState {
            caches: vec![
                DCache {
                    st: CSt::I,
                    val: 0,
                    pending: None,
                    wb: None,
                };
                self.p.caches
            ],
            dir: DSt::Uncached,
            busy: None,
            deferred: Vec::new(),
            memval: 0,
            net: Vec::new(),
            current: 0,
            writes: 0,
        }]
    }

    fn successors(&self, s: &DState, out: &mut Vec<(String, DState)>) {
        let n = self.p.caches;

        // --- cache request issue and evictions -----------------------------
        if s.net.len() < self.p.max_inflight {
            for p in 0..n {
                let c = &s.caches[p];
                if c.pending.is_some() || c.wb.is_some() {
                    continue;
                }
                match c.st {
                    CSt::I => {
                        for kind in [PKind::Read, PKind::Write] {
                            if kind == PKind::Write && s.writes >= self.p.max_writes {
                                continue;
                            }
                            let mut t = s.clone();
                            t.caches[p].pending = Some(Pending {
                                kind,
                                expected: None,
                                got: 0,
                                have_data: false,
                                owner_kept: false,
                                grant: CSt::I,
                                gval: 0,
                            });
                            t.net.push(DMsg::Req {
                                proc: p as u8,
                                kind,
                            });
                            Self::push(out, format!("req c{p} {kind:?}"), t);
                        }
                    }
                    CSt::S | CSt::O => {
                        if s.writes < self.p.max_writes {
                            let mut t = s.clone();
                            t.caches[p].pending = Some(Pending {
                                kind: PKind::Write,
                                expected: None,
                                got: 0,
                                have_data: c.st == CSt::O,
                                owner_kept: false,
                                grant: CSt::M,
                                gval: c.val,
                            });
                            t.net.push(DMsg::Req {
                                proc: p as u8,
                                kind: PKind::Write,
                            });
                            Self::push(out, format!("upgrade c{p}"), t);
                        }
                    }
                    CSt::E => {
                        if s.writes < self.p.max_writes {
                            let mut t = s.clone();
                            t.caches[p].st = CSt::M;
                            t.writes += 1;
                            t.current = t.writes;
                            t.caches[p].val = t.writes;
                            Self::push(out, format!("silent-store c{p}"), t);
                        }
                    }
                    CSt::M => {}
                }
                match c.st {
                    CSt::S => {
                        let mut t = s.clone();
                        t.caches[p].st = CSt::I;
                        Self::push(out, format!("evict-s c{p}"), t);
                    }
                    CSt::E | CSt::M | CSt::O => {
                        let mut t = s.clone();
                        t.caches[p].wb = Some((c.st, c.val));
                        t.caches[p].st = CSt::I;
                        t.net.push(DMsg::WbReq { proc: p as u8 });
                        Self::push(out, format!("evict-wb c{p}"), t);
                    }
                    CSt::I => {}
                }
            }
        }

        // --- message deliveries ----------------------------------------------
        for (mi, m) in s.net.iter().enumerate() {
            let mut t = s.clone();
            t.net.remove(mi);
            match *m {
                DMsg::Req { proc, kind } => {
                    if t.busy.is_some() {
                        t.deferred.push(DMsg::Req { proc, kind });
                    } else {
                        self.process_req(&mut t, proc, kind);
                    }
                    Self::push(out, format!("dir-req c{proc}"), t);
                }
                DMsg::WbReq { proc } => {
                    if t.busy.is_some() {
                        t.deferred.push(DMsg::WbReq { proc });
                    } else {
                        self.process_wb_req(&mut t, proc);
                    }
                    Self::push(out, format!("dir-wbreq c{proc}"), t);
                }
                DMsg::Fwd { dst, proc, kind } => {
                    self.serve_fwd(&mut t, dst as usize, proc, kind);
                    Self::push(out, format!("fwd c{dst}->c{proc}"), t);
                }
                DMsg::Inv { dst, proc } => {
                    let d = dst as usize;
                    t.caches[d].st = CSt::I;
                    t.caches[d].wb = None;
                    t.net.push(DMsg::InvAck { dst: proc });
                    Self::push(out, format!("inv c{dst}"), t);
                }
                DMsg::InvAck { dst } => {
                    let d = dst as usize;
                    if let Some(pd) = &mut t.caches[d].pending {
                        pd.got += 1;
                    }
                    self.try_complete(&mut t, d);
                    Self::push(out, format!("invack ->c{dst}"), t);
                }
                DMsg::AckInfo { dst, acks } => {
                    let d = dst as usize;
                    if let Some(pd) = &mut t.caches[d].pending {
                        pd.expected = Some(acks);
                    }
                    self.try_complete(&mut t, d);
                    Self::push(out, format!("ackinfo ->c{dst}"), t);
                }
                DMsg::MemData {
                    dst,
                    state,
                    val,
                    acks,
                } => {
                    let d = dst as usize;
                    if let Some(pd) = &mut t.caches[d].pending {
                        pd.have_data = true;
                        pd.expected = Some(acks);
                        pd.grant = state;
                        pd.gval = val;
                    }
                    self.try_complete(&mut t, d);
                    Self::push(out, format!("memdata ->c{dst}"), t);
                }
                DMsg::OwnerData {
                    dst,
                    state,
                    val,
                    owner_kept,
                } => {
                    let d = dst as usize;
                    if let Some(pd) = &mut t.caches[d].pending {
                        pd.have_data = true;
                        pd.owner_kept = owner_kept;
                        pd.grant = state;
                        pd.gval = val;
                    }
                    self.try_complete(&mut t, d);
                    Self::push(out, format!("ownerdata ->c{dst}"), t);
                }
                DMsg::Unblock {
                    proc,
                    excl,
                    owner_kept,
                } => {
                    let bit = 1u8 << proc;
                    t.dir = if excl {
                        DSt::Excl(proc)
                    } else if owner_kept {
                        match t.dir {
                            DSt::Excl(o) => DSt::Owned {
                                owner: o,
                                mask: (1 << o) | bit,
                            },
                            DSt::Owned { owner, mask } => DSt::Owned {
                                owner,
                                mask: mask | bit,
                            },
                            d => {
                                debug_assert!(false, "owner_kept from {d:?}");
                                d
                            }
                        }
                    } else {
                        match t.dir {
                            DSt::Shared(m) => DSt::Shared(m | bit),
                            DSt::Excl(o) => DSt::Shared((1 << o) | bit),
                            DSt::Uncached => DSt::Shared(bit),
                            DSt::Owned { owner, mask } => DSt::Owned {
                                owner,
                                mask: mask | bit,
                            },
                        }
                    };
                    self.unbusy(&mut t);
                    Self::push(out, format!("unblock c{proc}"), t);
                }
                DMsg::WbGrant { dst } => {
                    let d = dst as usize;
                    let msg = match t.caches[d].wb.take() {
                        Some((CSt::M | CSt::O, val)) => DMsg::WbData {
                            proc: dst,
                            val,
                            dirty: true,
                            valid: true,
                        },
                        Some((_, val)) => DMsg::WbData {
                            proc: dst,
                            val,
                            dirty: false,
                            valid: true,
                        },
                        None => DMsg::WbData {
                            proc: dst,
                            val: 0,
                            dirty: false,
                            valid: false,
                        },
                    };
                    t.net.push(msg);
                    Self::push(out, format!("wbgrant c{dst}"), t);
                }
                DMsg::WbData {
                    proc,
                    val,
                    dirty,
                    valid,
                } => {
                    if valid {
                        if dirty {
                            t.memval = val;
                        }
                        let bit = 1u8 << proc;
                        t.dir = match t.dir {
                            DSt::Excl(o) if o == proc => DSt::Uncached,
                            DSt::Owned { owner, mask } if owner == proc => {
                                let rest = mask & !bit;
                                if rest == 0 {
                                    DSt::Uncached
                                } else {
                                    DSt::Shared(rest)
                                }
                            }
                            DSt::Owned { owner, mask } => DSt::Owned {
                                owner,
                                mask: mask & !bit,
                            },
                            DSt::Shared(m) => {
                                let rest = m & !bit;
                                if rest == 0 {
                                    DSt::Uncached
                                } else {
                                    DSt::Shared(rest)
                                }
                            }
                            d => d,
                        };
                    }
                    self.unbusy(&mut t);
                    Self::push(out, format!("wbdata c{proc}"), t);
                }
            }
        }
    }

    fn invariant(&self, s: &DState) -> Result<(), String> {
        // Single-writer / multiple-reader.
        let excl = s
            .caches
            .iter()
            .filter(|c| matches!(c.st, CSt::E | CSt::M))
            .count();
        let readers = s
            .caches
            .iter()
            .filter(|c| matches!(c.st, CSt::S | CSt::O))
            .count();
        if excl > 1 {
            return Err(format!("{excl} exclusive copies"));
        }
        if excl == 1 && readers > 0 {
            return Err("exclusive copy coexists with shared copies".into());
        }
        let owners = s.caches.iter().filter(|c| c.st == CSt::O).count();
        if owners > 1 {
            return Err(format!("{owners} owned copies"));
        }
        // Serial view: every readable copy holds the latest value.
        for (i, c) in s.caches.iter().enumerate() {
            if c.st != CSt::I && c.val != s.current {
                return Err(format!(
                    "serial view: c{i} {:?} holds v{} but current is v{}",
                    c.st, c.val, s.current
                ));
            }
        }
        // Memory must be current when nobody is responsible for dirty data
        // and nothing dirty is in flight or pending.
        let any_dirty =
            s.caches.iter().any(|c| {
                matches!(c.st, CSt::M | CSt::O) || matches!(c.wb, Some((CSt::M | CSt::O, _)))
            }) || s.caches.iter().any(|c| c.pending.is_some())
                || !s.net.is_empty()
                || s.busy.is_some();
        if !any_dirty && s.memval != s.current {
            return Err(format!(
                "memory stale: v{} vs current v{}",
                s.memval, s.current
            ));
        }
        Ok(())
    }

    fn is_quiescent(&self, s: &DState) -> bool {
        s.net.is_empty()
            && s.busy.is_none()
            && s.deferred.is_empty()
            && s.caches
                .iter()
                .all(|c| c.pending.is_none() && c.wb.is_none())
    }

    /// Full cache-permutation quotient. Unlike the persistent-request
    /// token models, the directory resolves every race by *arrival
    /// order* (busy state + FIFO deferred queue), never by cache index,
    /// so relabelling caches maps runs to runs; the invariant and
    /// quiescence predicate are index-blind. See DESIGN.md §17.
    fn canonicalize(&self, s: &DState) -> DState {
        let mut best = s.clone();
        for perm in permutations(self.p.caches).into_iter().skip(1) {
            let t = self.permute(s, &perm);
            if t < best {
                best = t;
            }
        }
        best
    }

    /// Footprints: bit *p* = cache *p*, plus the directory complex
    /// (`DIR`: dir state, busy, deferred queue, memval), the message
    /// budget (`NET` — every delivery removes a message and most
    /// actions push one), and the spec variables (`SPEC`). The ample
    /// classes are *non-completing* invalidation-ack deliveries, one
    /// class per destination: a pure `got` increment commutes with
    /// every co-enabled or subsequently-enabled action (disjoint
    /// fields; it cannot complete the transaction, so no `Unblock` or
    /// write is produced), and the blanket `NET` footprint on all other
    /// deliveries forces full expansion whenever anything else is in
    /// flight. Completing acks carry `SPEC` and stay classless. The
    /// soundness argument is in DESIGN.md §17.
    fn action_meta(&self, s: &DState, label: &str) -> ActionMeta {
        const DIR: u64 = 1 << 8;
        const NET: u64 = 1 << 9;
        const SPEC: u64 = 1 << 10;
        let mut words = label.split_whitespace();
        let kind = words.next().unwrap_or("");
        let arg = words.next().unwrap_or("");
        let idx = arg
            .trim_start_matches("->")
            .strip_prefix('c')
            .and_then(|w| w.split("->").next())
            .and_then(|w| w.parse::<u64>().ok());
        let node = |i: Option<u64>| i.map_or(u64::MAX, |i| 1 << i);
        let rw = |bits: u64| ActionMeta::rw(bits, bits);
        match kind {
            "req" | "upgrade" | "evict-wb" => rw(node(idx) | NET),
            "silent-store" => rw(node(idx) | SPEC),
            "evict-s" => rw(node(idx)),
            "dir-req" | "dir-wbreq" | "unblock" | "wbdata" => rw(DIR | NET),
            "fwd" | "inv" | "wbgrant" => rw(node(idx) | NET),
            "invack" => {
                let Some(d) = idx else {
                    return ActionMeta::OPAQUE;
                };
                let completing = s.caches[d as usize]
                    .pending
                    .is_some_and(|pd| pd.have_data && pd.expected == Some(pd.got + 1));
                if completing {
                    rw(node(idx) | NET | SPEC)
                } else {
                    ActionMeta {
                        reads: node(idx) | NET,
                        writes: node(idx) | NET,
                        class: Some(d as u32),
                    }
                }
            }
            "ackinfo" | "memdata" | "ownerdata" => rw(node(idx) | NET | SPEC),
            _ => ActionMeta::OPAQUE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{check, CheckOptions};

    #[test]
    fn flat_directory_verifies() {
        let m = DirModel::new(DirModelParams::small());
        let r = check(&m, &CheckOptions::default()).expect("flat directory must verify");
        assert!(r.states > 100);
        assert!(r.progress_checked);
    }

    #[test]
    fn invariant_rejects_two_writers() {
        let m = DirModel::new(DirModelParams::small());
        let mut s = m.initial().remove(0);
        s.caches[0].st = CSt::M;
        s.caches[1].st = CSt::M;
        assert!(m.invariant(&s).is_err());
    }

    #[test]
    fn invariant_rejects_stale_shared_copy() {
        let m = DirModel::new(DirModelParams::small());
        let mut s = m.initial().remove(0);
        s.caches[0].st = CSt::S;
        s.caches[0].val = 0;
        s.current = 1;
        s.writes = 1;
        s.memval = 1;
        let err = m.invariant(&s).unwrap_err();
        assert!(err.contains("serial view"), "{err}");
    }

    #[test]
    fn invariant_rejects_stale_memory_at_rest() {
        let m = DirModel::new(DirModelParams::small());
        let mut s = m.initial().remove(0);
        s.current = 1;
        s.writes = 1;
        // nobody dirty, nothing in flight, memory stale
        let err = m.invariant(&s).unwrap_err();
        assert!(err.contains("memory stale"), "{err}");
    }
}
