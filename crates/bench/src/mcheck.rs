//! The model-checking states/sec trajectory (`BENCH_mcheck.json`).
//!
//! Companion to [`crate::kernel`]: a *committed* trajectory file at the
//! repository root recording what the parallel explorer is worth on
//! each model configuration, run over run. Each record is one checker
//! invocation on one configuration — the sequential baseline (`seq`) or
//! a parallel run named by its knobs (`par/w4`, `par/w4+sym+por`) — so
//! diffs show the state-throughput history next to the kernel one.
//!
//! Schema (`tokencmp-mcheck-bench-v1`):
//!
//! ```json
//! {
//!   "schema": "tokencmp-mcheck-bench-v1",
//!   "entries": [
//!     {"run": "pr9", "config": "small_recovery/Distributed",
//!      "bench": "par/w4+sym+por", "states": 1437255,
//!      "transitions": 7222739, "elapsed_ns": 35630000000,
//!      "states_per_sec": 40338.6, "workers": 4, "host_cores": 4}
//!   ]
//! }
//! ```
//!
//! The speedup gate is honest about hardware: `check_parallel` must hit
//! ≥2x the same run's sequential states/sec **only** for entries
//! measured with ≥4 workers on a host with ≥4 cores. Entries from
//! smaller hosts (the 1-core CI runner included) are validated for
//! schema and determinism elsewhere but never gated on speed — a
//! level-synchronous explorer cannot beat the sequential loop without
//! real parallelism under it.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

use tokencmp::sweep::json::{parse, Value};

/// Schema tag every trajectory file must carry.
pub const SCHEMA: &str = "tokencmp-mcheck-bench-v1";

/// Workers/cores floor above which the 2x speedup gate applies.
pub const GATE_MIN_CORES: u64 = 4;

/// One checker invocation on one model configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct McheckBenchEntry {
    /// Trajectory label for the invocation (`TOKENCMP_BENCH_RUN`).
    pub run: String,
    /// Model configuration (`small/SafetyOnly`, `small_recovery/Distributed`,
    /// `dir/small`, ...).
    pub config: String,
    /// Checker shape: `seq`, or `par/w<workers>[+sym][+por]`.
    pub bench: String,
    /// Distinct states stored.
    pub states: u64,
    /// Transitions taken.
    pub transitions: u64,
    /// Wall time of the check.
    pub elapsed_ns: u64,
    /// `states / elapsed` in states per second.
    pub states_per_sec: f64,
    /// Worker threads used (1 for `seq`).
    pub workers: u64,
    /// `available_parallelism` on the measuring host — the gate reads
    /// this, so 1-core CI entries are self-describing.
    pub host_cores: u64,
}

impl McheckBenchEntry {
    /// An entry from a raw measurement; derives the rate field and
    /// stamps the host's core count.
    pub fn measured(
        run: &str,
        config: &str,
        bench: String,
        states: u64,
        transitions: u64,
        elapsed: Duration,
        workers: u64,
    ) -> McheckBenchEntry {
        McheckBenchEntry {
            run: run.to_string(),
            config: config.to_string(),
            bench,
            states,
            transitions,
            elapsed_ns: elapsed.as_nanos() as u64,
            states_per_sec: states as f64 / elapsed.as_secs_f64(),
            workers,
            host_cores: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(1),
        }
    }

    /// The canonical `par/...` bench name for a knob combination.
    pub fn par_bench_name(workers: usize, symmetry: bool, por: bool) -> String {
        let mut name = format!("par/w{workers}");
        if symmetry {
            name.push_str("+sym");
        }
        if por {
            name.push_str("+por");
        }
        name
    }

    /// The replacement key: re-running a bench overwrites the same cell.
    fn key(&self) -> (&str, &str, &str) {
        (&self.run, &self.config, &self.bench)
    }

    fn to_value(&self) -> Value {
        Value::Obj(BTreeMap::from([
            ("run".into(), Value::Str(self.run.clone())),
            ("config".into(), Value::Str(self.config.clone())),
            ("bench".into(), Value::Str(self.bench.clone())),
            ("states".into(), Value::Int(self.states)),
            ("transitions".into(), Value::Int(self.transitions)),
            ("elapsed_ns".into(), Value::Int(self.elapsed_ns)),
            ("states_per_sec".into(), Value::Float(self.states_per_sec)),
            ("workers".into(), Value::Int(self.workers)),
            ("host_cores".into(), Value::Int(self.host_cores)),
        ]))
    }

    fn from_value(v: &Value, idx: usize) -> Result<McheckBenchEntry, String> {
        let str_field = |k: &str| {
            v.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("entry {idx}: `{k}` missing or not a string"))
        };
        let int_field = |k: &str| {
            v.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("entry {idx}: `{k}` missing or not an integer"))
        };
        let bench = str_field("bench")?;
        if bench != "seq" && !bench.starts_with("par/w") {
            return Err(format!(
                "entry {idx}: bench `{bench}` is neither `seq` nor `par/w...`"
            ));
        }
        let rate = v
            .get("states_per_sec")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("entry {idx}: `states_per_sec` missing or not a number"))?;
        if !rate.is_finite() || rate <= 0.0 {
            return Err(format!(
                "entry {idx}: `states_per_sec` = {rate} is not a positive rate"
            ));
        }
        let workers = int_field("workers")?;
        if workers == 0 {
            return Err(format!("entry {idx}: `workers` must be >= 1"));
        }
        let host_cores = int_field("host_cores")?;
        if host_cores == 0 {
            return Err(format!("entry {idx}: `host_cores` must be >= 1"));
        }
        Ok(McheckBenchEntry {
            run: str_field("run")?,
            config: str_field("config")?,
            bench,
            states: int_field("states")?,
            transitions: int_field("transitions")?,
            elapsed_ns: int_field("elapsed_ns")?,
            states_per_sec: rate,
            workers,
            host_cores,
        })
    }
}

/// The committed trajectory file: `<repo root>/BENCH_mcheck.json`.
pub fn trajectory_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives two levels under the repo root")
        .join("BENCH_mcheck.json")
}

/// Parses and schema-validates a trajectory file's text.
pub fn parse_trajectory(text: &str) -> Result<Vec<McheckBenchEntry>, String> {
    let root = parse(text).map_err(|e| format!("not JSON: {e}"))?;
    match root.get("schema").and_then(Value::as_str) {
        Some(s) if s == SCHEMA => {}
        Some(s) => return Err(format!("schema `{s}` != expected `{SCHEMA}`")),
        None => return Err("missing `schema` tag".into()),
    }
    let entries = root
        .get("entries")
        .and_then(Value::as_arr)
        .ok_or("missing `entries` array")?;
    entries
        .iter()
        .enumerate()
        .map(|(i, v)| McheckBenchEntry::from_value(v, i))
        .collect()
}

/// Loads a trajectory file; a missing file is an empty trajectory.
pub fn load(path: &Path) -> Result<Vec<McheckBenchEntry>, String> {
    match fs::read_to_string(path) {
        Ok(text) => parse_trajectory(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(format!("{}: {e}", path.display())),
    }
}

/// Merges fresh measurements into an existing trajectory with the same
/// replace-in-place / append semantics as the kernel trajectory.
pub fn merge(
    mut existing: Vec<McheckBenchEntry>,
    fresh: Vec<McheckBenchEntry>,
) -> Vec<McheckBenchEntry> {
    for entry in fresh {
        match existing.iter_mut().find(|e| e.key() == entry.key()) {
            Some(slot) => *slot = entry,
            None => existing.push(entry),
        }
    }
    existing
}

/// Renders a trajectory: valid JSON, one entry per line.
pub fn render(entries: &[McheckBenchEntry]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "\"schema\": {},", Value::Str(SCHEMA.into()));
    out.push_str("\"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let sep = if i + 1 < entries.len() { "," } else { "" };
        let _ = writeln!(out, "{}{sep}", e.to_value());
    }
    out.push_str("]\n}\n");
    out
}

/// Loads, merges, and writes back the trajectory at `path`.
pub fn append(path: &Path, fresh: Vec<McheckBenchEntry>) -> Result<Vec<McheckBenchEntry>, String> {
    let merged = merge(load(path)?, fresh);
    fs::write(path, render(&merged)).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(merged)
}

/// The speedup gate for one run: for every config measured both
/// sequentially and with a gate-eligible parallel entry (`workers` and
/// `host_cores` both ≥ [`GATE_MIN_CORES`]), the best eligible parallel
/// rate must be ≥2x the sequential one. Configs without an eligible
/// pair are reported as determinism-only, never failed — 1-core CI
/// entries land here by construction.
pub fn check_speedup(entries: &[McheckBenchEntry], run: &str) -> Result<String, String> {
    let mut report = String::new();
    let mut configs: Vec<&str> = entries
        .iter()
        .filter(|e| e.run == run)
        .map(|e| e.config.as_str())
        .collect();
    configs.sort_unstable();
    configs.dedup();
    if configs.is_empty() {
        return Err(format!("run `{run}`: no entries"));
    }
    for config in configs {
        let of_config = || {
            entries
                .iter()
                .filter(|e| e.run == run && e.config == config)
        };
        let Some(seq) = of_config().find(|e| e.bench == "seq") else {
            let _ = writeln!(report, "{config}: no sequential baseline — skipped");
            continue;
        };
        let eligible = of_config()
            .filter(|e| {
                e.bench.starts_with("par/")
                    && e.workers >= GATE_MIN_CORES
                    && e.host_cores >= GATE_MIN_CORES
            })
            .max_by(|a, b| a.states_per_sec.total_cmp(&b.states_per_sec));
        match eligible {
            Some(par) => {
                let ratio = par.states_per_sec / seq.states_per_sec;
                if ratio >= 2.0 {
                    let _ = writeln!(
                        report,
                        "{config}: {} {:.2e} st/s vs seq {:.2e} st/s ({ratio:.2}x) — ok",
                        par.bench, par.states_per_sec, seq.states_per_sec
                    );
                } else {
                    return Err(format!(
                        "run `{run}` {config}: {} {:.2e} st/s is below 2x seq \
                         {:.2e} st/s ({ratio:.2}x) on a {}-core host",
                        par.bench, par.states_per_sec, seq.states_per_sec, par.host_cores
                    ));
                }
            }
            None => {
                let _ = writeln!(
                    report,
                    "{config}: no >= {GATE_MIN_CORES}-worker entry on a >= \
                     {GATE_MIN_CORES}-core host — determinism-only"
                );
            }
        }
    }
    Ok(report)
}

/// CI entry point: schema-validate `path` and run the speedup gate on
/// every recorded run label.
pub fn validate_file(path: &Path) -> Result<String, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let entries = parse_trajectory(&text)?;
    if entries.is_empty() {
        return Err("trajectory is empty".into());
    }
    let mut runs: Vec<&str> = entries.iter().map(|e| e.run.as_str()).collect();
    runs.sort_unstable();
    runs.dedup();
    let mut report = format!("{}: {} entries, schema ok\n", path.display(), entries.len());
    for run in runs {
        report.push_str(&check_speedup(&entries, run)?);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(
        config: &str,
        bench: &str,
        sps: f64,
        workers: u64,
        host_cores: u64,
    ) -> McheckBenchEntry {
        McheckBenchEntry {
            run: "pr9".into(),
            config: config.into(),
            bench: bench.into(),
            states: 100_000,
            transitions: 400_000,
            elapsed_ns: (1e14 / sps) as u64,
            states_per_sec: sps,
            workers,
            host_cores,
        }
    }

    #[test]
    fn render_round_trips_through_the_parser() {
        let entries = vec![
            entry("small/SafetyOnly", "seq", 5e4, 1, 1),
            entry("small/SafetyOnly", "par/w4+sym+por", 1.2e5, 4, 8),
        ];
        let parsed = parse_trajectory(&render(&entries)).unwrap();
        assert_eq!(parsed, entries);
    }

    #[test]
    fn schema_violations_are_rejected_with_a_reason() {
        for (text, needle) in [
            ("[]", "schema"),
            (
                r#"{"schema":"tokencmp-mcheck-bench-v0","entries":[]}"#,
                "v0",
            ),
            (r#"{"schema":"tokencmp-mcheck-bench-v1"}"#, "entries"),
            (
                r#"{"schema":"tokencmp-mcheck-bench-v1","entries":[{"run":"a"}]}"#,
                "bench",
            ),
        ] {
            let err = parse_trajectory(text).unwrap_err();
            assert!(err.contains(needle), "`{err}` should mention `{needle}`");
        }
        let mut bogus = entry("c", "seq", 1e5, 1, 1);
        bogus.bench = "parallel".into();
        let err = parse_trajectory(&render(&[bogus])).unwrap_err();
        assert!(err.contains("parallel"), "{err}");
        let mut zero = entry("c", "seq", 1e5, 1, 1);
        zero.workers = 0;
        let err = parse_trajectory(&render(&[zero])).unwrap_err();
        assert!(err.contains("workers"), "{err}");
    }

    #[test]
    fn bench_names_encode_the_knobs() {
        assert_eq!(McheckBenchEntry::par_bench_name(4, false, false), "par/w4");
        assert_eq!(
            McheckBenchEntry::par_bench_name(8, true, true),
            "par/w8+sym+por"
        );
    }

    #[test]
    fn the_gate_skips_small_hosts_and_gates_big_ones() {
        // 1-core host: determinism-only, never failed on speed.
        let small_host = vec![
            entry("dir/small", "seq", 1e5, 1, 1),
            entry("dir/small", "par/w4", 5e4, 4, 1),
        ];
        let report = check_speedup(&small_host, "pr9").unwrap();
        assert!(report.contains("determinism-only"), "{report}");

        // 8-core host hitting 2.4x: gated and passing.
        let big_ok = vec![
            entry("dir/small", "seq", 1e5, 1, 8),
            entry("dir/small", "par/w4+sym+por", 2.4e5, 4, 8),
        ];
        let report = check_speedup(&big_ok, "pr9").unwrap();
        assert!(report.contains("2.40x"), "{report}");

        // 8-core host below 2x: the gate fails with the ratio.
        let big_slow = vec![
            entry("dir/small", "seq", 1e5, 1, 8),
            entry("dir/small", "par/w4", 1.5e5, 4, 8),
        ];
        let err = check_speedup(&big_slow, "pr9").unwrap_err();
        assert!(err.contains("below 2x"), "{err}");

        // A 2-worker entry on a big host is not gate-eligible.
        let few_workers = vec![
            entry("dir/small", "seq", 1e5, 1, 8),
            entry("dir/small", "par/w2", 1.2e5, 2, 8),
        ];
        let report = check_speedup(&few_workers, "pr9").unwrap();
        assert!(report.contains("determinism-only"), "{report}");
    }

    #[test]
    fn merge_replaces_same_key_and_appends_new_entries() {
        let old = vec![entry("dir/small", "seq", 1e5, 1, 1)];
        let fresh = vec![
            entry("dir/small", "seq", 2e5, 1, 1),
            entry("dir/small", "par/w2", 3e5, 2, 1),
        ];
        let merged = merge(old, fresh);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].states_per_sec, 2e5, "replacement kept its slot");
    }
}
