//! The scale-out trajectory (`BENCH_scale.json`).
//!
//! Like `BENCH_kernel.json` (see [`crate::kernel`]), this is a
//! *committed* trajectory file at the repository root: each entry
//! records one full protocol run at a `(fabric, cmps, cores_per_cmp)`
//! point of the scale-out grid — simulated runtime, events processed,
//! and host events/sec — so the cost of growing the system from the
//! paper's 4-CMP × 4-core Table 3 machine to 64 CMPs × 16 cores stays
//! reviewable in diffs as the simulator evolves.
//!
//! Schema (`tokencmp-scale-bench-v1`):
//!
//! ```json
//! {
//!   "schema": "tokencmp-scale-bench-v1",
//!   "entries": [
//!     {"run": "pr10", "fabric": "mesh", "cmps": 64, "cores_per_cmp": 16,
//!      "cores": 1024, "events": 16548472, "runtime_ps": 233641125,
//!      "elapsed_ns": 49577621919, "events_per_sec": 333790.1,
//!      "ns_per_event": 2995.9}
//!   ]
//! }
//! ```
//!
//! The validation gate (run by the CI `scale` job) checks the schema
//! and requires the trajectory to contain at least one completed
//! 1024-core-or-larger mesh point: the file must keep proving that the
//! multi-hop fabric actually carries a 64-CMP × 16-core workload.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

use tokencmp::sweep::json::{parse, Value};

/// Schema tag every trajectory file must carry.
pub const SCHEMA: &str = "tokencmp-scale-bench-v1";

/// Fabric names a trajectory entry may carry ([`tokencmp::Fabric`]
/// `name()` values).
pub const FABRICS: [&str; 3] = ["flat", "ring", "mesh"];

/// The acceptance point the committed trajectory must retain: a
/// completed mesh run of at least this many cores.
pub const GATE_CORES: u64 = 1024;

/// One measurement: a full protocol run at one scale-out grid point in
/// one bench invocation (`run` labels the invocation, e.g. a PR number).
#[derive(Clone, Debug, PartialEq)]
pub struct ScaleBenchEntry {
    /// Trajectory label for the invocation (`TOKENCMP_BENCH_RUN`).
    pub run: String,
    /// Inter-CMP fabric name (`flat` / `ring` / `mesh`).
    pub fabric: String,
    /// Chip count.
    pub cmps: u64,
    /// Processors per chip.
    pub cores_per_cmp: u64,
    /// Total cores (`cmps × cores_per_cmp`, stored for grep-ability and
    /// cross-checked on parse).
    pub cores: u64,
    /// Events processed by the run.
    pub events: u64,
    /// Simulated runtime of the run in picoseconds.
    pub runtime_ps: u64,
    /// Wall time of the run.
    pub elapsed_ns: u64,
    /// `events / elapsed` in events per second.
    pub events_per_sec: f64,
    /// `elapsed / events` in nanoseconds.
    pub ns_per_event: f64,
}

impl ScaleBenchEntry {
    /// An entry from a raw measurement; derives the rate fields.
    pub fn measured(
        run: &str,
        fabric: &str,
        cmps: u64,
        cores_per_cmp: u64,
        events: u64,
        runtime_ps: u64,
        elapsed: Duration,
    ) -> ScaleBenchEntry {
        let ns = elapsed.as_nanos() as u64;
        ScaleBenchEntry {
            run: run.to_string(),
            fabric: fabric.to_string(),
            cmps,
            cores_per_cmp,
            cores: cmps * cores_per_cmp,
            events,
            runtime_ps,
            elapsed_ns: ns,
            events_per_sec: events as f64 / elapsed.as_secs_f64(),
            ns_per_event: ns as f64 / events as f64,
        }
    }

    /// The replacement key: re-running a grid point overwrites its cell.
    fn key(&self) -> (&str, &str, u64, u64) {
        (&self.run, &self.fabric, self.cmps, self.cores_per_cmp)
    }

    fn to_value(&self) -> Value {
        Value::Obj(BTreeMap::from([
            ("run".into(), Value::Str(self.run.clone())),
            ("fabric".into(), Value::Str(self.fabric.clone())),
            ("cmps".into(), Value::Int(self.cmps)),
            ("cores_per_cmp".into(), Value::Int(self.cores_per_cmp)),
            ("cores".into(), Value::Int(self.cores)),
            ("events".into(), Value::Int(self.events)),
            ("runtime_ps".into(), Value::Int(self.runtime_ps)),
            ("elapsed_ns".into(), Value::Int(self.elapsed_ns)),
            ("events_per_sec".into(), Value::Float(self.events_per_sec)),
            ("ns_per_event".into(), Value::Float(self.ns_per_event)),
        ]))
    }

    fn from_value(v: &Value, idx: usize) -> Result<ScaleBenchEntry, String> {
        let str_field = |k: &str| {
            v.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("entry {idx}: `{k}` missing or not a string"))
        };
        let int_field = |k: &str| {
            v.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("entry {idx}: `{k}` missing or not an integer"))
        };
        let rate_field = |k: &str| {
            let x = v
                .get(k)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("entry {idx}: `{k}` missing or not a number"))?;
            if x.is_finite() && x > 0.0 {
                Ok(x)
            } else {
                Err(format!("entry {idx}: `{k}` = {x} is not a positive rate"))
            }
        };
        let fabric = str_field("fabric")?;
        if !FABRICS.contains(&fabric.as_str()) {
            return Err(format!("entry {idx}: unknown fabric `{fabric}`"));
        }
        let entry = ScaleBenchEntry {
            run: str_field("run")?,
            fabric,
            cmps: int_field("cmps")?,
            cores_per_cmp: int_field("cores_per_cmp")?,
            cores: int_field("cores")?,
            events: int_field("events")?,
            runtime_ps: int_field("runtime_ps")?,
            elapsed_ns: int_field("elapsed_ns")?,
            events_per_sec: rate_field("events_per_sec")?,
            ns_per_event: rate_field("ns_per_event")?,
        };
        if entry.cores != entry.cmps * entry.cores_per_cmp {
            return Err(format!(
                "entry {idx}: cores ({}) != cmps ({}) × cores_per_cmp ({})",
                entry.cores, entry.cmps, entry.cores_per_cmp
            ));
        }
        if entry.runtime_ps == 0 || entry.events == 0 {
            return Err(format!(
                "entry {idx}: a completed run has nonzero events and runtime"
            ));
        }
        Ok(entry)
    }
}

/// The committed trajectory file: `<repo root>/BENCH_scale.json`.
pub fn trajectory_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives two levels under the repo root")
        .join("BENCH_scale.json")
}

/// Parses and schema-validates a trajectory file's text.
pub fn parse_trajectory(text: &str) -> Result<Vec<ScaleBenchEntry>, String> {
    let root = parse(text).map_err(|e| format!("not JSON: {e}"))?;
    match root.get("schema").and_then(Value::as_str) {
        Some(s) if s == SCHEMA => {}
        Some(s) => return Err(format!("schema `{s}` != expected `{SCHEMA}`")),
        None => return Err("missing `schema` tag".into()),
    }
    let entries = root
        .get("entries")
        .and_then(Value::as_arr)
        .ok_or("missing `entries` array")?;
    entries
        .iter()
        .enumerate()
        .map(|(i, v)| ScaleBenchEntry::from_value(v, i))
        .collect()
}

/// Loads a trajectory file; a missing file is an empty trajectory.
pub fn load(path: &Path) -> Result<Vec<ScaleBenchEntry>, String> {
    match fs::read_to_string(path) {
        Ok(text) => parse_trajectory(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(format!("{}: {e}", path.display())),
    }
}

/// Merges fresh measurements into an existing trajectory: same-key
/// entries replace in place, new keys append in measurement order.
pub fn merge(
    mut existing: Vec<ScaleBenchEntry>,
    fresh: Vec<ScaleBenchEntry>,
) -> Vec<ScaleBenchEntry> {
    for entry in fresh {
        match existing.iter_mut().find(|e| e.key() == entry.key()) {
            Some(slot) => *slot = entry,
            None => existing.push(entry),
        }
    }
    existing
}

/// Renders a trajectory: valid JSON, one entry per line so appending a
/// run produces a line-per-record diff.
pub fn render(entries: &[ScaleBenchEntry]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "\"schema\": {},", Value::Str(SCHEMA.into()));
    out.push_str("\"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let sep = if i + 1 < entries.len() { "," } else { "" };
        let _ = writeln!(out, "{}{sep}", e.to_value());
    }
    out.push_str("]\n}\n");
    out
}

/// Loads, merges, and writes back the trajectory at `path`.
pub fn append(path: &Path, fresh: Vec<ScaleBenchEntry>) -> Result<Vec<ScaleBenchEntry>, String> {
    let merged = merge(load(path)?, fresh);
    fs::write(path, render(&merged)).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(merged)
}

/// The scale-out gate: the trajectory must contain at least one
/// completed mesh point of [`GATE_CORES`] cores or more (the
/// per-entry parse already rejected zero-event/zero-runtime rows).
pub fn check_gate(entries: &[ScaleBenchEntry]) -> Result<String, String> {
    let best = entries
        .iter()
        .filter(|e| e.fabric == "mesh" && e.cores >= GATE_CORES)
        .max_by_key(|e| e.cores)
        .ok_or_else(|| {
            format!("no completed mesh point with >= {GATE_CORES} cores in the trajectory")
        })?;
    Ok(format!(
        "gate: run `{}` mesh {}x{} = {} cores, {} events in {} ps sim time ({:.2e} ev/s host) — ok",
        best.run,
        best.cmps,
        best.cores_per_cmp,
        best.cores,
        best.events,
        best.runtime_ps,
        best.events_per_sec
    ))
}

/// CI entry point: schema-validate `path` and apply the scale-out gate.
pub fn validate_file(path: &Path) -> Result<String, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let entries = parse_trajectory(&text)?;
    if entries.is_empty() {
        return Err("trajectory is empty".into());
    }
    let mut report = format!("{}: {} entries, schema ok\n", path.display(), entries.len());
    let _ = writeln!(report, "{}", check_gate(&entries)?);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(run: &str, fabric: &str, cmps: u64, cpc: u64) -> ScaleBenchEntry {
        ScaleBenchEntry::measured(
            run,
            fabric,
            cmps,
            cpc,
            1_000_000,
            5_000_000,
            Duration::from_millis(800),
        )
    }

    #[test]
    fn render_round_trips_through_the_parser() {
        let entries = vec![
            entry("pr10", "flat", 4, 4),
            entry("pr10", "mesh", 64, 16),
            entry("pr10", "ring", 16, 4),
        ];
        let parsed = parse_trajectory(&render(&entries)).unwrap();
        assert_eq!(parsed, entries);
    }

    #[test]
    fn schema_violations_are_rejected_with_a_reason() {
        for (text, needle) in [
            ("[]", "schema"),
            (r#"{"schema":"tokencmp-scale-bench-v0","entries":[]}"#, "v0"),
            (r#"{"schema":"tokencmp-scale-bench-v1"}"#, "entries"),
            (
                r#"{"schema":"tokencmp-scale-bench-v1","entries":[{"run":"a"}]}"#,
                "fabric",
            ),
        ] {
            let err = parse_trajectory(text).unwrap_err();
            assert!(err.contains(needle), "`{err}` should mention `{needle}`");
        }
        // Unknown fabrics, inconsistent core products, and empty runs
        // are schema errors too.
        let mut bogus = entry("a", "mesh", 8, 2);
        bogus.fabric = "torus".into();
        let err = parse_trajectory(&render(&[bogus])).unwrap_err();
        assert!(err.contains("torus"), "{err}");
        let mut skewed = entry("a", "mesh", 8, 2);
        skewed.cores = 17;
        let err = parse_trajectory(&render(&[skewed])).unwrap_err();
        assert!(err.contains("cores"), "{err}");
        let mut hollow = entry("a", "mesh", 8, 2);
        hollow.events = 0;
        let err = parse_trajectory(&render(&[hollow])).unwrap_err();
        assert!(err.contains("completed"), "{err}");
    }

    #[test]
    fn merge_replaces_same_key_and_appends_new_points() {
        let old = vec![entry("pr10", "flat", 4, 4), entry("pr10", "mesh", 64, 16)];
        let mut remeasured = entry("pr10", "mesh", 64, 16);
        remeasured.events = 2_000_000;
        let fresh = vec![remeasured, entry("pr11", "mesh", 64, 16)];
        let merged = merge(old, fresh);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[1].events, 2_000_000, "replacement kept its slot");
        assert_eq!(merged[2].run, "pr11");
    }

    #[test]
    fn the_gate_requires_a_large_mesh_point() {
        // Flat-only trajectories prove nothing about the fabric.
        let err = check_gate(&[entry("a", "flat", 64, 16)]).unwrap_err();
        assert!(err.contains("mesh"), "{err}");
        // A small mesh point is not the acceptance point.
        let err = check_gate(&[entry("a", "mesh", 8, 4)]).unwrap_err();
        assert!(err.contains("1024"), "{err}");
        // The 64 × 16 mesh point satisfies the gate and is named.
        let verdict = check_gate(&[entry("a", "flat", 4, 4), entry("a", "mesh", 64, 16)]).unwrap();
        assert!(verdict.contains("64x16"), "{verdict}");
    }
}
