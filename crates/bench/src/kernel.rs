//! The kernel events/sec trajectory (`BENCH_kernel.json`).
//!
//! Unlike the `target/sweep/` exports — regenerated scratch output — the
//! kernel bench writes to a *committed* file at the repository root so
//! successive PRs append comparable `(run, backend, bench)` records and
//! the scheduler's throughput history stays reviewable in diffs. This
//! module owns the record model, the merge-with-replacement semantics,
//! the schema validation CI runs, and the wheel-vs-heap regression gate.
//!
//! Schema (`tokencmp-kernel-bench-v1`):
//!
//! ```json
//! {
//!   "schema": "tokencmp-kernel-bench-v1",
//!   "entries": [
//!     {"run": "pr6", "backend": "wheel", "bench": "churn/d4096",
//!      "events": 2000000, "elapsed_ns": 91000000,
//!      "events_per_sec": 21978021.9, "ns_per_event": 45.5}
//!   ]
//! }
//! ```
//!
//! `bench` names are namespaced: `churn/d<depth>` is the pure-kernel
//! hold-model microbench (pop one, push one at a random future offset,
//! steady-state depth `<depth>`), `table3/<protocol>` is a full
//! protocol run on the paper's Table 3 system. The regression gate
//! compares backends on the *deepest* churn bench of a run — the most
//! queue-bound point, where the wheel's O(1) scheduling must show.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

use tokencmp::sweep::json::{parse, Value};
use tokencmp::SchedulerKind;

/// Schema tag every trajectory file must carry.
pub const SCHEMA: &str = "tokencmp-kernel-bench-v1";

/// One measurement: a named bench, on one scheduler backend, in one
/// bench invocation (`run` labels the invocation, e.g. a PR number).
#[derive(Clone, Debug, PartialEq)]
pub struct KernelBenchEntry {
    /// Trajectory label for the invocation (`TOKENCMP_BENCH_RUN`).
    pub run: String,
    /// Scheduler backend name (`heap` / `wheel`).
    pub backend: String,
    /// Bench name (`churn/d4096`, `table3/token-dst1`, ...).
    pub bench: String,
    /// Events processed during the timed section.
    pub events: u64,
    /// Wall time of the timed section.
    pub elapsed_ns: u64,
    /// `events / elapsed` in events per second.
    pub events_per_sec: f64,
    /// `elapsed / events` in nanoseconds.
    pub ns_per_event: f64,
    /// Host-time attribution (`category → estimated ns`) from a
    /// *separate* profiled companion run — the timed section itself is
    /// never profiled, so rate fields stay comparable across PRs. Empty
    /// when no profile was taken (churn benches, historical entries);
    /// empty maps are omitted from the JSON.
    pub profile: BTreeMap<String, u64>,
}

impl KernelBenchEntry {
    /// An entry from a raw measurement; derives both rate fields.
    pub fn measured(
        run: &str,
        backend: SchedulerKind,
        bench: String,
        events: u64,
        elapsed: Duration,
    ) -> KernelBenchEntry {
        let ns = elapsed.as_nanos() as u64;
        KernelBenchEntry {
            run: run.to_string(),
            backend: backend.name().to_string(),
            bench,
            events,
            elapsed_ns: ns,
            events_per_sec: events as f64 / elapsed.as_secs_f64(),
            ns_per_event: ns as f64 / events as f64,
            profile: BTreeMap::new(),
        }
    }

    /// This entry with a host-time attribution map attached.
    pub fn with_profile(mut self, profile: BTreeMap<String, u64>) -> KernelBenchEntry {
        self.profile = profile;
        self
    }

    /// The replacement key: re-running a bench overwrites the same cell.
    fn key(&self) -> (&str, &str, &str) {
        (&self.run, &self.backend, &self.bench)
    }

    fn to_value(&self) -> Value {
        let mut obj = BTreeMap::from([
            ("run".into(), Value::Str(self.run.clone())),
            ("backend".into(), Value::Str(self.backend.clone())),
            ("bench".into(), Value::Str(self.bench.clone())),
            ("events".into(), Value::Int(self.events)),
            ("elapsed_ns".into(), Value::Int(self.elapsed_ns)),
            ("events_per_sec".into(), Value::Float(self.events_per_sec)),
            ("ns_per_event".into(), Value::Float(self.ns_per_event)),
        ]);
        if !self.profile.is_empty() {
            obj.insert(
                "profile".into(),
                Value::Obj(
                    self.profile
                        .iter()
                        .map(|(k, &v)| (k.clone(), Value::Int(v)))
                        .collect(),
                ),
            );
        }
        Value::Obj(obj)
    }

    fn from_value(v: &Value, idx: usize) -> Result<KernelBenchEntry, String> {
        let str_field = |k: &str| {
            v.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("entry {idx}: `{k}` missing or not a string"))
        };
        let int_field = |k: &str| {
            v.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("entry {idx}: `{k}` missing or not an integer"))
        };
        let rate_field = |k: &str| {
            let x = v
                .get(k)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("entry {idx}: `{k}` missing or not a number"))?;
            if x.is_finite() && x > 0.0 {
                Ok(x)
            } else {
                Err(format!("entry {idx}: `{k}` = {x} is not a positive rate"))
            }
        };
        let backend = str_field("backend")?;
        if SchedulerKind::ALL.iter().all(|k| k.name() != backend) {
            return Err(format!("entry {idx}: unknown backend `{backend}`"));
        }
        let mut profile = BTreeMap::new();
        match v.get("profile") {
            None => {}
            Some(p) => {
                let obj = p
                    .as_obj()
                    .ok_or_else(|| format!("entry {idx}: `profile` is not an object"))?;
                if obj.is_empty() {
                    return Err(format!(
                        "entry {idx}: empty `profile` object (omit the field instead)"
                    ));
                }
                for (k, v) in obj {
                    let ns = v.as_u64().ok_or_else(|| {
                        format!("entry {idx}: profile `{k}` is not an integer ns count")
                    })?;
                    profile.insert(k.clone(), ns);
                }
            }
        }
        Ok(KernelBenchEntry {
            run: str_field("run")?,
            backend,
            bench: str_field("bench")?,
            events: int_field("events")?,
            elapsed_ns: int_field("elapsed_ns")?,
            events_per_sec: rate_field("events_per_sec")?,
            ns_per_event: rate_field("ns_per_event")?,
            profile,
        })
    }
}

/// The committed trajectory file: `<repo root>/BENCH_kernel.json`.
pub fn trajectory_path() -> PathBuf {
    // bench crate manifest dir is `<repo>/crates/bench`.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives two levels under the repo root")
        .join("BENCH_kernel.json")
}

/// Parses and schema-validates a trajectory file's text.
pub fn parse_trajectory(text: &str) -> Result<Vec<KernelBenchEntry>, String> {
    let root = parse(text).map_err(|e| format!("not JSON: {e}"))?;
    match root.get("schema").and_then(Value::as_str) {
        Some(s) if s == SCHEMA => {}
        Some(s) => return Err(format!("schema `{s}` != expected `{SCHEMA}`")),
        None => return Err("missing `schema` tag".into()),
    }
    let entries = root
        .get("entries")
        .and_then(Value::as_arr)
        .ok_or("missing `entries` array")?;
    entries
        .iter()
        .enumerate()
        .map(|(i, v)| KernelBenchEntry::from_value(v, i))
        .collect()
}

/// Loads a trajectory file; a missing file is an empty trajectory.
pub fn load(path: &Path) -> Result<Vec<KernelBenchEntry>, String> {
    match fs::read_to_string(path) {
        Ok(text) => parse_trajectory(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(format!("{}: {e}", path.display())),
    }
}

/// Merges fresh measurements into an existing trajectory: an entry with
/// the same `(run, backend, bench)` replaces the old record in place
/// (re-running a bench updates its cell); new keys append in
/// measurement order, so the file reads chronologically run by run.
pub fn merge(
    mut existing: Vec<KernelBenchEntry>,
    fresh: Vec<KernelBenchEntry>,
) -> Vec<KernelBenchEntry> {
    for entry in fresh {
        match existing.iter_mut().find(|e| e.key() == entry.key()) {
            Some(slot) => *slot = entry,
            None => existing.push(entry),
        }
    }
    existing
}

/// Renders a trajectory: valid JSON, one entry per line so appending a
/// run produces a line-per-record diff.
pub fn render(entries: &[KernelBenchEntry]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "\"schema\": {},", Value::Str(SCHEMA.into()));
    out.push_str("\"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let sep = if i + 1 < entries.len() { "," } else { "" };
        let _ = writeln!(out, "{}{sep}", e.to_value());
    }
    out.push_str("]\n}\n");
    out
}

/// Loads, merges, and writes back the trajectory at `path`.
pub fn append(path: &Path, fresh: Vec<KernelBenchEntry>) -> Result<Vec<KernelBenchEntry>, String> {
    let merged = merge(load(path)?, fresh);
    fs::write(path, render(&merged)).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(merged)
}

/// The depth of a churn bench name (`churn/d4096` → 4096).
fn churn_depth(bench: &str) -> Option<u64> {
    bench.strip_prefix("churn/d").and_then(|d| d.parse().ok())
}

/// The regression gate: within one run, on the deepest churn bench
/// measured for both backends, the wheel must not fall below the heap
/// baseline. Returns a one-line verdict, or an error describing the
/// regression (or the absence of a comparable pair).
pub fn check_wheel_vs_heap(entries: &[KernelBenchEntry], run: &str) -> Result<String, String> {
    let mut by_depth: BTreeMap<u64, (Option<f64>, Option<f64>)> = BTreeMap::new();
    for e in entries.iter().filter(|e| e.run == run) {
        if let Some(depth) = churn_depth(&e.bench) {
            let cell = by_depth.entry(depth).or_default();
            match e.backend.as_str() {
                "heap" => cell.0 = Some(e.events_per_sec),
                "wheel" => cell.1 = Some(e.events_per_sec),
                _ => {}
            }
        }
    }
    let (depth, heap, wheel) = by_depth
        .into_iter()
        .rev()
        .find_map(|(d, (h, w))| Some((d, h?, w?)))
        .ok_or_else(|| format!("run `{run}`: no churn bench measured on both backends"))?;
    let ratio = wheel / heap;
    if wheel >= heap {
        Ok(format!(
            "run `{run}` churn/d{depth}: wheel {:.2e} ev/s vs heap {:.2e} ev/s ({ratio:.2}x) — ok",
            wheel, heap
        ))
    } else {
        Err(format!(
            "run `{run}` churn/d{depth}: wheel {wheel:.2e} ev/s REGRESSED below heap \
             {heap:.2e} ev/s ({ratio:.2}x)"
        ))
    }
}

/// CI entry point: schema-validate `path` and run the wheel-vs-heap
/// gate for every run label that has a comparable churn pair. At least
/// one run must be gateable, otherwise the file proves nothing.
pub fn validate_file(path: &Path) -> Result<String, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let entries = parse_trajectory(&text)?;
    if entries.is_empty() {
        return Err("trajectory is empty".into());
    }
    let mut runs: Vec<&str> = entries.iter().map(|e| e.run.as_str()).collect();
    runs.dedup();
    runs.sort_unstable();
    runs.dedup();
    let mut report = format!("{}: {} entries, schema ok\n", path.display(), entries.len());
    let mut gated = 0;
    for run in runs {
        match check_wheel_vs_heap(&entries, run) {
            Ok(line) => {
                gated += 1;
                let _ = writeln!(report, "{line}");
            }
            Err(e) if e.contains("REGRESSED") => return Err(e),
            // A run without a churn pair (e.g. protocol-only rows) is
            // reported but not fatal — some other run must gate.
            Err(e) => {
                let _ = writeln!(report, "{e} — skipped");
            }
        }
    }
    if gated == 0 {
        return Err("no run has a wheel/heap churn pair to gate on".into());
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(run: &str, backend: &str, bench: &str, eps: f64) -> KernelBenchEntry {
        KernelBenchEntry {
            run: run.into(),
            backend: backend.into(),
            bench: bench.into(),
            events: 1_000_000,
            elapsed_ns: (1e15 / eps) as u64,
            events_per_sec: eps,
            ns_per_event: 1e9 / eps,
            profile: BTreeMap::new(),
        }
    }

    #[test]
    fn render_round_trips_through_the_parser() {
        let entries = vec![
            entry("pr6", "heap", "churn/d4096", 1.25e7),
            entry("pr6", "wheel", "table3/token-dst1", 3.5e6).with_profile(BTreeMap::from([
                ("sched.pop".to_string(), 120_000u64),
                ("handler.l1".to_string(), 450_000),
            ])),
        ];
        let text = render(&entries);
        // The profile-free entry omits the field entirely.
        assert_eq!(text.matches("profile").count(), 1);
        let parsed = parse_trajectory(&text).unwrap();
        assert_eq!(parsed, entries);
    }

    #[test]
    fn profile_fields_are_schema_gated() {
        // A non-object profile is rejected.
        let bad = r#"{"schema":"tokencmp-kernel-bench-v1","entries":[
            {"run":"a","backend":"heap","bench":"table3/x","events":1,
             "elapsed_ns":1,"events_per_sec":1.0,"ns_per_event":1.0,
             "profile":[1,2]}]}"#;
        assert!(parse_trajectory(bad).unwrap_err().contains("profile"));
        // Non-integer category values are rejected.
        let bad = r#"{"schema":"tokencmp-kernel-bench-v1","entries":[
            {"run":"a","backend":"heap","bench":"table3/x","events":1,
             "elapsed_ns":1,"events_per_sec":1.0,"ns_per_event":1.0,
             "profile":{"sched.pop":"fast"}}]}"#;
        assert!(parse_trajectory(bad).unwrap_err().contains("sched.pop"));
        // An empty profile object should have been omitted.
        let bad = r#"{"schema":"tokencmp-kernel-bench-v1","entries":[
            {"run":"a","backend":"heap","bench":"table3/x","events":1,
             "elapsed_ns":1,"events_per_sec":1.0,"ns_per_event":1.0,
             "profile":{}}]}"#;
        assert!(parse_trajectory(bad).unwrap_err().contains("empty"));
    }

    #[test]
    fn schema_violations_are_rejected_with_a_reason() {
        for (text, needle) in [
            ("[]", "schema"),
            (
                r#"{"schema":"tokencmp-kernel-bench-v0","entries":[]}"#,
                "v0",
            ),
            (r#"{"schema":"tokencmp-kernel-bench-v1"}"#, "entries"),
            (
                r#"{"schema":"tokencmp-kernel-bench-v1","entries":[{"run":"a"}]}"#,
                "backend",
            ),
        ] {
            let err = parse_trajectory(text).unwrap_err();
            assert!(err.contains(needle), "`{err}` should mention `{needle}`");
        }
        // Unknown backend and non-positive rates are schema errors too.
        let mut bogus = entry("a", "heap", "churn/d8", 1e6);
        bogus.backend = "splay".into();
        let err = parse_trajectory(&render(&[bogus])).unwrap_err();
        assert!(err.contains("splay"), "{err}");
        let mut zero = entry("a", "heap", "churn/d8", 1e6);
        zero.events_per_sec = 0.0;
        let err = parse_trajectory(&render(&[zero])).unwrap_err();
        assert!(err.contains("events_per_sec"), "{err}");
    }

    #[test]
    fn merge_replaces_same_key_and_appends_new_runs() {
        let old = vec![
            entry("pr5", "heap", "churn/d8", 1e6),
            entry("pr5", "wheel", "churn/d8", 2e6),
        ];
        let fresh = vec![
            entry("pr5", "wheel", "churn/d8", 3e6), // re-measured: replaces
            entry("pr6", "wheel", "churn/d8", 4e6), // new run: appends
        ];
        let merged = merge(old, fresh);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[1].events_per_sec, 3e6, "replacement kept its slot");
        assert_eq!(merged[2].run, "pr6");
    }

    #[test]
    fn the_gate_reads_the_deepest_churn_pair_only() {
        // Wheel loses at depth 8 but wins at depth 4096: the gate cares
        // about the deepest (most queue-bound) point.
        let entries = vec![
            entry("pr6", "heap", "churn/d8", 2e7),
            entry("pr6", "wheel", "churn/d8", 1e7),
            entry("pr6", "heap", "churn/d4096", 1e7),
            entry("pr6", "wheel", "churn/d4096", 2e7),
        ];
        let verdict = check_wheel_vs_heap(&entries, "pr6").unwrap();
        assert!(verdict.contains("d4096"), "{verdict}");

        // Swap the deep pair: now it must fail, naming the regression.
        let entries = vec![
            entry("pr6", "heap", "churn/d4096", 2e7),
            entry("pr6", "wheel", "churn/d4096", 1e7),
        ];
        let err = check_wheel_vs_heap(&entries, "pr6").unwrap_err();
        assert!(err.contains("REGRESSED"), "{err}");

        // Protocol-only rows cannot gate.
        let entries = vec![entry("pr6", "wheel", "table3/dir", 1e6)];
        assert!(check_wheel_vs_heap(&entries, "pr6").is_err());
    }
}
