//! Shared harness utilities for the paper-reproduction bench targets.
//!
//! Every figure and table of the paper's evaluation has a bench target in
//! `benches/` (built with `harness = false` so `cargo bench` regenerates
//! the rows/series as text tables). Runs are repeated over several seeds
//! and reported as `mean ± 1.96·stderr`, mirroring the paper's
//! pseudo-random perturbation methodology (Alameldeen & Wood).
//!
//! Since the sweep-engine migration, a target no longer runs its
//! `seed × protocol × parameter` loops inline: it queues every cell into
//! one [`BenchGrid`], the grid fans out over the deterministic parallel
//! engine ([`tokencmp::sweep`]), and the target then reads measurements
//! back group by group. Results are bit-identical to the old sequential
//! loops for any worker count, and each grid can export its raw per-point
//! records as JSON under `target/sweep/` via [`BenchResults::export`].

pub mod kernel;
pub mod mcheck;
pub mod scale;

use std::path::PathBuf;

use tokencmp::sim::stats::{mean_stderr, Stats};
use tokencmp::sweep::{PointResult, Sweep};
use tokencmp::{Protocol, RunOptions, RunResult, SystemConfig, Workload};

/// Seeds used for error bars. Three seeds keeps `cargo bench` minutes-
/// scale; raise via `TOKENCMP_BENCH_SEEDS` (see [`seeds`]) for tighter
/// bars or for exercising the parallel engine harder.
pub const SEEDS: [u64; 3] = [11, 23, 47];

/// The seed set for this invocation: [`SEEDS`] by default, overridable
/// with the `TOKENCMP_BENCH_SEEDS` environment variable — either an
/// explicit comma-separated list (`"11,23,47,59"`) or a count `n`
/// (seeds `1..=n`). A malformed value aborts the target with a clear
/// message rather than panicking mid-harness.
pub fn seeds() -> Vec<u64> {
    match parse_seeds(std::env::var("TOKENCMP_BENCH_SEEDS").ok().as_deref()) {
        Ok(seeds) => seeds,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
}

/// Parses a `TOKENCMP_BENCH_SEEDS` value (`None` = variable unset, which
/// yields [`SEEDS`]). Separated from [`seeds`] so malformed inputs are
/// unit-testable without exercising a process exit.
pub fn parse_seeds(var: Option<&str>) -> Result<Vec<u64>, String> {
    let Some(raw) = var else {
        return Ok(SEEDS.to_vec());
    };
    let v = raw.trim();
    if v.is_empty() {
        return Err(
            "TOKENCMP_BENCH_SEEDS is set but empty; unset it, or give a seed count \
             (e.g. `4`) or a comma-separated seed list (e.g. `11,23,47`)"
                .into(),
        );
    }
    if v.contains(',') {
        let mut seeds = Vec::new();
        for part in v.split(',') {
            let p = part.trim();
            if p.is_empty() {
                return Err(format!(
                    "TOKENCMP_BENCH_SEEDS: empty entry in seed list `{raw}`"
                ));
            }
            seeds.push(p.parse::<u64>().map_err(|_| {
                format!("TOKENCMP_BENCH_SEEDS: `{p}` in `{raw}` is not a seed (want a u64)")
            })?);
        }
        Ok(seeds)
    } else {
        match v.parse::<u64>() {
            Ok(0) => Err("TOKENCMP_BENCH_SEEDS: a count of 0 would measure nothing; \
                 give at least one seed"
                .into()),
            Ok(n) => Ok((1..=n).collect()),
            Err(_) => Err(format!(
                "TOKENCMP_BENCH_SEEDS: `{raw}` is neither a seed count nor a \
                 comma-separated seed list"
            )),
        }
    }
}

/// A `mean ± half-width` measurement.
#[derive(Clone, Copy, Debug)]
pub struct Measure {
    /// Sample mean.
    pub mean: f64,
    /// 95 % half-width (1.96 × stderr).
    pub half: f64,
}

impl Measure {
    /// Formats as `mean±half` with the given precision.
    pub fn fmt(&self, decimals: usize) -> String {
        format!("{:.d$}±{:.d$}", self.mean, self.half, d = decimals)
    }
}

/// Identifies one group of seed-replicated runs queued on a
/// [`BenchGrid`]; redeem it against the [`BenchResults`] after the grid
/// runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GroupId(usize);

/// A bench target's whole experiment as one declarative grid.
///
/// Each [`push`](BenchGrid::push) queues one *group*: the same
/// (config, protocol, workload factory) replicated over every seed of
/// [`seeds`]. `run` executes all groups' points through the parallel
/// sweep engine and returns a [`BenchResults`] that maps group ids back
/// to aggregated measurements, in a layout bit-identical to running the
/// old per-group sequential loops.
#[derive(Default)]
pub struct BenchGrid {
    sweep: Sweep,
    groups: Vec<(usize, usize)>,
    seeds: Vec<u64>,
}

impl BenchGrid {
    /// Creates an empty grid using this invocation's [`seeds`].
    pub fn new() -> BenchGrid {
        BenchGrid {
            sweep: Sweep::new(),
            groups: Vec::new(),
            seeds: seeds(),
        }
    }

    /// Queues one seed-replicated group under default run options (the
    /// per-point option seed is set to the point's seed, as the old
    /// sequential harness did).
    pub fn push<W, F>(&mut self, cfg: &SystemConfig, protocol: Protocol, mk: F) -> GroupId
    where
        W: Workload + 'static,
        F: Fn(u64) -> W + Send + Sync + 'static,
    {
        self.push_with(cfg, protocol, RunOptions::default(), mk)
    }

    /// [`push`](BenchGrid::push) with explicit base run options
    /// (`opts.seed` is still overridden per point).
    pub fn push_with<W, F>(
        &mut self,
        cfg: &SystemConfig,
        protocol: Protocol,
        opts: RunOptions,
        mk: F,
    ) -> GroupId
    where
        W: Workload + 'static,
        F: Fn(u64) -> W + Send + Sync + 'static,
    {
        let start = self.sweep.len();
        let mk = std::sync::Arc::new(mk);
        for &seed in &self.seeds {
            let mk = std::sync::Arc::clone(&mk);
            let opts = RunOptions { seed, ..opts };
            self.sweep
                .push(protocol.name(), cfg, protocol, seed, opts, move |s| mk(s));
        }
        self.groups.push((start, self.sweep.len()));
        GroupId(self.groups.len() - 1)
    }

    /// Queues a single run (one seed, no replication) — for cells whose
    /// figure needs raw counters or traffic rather than error bars.
    pub fn push_single<W, F>(
        &mut self,
        cfg: &SystemConfig,
        protocol: Protocol,
        seed: u64,
        mk: F,
    ) -> GroupId
    where
        W: Workload + 'static,
        F: FnOnce(u64) -> W + Send + 'static,
    {
        let start = self.sweep.len();
        self.sweep.push(
            protocol.name(),
            cfg,
            protocol,
            seed,
            RunOptions::default(),
            mk,
        );
        self.groups.push((start, self.sweep.len()));
        GroupId(self.groups.len() - 1)
    }

    /// Number of queued points (across all groups).
    pub fn len(&self) -> usize {
        self.sweep.len()
    }

    /// Whether no points are queued.
    pub fn is_empty(&self) -> bool {
        self.sweep.is_empty()
    }

    /// Runs every queued point through the parallel sweep engine.
    pub fn run(self) -> BenchResults {
        BenchResults {
            points: self.sweep.run(),
            groups: self.groups,
        }
    }
}

/// Completed [`BenchGrid`] results, addressed by [`GroupId`].
pub struct BenchResults {
    points: Vec<PointResult>,
    groups: Vec<(usize, usize)>,
}

impl BenchResults {
    /// All per-point results, in submission order.
    pub fn points(&self) -> &[PointResult] {
        &self.points
    }

    fn group(&self, g: GroupId) -> &[PointResult] {
        let (start, end) = self.groups[g.0];
        &self.points[start..end]
    }

    /// Mean runtime (ns) with 95 % error bars over the group's seeds.
    ///
    /// # Panics
    ///
    /// Panics if any run in the group did not complete ([`RunOutcome::Idle`]),
    /// which always indicates a protocol bug.
    ///
    /// [`RunOutcome::Idle`]: tokencmp::RunOutcome::Idle
    pub fn measure(&self, g: GroupId) -> Measure {
        let runtimes: Vec<f64> = self
            .group(g)
            .iter()
            .map(|p| {
                assert_eq!(
                    p.result.outcome,
                    tokencmp::RunOutcome::Idle,
                    "{} (seed {}) did not complete\n{}",
                    p.point.protocol,
                    p.point.seed,
                    p.result
                        .diagnostic
                        .as_deref()
                        .unwrap_or("(no watchdog diagnostic captured)")
                );
                p.result.runtime_ns()
            })
            .collect();
        let (mean, se) = mean_stderr(&runtimes);
        Measure {
            mean,
            half: 1.96 * se,
        }
    }

    /// The group's last run (by seed order) — counters and traffic for
    /// figure annotations, matching the value the old sequential
    /// `measure_runtime` returned.
    pub fn last(&self, g: GroupId) -> &RunResult {
        &self.group(g).last().expect("empty group").result
    }

    /// Folds the group's per-seed counter snapshots into one registry
    /// via [`Stats::merge`] — counters summed across seeds, gauges
    /// last-write-wins in seed order. Use this when a figure annotation
    /// wants totals over the whole replication (e.g. aggregate
    /// persistent-request counts) rather than [`last`](Self::last)'s
    /// single-run view.
    pub fn merged_counters(&self, g: GroupId) -> Stats {
        let mut folded = Stats::new();
        for p in self.group(g) {
            folded.merge(&p.result.counters);
        }
        folded
    }

    /// Writes every per-point record to `target/sweep/<name>.json` (see
    /// [`tokencmp::sweep::write_json`]) and returns the path.
    pub fn export(&self, name: &str) -> std::io::Result<PathBuf> {
        tokencmp::sweep::write_json(name, &self.points)
    }

    /// [`export`](BenchResults::export), logging the outcome instead of
    /// returning it (bench targets treat export as best-effort).
    pub fn export_logged(&self, name: &str) {
        match self.export(name) {
            Ok(path) => println!("[sweep] wrote {}", path.display()),
            Err(e) => eprintln!("[sweep] export {name} failed: {e}"),
        }
    }
}

/// Runs `mk(seed)` under `protocol` for every seed (in parallel, through
/// the sweep engine) and returns the mean runtime in nanoseconds plus
/// the last run's full result for counters.
pub fn measure_runtime<W, F>(cfg: &SystemConfig, protocol: Protocol, mk: F) -> (Measure, RunResult)
where
    W: Workload + 'static,
    F: Fn(u64) -> W + Send + Sync + 'static,
{
    let mut grid = BenchGrid::new();
    let g = grid.push(cfg, protocol, mk);
    let results = grid.run();
    (results.measure(g), results.last(g).clone())
}

/// Prints a header banner for a bench target.
pub fn banner(title: &str, paper_ref: &str) {
    println!();
    println!("==================================================================");
    println!("{title}");
    println!("reproduces: {paper_ref}");
    println!("==================================================================");
}

/// All TokenCMP macro-benchmark variants of Figures 6/7, in paper order.
pub fn macro_protocols() -> [Protocol; 5] {
    use tokencmp::Variant;
    [
        Protocol::Directory,
        Protocol::Token(Variant::Dst4),
        Protocol::Token(Variant::Dst1),
        Protocol::Token(Variant::Dst1Pred),
        Protocol::Token(Variant::Dst1Filt),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tokencmp::system::ScriptedWorkload;
    use tokencmp::{AccessKind, Block, Variant};

    fn script() -> Vec<Vec<(AccessKind, Block)>> {
        vec![vec![(AccessKind::Load, Block(1))], vec![], vec![], vec![]]
    }

    #[test]
    fn parse_seeds_accepts_counts_lists_and_unset() {
        assert_eq!(parse_seeds(None).unwrap(), SEEDS.to_vec());
        assert_eq!(parse_seeds(Some("4")).unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(parse_seeds(Some(" 11, 23 ,47 ")).unwrap(), vec![11, 23, 47]);
    }

    #[test]
    fn parse_seeds_rejects_malformed_values_with_clear_messages() {
        for (input, expect) in [
            ("", "set but empty"),
            ("   ", "set but empty"),
            ("0", "count of 0"),
            ("junk", "neither a seed count nor"),
            ("-3", "neither a seed count nor"),
            ("11,,47", "empty entry"),
            ("11,abc", "not a seed"),
            (",", "empty entry"),
        ] {
            let err = parse_seeds(Some(input)).expect_err(&format!("`{input}` must be rejected"));
            assert!(
                err.contains("TOKENCMP_BENCH_SEEDS") && err.contains(expect),
                "`{input}` -> `{err}` (expected to mention `{expect}`)"
            );
        }
    }

    #[test]
    fn measure_runtime_aggregates_seeds() {
        let cfg = SystemConfig::small_test();
        let (m, res) = measure_runtime(&cfg, Protocol::Token(Variant::Dst1), |_| {
            ScriptedWorkload::new(script())
        });
        assert!(m.mean > 0.0);
        assert!(m.half >= 0.0);
        assert!(res.counters.counter("l1.misses") >= 1);
        assert!(m.fmt(1).contains('±'));
    }

    #[test]
    fn grid_groups_map_back_to_their_runs() {
        let cfg = SystemConfig::small_test();
        let mut grid = BenchGrid::new();
        let a = grid.push(&cfg, Protocol::Token(Variant::Dst1), |_| {
            ScriptedWorkload::new(script())
        });
        let b = grid.push(&cfg, Protocol::Directory, |_| {
            ScriptedWorkload::new(script())
        });
        let single = grid.push_single(&cfg, Protocol::Directory, 99, |_| {
            ScriptedWorkload::new(script())
        });
        assert_eq!(grid.len(), 2 * seeds().len() + 1);
        let results = grid.run();
        assert!(results.measure(a).mean > 0.0);
        assert!(results.measure(b).mean > 0.0);
        let pts = results.points();
        assert_eq!(pts.last().unwrap().point.seed, 99);
        assert_eq!(results.measure(single).half, 0.0);
    }

    #[test]
    fn merged_counters_sum_across_seeds() {
        let cfg = SystemConfig::small_test();
        let mut grid = BenchGrid::new();
        let g = grid.push(&cfg, Protocol::Token(Variant::Dst1), |_| {
            ScriptedWorkload::new(script())
        });
        let results = grid.run();
        let folded = results.merged_counters(g);
        let by_hand: u64 = results
            .points()
            .iter()
            .map(|p| p.result.counters.counter("l1.misses"))
            .sum();
        assert_eq!(folded.counter("l1.misses"), by_hand);
        assert!(folded.counter("l1.misses") >= seeds().len() as u64);
    }

    #[test]
    fn merged_counters_single_point_group_is_that_run() {
        let cfg = SystemConfig::small_test();
        let mut grid = BenchGrid::new();
        let g = grid.push_single(&cfg, Protocol::Token(Variant::Dst1), 5, |_| {
            ScriptedWorkload::new(script())
        });
        let results = grid.run();
        let folded = results.merged_counters(g);
        let raw = &results.points().last().unwrap().result.counters;
        assert_eq!(
            folded.counters().collect::<Vec<_>>(),
            raw.counters().collect::<Vec<_>>()
        );
    }

    #[test]
    fn merged_counters_across_protocols_union_disjoint_keys() {
        // Token and directory runs produce (partly) disjoint counter
        // families; folding their merged registries must union the keys
        // without cross-talk.
        let cfg = SystemConfig::small_test();
        let mut grid = BenchGrid::new();
        let t = grid.push_single(&cfg, Protocol::Token(Variant::Dst1), 1, |_| {
            ScriptedWorkload::new(script())
        });
        let d = grid.push_single(&cfg, Protocol::Directory, 1, |_| {
            ScriptedWorkload::new(script())
        });
        let results = grid.run();
        let token = results.merged_counters(t);
        let dir = results.merged_counters(d);
        let mut union = token.clone();
        union.merge(&dir);
        for (k, v) in token.counters() {
            assert_eq!(union.counter(k), v + dir.counter(k), "key {k}");
        }
        for (k, v) in dir.counters() {
            assert_eq!(union.counter(k), v + token.counter(k), "key {k}");
        }
        assert!(union.counters().count() >= token.counters().count().max(dir.counters().count()));
    }

    #[test]
    fn grid_matches_sequential_measure_runtime() {
        // The engine must reproduce the old sequential harness exactly.
        let cfg = SystemConfig::small_test();
        let (m, res) = measure_runtime(&cfg, Protocol::Directory, |_| {
            ScriptedWorkload::new(script())
        });
        let mut runtimes = Vec::new();
        let mut last = None;
        for &seed in &SEEDS {
            let opts = RunOptions {
                seed,
                ..RunOptions::default()
            };
            let (r, _) = tokencmp::run_workload(
                &cfg,
                Protocol::Directory,
                ScriptedWorkload::new(script()),
                &opts,
            );
            runtimes.push(r.runtime_ns());
            last = Some(r);
        }
        let (mean, se) = mean_stderr(&runtimes);
        assert_eq!(m.mean, mean);
        assert_eq!(m.half, 1.96 * se);
        let last = last.unwrap();
        assert_eq!(res.runtime, last.runtime);
        assert_eq!(res.events, last.events);
    }
}
