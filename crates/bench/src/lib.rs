//! Shared harness utilities for the paper-reproduction bench targets.
//!
//! Every figure and table of the paper's evaluation has a bench target in
//! `benches/` (built with `harness = false` so `cargo bench` regenerates
//! the rows/series as text tables). Runs are repeated over several seeds
//! and reported as `mean ± 1.96·stderr`, mirroring the paper's
//! pseudo-random perturbation methodology (Alameldeen & Wood).

use tokencmp::sim::stats::mean_stderr;
use tokencmp::{run_workload, Protocol, RunOptions, RunResult, SystemConfig, Workload};

/// Seeds used for error bars. Three seeds keeps `cargo bench` minutes-
/// scale; raise for tighter bars.
pub const SEEDS: [u64; 3] = [11, 23, 47];

/// A `mean ± half-width` measurement.
#[derive(Clone, Copy, Debug)]
pub struct Measure {
    /// Sample mean.
    pub mean: f64,
    /// 95 % half-width (1.96 × stderr).
    pub half: f64,
}

impl Measure {
    /// Formats as `mean±half` with the given precision.
    pub fn fmt(&self, decimals: usize) -> String {
        format!("{:.d$}±{:.d$}", self.mean, self.half, d = decimals)
    }
}

/// Runs `mk(seed)` under `protocol` for every seed and returns the mean
/// runtime in nanoseconds (and the last run's full result for counters).
pub fn measure_runtime<W, F>(cfg: &SystemConfig, protocol: Protocol, mk: F) -> (Measure, RunResult)
where
    W: Workload + 'static,
    F: Fn(u64) -> W,
{
    let mut runtimes = Vec::new();
    let mut last = None;
    for &seed in &SEEDS {
        let opts = RunOptions {
            seed,
            ..RunOptions::default()
        };
        let (res, _) = run_workload(cfg, protocol, mk(seed), &opts);
        assert_eq!(
            res.outcome,
            tokencmp::RunOutcome::Idle,
            "{protocol} did not complete"
        );
        runtimes.push(res.runtime_ns());
        last = Some(res);
    }
    let (mean, se) = mean_stderr(&runtimes);
    (
        Measure {
            mean,
            half: 1.96 * se,
        },
        last.expect("at least one seed"),
    )
}

/// Prints a header banner for a bench target.
pub fn banner(title: &str, paper_ref: &str) {
    println!();
    println!("==================================================================");
    println!("{title}");
    println!("reproduces: {paper_ref}");
    println!("==================================================================");
}

/// All TokenCMP macro-benchmark variants of Figures 6/7, in paper order.
pub fn macro_protocols() -> [Protocol; 5] {
    use tokencmp::Variant;
    [
        Protocol::Directory,
        Protocol::Token(Variant::Dst4),
        Protocol::Token(Variant::Dst1),
        Protocol::Token(Variant::Dst1Pred),
        Protocol::Token(Variant::Dst1Filt),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tokencmp::system::ScriptedWorkload;
    use tokencmp::{AccessKind, Block, Variant};

    #[test]
    fn measure_runtime_aggregates_seeds() {
        let cfg = SystemConfig::small_test();
        let (m, res) = measure_runtime(&cfg, Protocol::Token(Variant::Dst1), |_| {
            ScriptedWorkload::new(vec![
                vec![(AccessKind::Load, Block(1))],
                vec![],
                vec![],
                vec![],
            ])
        });
        assert!(m.mean > 0.0);
        assert!(m.half >= 0.0);
        assert!(res.counters.counter("l1.misses") >= 1);
        assert!(m.fmt(1).contains('±'));
    }
}
