//! Kernel scheduling throughput: heap vs timing wheel, events/sec.
//!
//! Two tiers of measurement, both recorded into the committed
//! trajectory file `BENCH_kernel.json` (see `tokencmp_bench::kernel`):
//!
//! * `churn/d<depth>` — the classic hold-model microbench on a bare
//!   `EventQueue`: prefill to a steady-state depth, then pop the
//!   earliest event and push a replacement at a random future offset
//!   within one wheel horizon. Pure queue work, no protocol — this is
//!   where the scheduler's asymptotics are visible, and where the CI
//!   gate compares the wheel against the heap baseline.
//! * `table3/<protocol>` — full runs on the paper's Table 3 system, so
//!   the trajectory also records what the backend swap is worth
//!   end-to-end (protocols spend most cycles outside the queue).
//!
//! Modes:
//! * default — full depths and all nine protocols; merges results into
//!   `BENCH_kernel.json` under the `TOKENCMP_BENCH_RUN` label (default
//!   `dev`) and applies the regression gate to the fresh run.
//! * `TOKENCMP_BENCH_SMOKE=1` — CI-sized iteration counts, two
//!   protocols, and results written to a scratch file in the system
//!   temp dir so CI never dirties the committed trajectory.
//! * `--validate [path]` — no measurement: schema-validate the file
//!   (default: the committed trajectory) and re-run the gate on every
//!   recorded run.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use tokencmp::sim::{EventKind, EventQueue, NodeId, Time, WheelScheduler};
use tokencmp::{
    run_workload, LockingWorkload, Protocol, RunOptions, RunOutcome, SchedulerKind, SystemConfig,
};
use tokencmp_bench::banner;
use tokencmp_bench::kernel::{
    append, check_wheel_vs_heap, trajectory_path, validate_file, KernelBenchEntry,
};

/// Offsets are drawn below one wheel horizon so the steady-state depth
/// spreads across the whole bucket array (the regime calendar queues
/// are tuned for, and the one protocol runs actually produce).
const HORIZON: u64 = WheelScheduler::<u64>::HORIZON_PS;

/// One hold-model rep: returns events processed and the timed span.
fn churn_rep(kind: SchedulerKind, depth: u64, pops: u64) -> (u64, Duration) {
    let mut q: EventQueue<u64> = EventQueue::with_backend(kind);
    let mut lcg: u64 = 0x9E37_79B9_7F4A_7C15 ^ depth;
    let mut next = |now: u64| {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        now + (lcg >> 33) % HORIZON
    };
    for i in 0..depth {
        let t = next(0);
        q.push(
            Time::from_ps(t),
            NodeId((i % 16) as u32),
            EventKind::Wake { tag: i },
        );
    }
    let start = Instant::now();
    for _ in 0..pops {
        let ev = q.pop().expect("steady-state queue never drains");
        let t = next(ev.time.as_ps());
        q.push(Time::from_ps(t), ev.dst, EventKind::Wake { tag: 0 });
    }
    (pops, start.elapsed())
}

/// Best-of-`reps` churn measurement (min wall time wins: the least
/// scheduler-external noise on a shared 1-core host).
fn churn(run: &str, kind: SchedulerKind, depth: u64, pops: u64, reps: u32) -> KernelBenchEntry {
    let mut best: Option<(u64, Duration)> = None;
    for _ in 0..reps {
        let (events, elapsed) = churn_rep(kind, depth, pops);
        if best.is_none_or(|(_, b)| elapsed < b) {
            best = Some((events, elapsed));
        }
    }
    let (events, elapsed) = best.expect("reps >= 1");
    KernelBenchEntry::measured(run, kind, format!("churn/d{depth}"), events, elapsed)
}

/// A full protocol run on the Table 3 system, wall-timed end to end;
/// best of `reps` identical runs (short runs on a shared host need the
/// same noise treatment as the churn reps). A separate *profiled*
/// companion run then attaches the host-time attribution breakdown —
/// kept out of the timed reps so the recorded rates never carry
/// profiling overhead.
fn protocol_run(
    run: &str,
    kind: SchedulerKind,
    protocol: Protocol,
    acquires: u32,
    reps: u32,
) -> KernelBenchEntry {
    let cfg = SystemConfig::default();
    let opts = RunOptions {
        seed: 11,
        ..RunOptions::default().with_scheduler(kind)
    };
    let mut best: Option<(u64, Duration)> = None;
    for _ in 0..reps {
        let w = LockingWorkload::new(16, 8, acquires, 11);
        let start = Instant::now();
        let (res, _) = run_workload(&cfg, protocol, w, &opts);
        let elapsed = start.elapsed();
        assert_eq!(res.outcome, RunOutcome::Idle, "{protocol} did not finish");
        if best.is_none_or(|(_, b)| elapsed < b) {
            best = Some((res.events, elapsed));
        }
    }
    let (events, elapsed) = best.expect("reps >= 1");
    let w = LockingWorkload::new(16, 8, acquires, 11);
    let (profiled, _) = run_workload(&cfg, protocol, w, &opts.with_profiling());
    let profile = profiled
        .profile
        .expect("profiled run returns an attribution report")
        .category_ns();
    KernelBenchEntry::measured(run, kind, format!("table3/{protocol}"), events, elapsed)
        .with_profile(profile)
}

fn print_table(entries: &[KernelBenchEntry]) {
    println!(
        "{:<18} {:>6} {:>12} {:>14} {:>12}",
        "bench", "sched", "events", "events/sec", "ns/event"
    );
    for e in entries {
        println!(
            "{:<18} {:>6} {:>12} {:>14.3e} {:>12.1}",
            e.bench, e.backend, e.events, e.events_per_sec, e.ns_per_event
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| a != "--bench")
        .collect();
    if args.first().map(String::as_str) == Some("--validate") {
        let path = args
            .get(1)
            .map(PathBuf::from)
            .unwrap_or_else(trajectory_path);
        match validate_file(&path) {
            Ok(report) => print!("{report}"),
            Err(e) => {
                eprintln!("BENCH_kernel.json validation failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    banner(
        "kernel_throughput",
        "scheduler events/sec trajectory (infrastructure, not a paper figure)",
    );
    let smoke = std::env::var("TOKENCMP_BENCH_SMOKE").is_ok();
    let run = std::env::var("TOKENCMP_BENCH_RUN")
        .unwrap_or_else(|_| if smoke { "smoke" } else { "dev" }.into());
    // Smoke results land in a scratch file: CI exercises the full
    // measure→merge→validate path without rewriting the committed
    // trajectory with noisy, tiny-iteration numbers.
    let path = if smoke {
        let p =
            std::env::temp_dir().join(format!("BENCH_kernel.smoke.{}.json", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    } else {
        trajectory_path()
    };
    let (depths, pops, reps): (&[u64], u64, u32) = if smoke {
        (&[512, 32_768], 100_000, 1)
    } else {
        (&[512, 4_096, 32_768], 2_000_000, 3)
    };
    let (protocols, acquires): (Vec<Protocol>, u32) = if smoke {
        (vec![Protocol::ALL[0], Protocol::Directory], 8)
    } else {
        (Protocol::ALL.to_vec(), 24)
    };

    let mut fresh = Vec::new();
    for kind in SchedulerKind::ALL {
        for &depth in depths {
            fresh.push(churn(&run, kind, depth, pops, reps));
        }
        for &p in &protocols {
            fresh.push(protocol_run(&run, kind, p, acquires, reps));
        }
    }
    print_table(&fresh);

    match append(&path, fresh.clone()) {
        Ok(all) => println!(
            "\nwrote {} ({} entries, run `{run}`)",
            path.display(),
            all.len()
        ),
        Err(e) => {
            eprintln!("failed to write trajectory: {e}");
            std::process::exit(1);
        }
    }
    match check_wheel_vs_heap(&fresh, &run) {
        Ok(verdict) => println!("{verdict}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}
