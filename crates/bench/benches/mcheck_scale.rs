//! Model-checking state throughput: sequential BFS vs `check_parallel`.
//!
//! Measures states/sec for each model configuration across worker
//! counts and reduction knobs, records the results into the committed
//! trajectory `BENCH_mcheck.json` (see `tokencmp_bench::mcheck`), and
//! exports the per-configuration scaling table to
//! `target/sweep/mcheck_scaling.json` for the CI artifact.
//!
//! Modes:
//! * default — all five fast configurations plus the flagship
//!   `small_recovery/Distributed` (~1.4M states, two ~35s checks);
//!   merges into `BENCH_mcheck.json` under `TOKENCMP_BENCH_RUN`
//!   (default `dev`) and runs the speedup gate on the fresh run.
//! * `TOKENCMP_BENCH_SMOKE=1` — two small configurations, two worker
//!   counts, results to a scratch file in the temp dir so CI exercises
//!   the measure→merge→validate path without touching the committed
//!   trajectory.
//! * `--validate [path]` — no measurement: schema-validate the file
//!   (default: the committed trajectory) and re-run the gate on every
//!   recorded run.
//!
//! Every reductions-off parallel run is also asserted state-for-state
//! identical to the sequential baseline — the bench doubles as a
//! determinism check on whatever host it runs on.

use std::path::PathBuf;
use std::time::Duration;

use tokencmp::mcheck::{
    check, check_parallel, CheckOptions, DirModel, DirModelParams, Model, SubstrateMode,
    TokenModel, TokenModelParams,
};
use tokencmp::sweep::json::Value;
use tokencmp_bench::banner;
use tokencmp_bench::mcheck::{
    append, check_speedup, trajectory_path, validate_file, McheckBenchEntry,
};

/// One measured row plus the data the scaling table needs.
struct Row {
    entry: McheckBenchEntry,
}

fn seq_entry<M>(run: &str, config: &str, model: &M) -> Row
where
    M: Model + Sync,
    M::State: Send + Sync,
{
    let r = check(model, &CheckOptions::default()).unwrap_or_else(|v| {
        panic!("{config}: sequential check must pass: {v}");
    });
    Row {
        entry: McheckBenchEntry::measured(
            run,
            config,
            "seq".into(),
            r.states as u64,
            r.transitions,
            Duration::from_secs_f64(r.seconds.max(1e-9)),
            1,
        ),
    }
}

fn par_entry<M>(
    run: &str,
    config: &str,
    model: &M,
    workers: usize,
    symmetry: bool,
    por: bool,
    seq_states: u64,
) -> Row
where
    M: Model + Sync,
    M::State: Send + Sync,
{
    let opts = CheckOptions {
        workers,
        symmetry,
        por,
        ..CheckOptions::default()
    };
    let r = check_parallel(model, &opts).unwrap_or_else(|v| {
        panic!("{config}: parallel check must pass: {v}");
    });
    if !symmetry && !por {
        assert_eq!(
            r.states as u64, seq_states,
            "{config}: reductions-off parallel run diverged from sequential"
        );
    }
    Row {
        entry: McheckBenchEntry::measured(
            run,
            config,
            McheckBenchEntry::par_bench_name(workers, symmetry, por),
            r.states as u64,
            r.transitions,
            Duration::from_secs_f64(r.seconds.max(1e-9)),
            r.workers as u64,
        ),
    }
}

/// Measures one configuration: the sequential baseline, a reductions-off
/// parallel run per worker count (determinism + scaling), and a fully
/// reduced run per worker count (the production shape).
fn measure_config<M>(run: &str, config: &str, model: &M, workers: &[usize], rows: &mut Vec<Row>)
where
    M: Model + Sync,
    M::State: Send + Sync,
{
    eprintln!("  measuring {config} ...");
    let seq = seq_entry(run, config, model);
    let seq_states = seq.entry.states;
    rows.push(seq);
    for &w in workers {
        rows.push(par_entry(run, config, model, w, false, false, seq_states));
        rows.push(par_entry(run, config, model, w, true, true, seq_states));
    }
}

fn print_table(rows: &[Row]) {
    println!(
        "{:<28} {:<16} {:>10} {:>12} {:>12} {:>9}",
        "config", "bench", "states", "transitions", "states/sec", "vs seq"
    );
    let mut seq_rate = 0.0;
    for r in rows {
        let e = &r.entry;
        if e.bench == "seq" {
            seq_rate = e.states_per_sec;
        }
        println!(
            "{:<28} {:<16} {:>10} {:>12} {:>12.3e} {:>8.2}x",
            e.config,
            e.bench,
            e.states,
            e.transitions,
            e.states_per_sec,
            e.states_per_sec / seq_rate
        );
    }
}

/// The scaling-table artifact CI uploads: one object per measured row,
/// with the speedup against the same configuration's sequential rate.
fn export_scaling_table(rows: &[Row]) {
    let mut arr = Vec::new();
    let seq_rate = |config: &str| {
        rows.iter()
            .find(|r| r.entry.config == config && r.entry.bench == "seq")
            .map(|r| r.entry.states_per_sec)
    };
    for r in rows {
        let e = &r.entry;
        let mut obj = std::collections::BTreeMap::from([
            ("config".to_string(), Value::Str(e.config.clone())),
            ("bench".to_string(), Value::Str(e.bench.clone())),
            ("states".to_string(), Value::Int(e.states)),
            ("transitions".to_string(), Value::Int(e.transitions)),
            ("states_per_sec".to_string(), Value::Float(e.states_per_sec)),
            ("workers".to_string(), Value::Int(e.workers)),
            ("host_cores".to_string(), Value::Int(e.host_cores)),
        ]);
        if let Some(base) = seq_rate(&e.config) {
            obj.insert(
                "speedup_vs_seq".to_string(),
                Value::Float(e.states_per_sec / base),
            );
        }
        arr.push(Value::Obj(obj));
    }
    match tokencmp::sweep::write_value("mcheck_scaling", &Value::Arr(arr)) {
        Ok(path) => println!("[sweep] wrote {}", path.display()),
        Err(e) => eprintln!("[sweep] export mcheck_scaling failed: {e}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| a != "--bench")
        .collect();
    if args.first().map(String::as_str) == Some("--validate") {
        let path = args
            .get(1)
            .map(PathBuf::from)
            .unwrap_or_else(trajectory_path);
        match validate_file(&path) {
            Ok(report) => print!("{report}"),
            Err(e) => {
                eprintln!("BENCH_mcheck.json validation failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    banner(
        "mcheck_scale",
        "parallel explorer states/sec trajectory (infrastructure, not a paper figure)",
    );
    let smoke = std::env::var("TOKENCMP_BENCH_SMOKE").is_ok();
    let run = std::env::var("TOKENCMP_BENCH_RUN")
        .unwrap_or_else(|_| if smoke { "smoke" } else { "dev" }.into());
    let path = if smoke {
        let p =
            std::env::temp_dir().join(format!("BENCH_mcheck.smoke.{}.json", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    } else {
        trajectory_path()
    };
    let workers: &[usize] = if smoke { &[2] } else { &[1, 2, 4] };

    let mut rows = Vec::new();
    measure_config(
        &run,
        "small/SafetyOnly",
        &TokenModel::new(TokenModelParams::small(SubstrateMode::SafetyOnly)),
        workers,
        &mut rows,
    );
    measure_config(
        &run,
        "dir/small",
        &DirModel::new(DirModelParams::small()),
        workers,
        &mut rows,
    );
    if !smoke {
        measure_config(
            &run,
            "small/Distributed",
            &TokenModel::new(TokenModelParams::small(SubstrateMode::Distributed)),
            workers,
            &mut rows,
        );
        measure_config(
            &run,
            "small/Arbiter",
            &TokenModel::new(TokenModelParams::small(SubstrateMode::Arbiter)),
            workers,
            &mut rows,
        );
        measure_config(
            &run,
            "small_recovery/SafetyOnly",
            &TokenModel::new(TokenModelParams::small_recovery(SubstrateMode::SafetyOnly)),
            workers,
            &mut rows,
        );
        // The flagship ~1.4M-state configuration: the sequential
        // baseline plus one fully reduced parallel run at the widest
        // measured worker count (two ~35s checks — the bulk of this
        // target's wall time).
        let flagship =
            TokenModel::new(TokenModelParams::small_recovery(SubstrateMode::Distributed));
        let config = "small_recovery/Distributed";
        eprintln!("  measuring {config} (flagship, ~70s) ...");
        let seq = seq_entry(&run, config, &flagship);
        let seq_states = seq.entry.states;
        rows.push(seq);
        let w = *workers.last().expect("worker list is never empty");
        rows.push(par_entry(
            &run, config, &flagship, w, true, true, seq_states,
        ));
    }

    print_table(&rows);
    export_scaling_table(&rows);

    let fresh: Vec<McheckBenchEntry> = rows.into_iter().map(|r| r.entry).collect();
    match append(&path, fresh.clone()) {
        Ok(all) => println!(
            "\nwrote {} ({} entries, run `{run}`)",
            path.display(),
            all.len()
        ),
        Err(e) => {
            eprintln!("failed to write trajectory: {e}");
            std::process::exit(1);
        }
    }
    match check_speedup(&fresh, &run) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}
