//! **Litmus outcome grid** — the consistency counterpart of the
//! performance benches: every classic litmus shape on every protocol of
//! the evaluation, many seeds each, with the axiomatic SC oracle judging
//! each harvested outcome and a histogram showing which SC outcomes the
//! timing actually explores.
//!
//! The grid must contain *zero* SC-forbidden outcomes — this target
//! exits non-zero otherwise, so CI can run it as a gate. Raw per-cell
//! records land in `target/sweep/litmus_outcomes.json`.

use tokencmp::litmus::{classic_shapes, export_grid, histogram_table, litmus_grid, Pinning};
use tokencmp::{Protocol, SystemConfig};
use tokencmp_bench::{banner, seeds};

fn main() {
    banner(
        "Litmus outcome grid: shape x protocol x seed",
        "DESIGN.md \u{a7}12 (litmus engine & SC oracle)",
    );
    let cfg = SystemConfig::small_test();
    let shapes = classic_shapes();
    let seeds = seeds();
    let points = litmus_grid(&cfg, &shapes, &Protocol::ALL, &seeds, Pinning::Spread);

    println!(
        "\noutcome histogram ({} shapes x {} protocols x {} seeds, small system, spread pinning):\n",
        shapes.len(),
        Protocol::ALL.len(),
        seeds.len()
    );
    print!("{}", histogram_table(&points));

    let forbidden: Vec<_> = points
        .iter()
        .filter(|p| !p.allowed || p.forbidden_hit)
        .collect();
    match export_grid("litmus_outcomes", &points) {
        Ok(path) => println!("\nwrote {} records to {}", points.len(), path.display()),
        Err(e) => println!("\nJSON export failed: {e}"),
    }
    if !forbidden.is_empty() {
        for p in &forbidden {
            eprintln!(
                "SC-FORBIDDEN: {} on {} seed {}: {}",
                p.shape, p.protocol, p.seed, p.key
            );
        }
        eprintln!("{} forbidden outcomes in the grid", forbidden.len());
        std::process::exit(1);
    }
    println!(
        "all {} outcomes SC-allowed; zero forbidden-predicate hits",
        points.len()
    );
}
