//! Criterion micro-benchmarks of the simulator's hot data structures and
//! an end-to-end throughput measurement (host-time performance of the
//! simulator itself, not simulated-time results — those live in the
//! figure/table harnesses).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tokencmp::cache::SetAssoc;
use tokencmp::core::{DistTable, ReqKind};
use tokencmp::proto::ProcId;
use tokencmp::sim::{EventKind, EventQueue, NodeId, Rng, Time};
use tokencmp::system::ScriptedWorkload;
use tokencmp::{
    run_workload, AccessKind, Block, LockingWorkload, Protocol, RunOptions, SystemConfig, Variant,
};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        let mut rng = Rng::new(7);
        let times: Vec<u64> = (0..1000).map(|_| rng.below(1_000_000)).collect();
        b.iter(|| {
            let mut q: EventQueue<u32> = EventQueue::new();
            for &t in &times {
                q.push(Time::from_ps(t), NodeId(0), EventKind::Wake { tag: t });
            }
            while let Some(e) = q.pop() {
                black_box(e.time);
            }
        });
    });
}

fn bench_cache_array(c: &mut Criterion) {
    c.bench_function("set_assoc_insert_get_4k", |b| {
        let mut rng = Rng::new(9);
        let blocks: Vec<Block> = (0..4096).map(|_| Block(rng.below(1 << 20))).collect();
        b.iter(|| {
            let mut arr: SetAssoc<u32> = SetAssoc::new(512, 4, 0);
            for (i, &blk) in blocks.iter().enumerate() {
                arr.insert(blk, i as u32);
                black_box(arr.get(blk));
            }
            black_box(arr.len())
        });
    });
}

fn bench_persistent_table(c: &mut Criterion) {
    c.bench_function("dist_table_activate_resolve", |b| {
        b.iter(|| {
            let mut t = DistTable::new(16);
            for p in 0..16u16 {
                t.activate(
                    ProcId(p),
                    Block(u64::from(p % 4)),
                    NodeId(20 + u32::from(p)),
                    ReqKind::Write,
                    1,
                );
            }
            for blk in 0..4u64 {
                black_box(t.active_for(Block(blk)));
            }
            for p in 0..16u16 {
                t.deactivate(ProcId(p), 1);
            }
        });
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator_throughput");
    g.sample_size(10);
    g.bench_function("token_dst1_scripted_1k_ops", |b| {
        let cfg = SystemConfig::default();
        b.iter(|| {
            let scripts = (0..16u64)
                .map(|p| {
                    (0..64)
                        .map(|i: u64| {
                            let k = if i.is_multiple_of(4) {
                                AccessKind::Store
                            } else {
                                AccessKind::Load
                            };
                            (k, Block(p * 100 + i % 16))
                        })
                        .collect()
                })
                .collect();
            let w = ScriptedWorkload::new(scripts);
            let (res, _) = run_workload(
                &cfg,
                Protocol::Token(Variant::Dst1),
                w,
                &RunOptions::default(),
            );
            black_box(res.events)
        });
    });
    g.bench_function("locking_16x10_dst1", |b| {
        let cfg = SystemConfig::default();
        b.iter(|| {
            let w = LockingWorkload::new(16, 16, 10, 1);
            let (res, _) = run_workload(
                &cfg,
                Protocol::Token(Variant::Dst1),
                w,
                &RunOptions::default(),
            );
            black_box(res.events)
        });
    });
    g.finish();
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng_next_u64_1k", |b| {
        let mut rng = Rng::new(3);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc ^= rng.next_u64();
            }
            black_box(acc)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_event_queue, bench_cache_array, bench_persistent_table, bench_rng, bench_end_to_end
}
criterion_main!(benches);
