//! **Figure 7a / 7b** — inter-CMP and intra-CMP interconnect traffic of
//! the commercial workloads, broken down by message type and normalized
//! to DirectoryCMP's total.
//!
//! Expected shape (paper, Section 8):
//! * 7a (inter-CMP): TokenCMP generates *somewhat less* total traffic
//!   than DirectoryCMP despite broadcasting, because the directory spends
//!   extra control messages (unblocks, writeback handshakes); TokenCMP
//!   shows a larger Request segment, DirectoryCMP a Unblock segment.
//! * 7b (intra-CMP): totals are similar to first order; TokenCMP spends
//!   more on (broadcast) requests while DirectoryCMP spends more on
//!   response data because every data response routes through the L2.
//!   The dst1-filt filter trims intra-CMP traffic by a few percent.

use tokencmp::{
    CommercialParams, CommercialWorkload, MsgClass, Protocol, RunOptions, SystemConfig, Tier,
    Variant,
};
use tokencmp_bench::{banner, macro_protocols};

fn traffic_of(
    cfg: &SystemConfig,
    protocol: Protocol,
    params: CommercialParams,
) -> tokencmp::Traffic {
    let w = CommercialWorkload::new(16, params, 11);
    let (res, _) = tokencmp::run_workload(cfg, protocol, w, &RunOptions::default());
    assert_eq!(res.outcome, tokencmp::RunOutcome::Idle, "{protocol}");
    res.traffic
}

fn print_tier(cfg: &SystemConfig, tier: Tier, title: &str) -> Vec<(String, f64, f64)> {
    println!("\n--- {title} ---");
    let mut shapes = Vec::new();
    for params in CommercialParams::all() {
        let dir_total =
            traffic_of(cfg, Protocol::Directory, params).total_bytes(tier) as f64;
        println!("\n{} (normalized to DirectoryCMP = 1.00):", params.name);
        print!("{:>22}", "class");
        for p in macro_protocols() {
            print!("{:>20}", p.name());
        }
        println!();
        let traffics: Vec<_> = macro_protocols()
            .iter()
            .map(|&p| traffic_of(cfg, p, params))
            .collect();
        for class in MsgClass::ALL {
            print!("{:>22}", class.label());
            for t in &traffics {
                print!("{:>20.3}", t.bytes(tier, class) as f64 / dir_total);
            }
            println!();
        }
        print!("{:>22}", "TOTAL");
        let mut totals = Vec::new();
        for t in &traffics {
            let total = t.total_bytes(tier) as f64 / dir_total;
            print!("{total:>20.3}");
            totals.push(total);
        }
        println!();
        // [DirectoryCMP, dst4, dst1, dst1-pred, dst1-filt]
        shapes.push((params.name.to_string(), totals[0], totals[2]));
    }
    shapes
}

fn main() {
    banner(
        "Figure 7: interconnect traffic by message type",
        "HPCA 2005 paper, Section 8, Figures 7a and 7b",
    );
    let cfg = CommercialParams::scaled_config(&SystemConfig::default());

    let inter = print_tier(&cfg, Tier::Inter, "Figure 7a: inter-CMP traffic");
    let intra = print_tier(&cfg, Tier::Intra, "Figure 7b: intra-CMP traffic");

    println!("\nshape checks:");
    for (name, dir, dst1) in &inter {
        println!("  7a {name}: TokenCMP-dst1 total = {dst1:.2} of DirectoryCMP ({dir:.2})");
    }
    for (name, _, dst1) in &intra {
        println!("  7b {name}: TokenCMP-dst1 total = {dst1:.2} of DirectoryCMP");
    }
    // The paper found TokenCMP's inter-CMP traffic slightly *below*
    // DirectoryCMP's (its workloads had a much larger writeback share,
    // where the directory's three-phase handshakes cost extra); on the
    // synthetic workloads the totals land within ~1.3x. The structural
    // claim — broadcast requests cost TokenCMP, control messages cost the
    // directory, and the totals stay in the same ballpark — holds either
    // way. See EXPERIMENTS.md.
    for (name, _, dst1) in &inter {
        assert!(
            *dst1 < 1.35,
            "7a {name}: TokenCMP inter-CMP traffic should be in DirectoryCMP's ballpark"
        );
    }

    // dst1-filt trims intra-CMP traffic relative to dst1 (paper: 6-8% of
    // fan-out, too little to change runtime).
    let params = CommercialParams::oltp();
    let dst1 = traffic_of(&cfg, Protocol::Token(Variant::Dst1), params);
    let filt = traffic_of(&cfg, Protocol::Token(Variant::Dst1Filt), params);
    let ratio =
        filt.total_bytes(Tier::Intra) as f64 / dst1.total_bytes(Tier::Intra) as f64;
    println!("\n  7b OLTP: dst1-filt intra-CMP bytes = {:.3} of dst1", ratio);
    assert!(ratio < 1.0, "the filter must reduce intra-CMP traffic");
}
