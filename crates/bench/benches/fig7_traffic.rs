//! **Figure 7a / 7b** — inter-CMP and intra-CMP interconnect traffic of
//! the commercial workloads, broken down by message type and normalized
//! to DirectoryCMP's total.
//!
//! Expected shape (paper, Section 8):
//! * 7a (inter-CMP): TokenCMP generates *somewhat less* total traffic
//!   than DirectoryCMP despite broadcasting, because the directory spends
//!   extra control messages (unblocks, writeback handshakes); TokenCMP
//!   shows a larger Request segment, DirectoryCMP a Unblock segment.
//! * 7b (intra-CMP): totals are similar to first order; TokenCMP spends
//!   more on (broadcast) requests while DirectoryCMP spends more on
//!   response data because every data response routes through the L2.
//!   The dst1-filt filter trims intra-CMP traffic by a few percent.

use tokencmp::{CommercialParams, CommercialWorkload, MsgClass, SystemConfig, Tier, Traffic};
use tokencmp_bench::{banner, macro_protocols, BenchGrid, BenchResults, GroupId};

/// One simulation per (workload, protocol) pair, shared by both tiers'
/// breakdowns — queued as a single grid.
fn run_grid(cfg: &SystemConfig) -> (Vec<(CommercialParams, Vec<GroupId>)>, BenchResults) {
    let mut grid = BenchGrid::new();
    let cells: Vec<_> = CommercialParams::all()
        .into_iter()
        .map(|params| {
            let groups = macro_protocols()
                .iter()
                .map(|&p| {
                    grid.push_single(cfg, p, 11, move |seed| {
                        CommercialWorkload::new(16, params, seed)
                    })
                })
                .collect();
            (params, groups)
        })
        .collect();
    let results = grid.run();
    results.export_logged("fig7_traffic");
    (cells, results)
}

fn traffic(results: &BenchResults, g: GroupId) -> &Traffic {
    results.measure(g); // asserts the run completed
    &results.last(g).traffic
}

fn print_tier(
    cells: &[(CommercialParams, Vec<GroupId>)],
    results: &BenchResults,
    tier: Tier,
    title: &str,
) -> Vec<(String, f64, f64)> {
    println!("\n--- {title} ---");
    let mut shapes = Vec::new();
    for (params, groups) in cells {
        let dir_total = traffic(results, groups[0]).total_bytes(tier) as f64;
        println!("\n{} (normalized to DirectoryCMP = 1.00):", params.name);
        print!("{:>22}", "class");
        for p in macro_protocols() {
            print!("{:>20}", p.name());
        }
        println!();
        let traffics: Vec<&Traffic> = groups.iter().map(|&g| traffic(results, g)).collect();
        for class in MsgClass::ALL {
            print!("{:>22}", class.label());
            for t in &traffics {
                print!("{:>20.3}", t.bytes(tier, class) as f64 / dir_total);
            }
            println!();
        }
        print!("{:>22}", "TOTAL");
        let mut totals = Vec::new();
        for t in &traffics {
            let total = t.total_bytes(tier) as f64 / dir_total;
            print!("{total:>20.3}");
            totals.push(total);
        }
        println!();
        // [DirectoryCMP, dst4, dst1, dst1-pred, dst1-filt]
        shapes.push((params.name.to_string(), totals[0], totals[2]));
    }
    shapes
}

fn main() {
    banner(
        "Figure 7: interconnect traffic by message type",
        "HPCA 2005 paper, Section 8, Figures 7a and 7b",
    );
    let cfg = CommercialParams::scaled_config(&SystemConfig::default());
    let (cells, results) = run_grid(&cfg);

    let inter = print_tier(
        &cells,
        &results,
        Tier::Inter,
        "Figure 7a: inter-CMP traffic",
    );
    let intra = print_tier(
        &cells,
        &results,
        Tier::Intra,
        "Figure 7b: intra-CMP traffic",
    );

    println!("\nshape checks:");
    for (name, dir, dst1) in &inter {
        println!("  7a {name}: TokenCMP-dst1 total = {dst1:.2} of DirectoryCMP ({dir:.2})");
    }
    for (name, _, dst1) in &intra {
        println!("  7b {name}: TokenCMP-dst1 total = {dst1:.2} of DirectoryCMP");
    }
    // The paper found TokenCMP's inter-CMP traffic slightly *below*
    // DirectoryCMP's (its workloads had a much larger writeback share,
    // where the directory's three-phase handshakes cost extra); on the
    // synthetic workloads the totals land within ~1.3x. The structural
    // claim — broadcast requests cost TokenCMP, control messages cost the
    // directory, and the totals stay in the same ballpark — holds either
    // way. See EXPERIMENTS.md.
    for (name, _, dst1) in &inter {
        assert!(
            *dst1 < 1.35,
            "7a {name}: TokenCMP inter-CMP traffic should be in DirectoryCMP's ballpark"
        );
    }

    // dst1-filt trims intra-CMP traffic relative to dst1 (paper: 6-8% of
    // fan-out, too little to change runtime). OLTP is cells[0]; group
    // order follows macro_protocols(): [dir, dst4, dst1, dst1-pred,
    // dst1-filt].
    let oltp = &cells[0].1;
    let dst1 = traffic(&results, oltp[2]);
    let filt = traffic(&results, oltp[4]);
    let ratio = filt.total_bytes(Tier::Intra) as f64 / dst1.total_bytes(Tier::Intra) as f64;
    println!(
        "\n  7b OLTP: dst1-filt intra-CMP bytes = {:.3} of dst1",
        ratio
    );
    assert!(ratio < 1.0, "the filter must reduce intra-CMP traffic");
}
