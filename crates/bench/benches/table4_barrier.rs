//! **Table 4** — barrier micro-benchmark runtimes, normalized to
//! DirectoryCMP, with work-between-barriers either a fixed 3000 ns or
//! 3000 ns + U(−1000, +1000) ns, for all eight protocols.
//!
//! Expected shape (the paper's bold rows): TokenCMP-arb0 and TokenCMP-dst4
//! stand out as the ones to avoid; dst0/dst1/dst1-pred/dst1-filt are
//! comparable to (or slightly better than) the directory variants.

use tokencmp::{BarrierWorkload, Dur, Protocol, SystemConfig, Variant};
use tokencmp_bench::{banner, BenchGrid};

fn main() {
    banner(
        "Table 4: barrier micro-benchmark runtime (normalized to DirectoryCMP)",
        "HPCA 2005 paper, Section 7, Table 4",
    );
    let cfg = SystemConfig::default();
    let rounds = 60;
    let work = Dur::from_ns(3000);
    let protocols = [
        Protocol::Token(Variant::Arb0),
        Protocol::Token(Variant::Dst0),
        Protocol::Directory,
        Protocol::DirectoryZero,
        Protocol::Token(Variant::Dst4),
        Protocol::Token(Variant::Dst1),
        Protocol::Token(Variant::Dst1Pred),
        Protocol::Token(Variant::Dst1Filt),
    ];
    let jitters = [Dur::ZERO, Dur::from_ns(1000)];

    // Queue both table columns (baseline + eight protocols each) as one
    // grid.
    let mut grid = BenchGrid::new();
    let mut columns = Vec::new();
    for &jitter in &jitters {
        let base = grid.push(&cfg, Protocol::Directory, move |seed| {
            BarrierWorkload::new(16, rounds, work, jitter, seed)
        });
        let cells: Vec<_> = protocols
            .iter()
            .map(|&protocol| {
                grid.push(&cfg, protocol, move |seed| {
                    BarrierWorkload::new(16, rounds, work, jitter, seed)
                })
            })
            .collect();
        columns.push((base, cells));
    }
    let results = grid.run();
    results.export_logged("table4_barrier");

    let mut normalized = Vec::new();
    println!(
        "{:>22} {:>16} {:>22}",
        "Protocol", "3000 ns fixed", "3000 ns + U(-1000,+1000)"
    );
    for (base, cells) in &columns {
        let base = results.measure(*base);
        let mut colv = Vec::new();
        for &g in cells {
            let m = results.measure(g);
            assert_eq!(results.last(g).counters.counter("procs.done"), 16);
            colv.push(m.mean / base.mean);
        }
        normalized.push(colv);
    }
    for (i, protocol) in protocols.iter().enumerate() {
        println!(
            "{:>22} {:>16.2} {:>22.2}",
            protocol.name(),
            normalized[0][i],
            normalized[1][i]
        );
    }

    // Shape checks: arb0 is the standout loser, as in the paper's bold
    // entries (1.40 / 1.29 in Table 4).
    let arb0 = normalized[0][0];
    let dst1 = normalized[0][5];
    println!("\nshape: arb0 = {arb0:.2}x directory (paper 1.40), dst1 = {dst1:.2}x (paper 0.99)");
    assert!(arb0 > 1.05, "arb0 must lose to DirectoryCMP on barriers");
    assert!(dst1 < 1.10, "dst1 must stay comparable to DirectoryCMP");
}
