//! **Token-loss recovery ablation** — the cost of the recreation
//! protocol's robustness claim (DESIGN.md §15): how much runtime does
//! TokenCMP pay as the interconnect destroys an increasing fraction of
//! in-flight token bundles?
//!
//! Sweeps token drop rate × variant on the barrier micro-benchmark,
//! whose spin phase fills the machine with shared copies — the clean
//! token bundles the lossy tier targets (dirty-owner bundles are never
//! droppable). Every variant appears: unlike transient loss, token loss
//! touches broadcast and multicast variants alike. The 0% column is the
//! recovery-disarmed baseline (bit-identical to a fault-free run), so
//! each row reads directly as the price of recovery.

use tokencmp::{BarrierWorkload, Dur, FaultPlan, Protocol, RunOptions, SystemConfig, Variant};
use tokencmp_bench::{banner, BenchGrid};

fn main() {
    banner(
        "Token-loss recovery ablation: token drop rate x variant",
        "DESIGN.md \u{a7}15 (token-loss recovery: epoch-based recreation)",
    );
    let cfg = SystemConfig::default();
    let drop_rates = [0.0, 0.02, 0.05, 0.10];

    let mut grid = BenchGrid::new();
    let cells: Vec<Vec<_>> = Variant::ALL
        .iter()
        .map(|&v| {
            drop_rates
                .iter()
                .map(|&rate| {
                    let plan = if rate > 0.0 {
                        FaultPlan::none().dropping_tokens(rate)
                    } else {
                        FaultPlan::none()
                    };
                    let opts = RunOptions::default().with_faults(plan);
                    grid.push_with(&cfg, Protocol::Token(v), opts, |seed| {
                        BarrierWorkload::new(16, 6, Dur::from_ns(200), Dur::from_ns(100), seed)
                    })
                })
                .collect()
        })
        .collect();

    let results = grid.run();
    results.export_logged("ablation_token_loss");

    let mut recreations_anywhere = 0;
    println!("\nbarrier runtime (ns) under token loss (16 procs, 6 rounds):");
    print!("{:>22}", "protocol");
    for rate in drop_rates {
        print!(" {:>14}", format!("{:.0}% drop", rate * 100.0));
    }
    println!(" {:>10} {:>8}", "10%/0%", "recr");
    for (&v, row) in Variant::ALL.iter().zip(&cells) {
        print!("{:>22}", v.name());
        let mut base = 0.0;
        let mut worst = 0.0;
        for (&rate, &g) in drop_rates.iter().zip(row) {
            let m = results.measure(g); // asserts every run completed
            if rate == 0.0 {
                base = m.mean;
            }
            worst = m.mean;
            print!(" {:>14}", m.fmt(0));
        }
        // Recovery must actually be exercised: tokens destroyed, and the
        // home memory recreating them often enough to show up.
        let lossy = results.last(*row.last().unwrap());
        let lost = lossy.counters.counter("net.fault.lost_tokens");
        let recr = lossy.counters.counter("mem.recreations");
        recreations_anywhere += recr;
        assert!(lost > 0, "{v:?}: 10% token-lossy plan lost no tokens");
        println!(" {:>10.2}x {:>8}", worst / base, recr);
    }
    assert!(
        recreations_anywhere > 0,
        "token loss everywhere but no variant ever recreated"
    );
    println!(
        "  (recovery latency: a starving persistent request waits out the\n   \
         recreation timeout, then one inval round + drain at the home memory —\n   \
         bounded by the backoff cap; see tests/token_loss.rs for the proofs)"
    );
}
