//! **Ablations** — the design-choice studies DESIGN.md calls out, beyond
//! the paper's own figures:
//!
//! 1. *Persistent read requests* (§3.2): compare TokenCMP-dst0 with
//!    persistent reads against a variant where every persistent request
//!    collects all tokens (approximated by making loads issue write-kind
//!    persistent requests — here: measured via the locking benchmark with
//!    and without read-spin contention).
//! 2. *Response-delay window* (§3.2): sweep the bounded delay.
//! 3. *Migratory sharing* (§4): on/off for both protocol families.

use tokencmp::{Dur, LockingWorkload, Protocol, SystemConfig, Variant};
use tokencmp_bench::{banner, BenchGrid};

fn main() {
    banner(
        "Ablations: response delay, migratory sharing, retry budget",
        "DESIGN.md §6 (design-choice studies)",
    );
    let cfg = SystemConfig::default();

    // Queue all four studies as one grid (groups may differ in config,
    // protocol and workload), then fan out.
    let mut grid = BenchGrid::new();

    let delays = [0u64, 10, 25, 50, 100, 200];
    let delay_cells: Vec<_> = delays
        .iter()
        .map(|&delay_ns| {
            let mut c = cfg.clone();
            c.response_delay = Dur::from_ns(delay_ns);
            grid.push(&c, Protocol::Token(Variant::Dst1), |seed| {
                LockingWorkload::new(16, 4, 40, seed)
            })
        })
        .collect();

    let migratory_protocols = [Protocol::Token(Variant::Dst1), Protocol::Directory];
    let migratory_cells: Vec<_> = migratory_protocols
        .iter()
        .map(|&protocol| {
            let mut on_cfg = cfg.clone();
            on_cfg.migratory_sharing = true;
            let on = grid.push(&on_cfg, protocol, |seed| {
                LockingWorkload::new(16, 32, 40, seed)
            });
            let mut off_cfg = cfg.clone();
            off_cfg.migratory_sharing = false;
            let off = grid.push(&off_cfg, protocol, |seed| {
                LockingWorkload::new(16, 32, 40, seed)
            });
            (on, off)
        })
        .collect();

    let retry_variants = [Variant::Dst0, Variant::Dst1, Variant::Dst4];
    let retry_cells: Vec<_> = retry_variants
        .iter()
        .map(|&v| {
            grid.push(&cfg, Protocol::Token(v), |seed| {
                LockingWorkload::new(16, 2, 40, seed)
            })
        })
        .collect();

    let reads_cell = grid.push_single(&cfg, Protocol::Token(Variant::Dst0), 3, |_| {
        LockingWorkload::new(16, 2, 40, 3)
    });

    let results = grid.run();
    results.export_logged("ablations");

    // --- response-delay sweep -------------------------------------------------
    println!("\nresponse-delay window sweep (locking, 4 locks, TokenCMP-dst1):");
    println!("{:>12} {:>14}", "delay (ns)", "runtime (ns)");
    let mut runtimes = Vec::new();
    for (&delay_ns, &g) in delays.iter().zip(&delay_cells) {
        let m = results.measure(g);
        println!("{delay_ns:>12} {:>14}", m.fmt(0));
        runtimes.push((delay_ns, m.mean));
    }
    // A moderate window must not be catastrophic; a huge one serializes.
    let at25 = runtimes.iter().find(|&&(d, _)| d == 25).unwrap().1;
    let at200 = runtimes.iter().find(|&&(d, _)| d == 200).unwrap().1;
    println!(
        "  (200 ns / 25 ns = {:.2}x — long windows serialize handoffs)",
        at200 / at25
    );

    // --- migratory sharing on/off ----------------------------------------------
    println!("\nmigratory-sharing ablation (locking, 32 locks):");
    println!(
        "{:>22} {:>14} {:>14} {:>8}",
        "protocol", "on (ns)", "off (ns)", "off/on"
    );
    for (&protocol, &(on_g, off_g)) in migratory_protocols.iter().zip(&migratory_cells) {
        let on = results.measure(on_g);
        let off = results.measure(off_g);
        println!(
            "{:>22} {:>14} {:>14} {:>8.2}",
            protocol.name(),
            on.fmt(0),
            off.fmt(0),
            off.mean / on.mean
        );
    }

    // --- retry budget (dst4 vs dst1 vs dst0) -------------------------------------
    println!("\nretry-budget ablation (locking, 2 locks — high contention):");
    println!(
        "{:>22} {:>14} {:>12} {:>12}",
        "protocol", "runtime (ns)", "retries", "persistent"
    );
    for (&v, &g) in retry_variants.iter().zip(&retry_cells) {
        let m = results.measure(g);
        let res = results.last(g);
        println!(
            "{:>22} {:>14} {:>12} {:>12}",
            v.name(),
            m.fmt(0),
            res.counters.counter("l1.retries"),
            res.counters.counter("l1.persistent")
        );
    }

    // --- persistent reads in action -----------------------------------------------
    println!("\npersistent read requests (§3.2) under test-and-test-and-set:");
    results.measure(reads_cell); // asserts completion
    let res = results.last(reads_cell);
    let reads = res.counters.counter("l1.persistent_reads");
    let all = res.counters.counter("l1.persistent");
    println!(
        "  TokenCMP-dst0 @2 locks: {reads} of {all} persistent requests were reads \
         ({:.0}%) — spinning loads do not steal write permission",
        100.0 * reads as f64 / all as f64
    );
    assert!(reads > 0);
}
