//! **Section 5** — the model-checking complexity study: exhaustively
//! verify the three token substrate models and the flat DirectoryCMP
//! simplification, and compare reachable-state counts, wall time and
//! specification sizes (the analogue of the paper's TLA+ line counts:
//! 383 / 396 for TokenCMP-arb / -dst versus 1025 for the flat directory).
//!
//! Expected shape: the safety-only substrate is the cheapest to verify;
//! the persistent-mechanism models cost more; the flat directory needs
//! roughly 2.5× the specification text of the token substrate. Every
//! model passes all invariants (token conservation, single owner, serial
//! view of memory, single-writer) plus deadlock-freedom and
//! EF-quiescence progress.
//!
//! The four reachability explorations are independent, so they run
//! through the sweep engine's [`par_map`] fan-out. (Per-model wall times
//! are still measured inside each worker; on a loaded multicore host they
//! can be slightly inflated by contention — state/transition counts are
//! exact regardless.)

use tokencmp::mcheck::{
    check, spec_lines, CheckOptions, DirModel, DirModelParams, SubstrateMode, TokenModel,
    TokenModelParams,
};
use tokencmp::par_map;
use tokencmp_bench::banner;

fn main() {
    banner(
        "Section 5: model-checking complexity comparison",
        "HPCA 2005 paper, Section 5 (TLA+/TLC study)",
    );
    let opts = CheckOptions::default();
    println!(
        "{:>24} {:>10} {:>13} {:>7} {:>9} {:>10}",
        "model", "states", "transitions", "depth", "time", "verdict"
    );

    let jobs: Vec<(&str, Option<SubstrateMode>)> = vec![
        ("TokenCMP-safety", Some(SubstrateMode::SafetyOnly)),
        ("TokenCMP-dst", Some(SubstrateMode::Distributed)),
        ("TokenCMP-arb", Some(SubstrateMode::Arbiter)),
        ("flat DirectoryCMP", None),
    ];
    let reports = par_map(jobs, |(name, mode)| {
        let r = match mode {
            Some(mode) => {
                let model = TokenModel::new(TokenModelParams::small(mode));
                check(&model, &opts)
            }
            None => {
                let model = DirModel::new(DirModelParams::small());
                check(&model, &opts)
            }
        };
        (name, r.unwrap_or_else(|v| panic!("{name}: {v}")))
    });
    for (name, r) in &reports {
        println!(
            "{name:>24} {:>10} {:>13} {:>7} {:>8.2}s {:>10}",
            r.states, r.transitions, r.depth, r.seconds, "verified"
        );
    }

    println!("\nspecification sizes (non-comment lines; paper: 383/396 vs 1025):");
    let [(tname, tlines), (dname, dlines)] = spec_lines();
    println!("  {tname:>24}: {tlines}");
    println!("  {dname:>24}: {dlines}");
    println!(
        "  directory/token ratio    : {:.2}x (paper: {:.2}x)",
        dlines as f64 / tlines as f64,
        1025.0 / 390.0
    );

    println!("\nnote: the safety model is verified under a nondeterministic");
    println!("performance-policy interface, so the result covers every");
    println!("performance policy — hierarchical ones included (the paper's");
    println!("central verification claim).");
}
