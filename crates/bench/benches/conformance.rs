//! **Conformance grid** — trace-driven refinement checking as a CI
//! gate: every protocol of the evaluation, replayed against the
//! verified mcheck substrate models across litmus shapes, the lock and
//! barrier micro-benchmarks, and an eviction-heavy script, under both
//! clean and lossy interconnects.
//!
//! The grid must contain *zero* refinement violations, and the token
//! substrate must keep its model-transition coverage at or above 90% —
//! this target exits non-zero otherwise. The full report (per-protocol
//! coverage with every uncovered transition listed by name) lands in
//! `target/sweep/conformance.json`.

use tokencmp::conform::{conformance_grid, conformance_report, export_conformance};
use tokencmp::sweep::json::Value;
use tokencmp_bench::{banner, seeds};

/// Token-substrate coverage floor enforced by this gate.
const TOKEN_COVERAGE_FLOOR: f64 = 90.0;

fn pct(report: &Value, section: &str, key: &str) -> f64 {
    report
        .get(section)
        .and_then(|s| s.get(key))
        .and_then(|p| p.get("coverage_pct"))
        .and_then(Value::as_f64)
        .unwrap_or(0.0)
}

fn uncovered(report: &Value, section: &str, key: &str) -> String {
    match report
        .get(section)
        .and_then(|s| s.get(key))
        .and_then(|p| p.get("uncovered"))
    {
        Some(Value::Arr(kinds)) if !kinds.is_empty() => kinds
            .iter()
            .map(|k| k.to_string())
            .collect::<Vec<_>>()
            .join(" "),
        _ => "-".into(),
    }
}

fn main() {
    banner(
        "Conformance grid: workload x protocol x seed x plan",
        "DESIGN.md \u{a7}13 (refinement checking)",
    );
    let seeds = seeds();
    let points = conformance_grid(&seeds);
    let report = conformance_report(&points);

    println!(
        "\nmodel-transition coverage ({} runs, seeds {seeds:?}):\n",
        points.len()
    );
    println!(
        "{:<22} {:>10} {:>8} uncovered",
        "protocol", "coverage", "runs"
    );
    if let Some(Value::Obj(protocols)) = report.get("protocols") {
        for name in protocols.keys() {
            let runs = report
                .get("protocols")
                .and_then(|s| s.get(name))
                .and_then(|p| p.get("runs"))
                .and_then(Value::as_u64)
                .unwrap_or(0);
            println!(
                "{name:<22} {:>9.1}% {runs:>8} {}",
                pct(&report, "protocols", name),
                uncovered(&report, "protocols", name)
            );
        }
    }
    println!();
    for substrate in ["token", "directory", "perfect"] {
        println!(
            "substrate {substrate:<10} {:>9.1}%  uncovered: {}",
            pct(&report, "substrates", substrate),
            uncovered(&report, "substrates", substrate)
        );
    }

    match export_conformance(&points) {
        Ok(path) => println!("\nwrote {} records to {}", points.len(), path.display()),
        Err(e) => println!("\nJSON export failed: {e}"),
    }

    let violation_count = report
        .get("violation_count")
        .and_then(Value::as_u64)
        .unwrap_or(u64::MAX);
    if violation_count > 0 {
        for pt in points.iter().filter(|p| p.violation.is_some()) {
            eprintln!(
                "REFINEMENT VIOLATION: {}\n{}\n",
                pt.coordinates(),
                pt.violation.as_deref().unwrap_or("")
            );
        }
        eprintln!("{violation_count} refinement violations in the grid");
        std::process::exit(1);
    }
    let token_pct = pct(&report, "substrates", "token");
    if token_pct < TOKEN_COVERAGE_FLOOR {
        eprintln!(
            "token substrate coverage {token_pct:.1}% below the {TOKEN_COVERAGE_FLOOR:.0}% floor \
             (uncovered: {})",
            uncovered(&report, "substrates", "token")
        );
        std::process::exit(1);
    }
    println!(
        "all {} runs refine their substrate model; token coverage {token_pct:.1}%",
        points.len()
    );
}
