//! **Fault-tolerance ablation** — the cost of the substrate's robustness
//! claim (§3): how much runtime does TokenCMP pay as the interconnect
//! grows increasingly lossy toward transient requests?
//!
//! Sweeps transient drop rate × variant on the contended locking
//! micro-benchmark. Only the transient-capable variants appear: arb0 and
//! dst0 never issue transient requests (the only droppable class), so a
//! lossy network cannot touch them by construction.

use tokencmp::{FaultPlan, LockingWorkload, Protocol, RunOptions, SystemConfig, Variant};
use tokencmp_bench::{banner, BenchGrid};

fn main() {
    banner(
        "Fault-tolerance ablation: transient drop rate x variant",
        "DESIGN.md \u{a7}10 (fault injection & liveness watchdog)",
    );
    let cfg = SystemConfig::default();
    let drop_rates = [0.0, 0.02, 0.05, 0.10];
    let variants = [
        Variant::Dst4,
        Variant::Dst1,
        Variant::Dst1Pred,
        Variant::Dst1Filt,
    ];

    let mut grid = BenchGrid::new();
    let cells: Vec<Vec<_>> = variants
        .iter()
        .map(|&v| {
            drop_rates
                .iter()
                .map(|&rate| {
                    let opts = RunOptions::default().with_faults(FaultPlan::none().dropping(rate));
                    grid.push_with(&cfg, Protocol::Token(v), opts, |seed| {
                        LockingWorkload::new(16, 4, 40, seed)
                    })
                })
                .collect()
        })
        .collect();

    let results = grid.run();
    results.export_logged("ablation_fault_tolerance");

    println!("\nlocking runtime (ns) under transient drop (16 procs, 4 locks):");
    print!("{:>22}", "protocol");
    for rate in drop_rates {
        print!(" {:>14}", format!("{:.0}% drop", rate * 100.0));
    }
    println!(" {:>10}", "10%/0%");
    for (&v, row) in variants.iter().zip(&cells) {
        print!("{:>22}", v.name());
        let mut base = 0.0;
        let mut worst = 0.0;
        for (&rate, &g) in drop_rates.iter().zip(row) {
            let m = results.measure(g); // asserts every run completed
            if rate == 0.0 {
                base = m.mean;
            }
            worst = m.mean;
            print!(" {:>14}", m.fmt(0));
        }
        println!(" {:>10.2}x", worst / base);
        // The recovery machinery must actually fire under loss.
        let lossy = results.last(*row.last().unwrap());
        assert!(
            lossy.counters.counter("net.fault.dropped") > 0,
            "{v:?}: 10% plan dropped nothing"
        );
        assert!(
            lossy.counters.counter("l1.retries") + lossy.counters.counter("l1.persistent") > 0,
            "{v:?}: drops but no recoveries"
        );
    }
    println!(
        "  (graceful degradation: lost transients cost one timeout + retry or a\n   \
         persistent escalation, never correctness — see tests/fault_injection.rs)"
    );
}
