//! **Scalability & hierarchy ablation** — two claims the paper makes in
//! prose but does not plot:
//!
//! 1. §4: the original flat TokenB policy "is not well-suited for an
//!    M-CMP system" — it broadcasts to every cache, wasting lookup
//!    bandwidth and ignoring locality. We run TokenB-flat against
//!    TokenCMP-dst1 on the Table 3 system.
//! 2. §8: "In a system with more CMPs, TokenCMP traffic results will be
//!    worse (unless multicast with destination set prediction is
//!    employed)." We sweep 2 / 4 / 8 chips and report inter-CMP request
//!    bytes per L1 miss for TokenCMP (grows with chip count) versus
//!    DirectoryCMP (constant).

use tokencmp::{
    run_workload, LockingWorkload, MsgClass, Protocol, RunOptions, SystemConfig, Tier, Variant,
};
use tokencmp_bench::{banner, measure_runtime};

fn main() {
    banner(
        "Scalability & hierarchy ablations",
        "HPCA 2005 paper, §4 (TokenB unsuitability) and §8 (CMP-count scaling)",
    );

    // --- 1. flat TokenB vs hierarchical TokenCMP --------------------------------
    let cfg = SystemConfig::default();
    println!("\nTokenB-flat vs TokenCMP-dst1 (locking, 64 locks, Table 3 system):");
    println!(
        "{:>16} {:>14} {:>18} {:>18}",
        "protocol", "runtime (ns)", "intra req bytes", "inter req bytes"
    );
    let mut rows = Vec::new();
    for v in [Variant::FlatB, Variant::Dst1] {
        let (m, res) = measure_runtime(&cfg, Protocol::Token(v), |seed| {
            LockingWorkload::new(16, 64, 40, seed)
        });
        println!(
            "{:>16} {:>14} {:>18} {:>18}",
            v.name(),
            m.fmt(0),
            res.traffic.bytes(Tier::Intra, MsgClass::Request),
            res.traffic.bytes(Tier::Inter, MsgClass::Request)
        );
        rows.push((m.mean, res));
    }
    let flat_req = rows[0].1.traffic.bytes(Tier::Intra, MsgClass::Request);
    let hier_req = rows[1].1.traffic.bytes(Tier::Intra, MsgClass::Request);
    println!(
        "  hierarchy cuts intra-CMP request bytes to {:.2} of flat broadcast",
        hier_req as f64 / flat_req as f64
    );
    assert!(
        hier_req < flat_req,
        "the hierarchical policy must reduce on-chip request traffic"
    );

    // --- 2. CMP-count sweep --------------------------------------------------------
    println!("\ninter-CMP request bytes per L1 miss vs chip count (locking, low contention):");
    println!(
        "{:>8} {:>22} {:>24} {:>22}",
        "chips", "TokenCMP-dst1 (B/miss)", "TokenCMP-dst1-dsp (B/miss)", "DirectoryCMP (B/miss)"
    );
    let mut token_growth = Vec::new();
    let mut dsp_at_8 = 0.0;
    for cmps in [2u8, 4, 8] {
        let mut c = SystemConfig {
            cmps,
            tokens_per_block: 256, // > caches at 8 chips
            ..SystemConfig::default()
        };
        c.validate().expect("scaled config");
        let procs = c.layout().procs();
        let mut row = Vec::new();
        for protocol in [
            Protocol::Token(Variant::Dst1),
            Protocol::Token(Variant::Dst1Dsp),
            Protocol::Directory,
        ] {
            let w = LockingWorkload::new(procs, 256, 25, 9);
            let (res, _) = run_workload(&c, protocol, w, &RunOptions::default());
            assert_eq!(res.outcome, tokencmp::RunOutcome::Idle);
            let per_miss = res.traffic.bytes(Tier::Inter, MsgClass::Request) as f64
                / res.counters.counter("l1.misses") as f64;
            row.push(per_miss);
        }
        println!("{cmps:>8} {:>22.1} {:>24.1} {:>22.1}", row[0], row[1], row[2]);
        token_growth.push(row[0]);
        if cmps == 8 {
            dsp_at_8 = row[1];
        }
    }
    println!(
        "\n  TokenCMP request bytes/miss grow {:.1}x from 2 to 8 chips (paper: \"will\n  be worse ... unless multicast with destination set prediction is employed\");\n  DirectoryCMP's stay flat.",
        token_growth[2] / token_growth[0]
    );
    assert!(
        token_growth[2] > 1.5 * token_growth[0],
        "TokenCMP broadcast cost must grow with chip count"
    );
    println!(
        "  (randomly migrating locks defeat an owner predictor — dsp = {:.1} B/miss\n   at 8 chips, no better than broadcast; prediction needs stable owners.)",
        dsp_at_8,
    );

    // --- 3. destination-set prediction on stable owners ---------------------------
    use tokencmp::system::ScriptedWorkload;
    use tokencmp::AccessKind;
    use tokencmp::Block;
    println!("\ndestination-set prediction, stable producer/consumer, 8 chips:");
    let mut c = SystemConfig {
        cmps: 8,
        tokens_per_block: 256,
        migratory_sharing: false,
        // A small L2 forces the consumer to re-fetch off chip each round
        // instead of retaining spilled tokens locally.
        l2_sets: 64,
        ..SystemConfig::default()
    };
    c.validate().expect("scaled config");
    let blocks: Vec<Block> = (0..4096u64).map(|i| Block(0x100_0000 + i)).collect();
    let run = |c: &SystemConfig, v| {
        let mut scripts = vec![vec![]; c.layout().procs() as usize];
        scripts[0] = blocks.iter().map(|&b| (AccessKind::Store, b)).collect();
        let mut reader = Vec::new();
        for _ in 0..3 {
            reader.extend(blocks.iter().map(|&b| (AccessKind::Load, b)));
        }
        let last_chip_proc = (c.layout().procs() - c.procs_per_cmp as u32) as usize;
        scripts[last_chip_proc] = reader;
        let w = ScriptedWorkload::new(scripts);
        let (res, _) = run_workload(c, Protocol::Token(v), w, &RunOptions::default());
        assert_eq!(res.outcome, tokencmp::RunOutcome::Idle);
        res.traffic.bytes(Tier::Inter, MsgClass::Request) as f64
            / res.counters.counter("l1.misses") as f64
    };
    let full = run(&c, Variant::Dst1);
    let dsp = run(&c, Variant::Dst1Dsp);
    println!(
        "{:>22} {:>14.1} B/miss\n{:>22} {:>14.1} B/miss   ({:.2} of broadcast)",
        "TokenCMP-dst1", full, "TokenCMP-dst1-dsp", dsp, dsp / full
    );
    println!(
        "  (cold first-touch misses have no prediction by definition and dilute\n   the ratio; steady-state rounds multicast 2 of 7 chips ≈ 0.29.)"
    );
    assert!(
        dsp < 0.8 * full,
        "prediction must substantially narrow stable-owner fetches"
    );
}
