//! **Scalability & hierarchy ablation** — two claims the paper makes in
//! prose but does not plot:
//!
//! 1. §4: the original flat TokenB policy "is not well-suited for an
//!    M-CMP system" — it broadcasts to every cache, wasting lookup
//!    bandwidth and ignoring locality. We run TokenB-flat against
//!    TokenCMP-dst1 on the Table 3 system.
//! 2. §8: "In a system with more CMPs, TokenCMP traffic results will be
//!    worse (unless multicast with destination set prediction is
//!    employed)." We sweep 2 / 4 / 8 chips and report inter-CMP request
//!    bytes per L1 miss for TokenCMP (grows with chip count) versus
//!    DirectoryCMP (constant).

use std::path::PathBuf;
use std::time::Instant;

use tokencmp::{
    run_workload, Fabric, LockingWorkload, MsgClass, Protocol, RunOptions, RunOutcome,
    SystemConfig, Tier, Variant,
};
use tokencmp_bench::scale::{self, ScaleBenchEntry};
use tokencmp_bench::{banner, BenchGrid};

/// One scale-out grid point: fabric, chip count, cores and banks per
/// chip, and lock acquires per core (smaller for the big systems so a
/// 1024-core point stays minutes-scale on one host core).
struct ScalePoint {
    fabric: Fabric,
    cmps: u16,
    procs_per_cmp: u16,
    banks_per_cmp: u16,
    acquires: u32,
}

const SP: fn(Fabric, u16, u16, u16, u32) -> ScalePoint =
    |fabric, cmps, procs_per_cmp, banks_per_cmp, acquires| ScalePoint {
        fabric,
        cmps,
        procs_per_cmp,
        banks_per_cmp,
        acquires,
    };

/// The scale-out grid: core count spans 16 → 1024, each fabric gets at
/// least one point, and the last point is the acceptance run — a
/// 64-CMP × 16-core workload over the 8 × 8 mesh with per-link
/// contention. Smoke mode trims to CI-sized systems.
fn scale_grid(smoke: bool) -> Vec<ScalePoint> {
    if smoke {
        vec![
            SP(Fabric::Flat, 2, 2, 2, 4),
            SP(Fabric::Ring, 8, 2, 2, 2),
            SP(Fabric::Mesh { cols: 4 }, 8, 2, 2, 2),
        ]
    } else {
        vec![
            SP(Fabric::Flat, 4, 4, 4, 4),
            SP(Fabric::Ring, 16, 4, 4, 2),
            SP(Fabric::Mesh { cols: 4 }, 16, 4, 4, 2),
            SP(Fabric::Mesh { cols: 8 }, 64, 4, 4, 1),
            SP(Fabric::Mesh { cols: 8 }, 64, 16, 16, 1),
        ]
    }
}

/// Runs one grid point (TokenCMP-dst1, locking with one lock per four
/// cores) and records it as a trajectory entry.
fn run_scale_point(run: &str, p: &ScalePoint) -> ScaleBenchEntry {
    let mut cfg = SystemConfig {
        cmps: p.cmps,
        procs_per_cmp: p.procs_per_cmp,
        banks_per_cmp: p.banks_per_cmp,
        fabric: p.fabric,
        ..SystemConfig::default()
    };
    cfg.tokens_per_block = (cfg.layout().caches() + 1).next_power_of_two();
    cfg.validate().expect("scale-out grid config");
    let procs = cfg.layout().procs();
    let w = LockingWorkload::new(procs, (procs / 4).max(2), p.acquires, 7);
    let start = Instant::now();
    let (res, _) = run_workload(
        &cfg,
        Protocol::Token(Variant::Dst1),
        w,
        &RunOptions::default(),
    );
    let elapsed = start.elapsed();
    assert_eq!(
        res.outcome,
        RunOutcome::Idle,
        "{} {}x{} did not finish",
        p.fabric.name(),
        p.cmps,
        p.procs_per_cmp
    );
    ScaleBenchEntry::measured(
        run,
        p.fabric.name(),
        p.cmps as u64,
        p.procs_per_cmp as u64,
        res.events,
        res.runtime.as_ps(),
        elapsed,
    )
}

/// Measures the scale-out grid and merges it into the trajectory file.
fn run_scale_study(smoke: bool) {
    let run = std::env::var("TOKENCMP_BENCH_RUN")
        .unwrap_or_else(|_| if smoke { "smoke" } else { "dev" }.into());
    // Smoke results land in a scratch file: CI exercises the full
    // measure→merge→validate path without rewriting the committed
    // trajectory with noisy, tiny-system numbers.
    let path = if smoke {
        let p = std::env::temp_dir().join(format!("BENCH_scale.smoke.{}.json", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    } else {
        scale::trajectory_path()
    };
    println!("\nscale-out trajectory (TokenCMP-dst1, one lock per four cores):");
    println!(
        "{:>7} {:>6} {:>7} {:>10} {:>14} {:>14} {:>12}",
        "fabric", "chips", "cores", "events", "runtime (ps)", "events/sec", "wall (s)"
    );
    let mut fresh = Vec::new();
    for p in scale_grid(smoke) {
        let e = run_scale_point(&run, &p);
        println!(
            "{:>7} {:>6} {:>7} {:>10} {:>14} {:>14.3e} {:>12.1}",
            e.fabric,
            e.cmps,
            e.cores,
            e.events,
            e.runtime_ps,
            e.events_per_sec,
            e.elapsed_ns as f64 / 1e9
        );
        fresh.push(e);
    }
    match scale::append(&path, fresh) {
        Ok(all) => println!(
            "wrote {} ({} entries, run `{run}`)",
            path.display(),
            all.len()
        ),
        Err(e) => {
            eprintln!("failed to write trajectory: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| a != "--bench")
        .collect();
    if args.first().map(String::as_str) == Some("--validate") {
        let path = args
            .get(1)
            .map(PathBuf::from)
            .unwrap_or_else(scale::trajectory_path);
        match scale::validate_file(&path) {
            Ok(report) => print!("{report}"),
            Err(e) => {
                eprintln!("BENCH_scale.json validation failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    banner(
        "Scalability & hierarchy ablations",
        "HPCA 2005 paper, §4 (TokenB unsuitability) and §8 (CMP-count scaling)",
    );

    // Smoke mode measures only the (trimmed) scale-out grid — the three
    // paper studies below are full-size runs that CI exercises through
    // the committed trajectory, not by re-measuring.
    if std::env::var("TOKENCMP_BENCH_SMOKE").is_ok() {
        run_scale_study(true);
        return;
    }

    // All three studies queued as one grid through the parallel engine.
    let cfg = SystemConfig::default();
    let mut grid = BenchGrid::new();

    // --- 1. flat TokenB vs hierarchical TokenCMP --------------------------------
    let flat_variants = [Variant::FlatB, Variant::Dst1];
    let flat_cells: Vec<_> = flat_variants
        .iter()
        .map(|&v| {
            grid.push(&cfg, Protocol::Token(v), |seed| {
                LockingWorkload::new(16, 64, 40, seed)
            })
        })
        .collect();

    // --- 2. CMP-count sweep ------------------------------------------------------
    let chip_counts = [2u16, 4, 8];
    let sweep_protocols = [
        Protocol::Token(Variant::Dst1),
        Protocol::Token(Variant::Dst1Dsp),
        Protocol::Directory,
    ];
    let chip_cells: Vec<Vec<_>> = chip_counts
        .iter()
        .map(|&cmps| {
            let c = SystemConfig {
                cmps,
                tokens_per_block: 256, // > caches at 8 chips
                ..SystemConfig::default()
            };
            c.validate().expect("scaled config");
            let procs = c.layout().procs();
            sweep_protocols
                .iter()
                .map(|&protocol| {
                    grid.push_single(&c, protocol, 9, move |_| {
                        LockingWorkload::new(procs, 256, 25, 9)
                    })
                })
                .collect()
        })
        .collect();

    // --- 3. destination-set prediction on stable owners ---------------------------
    use tokencmp::system::ScriptedWorkload;
    use tokencmp::AccessKind;
    use tokencmp::Block;
    let dsp_cfg = SystemConfig {
        cmps: 8,
        tokens_per_block: 256,
        migratory_sharing: false,
        // A small L2 forces the consumer to re-fetch off chip each round
        // instead of retaining spilled tokens locally.
        l2_sets: 64,
        ..SystemConfig::default()
    };
    dsp_cfg.validate().expect("scaled config");
    let blocks: Vec<Block> = (0..4096u64).map(|i| Block(0x100_0000 + i)).collect();
    let procs = dsp_cfg.layout().procs();
    let last_chip_proc = (procs - dsp_cfg.procs_per_cmp as u32) as usize;
    let dsp_cells: Vec<_> = [Variant::Dst1, Variant::Dst1Dsp]
        .iter()
        .map(|&v| {
            let blocks = blocks.clone();
            grid.push_single(&dsp_cfg, Protocol::Token(v), 1, move |_| {
                let mut scripts = vec![vec![]; procs as usize];
                scripts[0] = blocks.iter().map(|&b| (AccessKind::Store, b)).collect();
                let mut reader = Vec::new();
                for _ in 0..3 {
                    reader.extend(blocks.iter().map(|&b| (AccessKind::Load, b)));
                }
                scripts[last_chip_proc] = reader;
                ScriptedWorkload::new(scripts)
            })
        })
        .collect();

    let results = grid.run();
    results.export_logged("scalability");

    // --- 1. report ---------------------------------------------------------------
    println!("\nTokenB-flat vs TokenCMP-dst1 (locking, 64 locks, Table 3 system):");
    println!(
        "{:>16} {:>14} {:>18} {:>18}",
        "protocol", "runtime (ns)", "intra req bytes", "inter req bytes"
    );
    let mut req_bytes = Vec::new();
    for (&v, &g) in flat_variants.iter().zip(&flat_cells) {
        let m = results.measure(g);
        let res = results.last(g);
        println!(
            "{:>16} {:>14} {:>18} {:>18}",
            v.name(),
            m.fmt(0),
            res.traffic.bytes(Tier::Intra, MsgClass::Request),
            res.traffic.bytes(Tier::Inter, MsgClass::Request)
        );
        req_bytes.push(res.traffic.bytes(Tier::Intra, MsgClass::Request));
    }
    let (flat_req, hier_req) = (req_bytes[0], req_bytes[1]);
    println!(
        "  hierarchy cuts intra-CMP request bytes to {:.2} of flat broadcast",
        hier_req as f64 / flat_req as f64
    );
    assert!(
        hier_req < flat_req,
        "the hierarchical policy must reduce on-chip request traffic"
    );

    // --- 2. report ---------------------------------------------------------------
    println!("\ninter-CMP request bytes per L1 miss vs chip count (locking, low contention):");
    println!(
        "{:>8} {:>22} {:>24} {:>22}",
        "chips", "TokenCMP-dst1 (B/miss)", "TokenCMP-dst1-dsp (B/miss)", "DirectoryCMP (B/miss)"
    );
    let mut token_growth = Vec::new();
    let mut dsp_at_8 = 0.0;
    for (&cmps, cells) in chip_counts.iter().zip(&chip_cells) {
        let row: Vec<f64> = cells
            .iter()
            .map(|&g| {
                results.measure(g); // asserts completion
                let res = results.last(g);
                res.traffic.bytes(Tier::Inter, MsgClass::Request) as f64
                    / res.counters.counter("l1.misses") as f64
            })
            .collect();
        println!(
            "{cmps:>8} {:>22.1} {:>24.1} {:>22.1}",
            row[0], row[1], row[2]
        );
        token_growth.push(row[0]);
        if cmps == 8 {
            dsp_at_8 = row[1];
        }
    }
    println!(
        "\n  TokenCMP request bytes/miss grow {:.1}x from 2 to 8 chips (paper: \"will\n  be worse ... unless multicast with destination set prediction is employed\");\n  DirectoryCMP's stay flat.",
        token_growth[2] / token_growth[0]
    );
    assert!(
        token_growth[2] > 1.5 * token_growth[0],
        "TokenCMP broadcast cost must grow with chip count"
    );
    println!(
        "  (randomly migrating locks defeat an owner predictor — dsp = {:.1} B/miss\n   at 8 chips, no better than broadcast; prediction needs stable owners.)",
        dsp_at_8,
    );

    // --- 3. report ---------------------------------------------------------------
    println!("\ndestination-set prediction, stable producer/consumer, 8 chips:");
    let per_miss: Vec<f64> = dsp_cells
        .iter()
        .map(|&g| {
            results.measure(g); // asserts completion
            let res = results.last(g);
            res.traffic.bytes(Tier::Inter, MsgClass::Request) as f64
                / res.counters.counter("l1.misses") as f64
        })
        .collect();
    let (full, dsp) = (per_miss[0], per_miss[1]);
    println!(
        "{:>22} {:>14.1} B/miss\n{:>22} {:>14.1} B/miss   ({:.2} of broadcast)",
        "TokenCMP-dst1",
        full,
        "TokenCMP-dst1-dsp",
        dsp,
        dsp / full
    );
    println!(
        "  (cold first-touch misses have no prediction by definition and dilute\n   the ratio; steady-state rounds multicast 2 of 7 chips ≈ 0.29.)"
    );
    assert!(
        dsp < 0.8 * full,
        "prediction must substantially narrow stable-owner fetches"
    );

    // --- 4. scale-out trajectory ---------------------------------------------------
    run_scale_study(false);
}
