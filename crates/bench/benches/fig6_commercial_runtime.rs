//! **Figure 6** — runtime of the commercial workloads (OLTP, Apache,
//! SPECjbb) normalized to DirectoryCMP, for TokenCMP-dst4 / dst1 /
//! dst1-pred / dst1-filt, with DirectoryCMP-zero and PerfectL2 as
//! reference marks.
//!
//! Expected shape: every TokenCMP variant is significantly faster than
//! DirectoryCMP, with the advantage largest for OLTP and smallest for
//! SPECjbb (the paper: dst1 is 50 % / 29 % / 10 % faster); all TokenCMP
//! variants perform similarly; persistent requests stay rare (< ~0.3 % of
//! L1 misses).

use tokencmp::{CommercialParams, CommercialWorkload, Protocol, SystemConfig, Variant};
use tokencmp_bench::{banner, macro_protocols, measure_runtime};

fn main() {
    banner(
        "Figure 6: commercial workload runtime (normalized to DirectoryCMP)",
        "HPCA 2005 paper, Section 8, Figure 6",
    );
    let cfg = CommercialParams::scaled_config(&SystemConfig::default());
    let protocols = macro_protocols();

    println!(
        "{:>10} {:>14} {:>14} {:>14} {:>16} {:>16} {:>12} {:>12}",
        "workload",
        "DirectoryCMP",
        "TokenCMP-dst4",
        "TokenCMP-dst1",
        "TokenCMP-dst1-pred",
        "TokenCMP-dst1-filt",
        "Dir-zero",
        "PerfectL2"
    );

    let mut dst1_speedup = Vec::new();
    for params in CommercialParams::all() {
        let mk = |seed| CommercialWorkload::new(16, params, seed);
        let (dir, _) = measure_runtime(&cfg, Protocol::Directory, mk);
        print!("{:>10} {:>14.2}", params.name, 1.0);
        let mut persistent_frac: f64 = 0.0;
        for &protocol in &protocols[1..] {
            let (m, res) = measure_runtime(&cfg, protocol, mk);
            print!(" {:>14.2}", m.mean / dir.mean);
            persistent_frac = persistent_frac.max(res.persistent_fraction());
            if protocol == Protocol::Token(Variant::Dst1) {
                dst1_speedup.push((params.name, dir.mean / m.mean - 1.0));
            }
        }
        // Reference marks (hash marks in the paper's figure).
        let (zero, _) = measure_runtime(&cfg, Protocol::DirectoryZero, mk);
        let (perfect, _) = measure_runtime(&cfg, Protocol::PerfectL2, mk);
        print!("       {:>12.2} {:>12.2}", zero.mean / dir.mean, perfect.mean / dir.mean);
        println!("   persistent ≤ {:.3}%", 100.0 * persistent_frac);
        assert!(
            persistent_frac < 0.01,
            "{}: persistent requests must be rare in macro workloads",
            params.name
        );
    }

    println!("\nTokenCMP-dst1 speedups over DirectoryCMP ('X% faster', §8 footnote):");
    for (name, s) in &dst1_speedup {
        let paper = match *name {
            "OLTP" => 50.0,
            "Apache" => 29.0,
            _ => 10.0,
        };
        println!("  {name:>8}: {:>5.1}%   (paper: {paper:.0}%)", 100.0 * s);
    }
    // Shape: OLTP gains the most, SPECjbb the least, and all are positive.
    assert!(dst1_speedup.iter().all(|&(_, s)| s > 0.0));
    assert!(dst1_speedup[0].1 > dst1_speedup[2].1, "OLTP > SPECjbb gain");
}
