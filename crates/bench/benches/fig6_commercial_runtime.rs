//! **Figure 6** — runtime of the commercial workloads (OLTP, Apache,
//! SPECjbb) normalized to DirectoryCMP, for TokenCMP-dst4 / dst1 /
//! dst1-pred / dst1-filt, with DirectoryCMP-zero and PerfectL2 as
//! reference marks.
//!
//! Expected shape: every TokenCMP variant is significantly faster than
//! DirectoryCMP, with the advantage largest for OLTP and smallest for
//! SPECjbb (the paper: dst1 is 50 % / 29 % / 10 % faster); all TokenCMP
//! variants perform similarly; persistent requests stay rare (< ~0.3 % of
//! L1 misses).

use tokencmp::{CommercialParams, CommercialWorkload, Protocol, SystemConfig, Variant};
use tokencmp_bench::{banner, macro_protocols, BenchGrid};

fn main() {
    banner(
        "Figure 6: commercial workload runtime (normalized to DirectoryCMP)",
        "HPCA 2005 paper, Section 8, Figure 6",
    );
    let cfg = CommercialParams::scaled_config(&SystemConfig::default());
    let protocols = macro_protocols();

    // The full figure — 3 workloads × (5 protocols + 2 reference marks) ×
    // seeds — as one grid through the parallel engine.
    let mut grid = BenchGrid::new();
    let mut rows = Vec::new();
    for params in CommercialParams::all() {
        let mk = move |seed| CommercialWorkload::new(16, params, seed);
        let dir = grid.push(&cfg, Protocol::Directory, mk);
        let tokens: Vec<_> = protocols[1..]
            .iter()
            .map(|&p| grid.push(&cfg, p, mk))
            .collect();
        let zero = grid.push(&cfg, Protocol::DirectoryZero, mk);
        let perfect = grid.push(&cfg, Protocol::PerfectL2, mk);
        rows.push((params, dir, tokens, zero, perfect));
    }
    let results = grid.run();
    results.export_logged("fig6_commercial_runtime");

    println!(
        "{:>10} {:>14} {:>14} {:>14} {:>16} {:>16} {:>12} {:>12}",
        "workload",
        "DirectoryCMP",
        "TokenCMP-dst4",
        "TokenCMP-dst1",
        "TokenCMP-dst1-pred",
        "TokenCMP-dst1-filt",
        "Dir-zero",
        "PerfectL2"
    );

    let mut dst1_speedup = Vec::new();
    for (params, dir_g, tokens, zero_g, perfect_g) in &rows {
        let dir = results.measure(*dir_g);
        print!("{:>10} {:>14.2}", params.name, 1.0);
        let mut persistent_frac: f64 = 0.0;
        for (&protocol, &g) in protocols[1..].iter().zip(tokens) {
            let m = results.measure(g);
            print!(" {:>14.2}", m.mean / dir.mean);
            persistent_frac = persistent_frac.max(results.last(g).persistent_fraction());
            if protocol == Protocol::Token(Variant::Dst1) {
                dst1_speedup.push((params.name, dir.mean / m.mean - 1.0));
            }
        }
        // Reference marks (hash marks in the paper's figure).
        let zero = results.measure(*zero_g);
        let perfect = results.measure(*perfect_g);
        print!(
            "       {:>12.2} {:>12.2}",
            zero.mean / dir.mean,
            perfect.mean / dir.mean
        );
        println!("   persistent ≤ {:.3}%", 100.0 * persistent_frac);
        assert!(
            persistent_frac < 0.01,
            "{}: persistent requests must be rare in macro workloads",
            params.name
        );
    }

    println!("\nTokenCMP-dst1 speedups over DirectoryCMP ('X% faster', §8 footnote):");
    for (name, s) in &dst1_speedup {
        let paper = match *name {
            "OLTP" => 50.0,
            "Apache" => 29.0,
            _ => 10.0,
        };
        println!("  {name:>8}: {:>5.1}%   (paper: {paper:.0}%)", 100.0 * s);
    }
    // Shape: OLTP gains the most, SPECjbb the least, and all are positive.
    assert!(dst1_speedup.iter().all(|&(_, s)| s > 0.0));
    assert!(dst1_speedup[0].1 > dst1_speedup[2].1, "OLTP > SPECjbb gain");
}
