//! **Figure 3** — locking micro-benchmark with transient *and* persistent
//! requests: DirectoryCMP, DirectoryCMP-zero, TokenCMP-dst4, TokenCMP-dst1
//! and TokenCMP-dst1-pred over the 2..512 lock sweep, normalized to
//! DirectoryCMP at 512 locks. (TokenCMP-dst1-filt performs identically to
//! dst1 here; the harness verifies that claim instead of plotting it.)
//!
//! Expected shape: at low contention every TokenCMP variant beats
//! DirectoryCMP (the lock is usually in a remote L1 and the directory
//! pays an indirection); as contention rises dst4 wastes time on retries
//! while dst1/dst1-pred stay comparable to the directory variants.

use tokencmp::{LockingWorkload, Protocol, SystemConfig, Variant};
use tokencmp_bench::{banner, BenchGrid, Measure};

fn main() {
    banner(
        "Figure 3: locking micro-benchmark, transient + persistent requests",
        "HPCA 2005 paper, Section 7, Figure 3",
    );
    let cfg = SystemConfig::default();
    let acquires = 40;
    let protocols = [
        Protocol::Directory,
        Protocol::DirectoryZero,
        Protocol::Token(Variant::Dst4),
        Protocol::Token(Variant::Dst1),
        Protocol::Token(Variant::Dst1Pred),
    ];
    let locks_axis = [2u32, 4, 8, 16, 32, 64, 128, 256, 512];

    // One grid: baseline, the figure's lock sweep, and the dst1-filt
    // equivalence check at the end.
    let mut grid = BenchGrid::new();
    let base_g = grid.push(&cfg, Protocol::Directory, move |seed| {
        LockingWorkload::new(16, 512, acquires, seed)
    });
    let mut cells = Vec::new();
    for &locks in &locks_axis {
        for &protocol in &protocols {
            cells.push(grid.push(&cfg, protocol, move |seed| {
                LockingWorkload::new(16, locks, acquires, seed)
            }));
        }
    }
    let filt_g = grid.push(&cfg, Protocol::Token(Variant::Dst1Filt), move |seed| {
        LockingWorkload::new(16, 512, acquires, seed)
    });
    let dst1_g = grid.push(&cfg, Protocol::Token(Variant::Dst1), move |seed| {
        LockingWorkload::new(16, 512, acquires, seed)
    });
    let results = grid.run();
    results.export_logged("fig3_locking_transient");

    let base = results.measure(base_g);
    println!("baseline DirectoryCMP @512 locks = {} ns\n", base.fmt(0));

    print!("{:>7}", "locks");
    for p in &protocols {
        print!("{:>22}", p.name());
    }
    println!("   (normalized runtime)");

    let mut cell = cells.iter();
    let mut rows: Vec<Vec<Measure>> = Vec::new();
    for &locks in &locks_axis {
        print!("{locks:>7}");
        let mut row = Vec::new();
        for _ in &protocols {
            let m = results.measure(*cell.next().unwrap());
            let norm = Measure {
                mean: m.mean / base.mean,
                half: m.half / base.mean,
            };
            print!("{:>22}", norm.fmt(2));
            row.push(norm);
        }
        println!();
        rows.push(row);
    }

    // dst1-filt ≈ dst1 (the paper: "TokenCMP-dst1-filt performs
    // identically to TokenCMP-dst1").
    let filt = results.measure(filt_g);
    let dst1 = results.measure(dst1_g);
    println!(
        "\ndst1-filt / dst1 @512 locks = {:.3} (paper: identical)",
        filt.mean / dst1.mean
    );

    // Shape checks.
    let last = rows.last().unwrap();
    let dir_low = last[0].mean;
    let dst1_low = last[3].mean;
    println!(
        "shape: dst1/dir @512 locks = {:.2}x (paper: TokenCMP well below 1.0)",
        dst1_low / dir_low
    );
    assert!(
        dst1_low < dir_low,
        "dst1 must beat DirectoryCMP at low contention"
    );
    let dst4_high = rows[0][2].mean;
    let dst1_high = rows[0][3].mean;
    let pred_high = rows[0][4].mean;
    println!(
        "shape: @2 locks dst4 = {dst4_high:.2}, dst1 = {dst1_high:.2}, dst1-pred = {pred_high:.2}"
    );
    println!(
        "note: in this reproduction dst4's retries often *succeed* (the\n\
         response-delay window makes a ~300 ns retry land after the 10 ns\n\
         critical section), so dst4 tracks dst1 instead of trailing it as\n\
         in the paper — see EXPERIMENTS.md."
    );
    // The robust variants stay within each other's ballpark, and the
    // predictor helps under contention (as in the paper).
    assert!(
        (dst4_high / dst1_high) < 1.5 && (dst1_high / dst4_high) < 1.5,
        "dst4 and dst1 must be comparable"
    );
    assert!(
        pred_high <= dst1_high * 1.02,
        "the contention predictor must not hurt at high contention"
    );
}
