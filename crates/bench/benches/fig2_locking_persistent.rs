//! **Figure 2** — locking micro-benchmark using *only persistent
//! requests*: TokenCMP-arb0 and TokenCMP-dst0 against DirectoryCMP and
//! DirectoryCMP-zero, sweeping the lock count from 2 (high contention) to
//! 512 (low contention). Runtime is normalized to DirectoryCMP at 512
//! locks, exactly as in the paper.
//!
//! Expected shape: the original arbiter mechanism (arb0) is *worse* than
//! DirectoryCMP everywhere and catastrophically so under contention; the
//! new distributed mechanism (dst0) is comparable to or better than the
//! directory variants.

use tokencmp::{LockingWorkload, Protocol, SystemConfig, Variant};
use tokencmp_bench::{banner, BenchGrid, Measure};

fn main() {
    banner(
        "Figure 2: locking micro-benchmark, persistent requests only",
        "HPCA 2005 paper, Section 7, Figure 2",
    );
    let cfg = SystemConfig::default();
    let acquires = 40;
    let protocols = [
        Protocol::Token(Variant::Arb0),
        Protocol::Directory,
        Protocol::DirectoryZero,
        Protocol::Token(Variant::Dst0),
    ];
    let locks_axis = [2u32, 4, 8, 16, 32, 64, 128, 256, 512];

    // Queue the whole figure — the baseline plus the locks × protocols
    // sweep — as one grid, then fan it out over the parallel engine.
    let mut grid = BenchGrid::new();
    let base_g = grid.push(&cfg, Protocol::Directory, move |seed| {
        LockingWorkload::new(16, 512, acquires, seed)
    });
    let mut cells = Vec::new();
    for &locks in &locks_axis {
        for &protocol in &protocols {
            cells.push(grid.push(&cfg, protocol, move |seed| {
                LockingWorkload::new(16, locks, acquires, seed)
            }));
        }
    }
    let results = grid.run();
    results.export_logged("fig2_locking_persistent");

    // Baseline: DirectoryCMP at 512 locks.
    let base = results.measure(base_g);
    println!("baseline DirectoryCMP @512 locks = {} ns\n", base.fmt(0));

    print!("{:>7}", "locks");
    for p in &protocols {
        print!("{:>22}", p.name());
    }
    println!("   (normalized runtime)");

    let mut cell = cells.iter();
    let mut rows: Vec<Vec<Measure>> = Vec::new();
    for &locks in &locks_axis {
        let mut row = Vec::new();
        print!("{locks:>7}");
        for &protocol in &protocols {
            let g = *cell.next().unwrap();
            let m = results.measure(g);
            // Persistent-only variants must never issue transient
            // requests — checked across every seed via the merged fold.
            if matches!(protocol, Protocol::Token(_)) {
                assert_eq!(results.merged_counters(g).counter("l1.transient"), 0);
            }
            let norm = Measure {
                mean: m.mean / base.mean,
                half: m.half / base.mean,
            };
            print!("{:>22}", norm.fmt(2));
            row.push(norm);
        }
        println!();
        rows.push(row);
    }

    // Shape checks (who wins, roughly by how much).
    let arb0_high = rows[0][0].mean;
    let dir_high = rows[0][1].mean;
    let dst0_high = rows[0][3].mean;
    println!();
    println!(
        "shape: arb0/dir @2 locks      = {:.2}x (paper: arb0 well above directory)",
        arb0_high / dir_high
    );
    println!(
        "shape: dst0/dir @2 locks      = {:.2}x (paper: dst0 comparable or better)",
        dst0_high / dir_high
    );
    assert!(
        arb0_high > 2.0 * dst0_high,
        "arbiter activation must be far worse than distributed under contention"
    );
}
