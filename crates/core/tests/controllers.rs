//! Controller-level tests: each TokenCMP controller is driven directly
//! through a mini kernel in which every *other* layout position is a
//! recording stub, so individual protocol rules (§3/§4) can be asserted
//! message by message.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

use tokencmp_core::msg::{ReqKind, TokenBundle, TokenMsg};
use tokencmp_core::{TokenL1, TokenL2, TokenMem, Variant};
use tokencmp_proto::{AccessKind, Block, CpuReq, CpuResp, ProcId, SystemConfig, Unit};
use tokencmp_sim::{Component, Ctx, Kernel, NodeId, Time};

type Log = Rc<RefCell<Vec<(NodeId, NodeId, Time, TokenMsg)>>>;

/// A stub occupying a layout slot; records everything it receives.
struct Recorder {
    me: NodeId,
    log: Log,
}

impl Component<TokenMsg> for Recorder {
    fn on_msg(&mut self, src: NodeId, msg: TokenMsg, ctx: &mut Ctx<'_, TokenMsg>) {
        self.log.borrow_mut().push((self.me, src, ctx.now, msg));
    }
    fn on_wake(&mut self, _tag: u64, _ctx: &mut Ctx<'_, TokenMsg>) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Builds a kernel with the unit under test at its layout slot and
/// recorders everywhere else. Instant transport (latency zero) so timing
/// assertions reflect controller-internal delays only.
fn build(
    cfg: &Rc<SystemConfig>,
    under_test: Unit,
    variant: Variant,
) -> (Kernel<TokenMsg>, Log, NodeId) {
    let layout = cfg.layout();
    let log: Log = Rc::new(RefCell::new(Vec::new()));
    let mut k: Kernel<TokenMsg> = Kernel::new_instant();
    let target = layout.node(under_test);
    for i in 0..layout.total_nodes() {
        let me = NodeId(i);
        if me == target {
            match under_test {
                Unit::L1D(p) | Unit::L1I(p) => {
                    let id = k.add_component(TokenL1::new(
                        cfg.clone(),
                        me,
                        p,
                        variant,
                        7,
                        Rc::new(Cell::new(0)),
                    ));
                    assert_eq!(id, me);
                }
                Unit::L2Bank(c, b) => {
                    let id = k.add_component(TokenL2::new(cfg.clone(), me, c, b, variant));
                    assert_eq!(id, me);
                }
                Unit::Mem(c) => {
                    let id = k.add_component(TokenMem::new(cfg.clone(), me, c));
                    assert_eq!(id, me);
                }
                Unit::Proc(_) => unreachable!("no processor controller under test"),
            }
        } else {
            let id = k.add_component(Recorder {
                me,
                log: log.clone(),
            });
            assert_eq!(id, me);
        }
    }
    (k, log, target)
}

fn received_by(log: &Log, node: NodeId) -> Vec<TokenMsg> {
    log.borrow()
        .iter()
        .filter(|&&(me, _, _, _)| me == node)
        .map(|&(_, _, _, m)| m)
        .collect()
}

fn bundle(count: u32, owner: bool, data: bool, dirty: bool) -> TokenBundle {
    TokenBundle {
        count,
        owner,
        data,
        dirty,
    }
}

fn cfg() -> Rc<SystemConfig> {
    Rc::new(SystemConfig::small_test())
}

// ---- L1 -------------------------------------------------------------------------

#[test]
fn l1_store_miss_broadcasts_within_its_chip_only() {
    let cfg = cfg();
    let layout = cfg.layout();
    let p = ProcId(0);
    let (mut k, log, l1) = build(&cfg, Unit::L1D(p), Variant::Dst1);
    let block = Block(0x40);
    k.inject(
        layout.proc(p),
        l1,
        TokenMsg::Cpu(CpuReq::Access {
            kind: AccessKind::Store,
            block,
        }),
    );
    k.run(100_000, Time::from_ns(50));

    // The other local L1s and the local bank for the block see the
    // transient request; nothing crosses the chip (the L2 does that).
    let local_cmp = layout.cmp_of_proc(p);
    let bank = layout.l2(local_cmp, cfg.l2_bank_of(block));
    for l1_node in layout.l1s_on(local_cmp) {
        if l1_node == l1 {
            continue;
        }
        let msgs = received_by(&log, l1_node);
        assert!(
            msgs.iter().any(|m| matches!(
                m,
                TokenMsg::Transient {
                    external: false,
                    ..
                }
            )),
            "local L1 {l1_node:?} must see the broadcast"
        );
    }
    assert!(received_by(&log, bank)
        .iter()
        .any(|m| matches!(m, TokenMsg::Transient { .. })));
    // No remote node hears anything.
    for c in layout.cmp_ids().filter(|&c| c != local_cmp) {
        for n in layout.l1s_on(c) {
            assert!(
                received_by(&log, n).is_empty(),
                "remote L1 {n:?} heard the L1"
            );
        }
    }
}

#[test]
fn l1_completes_store_when_all_tokens_arrive() {
    let cfg = cfg();
    let layout = cfg.layout();
    let p = ProcId(0);
    let (mut k, log, l1) = build(&cfg, Unit::L1D(p), Variant::Dst1);
    let block = Block(0x40);
    k.inject(
        layout.proc(p),
        l1,
        TokenMsg::Cpu(CpuReq::Access {
            kind: AccessKind::Store,
            block,
        }),
    );
    k.run(10_000, Time::from_ns(20));
    // The world answers with all T tokens + owner + data.
    k.inject(
        layout.mem(cfg.home_of(block)),
        l1,
        TokenMsg::Tokens {
            block,
            bundle: bundle(cfg.tokens_per_block, true, true, false),
            serial: 0,
            writeback: false,
        },
    );
    k.run(10_000, Time::from_ns(100));
    let done = received_by(&log, layout.proc(p));
    assert!(
        done.iter().any(|m| matches!(
            m,
            TokenMsg::CpuResp(CpuResp::Done {
                kind: AccessKind::Store,
                ..
            })
        )),
        "store must complete: {done:?}"
    );
    // The L1 now holds everything.
    let l1c = k.component_as::<TokenL1>(l1).unwrap();
    assert_eq!(
        l1c.token_census(),
        vec![(block, cfg.tokens_per_block, true)]
    );
}

#[test]
fn l1_answers_external_write_with_everything_and_fires_watch() {
    let cfg = cfg();
    let layout = cfg.layout();
    let p = ProcId(0);
    let (mut k, log, l1) = build(&cfg, Unit::L1D(p), Variant::Dst1);
    let block = Block(0x40);
    // Seed: complete a load so the L1 holds one token.
    k.inject(
        layout.proc(p),
        l1,
        TokenMsg::Cpu(CpuReq::Access {
            kind: AccessKind::Load,
            block,
        }),
    );
    k.run(10_000, Time::from_ns(20));
    k.inject(
        layout.mem(cfg.home_of(block)),
        l1,
        TokenMsg::Tokens {
            block,
            bundle: bundle(2, false, true, false),
            serial: 0,
            writeback: false,
        },
    );
    k.run(10_000, Time::from_ns(40));
    // Register a spin watch.
    k.inject(layout.proc(p), l1, TokenMsg::Cpu(CpuReq::Watch { block }));
    k.run(10_000, Time::from_ns(60));
    // A remote L1 sends an external write request.
    let remote = layout.l1d(ProcId(3));
    k.inject(
        remote,
        l1,
        TokenMsg::Transient {
            block,
            requester: remote,
            kind: ReqKind::Write,
            external: true,
            hint: None,
        },
    );
    k.run(10_000, Time::from_ns(200));
    // All tokens went to the requester...
    let granted = received_by(&log, remote);
    let total: u32 = granted
        .iter()
        .filter_map(|m| match m {
            TokenMsg::Tokens { bundle, .. } => Some(bundle.count),
            _ => None,
        })
        .sum();
    assert_eq!(total, 2, "both tokens surrendered");
    // ...and the spin watch fired.
    assert!(received_by(&log, layout.proc(p))
        .iter()
        .any(|m| matches!(m, TokenMsg::CpuResp(CpuResp::WatchFired { .. }))));
    assert!(k
        .component_as::<TokenL1>(l1)
        .unwrap()
        .token_census()
        .is_empty());
}

#[test]
fn l1_keeps_single_token_on_local_read_request() {
    let cfg = cfg();
    let layout = cfg.layout();
    let p = ProcId(0);
    let (mut k, log, l1) = build(&cfg, Unit::L1D(p), Variant::Dst1);
    let block = Block(0x40);
    // Seed with exactly one token.
    k.inject(
        layout.proc(p),
        l1,
        TokenMsg::Cpu(CpuReq::Access {
            kind: AccessKind::Load,
            block,
        }),
    );
    k.run(10_000, Time::from_ns(20));
    k.inject(
        layout.mem(cfg.home_of(block)),
        l1,
        TokenMsg::Tokens {
            block,
            bundle: bundle(1, false, true, false),
            serial: 0,
            writeback: false,
        },
    );
    k.run(10_000, Time::from_ns(40));
    // A local read request must be left unanswered (a single-token cache
    // keeps its read permission, §4).
    let peer = layout.l1d(ProcId(1));
    k.inject(
        peer,
        l1,
        TokenMsg::Transient {
            block,
            requester: peer,
            kind: ReqKind::Read,
            external: false,
            hint: None,
        },
    );
    k.run(10_000, Time::from_ns(200));
    assert!(
        received_by(&log, peer)
            .iter()
            .all(|m| !matches!(m, TokenMsg::Tokens { .. })),
        "single-token holder must stay silent on reads"
    );
    assert_eq!(
        k.component_as::<TokenL1>(l1).unwrap().token_census(),
        vec![(block, 1, false)]
    );
}

#[test]
fn l1_response_delay_defers_stealing_requests() {
    let cfg = cfg();
    let layout = cfg.layout();
    let p = ProcId(0);
    let (mut k, log, l1) = build(&cfg, Unit::L1D(p), Variant::Dst1);
    let block = Block(0x40);
    // Acquire write permission (completes at some time t).
    k.inject(
        layout.proc(p),
        l1,
        TokenMsg::Cpu(CpuReq::Access {
            kind: AccessKind::Store,
            block,
        }),
    );
    k.run(10_000, Time::from_ns(20));
    k.inject(
        layout.mem(cfg.home_of(block)),
        l1,
        TokenMsg::Tokens {
            block,
            bundle: bundle(cfg.tokens_per_block, true, true, false),
            serial: 0,
            writeback: false,
        },
    );
    k.run(10_000, Time::from_ns(30));
    // Completion time comes from the Done message in the log (the kernel
    // clock may already sit past it).
    let completed_at = log
        .borrow()
        .iter()
        .find(|&&(me, _, _, m)| {
            me == layout.proc(p) && matches!(m, TokenMsg::CpuResp(CpuResp::Done { .. }))
        })
        .map(|&(_, _, t, _)| t)
        .expect("store must have completed");
    // An immediate external write request must be deferred by the
    // response-delay window (§3.2).
    let remote = layout.l1d(ProcId(3));
    k.inject(
        remote,
        l1,
        TokenMsg::Transient {
            block,
            requester: remote,
            kind: ReqKind::Write,
            external: true,
            hint: None,
        },
    );
    k.run(100_000, Time::from_ns(500));
    let reply_time = log
        .borrow()
        .iter()
        .find(|&&(me, _, _, m)| me == remote && matches!(m, TokenMsg::Tokens { .. }))
        .map(|&(_, _, t, _)| t)
        .expect("the deferred request is eventually honored");
    assert!(
        reply_time.since(completed_at) >= cfg.response_delay,
        "tokens left {} after completion; the window is {}",
        reply_time.since(completed_at),
        cfg.response_delay
    );
}

#[test]
fn l1_persistent_activation_forwards_present_and_future_tokens() {
    let cfg = cfg();
    let layout = cfg.layout();
    let p = ProcId(0);
    let (mut k, log, l1) = build(&cfg, Unit::L1D(p), Variant::Dst1);
    let block = Block(0x40);
    // Seed the L1 with three tokens.
    k.inject(
        layout.proc(p),
        l1,
        TokenMsg::Cpu(CpuReq::Access {
            kind: AccessKind::Load,
            block,
        }),
    );
    k.run(10_000, Time::from_ns(20));
    k.inject(
        layout.mem(cfg.home_of(block)),
        l1,
        TokenMsg::Tokens {
            block,
            bundle: bundle(3, false, true, false),
            serial: 0,
            writeback: false,
        },
    );
    k.run(10_000, Time::from_ns(40));
    // A foreign persistent write activates.
    let requester = layout.l1d(ProcId(2));
    k.inject(
        requester,
        l1,
        TokenMsg::PersistentActivate {
            block,
            proc: ProcId(2),
            requester,
            kind: ReqKind::Write,
            epoch: 1,
        },
    );
    k.run(10_000, Time::from_ns(200));
    let granted: u32 = received_by(&log, requester)
        .iter()
        .filter_map(|m| match m {
            TokenMsg::Tokens { bundle, .. } => Some(bundle.count),
            _ => None,
        })
        .sum();
    assert_eq!(granted, 3, "present tokens forwarded");
    // Future tokens are captured too.
    k.inject(
        layout.mem(cfg.home_of(block)),
        l1,
        TokenMsg::Tokens {
            block,
            bundle: bundle(2, false, true, false),
            serial: 0,
            writeback: false,
        },
    );
    k.run(10_000, Time::from_ns(400));
    let granted: u32 = received_by(&log, requester)
        .iter()
        .filter_map(|m| match m {
            TokenMsg::Tokens { bundle, .. } => Some(bundle.count),
            _ => None,
        })
        .sum();
    assert_eq!(granted, 5, "future tokens forwarded as well");
}

// ---- L2 -------------------------------------------------------------------------

#[test]
fn l2_rebroadcasts_unsatisfiable_local_requests_off_chip() {
    let cfg = cfg();
    let layout = cfg.layout();
    let (mut k, log, l2) = build(
        &cfg,
        Unit::L2Bank(tokencmp_proto::CmpId(0), 0),
        Variant::Dst1,
    );
    let block = Block(0x42); // bank 0; homed on chip 1 in small_test
    let requester = layout.l1d(ProcId(0));
    k.inject(
        requester,
        l2,
        TokenMsg::Transient {
            block,
            requester,
            kind: ReqKind::Write,
            external: false,
            hint: None,
        },
    );
    k.run(10_000, Time::from_ns(100));
    // The same bank on the other chip hears an external request.
    let remote_bank = layout.l2(tokencmp_proto::CmpId(1), 0);
    assert!(received_by(&log, remote_bank)
        .iter()
        .any(|m| matches!(m, TokenMsg::Transient { external: true, .. })));
    // Memory is reached through its home chip's L2, not directly (§8
    // message accounting) — here home != our chip, so no memory message.
    assert_eq!(cfg.home_of(block).0, 1, "test block must be remote-homed");
    assert!(received_by(&log, layout.mem(cfg.home_of(block))).is_empty());
}

#[test]
fn l2_fans_external_requests_out_to_local_l1s() {
    let cfg = cfg();
    let layout = cfg.layout();
    let c = tokencmp_proto::CmpId(0);
    let (mut k, log, l2) = build(&cfg, Unit::L2Bank(c, 0), Variant::Dst1);
    let block = Block(0x40);
    let remote = layout.l1d(ProcId(3));
    k.inject(
        remote,
        l2,
        TokenMsg::Transient {
            block,
            requester: remote,
            kind: ReqKind::Write,
            external: true,
            hint: None,
        },
    );
    k.run(10_000, Time::from_ns(100));
    for l1 in layout.l1s_on(c) {
        assert!(
            received_by(&log, l1)
                .iter()
                .any(|m| matches!(m, TokenMsg::Transient { external: true, .. })),
            "external request must reach local L1 {l1:?}"
        );
    }
}

#[test]
fn l2_grants_exclusive_on_read_when_holding_everything() {
    let cfg = cfg();
    let layout = cfg.layout();
    let c = tokencmp_proto::CmpId(0);
    let (mut k, log, l2) = build(&cfg, Unit::L2Bank(c, 0), Variant::Dst1);
    let block = Block(0x40);
    // Seed the bank with all tokens (an L1 writeback of an E line).
    k.inject(
        layout.l1d(ProcId(0)),
        l2,
        TokenMsg::Tokens {
            block,
            bundle: bundle(cfg.tokens_per_block, true, true, false),
            serial: 0,
            writeback: true,
        },
    );
    k.run(10_000, Time::from_ns(50));
    // A local read gets everything (E-grant; a private store then hits).
    let requester = layout.l1d(ProcId(1));
    k.inject(
        requester,
        l2,
        TokenMsg::Transient {
            block,
            requester,
            kind: ReqKind::Read,
            external: false,
            hint: None,
        },
    );
    k.run(10_000, Time::from_ns(100));
    let got: Vec<_> = received_by(&log, requester);
    assert!(
        got.iter().any(|m| matches!(
            m,
            TokenMsg::Tokens { bundle, .. } if bundle.count == cfg.tokens_per_block && bundle.owner
        )),
        "storage read grant must be exclusive: {got:?}"
    );
}

// ---- memory ---------------------------------------------------------------------

#[test]
fn memory_grants_all_tokens_with_dram_latency() {
    let cfg = cfg();
    let layout = cfg.layout();
    let block = Block(0x44); // homed on chip 1 in small_test (bit 2 set -> home 1? computed below)
    let home = cfg.home_of(block);
    let (mut k, log, mem) = build(&cfg, Unit::Mem(home), Variant::Dst1);
    let requester = layout.l1d(ProcId(0));
    let t0 = k.now();
    k.inject(
        requester,
        mem,
        TokenMsg::Transient {
            block,
            requester,
            kind: ReqKind::Write,
            external: true,
            hint: None,
        },
    );
    k.run(10_000, Time::from_ns(500));
    let (at, msg) = log
        .borrow()
        .iter()
        .find(|&&(me, _, _, m)| me == requester && matches!(m, TokenMsg::Tokens { .. }))
        .map(|&(_, _, t, m)| (t, m))
        .expect("memory must respond");
    match msg {
        TokenMsg::Tokens { bundle, .. } => {
            assert_eq!(bundle.count, cfg.tokens_per_block);
            assert!(bundle.owner && bundle.data);
        }
        _ => unreachable!(),
    }
    // Data responses pay controller + DRAM latency.
    assert!(at.since(t0) >= cfg.memctl_latency + cfg.dram_latency);
}

#[test]
fn memory_ignores_requests_for_blocks_homed_elsewhere() {
    let cfg = cfg();
    let layout = cfg.layout();
    let block = Block(0x44);
    let home = cfg.home_of(block);
    let other = tokencmp_proto::CmpId(1 - home.0);
    let (mut k, log, mem) = build(&cfg, Unit::Mem(other), Variant::Dst1);
    let requester = layout.l1d(ProcId(0));
    k.inject(
        requester,
        mem,
        TokenMsg::Transient {
            block,
            requester,
            kind: ReqKind::Write,
            external: true,
            hint: None,
        },
    );
    k.run(10_000, Time::from_ns(500));
    assert!(
        received_by(&log, requester).is_empty(),
        "a non-home controller holds no tokens and must stay silent"
    );
}

#[test]
fn memory_arbiter_serializes_and_hands_off() {
    let cfg = cfg();
    let layout = cfg.layout();
    let block = Block(0x44);
    let home = cfg.home_of(block);
    let (mut k, log, mem) = build(&cfg, Unit::Mem(home), Variant::Arb0);
    let r1 = layout.l1d(ProcId(0));
    let r2 = layout.l1d(ProcId(1));
    k.inject(
        r1,
        mem,
        TokenMsg::ArbRequest {
            block,
            proc: ProcId(0),
            requester: r1,
            kind: ReqKind::Write,
            epoch: 1,
        },
    );
    k.inject(
        r2,
        mem,
        TokenMsg::ArbRequest {
            block,
            proc: ProcId(1),
            requester: r2,
            kind: ReqKind::Write,
            epoch: 1,
        },
    );
    k.run(10_000, Time::from_ns(100));
    // Only the first request is activated (broadcast to all nodes).
    let activations: Vec<_> = log
        .borrow()
        .iter()
        .filter_map(|&(_, _, _, m)| match m {
            TokenMsg::ArbActivate { proc, .. } => Some(proc),
            _ => None,
        })
        .collect();
    assert!(activations.iter().all(|&p| p == ProcId(0)));
    assert!(!activations.is_empty());
    // Completion deactivates and activates the next.
    k.inject(
        r1,
        mem,
        TokenMsg::ArbDeactivateRequest {
            block,
            proc: ProcId(0),
            epoch: 1,
        },
    );
    k.run(10_000, Time::from_ns(300));
    let second: Vec<_> = log
        .borrow()
        .iter()
        .filter_map(|&(_, _, _, m)| match m {
            TokenMsg::ArbActivate { proc, .. } => Some(proc),
            _ => None,
        })
        .collect();
    assert!(second.contains(&ProcId(1)), "handoff to the queued request");
}
