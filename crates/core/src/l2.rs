//! The TokenCMP shared-L2 bank controller.
//!
//! An L2 bank is just another token holder in the flat substrate, but the
//! hierarchical performance policy (§4) gives it two extra jobs:
//!
//! * On a *local* transient request it cannot satisfy, it re-broadcasts
//!   the request to the same bank on every other chip plus the block's
//!   home memory controller.
//! * On an *external* transient request, it responds per the external
//!   rules and fans the request out to its local L1 caches — optionally
//!   filtered through an approximate directory of L1 sharers
//!   (`TokenCMP-dst1-filt`). Filtering can be approximate because safety
//!   and starvation-freedom come from the substrate; persistent requests
//!   are never filtered (they are broadcast directly to every node).

use std::any::Any;
use std::collections::HashMap;
use std::rc::Rc;

use tokencmp_cache::{InsertOutcome, SetAssoc};
use tokencmp_proto::{Block, CmpId, Layout, SystemConfig, Unit};
use tokencmp_sim::{Component, Ctx, Dur, NodeId};
use tokencmp_trace::{TraceEvent, TraceHandle};

use crate::common::{
    persistent_grant, storage_grant, transient_grant, GrantRules, PersistentState, TokenLine,
};
use crate::msg::{ReqKind, TokenBundle, TokenMsg};
use crate::policy::Variant;

/// Counters exposed by an L2 bank after a run.
#[derive(Clone, Debug, Default)]
pub struct L2Stats {
    /// Local transient requests received.
    pub local_requests: u64,
    /// Local requests satisfied entirely from this bank.
    pub local_satisfied: u64,
    /// Requests re-broadcast to other chips.
    pub external_broadcasts: u64,
    /// External transient requests received from other chips.
    pub external_requests: u64,
    /// L1 fan-out messages suppressed by the sharer filter.
    pub filtered: u64,
    /// L1 fan-out messages actually forwarded.
    pub forwarded_to_l1: u64,
}

/// A TokenCMP shared-L2 bank.
pub struct TokenL2 {
    cfg: Rc<SystemConfig>,
    layout: Layout,
    me: NodeId,
    cmp: CmpId,
    bank: u16,
    rules: GrantRules,
    lines: SetAssoc<TokenLine>,
    persistent: PersistentState,
    variant: Variant,
    /// Approximate directory of local L1 sharers (dst1-filt only):
    /// bit `i` set means local L1 `i` (in [`Layout::l1s_on`] order) may
    /// hold tokens.
    filter: Option<HashMap<Block, u64>>,
    /// Per-block recreation serials announced by the home memories;
    /// absent ⇒ serial 0 (the map stays empty on lossless runs).
    serials: HashMap<Block, u32>,
    trace: Option<TraceHandle>,
    /// Run statistics.
    pub stats: L2Stats,
}

impl TokenL2 {
    /// Creates an L2 bank controller.
    pub fn new(
        cfg: Rc<SystemConfig>,
        me: NodeId,
        cmp: CmpId,
        bank: u16,
        variant: Variant,
    ) -> TokenL2 {
        let layout = cfg.layout();
        let rules = GrantRules {
            total_tokens: cfg.tokens_per_block,
            caches_per_cmp: 2 * cfg.procs_per_cmp as u32 + cfg.banks_per_cmp as u32,
            migratory: cfg.migratory_sharing,
        };
        // Bank-select bits are below the set-index bits.
        let shift = (cfg.banks_per_cmp as u64)
            .next_power_of_two()
            .trailing_zeros();
        TokenL2 {
            lines: SetAssoc::new(cfg.l2_sets, cfg.l2_ways, shift),
            persistent: PersistentState::new(layout.procs() as usize),
            variant,
            filter: variant.uses_filter().then(|| {
                assert!(
                    2 * cfg.procs_per_cmp as u32 <= 64,
                    "sharer-filter mask holds at most 64 local L1s"
                );
                HashMap::new()
            }),
            serials: HashMap::new(),
            layout,
            me,
            cmp,
            bank,
            rules,
            cfg,
            trace: None,
            stats: L2Stats::default(),
        }
    }

    /// Installs the run's trace sink (no sink ⇒ zero tracing work).
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = Some(trace);
    }

    /// The recreation serial this bank believes is current for `block`.
    fn serial_of(&self, block: Block) -> u32 {
        self.serials.get(&block).copied().unwrap_or(0)
    }

    /// Tokens currently held, per block (for conservation audits).
    pub fn token_census(&self) -> Vec<(Block, u32, bool)> {
        self.token_lines().collect()
    }

    /// Zero-allocation variant of [`token_census`](Self::token_census)
    /// for the telemetry sampler, which visits every cache every sample.
    pub fn token_lines(&self) -> impl Iterator<Item = (Block, u32, bool)> + '_ {
        self.lines.iter().map(|(b, l)| (b, l.tokens, l.owner))
    }

    fn local_l1_index(&self, node: NodeId) -> Option<usize> {
        self.layout.l1s_on(self.cmp).iter().position(|&n| n == node)
    }

    fn mark_sharer(&mut self, block: Block, l1: NodeId) {
        let Some(idx) = self.local_l1_index(l1) else {
            return;
        };
        if let Some(f) = &mut self.filter {
            *f.entry(block).or_insert(0) |= 1u64 << idx;
        }
    }

    fn clear_sharer(&mut self, block: Block, l1: NodeId) {
        let Some(idx) = self.local_l1_index(l1) else {
            return;
        };
        if let Some(f) = &mut self.filter {
            if let Some(mask) = f.get_mut(&block) {
                *mask &= !(1u64 << idx);
                if *mask == 0 {
                    f.remove(&block);
                }
            }
        }
    }

    fn send_tokens(
        &mut self,
        ctx: &mut Ctx<'_, TokenMsg>,
        delay: Dur,
        dst: NodeId,
        block: Block,
        bundle: TokenBundle,
        writeback: bool,
    ) {
        debug_assert!(bundle.count >= 1);
        if let Some(t) = &self.trace {
            t.borrow_mut().record(
                ctx.now,
                TraceEvent::TokensMoved {
                    block,
                    from: self.me,
                    to: dst,
                    count: bundle.count,
                    owner: bundle.owner,
                },
            );
        }
        let serial = self.serial_of(block);
        ctx.send_after(
            delay,
            dst,
            TokenMsg::Tokens {
                block,
                bundle,
                serial,
                writeback,
            },
        );
    }

    /// Evictions spill to the block's home memory controller.
    fn spill_to_home(&mut self, ctx: &mut Ctx<'_, TokenMsg>, block: Block, bundle: TokenBundle) {
        let home = self.layout.mem(self.cfg.home_of(block));
        self.send_tokens(ctx, Dur::ZERO, home, block, bundle, true);
    }

    fn drop_if_empty(&mut self, block: Block) {
        if self.lines.peek(block).is_some_and(TokenLine::is_empty) {
            self.lines.remove(block);
        }
    }

    fn try_forward(&mut self, block: Block, ctx: &mut Ctx<'_, TokenMsg>) {
        let Some(req) = self.persistent.active_for(block) else {
            return;
        };
        debug_assert!(
            req.requester != self.me,
            "L2 never issues persistent requests"
        );
        let Some(line) = self.lines.get_mut(block) else {
            return;
        };
        if let Some(bundle) = persistent_grant(line, req.kind, true) {
            self.send_tokens(ctx, Dur::ZERO, req.requester, block, bundle, false);
            self.drop_if_empty(block);
        }
    }

    fn fold_tokens(
        &mut self,
        src: NodeId,
        block: Block,
        bundle: TokenBundle,
        serial: u32,
        ctx: &mut Ctx<'_, TokenMsg>,
    ) {
        let current = self.serial_of(block);
        if serial < current {
            // Stale tokens from before a recreation: destroy them on
            // receipt (the authority already reminted the full set). A
            // stale dirty owner — never dropped by the lossy tier —
            // salvages its data back to the home memory first.
            if let Some(t) = &self.trace {
                t.borrow_mut().record(
                    ctx.now,
                    TraceEvent::StaleDiscard {
                        node: self.me,
                        block,
                        count: bundle.count,
                        owner: bundle.owner,
                        serial,
                    },
                );
            }
            if bundle.owner && bundle.dirty {
                let home = self.layout.mem(self.cfg.home_of(block));
                ctx.send(home, TokenMsg::StaleDataReturn { block, serial });
            }
            return;
        }
        if serial > current {
            self.serials.insert(block, serial);
        }
        if let Some(t) = &self.trace {
            t.borrow_mut().record(
                ctx.now,
                TraceEvent::TokensDelivered {
                    block,
                    node: self.me,
                    count: bundle.count,
                    owner: bundle.owner,
                },
            );
        }
        // A writeback from a local L1 clears its (approximate) sharer bit.
        if matches!(self.layout.unit(src), Unit::L1D(_) | Unit::L1I(_)) {
            self.clear_sharer(block, src);
        }
        if let Some(line) = self.lines.get_mut(block) {
            line.fold(bundle);
        } else {
            match self.lines.insert(block, TokenLine::from_bundle(bundle)) {
                InsertOutcome::Evicted(vblock, mut vline) => {
                    let vb = vline.take_all(true);
                    self.spill_to_home(ctx, vblock, vb);
                }
                InsertOutcome::Inserted | InsertOutcome::Replaced(_) => {}
            }
        }
        self.try_forward(block, ctx);
    }

    /// Handles a recreation invalidate from `block`'s home memory: adopt
    /// the new serial, destroy tokens held under the old one (salvaging
    /// a dirty owner's data over reliable control traffic), and ack.
    fn handle_recreate_inval(
        &mut self,
        src: NodeId,
        block: Block,
        serial: u32,
        ctx: &mut Ctx<'_, TokenMsg>,
    ) {
        if serial <= self.serial_of(block) {
            return;
        }
        self.serials.insert(block, serial);
        let (mut discarded, mut owner, mut had_dirty_owner) = (0, false, false);
        if let Some(line) = self.lines.get_mut(block) {
            let b = line.take_all(true);
            discarded = b.count;
            owner = b.owner;
            had_dirty_owner = b.owner && b.dirty;
        }
        if let Some(t) = &self.trace {
            t.borrow_mut().record(
                ctx.now,
                TraceEvent::EpochInval {
                    node: self.me,
                    block,
                    serial,
                    discarded,
                    owner,
                },
            );
        }
        if had_dirty_owner {
            ctx.send(src, TokenMsg::StaleDataReturn { block, serial });
        }
        ctx.send(
            src,
            TokenMsg::RecreateAck {
                block,
                serial,
                had_dirty_owner,
            },
        );
        self.drop_if_empty(block);
    }

    /// A transient request from a *local* L1: answer what we can; if the
    /// request may still be unsatisfied, broadcast it off chip.
    fn handle_local_transient(
        &mut self,
        block: Block,
        requester: NodeId,
        kind: ReqKind,
        hint: Option<CmpId>,
        ctx: &mut Ctx<'_, TokenMsg>,
    ) {
        self.stats.local_requests += 1;
        self.mark_sharer(block, requester);
        let mut fully_satisfied = false;
        // Tokens are reserved while a persistent request is active.
        let reserved = self.persistent.active_for(block).is_some();
        if let Some(line) = self.lines.get_mut(block).filter(|_| !reserved) {
            let had_all = line.tokens == self.rules.total_tokens && line.owner;
            let grant = storage_grant(line, kind, &self.rules, true);
            match kind {
                ReqKind::Read => fully_satisfied = grant.is_some(),
                ReqKind::Write => fully_satisfied = had_all,
            }
            if let Some(bundle) = grant {
                self.send_tokens(ctx, self.cfg.l2_latency, requester, block, bundle, false);
                self.drop_if_empty(block);
            }
        }
        if fully_satisfied {
            self.stats.local_satisfied += 1;
            return;
        }
        if self.variant.is_flat() {
            // TokenB requests already went everywhere; never re-broadcast.
            return;
        }
        // L2 miss (or insufficient tokens): broadcast to the other chips
        // (§4). Memory is reached through its home chip — our own memory
        // link if the block is homed here, else the home chip's L2
        // forwards over its memory link — so a miss costs exactly three
        // inter-CMP request messages, as in the paper's §8 accounting.
        self.stats.external_broadcasts += 1;
        let req = TokenMsg::Transient {
            block,
            requester,
            kind,
            external: true,
            hint: None,
        };
        // Destination-set prediction (dst1-dsp): a predicted owner chip
        // narrows the first attempt to {prediction, home}; the requester's
        // retry broadcasts fully, and safety never depends on who a
        // transient request reaches.
        let home = self.cfg.home_of(block);
        let targets: Vec<CmpId> = match hint {
            Some(h) => {
                let mut t = vec![];
                if h != self.cmp {
                    t.push(h);
                }
                if home != self.cmp && home != h {
                    t.push(home);
                }
                t
            }
            None => self.layout.cmp_ids().filter(|&c| c != self.cmp).collect(),
        };
        for c in targets {
            ctx.send_after(self.cfg.l2_latency, self.layout.l2(c, self.bank), req);
        }
        if home == self.cmp {
            ctx.send_after(self.cfg.l2_latency, self.layout.mem(self.cmp), req);
        }
    }

    /// A transient request arriving from another chip: answer per the
    /// external rules and fan out to (possibly filtered) local L1s.
    fn handle_external_transient(
        &mut self,
        block: Block,
        requester: NodeId,
        kind: ReqKind,
        ctx: &mut Ctx<'_, TokenMsg>,
    ) {
        self.stats.external_requests += 1;
        let reserved = self.persistent.active_for(block).is_some();
        if let Some(line) = self.lines.get_mut(block).filter(|_| !reserved) {
            if let Some(bundle) = transient_grant(line, kind, true, &self.rules) {
                self.send_tokens(ctx, self.cfg.l2_latency, requester, block, bundle, false);
                self.drop_if_empty(block);
            }
        }
        // The home chip relays external requests to its memory controller
        // over the dedicated memory link.
        if self.cfg.home_of(block) == self.cmp {
            let req = TokenMsg::Transient {
                block,
                requester,
                kind,
                external: true,
                hint: None,
            };
            ctx.send_after(self.cfg.l2_latency, self.layout.mem(self.cmp), req);
        }
        let req = TokenMsg::Transient {
            block,
            requester,
            kind,
            external: true,
            hint: None,
        };
        let mask = self
            .filter
            .as_ref()
            .map(|f| f.get(&block).copied().unwrap_or(0));
        for (idx, l1) in self.layout.l1s_on(self.cmp).into_iter().enumerate() {
            let wanted = mask.is_none_or(|m| m & (1u64 << idx) != 0);
            if wanted {
                self.stats.forwarded_to_l1 += 1;
                ctx.send_after(self.cfg.l2_latency, l1, req);
            } else {
                self.stats.filtered += 1;
            }
        }
    }
}

impl Component<TokenMsg> for TokenL2 {
    fn on_msg(&mut self, src: NodeId, msg: TokenMsg, ctx: &mut Ctx<'_, TokenMsg>) {
        match msg {
            TokenMsg::Transient {
                block,
                requester,
                kind,
                external,
                hint,
            } => {
                if external {
                    self.handle_external_transient(block, requester, kind, ctx);
                } else {
                    self.handle_local_transient(block, requester, kind, hint, ctx);
                }
            }
            TokenMsg::Tokens {
                block,
                bundle,
                serial,
                ..
            } => self.fold_tokens(src, block, bundle, serial, ctx),
            TokenMsg::RecreateInval { block, serial } => {
                self.handle_recreate_inval(src, block, serial, ctx)
            }
            TokenMsg::PersistentActivate { .. }
            | TokenMsg::PersistentDeactivate { .. }
            | TokenMsg::ArbActivate { .. }
            | TokenMsg::ArbDeactivate { .. } => {
                if let Some(block) = self.persistent.apply(&msg) {
                    if let Some(t) = &self.trace {
                        if let Some(ev) = crate::common::table_apply_event(&msg, self.me) {
                            t.borrow_mut().record(ctx.now, ev);
                        }
                    }
                    self.try_forward(block, ctx);
                }
            }
            TokenMsg::Cpu(_) | TokenMsg::CpuResp(_) => {
                unreachable!("L2 banks have no processor port")
            }
            TokenMsg::ArbRequest { .. } | TokenMsg::ArbDeactivateRequest { .. } => {
                unreachable!("arbiter messages go to memory controllers")
            }
            TokenMsg::RecreateRequest { .. }
            | TokenMsg::RecreateAck { .. }
            | TokenMsg::StaleDataReturn { .. } => {
                unreachable!("recreation authority traffic goes to memory controllers")
            }
        }
    }

    fn on_wake(&mut self, _tag: u64, _ctx: &mut Ctx<'_, TokenMsg>) {
        unreachable!("L2 banks schedule no wakeups")
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn kind(&self) -> &'static str {
        "l2"
    }
}

impl std::fmt::Debug for TokenL2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TokenL2")
            .field("me", &self.me)
            .field("cmp", &self.cmp)
            .field("bank", &self.bank)
            .field("lines", &self.lines.len())
            .finish()
    }
}
