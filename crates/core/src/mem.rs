//! The TokenCMP memory controller.
//!
//! Memory is the default token holder: a block's home controller starts
//! with all `T` tokens. Memory's data is valid exactly when it holds the
//! owner token (dirty writebacks travel with the owner token and update
//! it). The controller also hosts the arbiter for the original
//! arbiter-based persistent request scheme (§3.2).

use std::any::Any;
use std::collections::HashMap;
use std::rc::Rc;

use tokencmp_proto::{Block, CmpId, Layout, SystemConfig};
use tokencmp_sim::{Component, Ctx, NodeId};
use tokencmp_trace::{TraceEvent, TraceHandle};

use crate::common::{persistent_grant, storage_grant, GrantRules, PersistentState, TokenLine};
use crate::msg::{ReqKind, TokenBundle, TokenMsg};
use crate::persistent::{ActiveReq, Arbiter};

/// Counters exposed by a memory controller after a run.
#[derive(Clone, Debug, Default)]
pub struct MemStats {
    /// Requests answered with data (DRAM reads).
    pub data_responses: u64,
    /// Requests answered with tokens only.
    pub token_responses: u64,
    /// Writebacks absorbed.
    pub writebacks: u64,
    /// Arbiter activations broadcast.
    pub arb_activations: u64,
}

/// Memory-side token state for one block. Unlike a cache line, memory may
/// legitimately hold zero tokens.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemLine {
    /// Tokens held (possibly zero).
    pub tokens: u32,
    /// True if the owner token is held (memory data is then valid).
    pub owner: bool,
}

/// A TokenCMP memory controller (one per chip; home for an address slice).
pub struct TokenMem {
    cfg: Rc<SystemConfig>,
    layout: Layout,
    me: NodeId,
    cmp: CmpId,
    rules: GrantRules,
    /// Explicit token state; absent blocks implicitly hold all `T` tokens.
    blocks: HashMap<Block, MemLine>,
    persistent: PersistentState,
    arbiter: Arbiter,
    trace: Option<TraceHandle>,
    /// Run statistics.
    pub stats: MemStats,
}

impl TokenMem {
    /// Creates the memory controller for chip `cmp`.
    pub fn new(cfg: Rc<SystemConfig>, me: NodeId, cmp: CmpId) -> TokenMem {
        let layout = cfg.layout();
        let rules = GrantRules {
            total_tokens: cfg.tokens_per_block,
            caches_per_cmp: 2 * cfg.procs_per_cmp as u32 + cfg.banks_per_cmp as u32,
            migratory: cfg.migratory_sharing,
        };
        TokenMem {
            persistent: PersistentState::new(layout.procs() as usize),
            blocks: HashMap::new(),
            arbiter: Arbiter::new(),
            layout,
            me,
            cmp,
            rules,
            cfg,
            trace: None,
            stats: MemStats::default(),
        }
    }

    /// Installs the run's trace sink (no sink ⇒ zero tracing work).
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = Some(trace);
    }

    /// Token state for `block`. Untouched blocks implicitly hold all `T`
    /// tokens at their *home* controller and none anywhere else.
    pub fn line(&self, block: Block) -> MemLine {
        self.blocks.get(&block).copied().unwrap_or_else(|| {
            if self.cfg.home_of(block) == self.cmp {
                MemLine {
                    tokens: self.cfg.tokens_per_block,
                    owner: true,
                }
            } else {
                MemLine {
                    tokens: 0,
                    owner: false,
                }
            }
        })
    }

    /// Blocks with explicit (non-default) state, for conservation audits.
    pub fn explicit_census(&self) -> Vec<(Block, u32, bool)> {
        self.blocks
            .iter()
            .map(|(&b, l)| (b, l.tokens, l.owner))
            .collect()
    }

    fn store(&mut self, block: Block, line: MemLine) {
        if line.tokens == self.cfg.tokens_per_block && line.owner {
            // Back to the default state: no need for an explicit entry,
            // but keep it so audits can see the block was touched.
            self.blocks.insert(block, line);
        } else {
            self.blocks.insert(block, line);
        }
    }

    fn respond(
        &mut self,
        ctx: &mut Ctx<'_, TokenMsg>,
        dst: NodeId,
        block: Block,
        bundle: TokenBundle,
    ) {
        let delay = if bundle.data {
            self.stats.data_responses += 1;
            self.cfg.memctl_latency + self.cfg.dram_latency
        } else {
            self.stats.token_responses += 1;
            self.cfg.memctl_latency
        };
        if let Some(t) = &self.trace {
            t.borrow_mut().record(
                ctx.now,
                TraceEvent::TokensMoved {
                    block,
                    from: self.me,
                    to: dst,
                    count: bundle.count,
                    owner: bundle.owner,
                },
            );
        }
        ctx.send_after(
            delay,
            dst,
            TokenMsg::Tokens {
                block,
                bundle,
                writeback: false,
            },
        );
    }

    fn grant_with<F>(&mut self, block: Block, f: F) -> Option<TokenBundle>
    where
        F: FnOnce(&mut TokenLine, bool) -> Option<TokenBundle>,
    {
        let ml = self.line(block);
        if ml.tokens == 0 {
            return None;
        }
        let mut line = TokenLine {
            tokens: ml.tokens,
            owner: ml.owner,
            dirty: false,
            written: false,
        };
        let grant = f(&mut line, ml.owner);
        if grant.is_some() {
            self.store(
                block,
                MemLine {
                    tokens: line.tokens,
                    owner: line.owner,
                },
            );
        }
        grant
    }

    fn try_forward(&mut self, block: Block, ctx: &mut Ctx<'_, TokenMsg>) {
        let Some(req) = self.persistent.active_for(block) else {
            return;
        };
        if let Some(bundle) =
            self.grant_with(block, |line, valid| persistent_grant(line, req.kind, valid))
        {
            self.respond(ctx, req.requester, block, bundle);
        }
    }

    fn handle_transient(
        &mut self,
        block: Block,
        requester: NodeId,
        kind: ReqKind,
        ctx: &mut Ctx<'_, TokenMsg>,
    ) {
        // Tokens are reserved while a persistent request is active.
        if self.persistent.active_for(block).is_some() {
            return;
        }
        let rules = self.rules;
        if let Some(bundle) = self.grant_with(block, |line, valid| {
            storage_grant(line, kind, &rules, valid)
        }) {
            self.respond(ctx, requester, block, bundle);
        }
    }

    fn fold_tokens(&mut self, block: Block, bundle: TokenBundle, ctx: &mut Ctx<'_, TokenMsg>) {
        if let Some(t) = &self.trace {
            t.borrow_mut().record(
                ctx.now,
                TraceEvent::TokensDelivered {
                    block,
                    node: self.me,
                    count: bundle.count,
                    owner: bundle.owner,
                },
            );
        }
        self.stats.writebacks += 1;
        let mut ml = self.line(block);
        ml.tokens += bundle.count;
        if bundle.owner {
            ml.owner = true; // dirty data updates memory on arrival
        }
        debug_assert!(ml.tokens <= self.cfg.tokens_per_block, "token inflation");
        self.store(block, ml);
        self.try_forward(block, ctx);
    }

    fn broadcast_arb(&mut self, msg: TokenMsg, ctx: &mut Ctx<'_, TokenMsg>) {
        for node in self.layout.all_coherence_nodes() {
            if node != self.me {
                ctx.send_after(self.cfg.memctl_latency, node, msg);
            }
        }
        // Apply to our own table as well.
        if let Some(block) = self.persistent.apply(&msg) {
            if let Some(t) = &self.trace {
                if let Some(ev) = crate::common::table_apply_event(&msg, self.me) {
                    t.borrow_mut().record(ctx.now, ev);
                }
            }
            self.try_forward(block, ctx);
        }
    }

    fn handle_arb_request(
        &mut self,
        block: Block,
        req: ActiveReq,
        epoch: u64,
        ctx: &mut Ctx<'_, TokenMsg>,
    ) {
        debug_assert_eq!(
            self.cfg.home_of(block),
            self.cmp,
            "arbiter request routed to the wrong home"
        );
        if let Some(t) = &self.trace {
            t.borrow_mut().record(
                ctx.now,
                TraceEvent::ArbRequest {
                    block,
                    proc: req.proc,
                },
            );
        }
        if let Some((b, r, e)) = self.arbiter.enqueue(block, req, epoch) {
            self.stats.arb_activations += 1;
            self.broadcast_arb(
                TokenMsg::ArbActivate {
                    block: b,
                    proc: r.proc,
                    requester: r.requester,
                    kind: r.kind,
                    epoch: e,
                },
                ctx,
            );
        }
    }

    fn handle_arb_deactivate_request(
        &mut self,
        block: Block,
        proc: tokencmp_proto::ProcId,
        epoch: u64,
        ctx: &mut Ctx<'_, TokenMsg>,
    ) {
        // Broadcast the deactivation of the completed request, then
        // activate the next one (the indirection the paper's Figure 2
        // shows hurting under contention). A request satisfied before
        // activation is withdrawn from the queue instead.
        if let Some(t) = &self.trace {
            t.borrow_mut()
                .record(ctx.now, TraceEvent::ArbDone { block, proc });
        }
        let next = self.arbiter.complete(block, proc, epoch);
        self.broadcast_arb(TokenMsg::ArbDeactivate { block, proc, epoch }, ctx);
        if let Some((b, r, e)) = next {
            self.stats.arb_activations += 1;
            self.broadcast_arb(
                TokenMsg::ArbActivate {
                    block: b,
                    proc: r.proc,
                    requester: r.requester,
                    kind: r.kind,
                    epoch: e,
                },
                ctx,
            );
        }
    }
}

impl Component<TokenMsg> for TokenMem {
    fn on_msg(&mut self, _src: NodeId, msg: TokenMsg, ctx: &mut Ctx<'_, TokenMsg>) {
        match msg {
            TokenMsg::Transient {
                block,
                requester,
                kind,
                ..
            } => self.handle_transient(block, requester, kind, ctx),
            TokenMsg::Tokens { block, bundle, .. } => self.fold_tokens(block, bundle, ctx),
            TokenMsg::ArbRequest {
                block,
                proc,
                requester,
                kind,
                epoch,
            } => self.handle_arb_request(
                block,
                ActiveReq {
                    proc,
                    requester,
                    kind,
                },
                epoch,
                ctx,
            ),
            TokenMsg::ArbDeactivateRequest { block, proc, epoch } => {
                self.handle_arb_deactivate_request(block, proc, epoch, ctx)
            }
            TokenMsg::PersistentActivate { .. }
            | TokenMsg::PersistentDeactivate { .. }
            | TokenMsg::ArbActivate { .. }
            | TokenMsg::ArbDeactivate { .. } => {
                if let Some(block) = self.persistent.apply(&msg) {
                    if let Some(t) = &self.trace {
                        if let Some(ev) = crate::common::table_apply_event(&msg, self.me) {
                            t.borrow_mut().record(ctx.now, ev);
                        }
                    }
                    self.try_forward(block, ctx);
                }
            }
            TokenMsg::Cpu(_) | TokenMsg::CpuResp(_) => {
                unreachable!("memory controllers have no processor port")
            }
        }
    }

    fn on_wake(&mut self, _tag: u64, _ctx: &mut Ctx<'_, TokenMsg>) {
        unreachable!("memory controllers schedule no wakeups")
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl std::fmt::Debug for TokenMem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TokenMem")
            .field("me", &self.me)
            .field("cmp", &self.cmp)
            .field("explicit_blocks", &self.blocks.len())
            .finish()
    }
}
