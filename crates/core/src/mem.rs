//! The TokenCMP memory controller.
//!
//! Memory is the default token holder: a block's home controller starts
//! with all `T` tokens. Memory's data is valid exactly when it holds the
//! owner token (dirty writebacks travel with the owner token and update
//! it). The controller also hosts the arbiter for the original
//! arbiter-based persistent request scheme (§3.2).

use std::any::Any;
use std::collections::HashMap;
use std::rc::Rc;

use tokencmp_proto::{Block, CmpId, Layout, SystemConfig};
use tokencmp_sim::{Component, Ctx, Dur, NodeId};
use tokencmp_trace::{TraceEvent, TraceHandle};

use crate::common::{persistent_grant, storage_grant, GrantRules, PersistentState, TokenLine};
use crate::msg::{ReqKind, TokenBundle, TokenMsg};
use crate::persistent::{ActiveReq, Arbiter};
use crate::recovery::RecoveryParams;

/// Counters exposed by a memory controller after a run.
#[derive(Clone, Debug, Default)]
pub struct MemStats {
    /// Requests answered with data (DRAM reads).
    pub data_responses: u64,
    /// Requests answered with tokens only.
    pub token_responses: u64,
    /// Writebacks absorbed.
    pub writebacks: u64,
    /// Arbiter activations broadcast.
    pub arb_activations: u64,
    /// Token recreations completed as this home's token authority (§15).
    pub recreations: u64,
    /// Dirty-owner data bundles salvaged from stale serials.
    pub stale_data_salvaged: u64,
}

/// An in-flight token recreation at this home controller.
#[derive(Clone, Copy, Debug)]
struct Recreation {
    /// The serial the block's tokens are being reminted under.
    serial: u32,
    /// Recreation acks still outstanding.
    awaiting: u32,
}

/// Memory-side token state for one block. Unlike a cache line, memory may
/// legitimately hold zero tokens.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemLine {
    /// Tokens held (possibly zero).
    pub tokens: u32,
    /// True if the owner token is held (memory data is then valid).
    pub owner: bool,
}

/// A TokenCMP memory controller (one per chip; home for an address slice).
pub struct TokenMem {
    cfg: Rc<SystemConfig>,
    layout: Layout,
    me: NodeId,
    cmp: CmpId,
    rules: GrantRules,
    /// Explicit token state; absent blocks implicitly hold all `T` tokens.
    blocks: HashMap<Block, MemLine>,
    persistent: PersistentState,
    arbiter: Arbiter,
    /// Current recreation serial per home block (absent ⇒ 0; the map
    /// stays empty on lossless runs).
    serials: HashMap<Block, u32>,
    /// Recreations in progress (two-phase: inval/ack barrier, then a
    /// drain window, then the remint).
    recreating: HashMap<Block, Recreation>,
    /// Token-loss recovery policy (the drain window); `None` on runs
    /// whose fault plan cannot drop tokens.
    recovery: Option<RecoveryParams>,
    trace: Option<TraceHandle>,
    /// Run statistics.
    pub stats: MemStats,
}

impl TokenMem {
    /// Creates the memory controller for chip `cmp`.
    pub fn new(cfg: Rc<SystemConfig>, me: NodeId, cmp: CmpId) -> TokenMem {
        let layout = cfg.layout();
        let rules = GrantRules {
            total_tokens: cfg.tokens_per_block,
            caches_per_cmp: 2 * cfg.procs_per_cmp as u32 + cfg.banks_per_cmp as u32,
            migratory: cfg.migratory_sharing,
        };
        TokenMem {
            persistent: PersistentState::new(layout.procs() as usize),
            blocks: HashMap::new(),
            arbiter: Arbiter::new(),
            serials: HashMap::new(),
            recreating: HashMap::new(),
            recovery: None,
            layout,
            me,
            cmp,
            rules,
            cfg,
            trace: None,
            stats: MemStats::default(),
        }
    }

    /// Installs the run's trace sink (no sink ⇒ zero tracing work).
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = Some(trace);
    }

    /// Arms this controller as a token-recreation authority (§15).
    /// Installed by the system layer only when the fault plan can drop
    /// token-carrying messages.
    pub fn set_recovery(&mut self, params: RecoveryParams) {
        self.recovery = Some(params);
    }

    /// The current recreation serial for `block` (0 unless this home has
    /// recreated the block's tokens), for epoch-aware conservation audits.
    pub fn serial_of(&self, block: Block) -> u32 {
        self.serials.get(&block).copied().unwrap_or(0)
    }

    /// True while a recreation for `block` is between its inval broadcast
    /// and its remint (quiescence audits must not run mid-recreation).
    pub fn recreation_in_progress(&self) -> bool {
        !self.recreating.is_empty()
    }

    /// Token state for `block`. Untouched blocks implicitly hold all `T`
    /// tokens at their *home* controller and none anywhere else.
    pub fn line(&self, block: Block) -> MemLine {
        self.blocks.get(&block).copied().unwrap_or_else(|| {
            if self.cfg.home_of(block) == self.cmp {
                MemLine {
                    tokens: self.cfg.tokens_per_block,
                    owner: true,
                }
            } else {
                MemLine {
                    tokens: 0,
                    owner: false,
                }
            }
        })
    }

    /// The persistent-request tables kept at this controller, read by
    /// the telemetry sampler for occupancy and starvation-age gauges.
    pub fn persistent(&self) -> &PersistentState {
        &self.persistent
    }

    /// The home arbiter (arbiter-based activation state), read by the
    /// telemetry sampler alongside [`persistent`](TokenMem::persistent).
    pub fn arbiter(&self) -> &Arbiter {
        &self.arbiter
    }

    /// Recreations currently between inval broadcast and remint.
    pub fn recreations_active(&self) -> usize {
        self.recreating.len()
    }

    /// Sum of per-block recreation serials — a monotone measure of how
    /// much token-recreation churn this home has performed.
    pub fn serial_sum(&self) -> u64 {
        self.serials.values().map(|&s| s as u64).sum()
    }

    /// Blocks with explicit (non-default) state, for conservation audits.
    pub fn explicit_census(&self) -> Vec<(Block, u32, bool)> {
        self.explicit_lines().collect()
    }

    /// Zero-allocation variant of
    /// [`explicit_census`](Self::explicit_census) for the telemetry
    /// sampler, which visits every home controller every sample.
    pub fn explicit_lines(&self) -> impl Iterator<Item = (Block, u32, bool)> + '_ {
        self.blocks.iter().map(|(&b, l)| (b, l.tokens, l.owner))
    }

    fn store(&mut self, block: Block, line: MemLine) {
        if line.tokens == self.cfg.tokens_per_block && line.owner {
            // Back to the default state: no need for an explicit entry,
            // but keep it so audits can see the block was touched.
            self.blocks.insert(block, line);
        } else {
            self.blocks.insert(block, line);
        }
    }

    fn respond(
        &mut self,
        ctx: &mut Ctx<'_, TokenMsg>,
        dst: NodeId,
        block: Block,
        bundle: TokenBundle,
    ) {
        let delay = if bundle.data {
            self.stats.data_responses += 1;
            self.cfg.memctl_latency + self.cfg.dram_latency
        } else {
            self.stats.token_responses += 1;
            self.cfg.memctl_latency
        };
        if let Some(t) = &self.trace {
            t.borrow_mut().record(
                ctx.now,
                TraceEvent::TokensMoved {
                    block,
                    from: self.me,
                    to: dst,
                    count: bundle.count,
                    owner: bundle.owner,
                },
            );
        }
        let serial = self.serial_of(block);
        ctx.send_after(
            delay,
            dst,
            TokenMsg::Tokens {
                block,
                bundle,
                serial,
                writeback: false,
            },
        );
    }

    fn grant_with<F>(&mut self, block: Block, f: F) -> Option<TokenBundle>
    where
        F: FnOnce(&mut TokenLine, bool) -> Option<TokenBundle>,
    {
        let ml = self.line(block);
        if ml.tokens == 0 {
            return None;
        }
        let mut line = TokenLine {
            tokens: ml.tokens,
            owner: ml.owner,
            dirty: false,
            written: false,
        };
        let grant = f(&mut line, ml.owner);
        if grant.is_some() {
            self.store(
                block,
                MemLine {
                    tokens: line.tokens,
                    owner: line.owner,
                },
            );
        }
        grant
    }

    fn try_forward(&mut self, block: Block, ctx: &mut Ctx<'_, TokenMsg>) {
        let Some(req) = self.persistent.active_for(block) else {
            return;
        };
        if let Some(bundle) =
            self.grant_with(block, |line, valid| persistent_grant(line, req.kind, valid))
        {
            self.respond(ctx, req.requester, block, bundle);
        }
    }

    fn handle_transient(
        &mut self,
        block: Block,
        requester: NodeId,
        kind: ReqKind,
        ctx: &mut Ctx<'_, TokenMsg>,
    ) {
        // Tokens are reserved while a persistent request is active.
        if self.persistent.active_for(block).is_some() {
            return;
        }
        let rules = self.rules;
        if let Some(bundle) = self.grant_with(block, |line, valid| {
            storage_grant(line, kind, &rules, valid)
        }) {
            self.respond(ctx, requester, block, bundle);
        }
    }

    fn fold_tokens(
        &mut self,
        block: Block,
        bundle: TokenBundle,
        serial: u32,
        ctx: &mut Ctx<'_, TokenMsg>,
    ) {
        let current = self.serial_of(block);
        if serial < current {
            // Stale tokens from before a recreation this home performed:
            // destroy them (the full set was or will be reminted). We are
            // the block's home, so a stale dirty owner salvages its data
            // right here.
            if let Some(t) = &self.trace {
                t.borrow_mut().record(
                    ctx.now,
                    TraceEvent::StaleDiscard {
                        node: self.me,
                        block,
                        count: bundle.count,
                        owner: bundle.owner,
                        serial,
                    },
                );
            }
            if bundle.owner && bundle.dirty {
                self.stats.stale_data_salvaged += 1;
            }
            return;
        }
        debug_assert!(
            serial == current,
            "tokens under a serial this authority never minted"
        );
        debug_assert!(
            !self.recreating.contains_key(&block),
            "current-serial tokens cannot exist before the remint"
        );
        if let Some(t) = &self.trace {
            t.borrow_mut().record(
                ctx.now,
                TraceEvent::TokensDelivered {
                    block,
                    node: self.me,
                    count: bundle.count,
                    owner: bundle.owner,
                },
            );
        }
        self.stats.writebacks += 1;
        let mut ml = self.line(block);
        ml.tokens += bundle.count;
        if bundle.owner {
            ml.owner = true; // dirty data updates memory on arrival
        }
        debug_assert!(ml.tokens <= self.cfg.tokens_per_block, "token inflation");
        self.store(block, ml);
        self.try_forward(block, ctx);
    }

    fn broadcast_arb(&mut self, msg: TokenMsg, ctx: &mut Ctx<'_, TokenMsg>) {
        for node in self.layout.all_coherence_nodes() {
            if node != self.me {
                ctx.send_after(self.cfg.memctl_latency, node, msg);
            }
        }
        // Apply to our own table as well.
        if let Some(block) = self.persistent.apply(&msg) {
            if let Some(t) = &self.trace {
                if let Some(ev) = crate::common::table_apply_event(&msg, self.me) {
                    t.borrow_mut().record(ctx.now, ev);
                }
            }
            self.try_forward(block, ctx);
        }
    }

    fn handle_arb_request(
        &mut self,
        block: Block,
        req: ActiveReq,
        epoch: u64,
        ctx: &mut Ctx<'_, TokenMsg>,
    ) {
        debug_assert_eq!(
            self.cfg.home_of(block),
            self.cmp,
            "arbiter request routed to the wrong home"
        );
        if let Some(t) = &self.trace {
            t.borrow_mut().record(
                ctx.now,
                TraceEvent::ArbRequest {
                    block,
                    proc: req.proc,
                },
            );
        }
        if let Some((b, r, e)) = self.arbiter.enqueue(block, req, epoch) {
            self.stats.arb_activations += 1;
            self.broadcast_arb(
                TokenMsg::ArbActivate {
                    block: b,
                    proc: r.proc,
                    requester: r.requester,
                    kind: r.kind,
                    epoch: e,
                },
                ctx,
            );
        }
    }

    fn handle_arb_deactivate_request(
        &mut self,
        block: Block,
        proc: tokencmp_proto::ProcId,
        epoch: u64,
        ctx: &mut Ctx<'_, TokenMsg>,
    ) {
        // Broadcast the deactivation of the completed request, then
        // activate the next one (the indirection the paper's Figure 2
        // shows hurting under contention). A request satisfied before
        // activation is withdrawn from the queue instead.
        if let Some(t) = &self.trace {
            t.borrow_mut()
                .record(ctx.now, TraceEvent::ArbDone { block, proc });
        }
        let next = self.arbiter.complete(block, proc, epoch);
        self.broadcast_arb(TokenMsg::ArbDeactivate { block, proc, epoch }, ctx);
        if let Some((b, r, e)) = next {
            self.stats.arb_activations += 1;
            self.broadcast_arb(
                TokenMsg::ArbActivate {
                    block: b,
                    proc: r.proc,
                    requester: r.requester,
                    kind: r.kind,
                    epoch: e,
                },
                ctx,
            );
        }
    }

    /// Phase one of a token recreation (§15): a starving cache believes
    /// `block`'s tokens were lost. Bump the recreation serial, destroy
    /// our own holdings, and broadcast a reliable invalidate; the remint
    /// waits for every ack plus a drain window (phase two, [`Self::on_wake`]).
    fn handle_recreate_request(&mut self, block: Block, serial: u32, ctx: &mut Ctx<'_, TokenMsg>) {
        debug_assert_eq!(
            self.cfg.home_of(block),
            self.cmp,
            "recreation request routed to the wrong home"
        );
        if self.recreating.contains_key(&block) {
            return; // one recreation at a time; the remint will serve them
        }
        let current = self.serial_of(block);
        if serial < current {
            // The requester escalated before learning of a recreation we
            // already performed; its backoff retry (if still starving)
            // will carry the updated serial.
            return;
        }
        debug_assert!(serial == current, "requester ahead of the authority");
        let new_serial = current + 1;
        self.serials.insert(block, new_serial);
        if let Some(t) = &self.trace {
            t.borrow_mut().record(
                ctx.now,
                TraceEvent::RecreationStart {
                    block,
                    serial: new_serial,
                },
            );
        }
        // Our own holdings are old-serial too: destroy them now (the
        // remint restores the full set, and memory's data stays ours).
        let ml = self.line(block);
        if let Some(t) = &self.trace {
            t.borrow_mut().record(
                ctx.now,
                TraceEvent::EpochInval {
                    node: self.me,
                    block,
                    serial: new_serial,
                    discarded: ml.tokens,
                    owner: ml.owner,
                },
            );
        }
        self.store(
            block,
            MemLine {
                tokens: 0,
                owner: false,
            },
        );
        let msg = TokenMsg::RecreateInval {
            block,
            serial: new_serial,
        };
        let mut awaiting = 0;
        for node in self.layout.all_coherence_nodes() {
            if node != self.me {
                ctx.send_after(self.cfg.memctl_latency, node, msg);
                awaiting += 1;
            }
        }
        self.recreating.insert(
            block,
            Recreation {
                serial: new_serial,
                awaiting,
            },
        );
    }

    /// A coherence node acked the invalidate: it has adopted the new
    /// serial and will discard any old-serial tokens at receipt. Once all
    /// acks are in, wait out the drain window before reminting.
    fn handle_recreate_ack(
        &mut self,
        block: Block,
        serial: u32,
        had_dirty_owner: bool,
        ctx: &mut Ctx<'_, TokenMsg>,
    ) {
        let Some(rec) = self.recreating.get_mut(&block) else {
            return;
        };
        if rec.serial != serial {
            return;
        }
        // A `had_dirty_owner` ack travels alongside a StaleDataReturn,
        // which is where the salvage is counted.
        let _ = had_dirty_owner;
        rec.awaiting -= 1;
        if rec.awaiting == 0 {
            let drain = self.recovery.map(|r| r.drain).unwrap_or(Dur::ZERO);
            debug_assert!(block.0 < u64::MAX, "block id fits the wake tag");
            ctx.wake_in(drain, block.0);
        }
    }

    /// A recreation invalidate from another home's recreation. This
    /// controller holds no tokens for foreign blocks; just ack so the
    /// initiating authority's barrier completes.
    fn handle_recreate_inval(
        &mut self,
        src: NodeId,
        block: Block,
        serial: u32,
        ctx: &mut Ctx<'_, TokenMsg>,
    ) {
        debug_assert_ne!(
            self.cfg.home_of(block),
            self.cmp,
            "a home never invalidates itself over the network"
        );
        if let Some(t) = &self.trace {
            t.borrow_mut().record(
                ctx.now,
                TraceEvent::EpochInval {
                    node: self.me,
                    block,
                    serial,
                    discarded: 0,
                    owner: false,
                },
            );
        }
        ctx.send(
            src,
            TokenMsg::RecreateAck {
                block,
                serial,
                had_dirty_owner: false,
            },
        );
    }
}

impl Component<TokenMsg> for TokenMem {
    fn on_msg(&mut self, src: NodeId, msg: TokenMsg, ctx: &mut Ctx<'_, TokenMsg>) {
        match msg {
            TokenMsg::Transient {
                block,
                requester,
                kind,
                ..
            } => self.handle_transient(block, requester, kind, ctx),
            TokenMsg::Tokens {
                block,
                bundle,
                serial,
                ..
            } => self.fold_tokens(block, bundle, serial, ctx),
            TokenMsg::ArbRequest {
                block,
                proc,
                requester,
                kind,
                epoch,
            } => self.handle_arb_request(
                block,
                ActiveReq {
                    proc,
                    requester,
                    kind,
                },
                epoch,
                ctx,
            ),
            TokenMsg::ArbDeactivateRequest { block, proc, epoch } => {
                self.handle_arb_deactivate_request(block, proc, epoch, ctx)
            }
            TokenMsg::PersistentActivate { .. }
            | TokenMsg::PersistentDeactivate { .. }
            | TokenMsg::ArbActivate { .. }
            | TokenMsg::ArbDeactivate { .. } => {
                if let Some(block) = self.persistent.apply(&msg) {
                    if let Some(t) = &self.trace {
                        if let Some(ev) = crate::common::table_apply_event(&msg, self.me) {
                            t.borrow_mut().record(ctx.now, ev);
                        }
                    }
                    self.try_forward(block, ctx);
                }
            }
            TokenMsg::RecreateRequest { block, serial, .. } => {
                self.handle_recreate_request(block, serial, ctx)
            }
            TokenMsg::RecreateAck {
                block,
                serial,
                had_dirty_owner,
            } => self.handle_recreate_ack(block, serial, had_dirty_owner, ctx),
            TokenMsg::RecreateInval { block, serial } => {
                self.handle_recreate_inval(src, block, serial, ctx)
            }
            TokenMsg::StaleDataReturn { .. } => {
                // The salvaged dirty data lands in memory; in this
                // data-less model that is pure accounting.
                self.stats.stale_data_salvaged += 1;
            }
            TokenMsg::Cpu(_) | TokenMsg::CpuResp(_) => {
                unreachable!("memory controllers have no processor port")
            }
        }
    }

    fn on_wake(&mut self, tag: u64, ctx: &mut Ctx<'_, TokenMsg>) {
        // The only wake a memory controller schedules is a recreation
        // drain expiry; the tag is the block number. Remint the full
        // token set under the new serial and serve the starving request.
        let block = Block(tag);
        let Some(rec) = self.recreating.remove(&block) else {
            unreachable!("drain wake without a recreation in progress");
        };
        self.store(
            block,
            MemLine {
                tokens: self.cfg.tokens_per_block,
                owner: true,
            },
        );
        self.stats.recreations += 1;
        if let Some(t) = &self.trace {
            t.borrow_mut().record(
                ctx.now,
                TraceEvent::RecreationDone {
                    block,
                    serial: rec.serial,
                },
            );
        }
        self.try_forward(block, ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn kind(&self) -> &'static str {
        "mem"
    }
}

impl std::fmt::Debug for TokenMem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TokenMem")
            .field("me", &self.me)
            .field("cmp", &self.cmp)
            .field("explicit_blocks", &self.blocks.len())
            .finish()
    }
}
