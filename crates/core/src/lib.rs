//! # TokenCMP — token coherence for Multiple-CMP systems
//!
//! This crate is the primary contribution of the reproduced paper,
//! *"Improving Multiple-CMP Systems Using Token Coherence"* (Marty,
//! Bingham, Hill, Hu, Martin, Wood — HPCA 2005): a cache-coherence
//! protocol that is **flat for correctness** but **hierarchical for
//! performance**.
//!
//! ## Correctness substrate (flat, §3)
//!
//! Every block has `T` tokens, one distinguished as the *owner* token.
//! A cache may read a block while holding ≥ 1 token and write it only
//! while holding all `T`; messages carrying the owner token carry data.
//! Tokens are exchanged among *caches* (L1-D, L1-I, L2 banks) and memory
//! controllers — not among chips — which is what keeps correctness flat
//! in an M-CMP. Starvation is prevented by *persistent requests*, with
//! two activation schemes ([`persistent`]): the original arbiter scheme
//! and the paper's new distributed-activation scheme with wave marking,
//! plus persistent *read* requests and a bounded response-delay window.
//!
//! ## Performance policy (hierarchical, §4)
//!
//! Transient requests broadcast within a chip first and off chip only on
//! an L2 miss; read responses carry up to `C` tokens; a dirty owner with
//! all tokens migrates everything on a read (migratory sharing); the six
//! Table 1 variants ([`Variant`]) differ in retry count, activation
//! mechanism, contention predictor and external-request filter.
//!
//! The controllers ([`TokenL1`], [`TokenL2`], [`TokenMem`]) are
//! [`Component`]s of the discrete-event kernel in `tokencmp-sim`; the
//! `tokencmp-system` crate assembles them into a full 4×4 M-CMP.
//!
//! [`Component`]: tokencmp_sim::Component

pub mod common;
pub mod l1;
pub mod l2;
pub mod mem;
pub mod msg;
pub mod persistent;
pub mod policy;
pub mod recovery;

pub use common::{GrantRules, PersistentState, TokenLine};
pub use l1::{L1Stats, TokenL1};
pub use l2::{L2Stats, TokenL2};
pub use mem::{MemLine, MemStats, TokenMem};
pub use msg::{ReqKind, TokenBundle, TokenMsg};
pub use persistent::{ActiveReq, ArbNodeTable, Arbiter, DistTable};
pub use policy::{Activation, ContentionPredictor, Variant};
pub use recovery::{backoff_delay, RecoveryParams};
