//! Token-holder rules shared by L1, L2 and memory controllers.
//!
//! The correctness substrate is *flat* (§3.1): every cache — L1-D, L1-I,
//! L2 bank — and every memory controller is simply a token holder obeying
//! the same counting rules. The hierarchy only shows up in the performance
//! policy's choice of who to ask first.

use tokencmp_proto::Block;
use tokencmp_sim::NodeId;
use tokencmp_trace::TraceEvent;

use crate::msg::{ReqKind, TokenBundle, TokenMsg};
use crate::persistent::{ActiveReq, ArbNodeTable, DistTable};

/// Per-block token state at a holder. A line exists only while it holds at
/// least one token; holding any token implies holding valid data (caches)
/// or potentially-stale data validated by the owner token (memory).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TokenLine {
    /// Tokens held (≥ 1), including the owner token if `owner`.
    pub tokens: u32,
    /// True if the owner token is held.
    pub owner: bool,
    /// True if the data is modified relative to memory (meaningful with
    /// `owner`).
    pub dirty: bool,
    /// True if *this* holder modified the data (migratory sharing detects
    /// read-modify-write patterns from local writes, not inherited dirty
    /// data — otherwise a dirty flag block would migrate wholesale between
    /// spinning readers forever).
    pub written: bool,
}

impl TokenLine {
    /// A line created from an arriving bundle.
    pub fn from_bundle(b: TokenBundle) -> TokenLine {
        debug_assert!(b.count >= 1);
        TokenLine {
            tokens: b.count,
            owner: b.owner,
            dirty: b.owner && b.dirty,
            written: false,
        }
    }

    /// Folds an arriving bundle into this line.
    pub fn fold(&mut self, b: TokenBundle) {
        debug_assert!(b.count >= 1);
        self.tokens += b.count;
        if b.owner {
            self.owner = true;
            self.dirty = b.dirty;
        }
    }

    /// Takes every token (the line must then be dropped by the caller).
    /// `data_valid` controls whether a dataless holder (memory without the
    /// owner token) may claim to carry data.
    pub fn take_all(&mut self, data_valid: bool) -> TokenBundle {
        let b = TokenBundle {
            count: self.tokens,
            owner: self.owner,
            // The owner token must always travel with data (§3.1).
            data: self.owner || data_valid,
            dirty: self.dirty,
        };
        self.tokens = 0;
        self.owner = false;
        self.dirty = false;
        self.written = false;
        b
    }

    /// Takes `n` non-owner tokens (keeping the owner token and at least
    /// one token behind is the caller's responsibility via `n`).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `n >= tokens` or `n == 0`.
    pub fn take_non_owner(&mut self, n: u32, data: bool) -> TokenBundle {
        debug_assert!(n >= 1 && n < self.tokens);
        self.tokens -= n;
        TokenBundle {
            count: n,
            owner: false,
            data,
            dirty: false,
        }
    }

    /// True when no tokens remain and the line must be dropped.
    pub fn is_empty(&self) -> bool {
        self.tokens == 0
    }
}

/// Parameters that shape grant decisions.
#[derive(Clone, Copy, Debug)]
pub struct GrantRules {
    /// Total tokens per block, `T`.
    pub total_tokens: u32,
    /// `C`, the number of caches on a CMP node: external read responses
    /// carry up to `C` tokens so future intra-CMP requests hit locally
    /// (§4).
    pub caches_per_cmp: u32,
    /// Migratory-sharing optimization enabled (a dirty owner holding all
    /// tokens hands everything over even on a read).
    pub migratory: bool,
}

/// Decides a cache's response to a *transient* request (§4 rules), mutating
/// the line. Returns `None` when the cache stays silent (a cache only
/// responds when it actually has tokens to give — there is no queueing or
/// blocking, unlike a conventional protocol).
pub fn transient_grant(
    line: &mut TokenLine,
    kind: ReqKind,
    external: bool,
    rules: &GrantRules,
) -> Option<TokenBundle> {
    debug_assert!(line.tokens >= 1);
    match kind {
        // Write requests: hand over everything we have; data travels with
        // the owner token.
        ReqKind::Write => Some(line.take_all(false)),
        ReqKind::Read => {
            let migratory_hit = rules.migratory
                && line.owner
                && line.dirty
                && line.written
                && line.tokens == rules.total_tokens;
            if migratory_hit {
                // Read-modify-write pattern: give read/write access at once.
                return Some(line.take_all(false));
            }
            if external {
                // A CMP answers external reads only from the owner (§4).
                if !line.owner {
                    return None;
                }
                if line.tokens >= 2 {
                    // Include up to C tokens so the requesting chip can
                    // satisfy future local readers.
                    let n = (line.tokens - 1).min(rules.caches_per_cmp);
                    Some(line.take_non_owner(n, true))
                } else {
                    // Only the owner token left: hand it (and data) over.
                    Some(line.take_all(false))
                }
            } else if line.tokens >= 2 {
                // Local read: one token plus data.
                Some(line.take_non_owner(1, true))
            } else {
                None
            }
        }
    }
}

/// Decides a *storage-level* (L2 bank / memory) response to a local or
/// memory-directed request. Differs from L1 rules in one way: a storage
/// level holding **all** tokens grants them all on a read, giving the
/// requester an E-like state so a subsequent private store hits locally
/// (the standard TokenB memory behaviour).
pub fn storage_grant(
    line: &mut TokenLine,
    kind: ReqKind,
    rules: &GrantRules,
    data_valid: bool,
) -> Option<TokenBundle> {
    debug_assert!(line.tokens >= 1);
    match kind {
        ReqKind::Write => Some(line.take_all(data_valid)),
        ReqKind::Read => {
            if line.owner && line.tokens == rules.total_tokens {
                return Some(line.take_all(data_valid));
            }
            if !data_valid && !line.owner {
                // Memory without the owner token has stale data; stay
                // silent on reads.
                return None;
            }
            if line.tokens >= 2 {
                let n = (line.tokens - 1).min(rules.caches_per_cmp);
                Some(line.take_non_owner(n, true))
            } else if line.owner {
                Some(line.take_all(data_valid))
            } else {
                None
            }
        }
    }
}

/// Decides what to forward to an active *persistent* request (§3.2),
/// mutating the line.
///
/// * Write: forward everything.
/// * Read (the new persistent **read** request): give up all but one token,
///   so read permission is never stolen from other caches; with `T` greater
///   than the number of holders, someone always has a spare token.
pub fn persistent_grant(
    line: &mut TokenLine,
    kind: ReqKind,
    data_valid: bool,
) -> Option<TokenBundle> {
    debug_assert!(line.tokens >= 1);
    match kind {
        ReqKind::Write => Some(line.take_all(data_valid)),
        ReqKind::Read => {
            if line.tokens >= 2 {
                let n = line.tokens - 1;
                Some(line.take_non_owner(n, data_valid || line.owner))
            } else {
                None
            }
        }
    }
}

/// The [`TraceEvent::TableApply`] event describing the application of a
/// persistent-table message at `node`, or `None` if `msg` is not one.
/// Shared by every holder's table-apply site so the refinement checker
/// sees identical shapes regardless of which controller applied it.
pub fn table_apply_event(msg: &TokenMsg, node: NodeId) -> Option<TraceEvent> {
    let (block, proc, activate, arb) = match *msg {
        TokenMsg::PersistentActivate { block, proc, .. } => (block, proc, true, false),
        TokenMsg::PersistentDeactivate { block, proc, .. } => (block, proc, false, false),
        TokenMsg::ArbActivate { block, proc, .. } => (block, proc, true, true),
        TokenMsg::ArbDeactivate { block, proc, .. } => (block, proc, false, true),
        _ => return None,
    };
    Some(TraceEvent::TableApply {
        block,
        node,
        proc,
        activate,
        arb,
    })
}

/// The persistent-request bookkeeping every coherence node carries: the
/// distributed table and the arbiter-activated set (only one is populated
/// in any given run, depending on the variant).
#[derive(Clone, Debug)]
pub struct PersistentState {
    /// Distributed-activation table (one entry per processor).
    pub dist: DistTable,
    /// Arbiter-activated requests.
    pub arb: ArbNodeTable,
}

impl PersistentState {
    /// Creates empty state for a system with `procs` processors.
    pub fn new(procs: usize) -> PersistentState {
        PersistentState {
            dist: DistTable::new(procs),
            arb: ArbNodeTable::new(),
        }
    }

    /// The request this node should currently forward tokens to, for
    /// `block`.
    pub fn active_for(&self, block: Block) -> Option<ActiveReq> {
        self.dist
            .active_for(block)
            .or_else(|| self.arb.active_for(block))
    }

    /// Applies a persistent-protocol message to the tables. Returns the
    /// block whose forwarding state may have changed, or `None` if the
    /// message was not a persistent-table message.
    pub fn apply(&mut self, msg: &TokenMsg) -> Option<Block> {
        match *msg {
            TokenMsg::PersistentActivate {
                block,
                proc,
                requester,
                kind,
                epoch,
            } => {
                self.dist.activate(proc, block, requester, kind, epoch);
                Some(block)
            }
            TokenMsg::PersistentDeactivate { block, proc, epoch } => {
                self.dist.deactivate(proc, epoch);
                Some(block)
            }
            TokenMsg::ArbActivate {
                block,
                proc,
                requester,
                kind,
                epoch,
            } => {
                self.arb.activate(
                    block,
                    ActiveReq {
                        proc,
                        requester,
                        kind,
                    },
                    epoch,
                );
                Some(block)
            }
            TokenMsg::ArbDeactivate { block, proc, epoch } => {
                self.arb.deactivate(block, proc, epoch);
                Some(block)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules() -> GrantRules {
        GrantRules {
            total_tokens: 64,
            caches_per_cmp: 12,
            migratory: true,
        }
    }

    fn line(tokens: u32, owner: bool, dirty: bool) -> TokenLine {
        TokenLine {
            tokens,
            owner,
            dirty,
            written: dirty,
        }
    }

    #[test]
    fn fold_accumulates_and_tracks_owner() {
        let mut l = TokenLine::from_bundle(TokenBundle {
            count: 2,
            owner: false,
            data: true,
            dirty: false,
        });
        l.fold(TokenBundle {
            count: 3,
            owner: true,
            data: true,
            dirty: true,
        });
        assert_eq!(
            l,
            TokenLine {
                tokens: 5,
                owner: true,
                dirty: true,
                written: false,
            }
        );
    }

    #[test]
    fn write_grant_takes_everything() {
        let mut l = line(5, true, true);
        let b = transient_grant(&mut l, ReqKind::Write, false, &rules()).unwrap();
        assert_eq!(b.count, 5);
        assert!(b.owner && b.data && b.dirty);
        assert!(l.is_empty());
    }

    #[test]
    fn non_owner_write_grant_is_dataless() {
        let mut l = line(3, false, false);
        let b = transient_grant(&mut l, ReqKind::Write, true, &rules()).unwrap();
        assert_eq!(b.count, 3);
        assert!(!b.owner && !b.data);
    }

    #[test]
    fn local_read_grant_is_one_token_with_data() {
        let mut l = line(3, true, false);
        let b = transient_grant(&mut l, ReqKind::Read, false, &rules()).unwrap();
        assert_eq!(b.count, 1);
        assert!(!b.owner && b.data);
        assert_eq!(l, line(2, true, false));
    }

    #[test]
    fn single_token_cache_stays_silent_on_local_read() {
        let mut l = line(1, false, false);
        assert_eq!(
            transient_grant(&mut l, ReqKind::Read, false, &rules()),
            None
        );
        assert_eq!(l.tokens, 1);
    }

    #[test]
    fn migratory_read_hands_over_all_tokens() {
        let mut l = line(64, true, true);
        let b = transient_grant(&mut l, ReqKind::Read, false, &rules()).unwrap();
        assert_eq!(b.count, 64);
        assert!(b.owner && b.dirty);
        assert!(l.is_empty());
        // Disabled migratory: only one token moves.
        let mut l = line(64, true, true);
        let no_mig = GrantRules {
            migratory: false,
            ..rules()
        };
        let b = transient_grant(&mut l, ReqKind::Read, false, &no_mig).unwrap();
        assert_eq!(b.count, 1);
    }

    #[test]
    fn external_read_requires_owner_and_carries_c_tokens() {
        let mut l = line(20, false, false);
        assert_eq!(transient_grant(&mut l, ReqKind::Read, true, &rules()), None);
        let mut l = line(20, true, false);
        let b = transient_grant(&mut l, ReqKind::Read, true, &rules()).unwrap();
        assert_eq!(b.count, 12); // min(C, tokens-1)
        assert!(b.data && !b.owner);
        assert_eq!(l, line(8, true, false));
    }

    #[test]
    fn external_read_from_sole_owner_token_hands_over_ownership() {
        let mut l = line(1, true, false);
        let b = transient_grant(&mut l, ReqKind::Read, true, &rules()).unwrap();
        assert_eq!(b.count, 1);
        assert!(b.owner && b.data);
        assert!(l.is_empty());
    }

    #[test]
    fn storage_read_grants_exclusive_when_holding_all() {
        let mut l = line(64, true, false);
        let b = storage_grant(&mut l, ReqKind::Read, &rules(), true).unwrap();
        assert_eq!(b.count, 64);
        assert!(b.owner);
        assert!(l.is_empty());
    }

    #[test]
    fn stale_memory_stays_silent_on_read() {
        let mut l = line(5, false, false);
        assert_eq!(storage_grant(&mut l, ReqKind::Read, &rules(), false), None);
        // But it still contributes everything to a write.
        let b = storage_grant(&mut l, ReqKind::Write, &rules(), false).unwrap();
        assert_eq!(b.count, 5);
        assert!(!b.data);
    }

    #[test]
    fn persistent_read_leaves_one_token() {
        let mut l = line(5, true, false);
        let b = persistent_grant(&mut l, ReqKind::Read, true).unwrap();
        assert_eq!(b.count, 4);
        assert!(!b.owner, "owner token stays with the holder");
        assert_eq!(l, line(1, true, false));
        // With a single token, nothing is forwarded.
        assert_eq!(persistent_grant(&mut l, ReqKind::Read, true), None);
    }

    #[test]
    fn persistent_write_takes_all() {
        let mut l = line(3, true, true);
        let b = persistent_grant(&mut l, ReqKind::Write, true).unwrap();
        assert_eq!(b.count, 3);
        assert!(b.owner && b.dirty && b.data);
        assert!(l.is_empty());
    }

    #[test]
    fn persistent_state_applies_messages() {
        use tokencmp_proto::ProcId;
        use tokencmp_sim::NodeId;
        let mut p = PersistentState::new(16);
        let act = TokenMsg::PersistentActivate {
            block: Block(1),
            proc: ProcId(5),
            requester: NodeId(21),
            kind: ReqKind::Write,
            epoch: 1,
        };
        assert_eq!(p.apply(&act), Some(Block(1)));
        assert_eq!(p.active_for(Block(1)).unwrap().proc, ProcId(5));
        let deact = TokenMsg::PersistentDeactivate {
            block: Block(1),
            proc: ProcId(5),
            epoch: 1,
        };
        assert_eq!(p.apply(&deact), Some(Block(1)));
        assert_eq!(p.active_for(Block(1)), None);
        // Non-persistent messages are ignored.
        let t = TokenMsg::Transient {
            block: Block(1),
            requester: NodeId(0),
            kind: ReqKind::Read,
            external: false,
            hint: None,
        };
        assert_eq!(p.apply(&t), None);
    }

    #[test]
    fn arb_activation_also_feeds_active_for() {
        use tokencmp_proto::ProcId;
        use tokencmp_sim::NodeId;
        let mut p = PersistentState::new(16);
        let act = TokenMsg::ArbActivate {
            block: Block(9),
            proc: ProcId(2),
            requester: NodeId(18),
            kind: ReqKind::Read,
            epoch: 1,
        };
        p.apply(&act);
        assert_eq!(p.active_for(Block(9)).unwrap().kind, ReqKind::Read);
        p.apply(&TokenMsg::ArbDeactivate {
            block: Block(9),
            proc: ProcId(2),
            epoch: 1,
        });
        assert_eq!(p.active_for(Block(9)), None);
    }
}
