//! Persistent-request state (§3.2).
//!
//! Two activation mechanisms:
//!
//! * **Distributed activation** — every coherence node keeps a table with
//!   one entry per processor. Among entries for the same block, only the
//!   highest-priority (lowest processor number — least-significant bits
//!   vary within a chip, giving the locality the paper describes) is
//!   *active*. A "marking" (wave) rule prevents a processor from
//!   re-issuing a persistent request for a block until every request that
//!   was outstanding when its own completed has been satisfied.
//!
//! * **Arbiter-based activation** — the original scheme: each home memory
//!   controller arbitrates with a FIFO queue, activating one request at a
//!   time and broadcasting activate/deactivate messages. The handoff
//!   indirection through the arbiter is exactly what Figure 2 punishes.

use std::collections::{HashMap, VecDeque};

use tokencmp_proto::{Block, ProcId};
use tokencmp_sim::NodeId;

use crate::msg::ReqKind;

/// The persistent request a node should currently honor for some block.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ActiveReq {
    /// Issuing processor.
    pub proc: ProcId,
    /// The L1 cache tokens must be forwarded to.
    pub requester: NodeId,
    /// Read (leave one token) or write (forward all).
    pub kind: ReqKind,
}

#[derive(Clone, Copy, Debug)]
struct DistEntry {
    block: Block,
    requester: NodeId,
    kind: ReqKind,
    epoch: u64,
    /// Wave marking: set on entries outstanding when the local processor's
    /// own request deactivated; blocks local re-issue until cleared.
    marked: bool,
}

/// The distributed-activation persistent request table kept at *every*
/// coherence node: one entry per processor (the paper sizes it at one
/// six-byte entry per processor).
///
/// The interconnect is unordered, so a deactivation can arrive before its
/// own activation; each entry carries the issuing processor's *epoch*
/// (issue number) and the table remembers the highest deactivated epoch
/// per processor, suppressing late-arriving ghost activations.
#[derive(Clone, Debug)]
pub struct DistTable {
    entries: Vec<Option<DistEntry>>,
    deactivated_up_to: Vec<u64>,
}

impl DistTable {
    /// Creates a table for `procs` processors.
    pub fn new(procs: usize) -> DistTable {
        DistTable {
            entries: vec![None; procs],
            deactivated_up_to: vec![0; procs],
        }
    }

    /// Records an activation (ignored if epoch `epoch` was already
    /// deactivated — a ghost that overtook its own deactivation).
    pub fn activate(
        &mut self,
        proc: ProcId,
        block: Block,
        requester: NodeId,
        kind: ReqKind,
        epoch: u64,
    ) {
        if epoch <= self.deactivated_up_to[proc.0 as usize] {
            return;
        }
        self.entries[proc.0 as usize] = Some(DistEntry {
            block,
            requester,
            kind,
            epoch,
            marked: false,
        });
    }

    /// Clears an entry on deactivation (epoch-matched) and suppresses any
    /// late-arriving activation with the same or an earlier epoch.
    /// Returns true if an entry was removed.
    pub fn deactivate(&mut self, proc: ProcId, epoch: u64) -> bool {
        let p = proc.0 as usize;
        if epoch > self.deactivated_up_to[p] {
            self.deactivated_up_to[p] = epoch;
        }
        match self.entries[p] {
            Some(e) if e.epoch <= epoch => {
                self.entries[p] = None;
                true
            }
            _ => false,
        }
    }

    /// Applies the wave rule at the issuing processor's own table: when its
    /// request for `block` completes, all remaining valid entries for the
    /// same block are marked.
    pub fn mark_peers(&mut self, block: Block) {
        for e in self.entries.iter_mut().flatten() {
            if e.block == block {
                e.marked = true;
            }
        }
    }

    /// True if marked entries for `block` remain — the local processor may
    /// not issue a new persistent request for it yet (FutureBus-style wave
    /// grouping, §3.2).
    pub fn has_marked(&self, block: Block) -> bool {
        self.entries
            .iter()
            .flatten()
            .any(|e| e.block == block && e.marked)
    }

    /// The active (highest-priority) request for `block`, if any.
    ///
    /// Priority is the fixed processor number: with `proc = chip *
    /// procs_per_chip + core`, the low bits vary within a chip, so
    /// contended blocks tend to hand off within a chip first.
    pub fn active_for(&self, block: Block) -> Option<ActiveReq> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|e| (i, e)))
            .find(|(_, e)| e.block == block)
            .map(|(i, e)| ActiveReq {
                proc: ProcId(i as u16),
                requester: e.requester,
                kind: e.kind,
            })
    }

    /// All blocks with at least one table entry (used when tokens arrive).
    pub fn has_any_for(&self, block: Block) -> bool {
        self.entries.iter().flatten().any(|e| e.block == block)
    }

    /// Number of valid entries (for table-occupancy statistics).
    pub fn len(&self) -> usize {
        self.entries.iter().flatten().count()
    }

    /// Every valid entry as `(proc, block)`, in priority order — the
    /// telemetry sampler walks this to track how long each persistent
    /// request has been outstanding (starvation age).
    pub fn entries(&self) -> impl Iterator<Item = (ProcId, Block)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|e| (ProcId(i as u16), e.block)))
    }

    /// True if the table has no valid entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-node record of arbiter-activated requests (at most one per arbiter,
/// so at most one per home memory controller). Epoch-suppressed like
/// [`DistTable`].
#[derive(Clone, Debug, Default)]
pub struct ArbNodeTable {
    active: HashMap<Block, (ProcId, u64, ActiveReq)>,
    deactivated_up_to: HashMap<ProcId, u64>,
}

impl ArbNodeTable {
    /// Creates an empty table.
    pub fn new() -> ArbNodeTable {
        ArbNodeTable::default()
    }

    /// Records an arbiter activation (ignored if already deactivated).
    pub fn activate(&mut self, block: Block, req: ActiveReq, epoch: u64) {
        if epoch <= self.deactivated_up_to.get(&req.proc).copied().unwrap_or(0) {
            return;
        }
        self.active.insert(block, (req.proc, epoch, req));
    }

    /// Clears an arbiter activation (matching by processor and epoch) and
    /// suppresses late ghosts.
    pub fn deactivate(&mut self, block: Block, proc: ProcId, epoch: u64) {
        let d = self.deactivated_up_to.entry(proc).or_insert(0);
        if epoch > *d {
            *d = epoch;
        }
        if let Some((p, e, _)) = self.active.get(&block) {
            if *p == proc && *e <= epoch {
                self.active.remove(&block);
            }
        }
    }

    /// The active request for `block`, if any.
    pub fn active_for(&self, block: Block) -> Option<ActiveReq> {
        self.active.get(&block).map(|&(_, _, r)| r)
    }

    /// Number of active entries.
    pub fn len(&self) -> usize {
        self.active.len()
    }

    /// True if no entries are active.
    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
    }
}

/// The fair FIFO arbiter at a home memory controller (original token
/// coherence scheme [Martin et al., ISCA '03] extended to M-CMPs).
///
/// At most one request is active per arbiter at a time; handing off to the
/// next request requires a deactivate → arbiter → activate exchange, the
/// indirection that makes `TokenCMP-arb0` fragile under contention.
#[derive(Clone, Debug, Default)]
pub struct Arbiter {
    queue: VecDeque<(Block, ActiveReq, u64)>,
    current: Option<(Block, ActiveReq, u64)>,
}

impl Arbiter {
    /// Creates an idle arbiter.
    pub fn new() -> Arbiter {
        Arbiter::default()
    }

    /// Enqueues a request. Returns the request (with its epoch) to
    /// activate now, if the arbiter was idle.
    pub fn enqueue(
        &mut self,
        block: Block,
        req: ActiveReq,
        epoch: u64,
    ) -> Option<(Block, ActiveReq, u64)> {
        self.queue.push_back((block, req, epoch));
        if self.current.is_none() {
            self.current = self.queue.pop_front();
            self.current
        } else {
            None
        }
    }

    /// Completes the current request (matching by processor). Returns the
    /// next request to activate, if any.
    ///
    /// A completion for a request that is still *queued* (tokens arrived
    /// before arbitration) withdraws it from the queue; without this, the
    /// arbiter would eventually activate a ghost nobody will ever finish.
    pub fn complete(
        &mut self,
        block: Block,
        proc: ProcId,
        epoch: u64,
    ) -> Option<(Block, ActiveReq, u64)> {
        match self.current {
            Some((b, r, e)) if b == block && r.proc == proc && e <= epoch => {
                self.current = self.queue.pop_front();
                self.current
            }
            _ => {
                if let Some(pos) = self
                    .queue
                    .iter()
                    .position(|&(b, r, e)| b == block && r.proc == proc && e <= epoch)
                {
                    self.queue.remove(pos);
                }
                None
            }
        }
    }

    /// The currently active request.
    pub fn current(&self) -> Option<(Block, ActiveReq, u64)> {
        self.current
    }

    /// Number of queued (not yet active) requests.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(p: u16) -> ActiveReq {
        ActiveReq {
            proc: ProcId(p),
            requester: NodeId(100 + p as u32),
            kind: ReqKind::Write,
        }
    }

    #[test]
    fn dist_priority_is_lowest_proc() {
        let mut t = DistTable::new(16);
        t.activate(ProcId(5), Block(1), NodeId(105), ReqKind::Write, 1);
        t.activate(ProcId(2), Block(1), NodeId(102), ReqKind::Read, 1);
        t.activate(ProcId(9), Block(2), NodeId(109), ReqKind::Write, 1);
        let a = t.active_for(Block(1)).unwrap();
        assert_eq!(a.proc, ProcId(2));
        assert_eq!(a.kind, ReqKind::Read);
        assert_eq!(t.active_for(Block(2)).unwrap().proc, ProcId(9));
        assert_eq!(t.active_for(Block(3)), None);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn dist_deactivate_promotes_next() {
        let mut t = DistTable::new(16);
        t.activate(ProcId(1), Block(7), NodeId(101), ReqKind::Write, 1);
        t.activate(ProcId(3), Block(7), NodeId(103), ReqKind::Write, 1);
        assert!(t.deactivate(ProcId(1), 1));
        assert_eq!(t.active_for(Block(7)).unwrap().proc, ProcId(3));
        assert!(!t.deactivate(ProcId(1), 1), "double deactivate is ignored");
    }

    #[test]
    fn dist_suppresses_reordered_ghost_activation() {
        // The unordered network can deliver a deactivation before its own
        // activation; the late activation must not install a ghost entry.
        let mut t = DistTable::new(4);
        t.deactivate(ProcId(2), 5); // deactivate for epoch 5 arrives first
        t.activate(ProcId(2), Block(9), NodeId(12), ReqKind::Write, 5);
        assert_eq!(t.active_for(Block(9)), None, "ghost suppressed");
        // A *newer* request (epoch 6) is legitimate.
        t.activate(ProcId(2), Block(9), NodeId(12), ReqKind::Write, 6);
        assert_eq!(t.active_for(Block(9)).unwrap().proc, ProcId(2));
    }

    #[test]
    fn dist_deactivate_does_not_clear_newer_epoch() {
        let mut t = DistTable::new(4);
        t.activate(ProcId(1), Block(3), NodeId(11), ReqKind::Read, 7);
        // A stale deactivation (epoch 6) must not clear epoch 7's entry.
        assert!(!t.deactivate(ProcId(1), 6));
        assert!(t.active_for(Block(3)).is_some());
        assert!(t.deactivate(ProcId(1), 7));
        assert!(t.active_for(Block(3)).is_none());
    }

    #[test]
    fn wave_marking_blocks_reissue_until_clear() {
        let mut t = DistTable::new(16);
        t.activate(ProcId(4), Block(7), NodeId(104), ReqKind::Write, 1);
        t.activate(ProcId(8), Block(9), NodeId(108), ReqKind::Write, 1);
        t.mark_peers(Block(7));
        assert!(t.has_marked(Block(7)));
        assert!(!t.has_marked(Block(9)), "marking is per block");
        t.deactivate(ProcId(4), 1);
        assert!(!t.has_marked(Block(7)));
    }

    #[test]
    fn dist_tracks_presence() {
        let mut t = DistTable::new(4);
        assert!(t.is_empty());
        assert!(!t.has_any_for(Block(1)));
        t.activate(ProcId(0), Block(1), NodeId(10), ReqKind::Read, 1);
        assert!(t.has_any_for(Block(1)));
        assert!(!t.is_empty());
    }

    #[test]
    fn arb_node_table_matches_by_proc_and_epoch() {
        let mut t = ArbNodeTable::new();
        t.activate(Block(3), req(1), 1);
        assert_eq!(t.active_for(Block(3)).unwrap().proc, ProcId(1));
        t.deactivate(Block(3), ProcId(2), 1); // wrong proc: ignored
        assert!(!t.is_empty());
        t.deactivate(Block(3), ProcId(1), 1);
        assert_eq!(t.active_for(Block(3)), None);
        assert!(t.is_empty());
        // Ghost suppression: deactivate-then-activate for the same epoch.
        t.deactivate(Block(4), ProcId(3), 2);
        t.activate(Block(4), req(3), 2);
        assert!(t.active_for(Block(4)).is_none());
    }

    #[test]
    fn arbiter_is_fifo_and_single_active() {
        let mut a = Arbiter::new();
        assert_eq!(a.enqueue(Block(1), req(3), 1).unwrap().1.proc, ProcId(3));
        assert_eq!(a.enqueue(Block(1), req(1), 1), None, "busy: queued");
        assert_eq!(a.enqueue(Block(2), req(2), 1), None);
        assert_eq!(a.queued(), 2);
        // Completing a queued (not active) request withdraws it.
        assert_eq!(a.complete(Block(1), ProcId(1), 1), None);
        assert_eq!(a.queued(), 1);
        // Completing the active request activates the next in FIFO order.
        let next = a.complete(Block(1), ProcId(3), 1).unwrap();
        assert_eq!((next.0, next.1.proc), (Block(2), ProcId(2)));
        assert_eq!(a.complete(Block(2), ProcId(2), 1), None);
        assert_eq!(a.current(), None);
    }

    #[test]
    fn arbiter_withdraws_satisfied_queued_requests() {
        // A request satisfied by ordinary token transfers before its turn
        // must leave the queue, or the arbiter would activate a ghost.
        let mut a = Arbiter::new();
        a.enqueue(Block(1), req(0), 1);
        a.enqueue(Block(2), req(1), 4);
        assert_eq!(a.complete(Block(2), ProcId(1), 4), None);
        assert_eq!(a.queued(), 0);
        // Completing the active request finds nothing left to activate.
        assert_eq!(a.complete(Block(1), ProcId(0), 1), None);
        assert_eq!(a.current(), None);
    }
}
