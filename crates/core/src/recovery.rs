//! Token-loss recovery: recreation timeout/backoff policy (§15).
//!
//! When the interconnect is allowed to drop token-carrying messages
//! (`FaultSpec::lossy_tokens`), a starving L1 that has already escalated
//! to a persistent request may still never complete: the tokens it is
//! waiting for can be gone from the system entirely. The recovery
//! subsystem detects this by timeout — a persistent request outstanding
//! past [`RecoveryParams::base`] — and asks the block's home memory
//! controller (the token authority) to *recreate* the block's tokens
//! under a bumped recreation serial, invalidating every stale token
//! still in flight.
//!
//! Recreation requests themselves travel as reliable control traffic
//! and are re-issued under bounded exponential backoff
//! ([`backoff_delay`]) so a lost-in-congestion recreation never wedges
//! the system while repeated recreation of a merely-slow block stays
//! cheap.
//!
//! The whole module is policy-free arithmetic: controllers consult it
//! only when a [`RecoveryParams`] was installed, which the system layer
//! does only for runs whose fault plan can actually drop tokens — a
//! lossless run never arms a recovery timer and stays bit-identical to
//! a build without this module.

use tokencmp_sim::Dur;

/// Timeout/backoff/drain policy for token recreation, derived by the
/// system layer from `SystemConfig` and the run's fault plan.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RecoveryParams {
    /// Delay from persistent-request escalation to the first recreation
    /// request, and the base of the backoff schedule
    /// (`SystemConfig::recreation_timeout`).
    pub base: Dur,
    /// Upper bound on the backoff schedule
    /// (`SystemConfig::recreation_backoff_cap`).
    pub cap: Dur,
    /// How long the home memory waits after collecting every
    /// recreation ack before minting the new tokens: the configured
    /// `SystemConfig::recreation_drain` plus the fault plan's worst
    /// extra in-flight delay, so any stale bundle still traveling when
    /// the last ack arrived has landed (and been discarded) first.
    pub drain: Dur,
}

/// The deterministic bounded-exponential backoff schedule:
/// `min(base << attempt, cap)`, saturating on shift overflow.
///
/// Attempt 0 is the wait before the *first* recreation request (the
/// starvation timeout itself), attempt 1 the wait before the first
/// re-request, and so on. The schedule is pure arithmetic — no RNG —
/// so replays are bit-identical.
pub fn backoff_delay(base: Dur, cap: Dur, attempt: u32) -> Dur {
    let base_ps = base.as_ps();
    let cap_ps = cap.as_ps();
    let delay = if attempt >= 63 {
        cap_ps
    } else {
        base_ps
            .checked_mul(1u64 << attempt)
            .unwrap_or(cap_ps)
            .min(cap_ps)
    };
    Dur::from_ps(delay)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_until_the_cap() {
        let base = Dur::from_ns(2_000);
        let cap = Dur::from_ns(16_000);
        assert_eq!(backoff_delay(base, cap, 0), Dur::from_ns(2_000));
        assert_eq!(backoff_delay(base, cap, 1), Dur::from_ns(4_000));
        assert_eq!(backoff_delay(base, cap, 2), Dur::from_ns(8_000));
        assert_eq!(backoff_delay(base, cap, 3), Dur::from_ns(16_000));
        assert_eq!(backoff_delay(base, cap, 4), Dur::from_ns(16_000));
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        let base = Dur::from_ns(2_000);
        let cap = Dur::from_ns(16_000);
        for attempt in [62, 63, 64, u32::MAX] {
            assert_eq!(backoff_delay(base, cap, attempt), cap);
        }
    }

    #[test]
    fn backoff_is_monotone_nondecreasing() {
        let base = Dur::from_ns(1_500);
        let cap = Dur::from_ns(40_000);
        let mut prev = Dur::from_ps(0);
        for attempt in 0..70 {
            let d = backoff_delay(base, cap, attempt);
            assert!(d >= prev, "attempt {attempt} shrank the delay");
            assert!(d <= cap);
            prev = d;
        }
    }

    proptest::proptest! {
        /// Differential check of the closed-form schedule against an
        /// iterative reference: double in u128 (which cannot overflow in
        /// 81 steps from a ≤ 2⁶⁰ base), clamp to the cap. Every attempt
        /// up to well past the u64 saturation point must agree — the
        /// closed form's overflow handling is exactly where a schedule
        /// bug would hide, and a wrong schedule desynchronizes replays.
        #[test]
        fn backoff_matches_iterative_reference(
            base_ps in 1u64..=1 << 60,
            cap_ps in 1u64..=1 << 60,
            attempts in 0u32..=80,
        ) {
            let (base, cap) = (Dur::from_ps(base_ps), Dur::from_ps(cap_ps));
            let mut expect = base_ps as u128;
            for attempt in 0..=attempts {
                let clamped = expect.min(cap_ps as u128) as u64;
                proptest::prop_assert_eq!(
                    backoff_delay(base, cap, attempt),
                    Dur::from_ps(clamped),
                    "base {base_ps} cap {cap_ps} attempt {attempt}"
                );
                expect = expect.saturating_mul(2);
            }
        }
    }
}
