//! TokenCMP protocol messages.
//!
//! The substrate moves *tokens* (§3.1): every block has `T` tokens, one of
//! which is the owner token. Messages carrying the owner token must carry
//! data; token-only messages are 8-byte control messages. Transient
//! requests (§4) are unacknowledged and may fail; persistent requests
//! (§3.2) are remembered by every coherence node until deactivated.

use tokencmp_proto::{
    Block, CmpId, CpuPort, CpuReq, CpuResp, MsgClass, NetMsg, ProcId, TokenPayload,
};
use tokencmp_sim::NodeId;

/// Whether a coherence request needs read or write permission.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ReqKind {
    /// Needs at least one token (plus data).
    Read,
    /// Needs all `T` tokens.
    Write,
}

/// A bundle of tokens in flight.
///
/// Invariants (checked by the conservation auditor in the system crate):
/// `count >= 1`; if `owner` then `data` (owner token always travels with
/// valid data, §3.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TokenBundle {
    /// Number of tokens carried (including the owner token if `owner`).
    pub count: u32,
    /// True if the owner token is included.
    pub owner: bool,
    /// True if the message carries the 64-byte data payload.
    pub data: bool,
    /// True if the data has been modified since memory was last updated
    /// (meaningful only with `owner`).
    pub dirty: bool,
}

/// The TokenCMP message set.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokenMsg {
    /// Processor → L1 request (core-internal, free on the wire).
    Cpu(CpuReq),
    /// L1 → processor response (core-internal).
    CpuResp(CpuResp),

    /// An unacknowledged transient request seeking tokens for `block`.
    ///
    /// `requester` is the L1 cache that wants the tokens; responses go
    /// directly to it. `external` is set once the request has crossed a
    /// chip boundary, so receiving L2 banks fan it out to their local L1s
    /// instead of re-broadcasting off chip.
    Transient {
        /// Block being requested.
        block: Block,
        /// The requesting L1 cache.
        requester: NodeId,
        /// Read or write permission.
        kind: ReqKind,
        /// True once forwarded between chips.
        external: bool,
        /// Destination-set prediction (`dst1-dsp` only): the chip
        /// predicted to hold the block's owner; `None` = full broadcast.
        hint: Option<CmpId>,
    },

    /// Tokens (and possibly data) moving between coherence nodes.
    Tokens {
        /// Block the tokens belong to.
        block: Block,
        /// The bundle.
        bundle: TokenBundle,
        /// True for evictions/writebacks (affects traffic class only).
        writeback: bool,
        /// Recreation serial the tokens were minted under (§15): receivers
        /// discard bundles whose serial trails the block's current one.
        /// Stays 0 until the block's first recreation, so the field is
        /// inert on lossless runs.
        serial: u32,
    },

    /// Distributed-activation persistent request (§3.2): broadcast to every
    /// coherence node, remembered until deactivated.
    PersistentActivate {
        /// Block being requested.
        block: Block,
        /// Issuing processor (also the fixed priority).
        proc: ProcId,
        /// The L1 cache tokens should be forwarded to.
        requester: NodeId,
        /// Read (leave one token behind) or write (collect all).
        kind: ReqKind,
        /// Per-processor issue number: the network is unordered, so a
        /// deactivation can overtake its own activation; epochs let
        /// tables suppress such ghosts.
        epoch: u64,
    },
    /// Distributed-activation deactivation: broadcast when satisfied.
    PersistentDeactivate {
        /// Block of the completed request.
        block: Block,
        /// Processor whose request completed.
        proc: ProcId,
        /// Issue number being deactivated.
        epoch: u64,
    },

    /// Arbiter-based persistent request: starving L1 → home arbiter.
    ArbRequest {
        /// Block being requested.
        block: Block,
        /// Issuing processor.
        proc: ProcId,
        /// The L1 cache tokens should be forwarded to.
        requester: NodeId,
        /// Read or write.
        kind: ReqKind,
        /// The requester's issue number.
        epoch: u64,
    },
    /// Arbiter → all coherence nodes: this request is now active.
    ArbActivate {
        /// Block being requested.
        block: Block,
        /// Processor whose request is active.
        proc: ProcId,
        /// Forwarding target.
        requester: NodeId,
        /// Read or write.
        kind: ReqKind,
        /// The requester's issue number (see `PersistentActivate::epoch`).
        epoch: u64,
    },
    /// Satisfied L1 → arbiter: please deactivate my request.
    ArbDeactivateRequest {
        /// Block of the completed request.
        block: Block,
        /// Processor whose request completed.
        proc: ProcId,
        /// Issue number being deactivated.
        epoch: u64,
    },
    /// Arbiter → all coherence nodes: forget this request.
    ArbDeactivate {
        /// Block of the deactivated request.
        block: Block,
        /// Processor whose request was deactivated.
        proc: ProcId,
        /// Issue number being deactivated.
        epoch: u64,
    },

    /// Starving L1 → home memory controller: tokens for `block` appear to
    /// be lost; please start a recreation (§15). Reliable (undroppable).
    RecreateRequest {
        /// Block whose tokens starved.
        block: Block,
        /// The L1 that timed out.
        requester: NodeId,
        /// The block serial the requester last observed; requests trailing
        /// the authority's current serial are stale and ignored.
        serial: u32,
    },
    /// Token authority → every coherence node: bump `block` to `serial`,
    /// discarding any tokens minted under older serials. Reliable.
    RecreateInval {
        /// Block being recreated.
        block: Block,
        /// The new serial.
        serial: u32,
    },
    /// Coherence node → token authority: inval for `serial` applied; my
    /// old-serial tokens are destroyed. Reliable.
    RecreateAck {
        /// Block being recreated.
        block: Block,
        /// Serial being acknowledged.
        serial: u32,
        /// True if the discarded holding included a dirty owner token —
        /// the modified data returns separately on [`TokenMsg::StaleDataReturn`].
        had_dirty_owner: bool,
    },
    /// Node that discarded a *stale* dirty-owner bundle → home memory:
    /// salvaged modified data going home so the recreated owner token is
    /// minted over current data. Reliable, carries the data payload.
    StaleDataReturn {
        /// Block the salvaged data belongs to.
        block: Block,
        /// The stale serial the discarded bundle was minted under.
        serial: u32,
    },
}

impl TokenMsg {
    /// The block this message concerns, if any.
    pub fn block(&self) -> Option<Block> {
        match *self {
            TokenMsg::Cpu(r) => Some(r.block()),
            TokenMsg::CpuResp(CpuResp::Done { block, .. })
            | TokenMsg::CpuResp(CpuResp::WatchFired { block }) => Some(block),
            TokenMsg::Transient { block, .. }
            | TokenMsg::Tokens { block, .. }
            | TokenMsg::PersistentActivate { block, .. }
            | TokenMsg::PersistentDeactivate { block, .. }
            | TokenMsg::ArbRequest { block, .. }
            | TokenMsg::ArbActivate { block, .. }
            | TokenMsg::ArbDeactivateRequest { block, .. }
            | TokenMsg::ArbDeactivate { block, .. }
            | TokenMsg::RecreateRequest { block, .. }
            | TokenMsg::RecreateInval { block, .. }
            | TokenMsg::RecreateAck { block, .. }
            | TokenMsg::StaleDataReturn { block, .. } => Some(block),
        }
    }
}

impl NetMsg for TokenMsg {
    fn size_bytes(&self) -> u32 {
        match self {
            TokenMsg::Cpu(_) | TokenMsg::CpuResp(_) => 0,
            TokenMsg::Transient { .. } => 8,
            TokenMsg::Tokens { bundle, .. } => {
                if bundle.data {
                    72
                } else {
                    8
                }
            }
            TokenMsg::PersistentActivate { .. }
            | TokenMsg::PersistentDeactivate { .. }
            | TokenMsg::ArbRequest { .. }
            | TokenMsg::ArbActivate { .. }
            | TokenMsg::ArbDeactivateRequest { .. }
            | TokenMsg::ArbDeactivate { .. }
            | TokenMsg::RecreateRequest { .. }
            | TokenMsg::RecreateInval { .. }
            | TokenMsg::RecreateAck { .. } => 8,
            TokenMsg::StaleDataReturn { .. } => 72,
        }
    }

    fn class(&self) -> MsgClass {
        match self {
            TokenMsg::Cpu(_) => MsgClass::Request,
            TokenMsg::CpuResp(_) => MsgClass::ResponseData,
            TokenMsg::Transient { .. } => MsgClass::Request,
            TokenMsg::Tokens {
                bundle, writeback, ..
            } => match (writeback, bundle.data) {
                (true, true) => MsgClass::WritebackData,
                (true, false) => MsgClass::WritebackControl,
                (false, true) => MsgClass::ResponseData,
                (false, false) => MsgClass::InvFwdAckTokens,
            },
            TokenMsg::PersistentActivate { .. }
            | TokenMsg::PersistentDeactivate { .. }
            | TokenMsg::ArbRequest { .. }
            | TokenMsg::ArbActivate { .. }
            | TokenMsg::ArbDeactivateRequest { .. }
            | TokenMsg::ArbDeactivate { .. }
            | TokenMsg::RecreateRequest { .. }
            | TokenMsg::RecreateInval { .. }
            | TokenMsg::RecreateAck { .. } => MsgClass::Persistent,
            TokenMsg::StaleDataReturn { .. } => MsgClass::WritebackData,
        }
    }

    /// Only transient requests may be lost (§4: they are unacknowledged
    /// hints with a timeout/retry/persistent-escalation recovery path).
    /// Token-carrying messages would break conservation and persistent-
    /// table messages have no retransmission, so both stay undroppable.
    fn droppable(&self) -> bool {
        matches!(self, TokenMsg::Transient { .. })
    }

    /// Token bundles may be lost under the opt-in token-lossy tier — the
    /// recreation protocol (§15) restores conservation — *except* dirty-
    /// owner bundles: those carry the only up-to-date copy of committed
    /// stores, so they travel on an acknowledged (lossless) channel. The
    /// recreation handshake itself is likewise reliable.
    fn lossy_droppable(&self) -> bool {
        matches!(
            self,
            TokenMsg::Tokens { bundle, .. } if !(bundle.owner && bundle.dirty)
        )
    }

    fn token_payload(&self) -> Option<TokenPayload> {
        match self {
            TokenMsg::Tokens { bundle, serial, .. } => Some(TokenPayload {
                count: bundle.count,
                owner: bundle.owner,
                serial: *serial,
            }),
            _ => None,
        }
    }

    fn block_id(&self) -> Option<u64> {
        self.block().map(|b| b.0)
    }
}

impl CpuPort for TokenMsg {
    fn from_cpu_req(req: CpuReq) -> Self {
        TokenMsg::Cpu(req)
    }
    fn from_cpu_resp(resp: CpuResp) -> Self {
        TokenMsg::CpuResp(resp)
    }
    fn into_cpu_req(self) -> Option<CpuReq> {
        match self {
            TokenMsg::Cpu(r) => Some(r),
            _ => None,
        }
    }
    fn into_cpu_resp(self) -> Option<CpuResp> {
        match self {
            TokenMsg::CpuResp(r) => Some(r),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tokencmp_proto::AccessKind;

    #[test]
    fn sizes_follow_section8() {
        let data = TokenMsg::Tokens {
            block: Block(1),
            bundle: TokenBundle {
                count: 3,
                owner: true,
                data: true,
                dirty: false,
            },
            writeback: false,
            serial: 0,
        };
        assert_eq!(data.size_bytes(), 72);
        let ctl = TokenMsg::Tokens {
            block: Block(1),
            bundle: TokenBundle {
                count: 1,
                owner: false,
                data: false,
                dirty: false,
            },
            writeback: false,
            serial: 0,
        };
        assert_eq!(ctl.size_bytes(), 8);
        let req = TokenMsg::Transient {
            block: Block(1),
            requester: NodeId(0),
            kind: ReqKind::Read,
            external: false,
            hint: None,
        };
        assert_eq!(req.size_bytes(), 8);
    }

    #[test]
    fn classes_map_to_figure7() {
        let mk = |writeback, data| TokenMsg::Tokens {
            block: Block(0),
            bundle: TokenBundle {
                count: 1,
                owner: false,
                data,
                dirty: false,
            },
            writeback,
            serial: 0,
        };
        assert_eq!(mk(false, true).class(), MsgClass::ResponseData);
        assert_eq!(mk(false, false).class(), MsgClass::InvFwdAckTokens);
        assert_eq!(mk(true, true).class(), MsgClass::WritebackData);
        assert_eq!(mk(true, false).class(), MsgClass::WritebackControl);
        let p = TokenMsg::PersistentActivate {
            block: Block(0),
            proc: ProcId(0),
            requester: NodeId(1),
            kind: ReqKind::Write,
            epoch: 1,
        };
        assert_eq!(p.class(), MsgClass::Persistent);
    }

    #[test]
    fn lossy_tier_spares_dirty_owner_bundles() {
        let mk = |owner, dirty| TokenMsg::Tokens {
            block: Block(3),
            bundle: TokenBundle {
                count: 2,
                owner,
                data: owner,
                dirty,
            },
            writeback: false,
            serial: 5,
        };
        // Plain and clean-owner bundles are fair game for the lossy tier...
        assert!(mk(false, false).lossy_droppable());
        assert!(mk(true, false).lossy_droppable());
        // ...but a dirty owner carries the only copy of committed stores.
        assert!(!mk(true, true).lossy_droppable());
        // The baseline droppable() exemption is unchanged: tokens never
        // drop outside the opt-in tier.
        assert!(!mk(false, false).droppable());
        assert_eq!(
            mk(true, false).token_payload(),
            Some(TokenPayload {
                count: 2,
                owner: true,
                serial: 5
            })
        );
    }

    #[test]
    fn recreation_messages_are_reliable_control_traffic() {
        let req = TokenMsg::RecreateRequest {
            block: Block(7),
            requester: NodeId(4),
            serial: 1,
        };
        let inval = TokenMsg::RecreateInval {
            block: Block(7),
            serial: 2,
        };
        let ack = TokenMsg::RecreateAck {
            block: Block(7),
            serial: 2,
            had_dirty_owner: false,
        };
        let ret = TokenMsg::StaleDataReturn {
            block: Block(7),
            serial: 1,
        };
        for m in [req, inval, ack] {
            assert_eq!(m.size_bytes(), 8);
            assert_eq!(m.class(), MsgClass::Persistent);
        }
        assert_eq!(ret.size_bytes(), 72);
        assert_eq!(ret.class(), MsgClass::WritebackData);
        for m in [req, inval, ack, ret] {
            assert!(!m.droppable() && !m.lossy_droppable());
            assert_eq!(m.token_payload(), None);
            assert_eq!(m.block(), Some(Block(7)));
        }
    }

    #[test]
    fn cpu_port_round_trip() {
        let req = CpuReq::Access {
            kind: AccessKind::Load,
            block: Block(9),
        };
        let m = TokenMsg::from_cpu_req(req);
        assert_eq!(m.into_cpu_req(), Some(req));
        let resp = CpuResp::Done {
            kind: AccessKind::Load,
            block: Block(9),
        };
        let m = TokenMsg::from_cpu_resp(resp);
        assert_eq!(m.block(), Some(Block(9)));
        assert_eq!(m.into_cpu_resp(), Some(resp));
        assert_eq!(TokenMsg::from_cpu_req(req).into_cpu_resp(), None);
    }
}
