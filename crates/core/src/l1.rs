//! The TokenCMP L1 cache controller (data or instruction).
//!
//! On a processor miss the L1 broadcasts a transient request within its
//! chip (§4); tokens arrive asynchronously and the miss completes the
//! moment enough are held (one for reads, all `T` for writes). Timeouts
//! retry or escalate to a persistent request, per the variant's policy
//! (Table 1). The controller also answers other caches' transient
//! requests, remembers persistent requests, honors the bounded
//! response-delay window, and implements the spin-watch used by the
//! sequencer to model test-and-test-and-set loops.

use std::any::Any;
use std::cell::Cell;
use std::collections::HashMap;
use std::rc::Rc;

use tokencmp_cache::{InsertOutcome, SetAssoc};
use tokencmp_proto::Block;
use tokencmp_proto::{AccessKind, CpuReq, CpuResp, Layout, ProcId, SystemConfig, Unit};
use tokencmp_sim::{Component, Ctx, Dur, Ewma, NodeId, Rng, Time};
use tokencmp_trace::{LatencyBreakdown, Segment, SegmentParts, TraceEvent, TraceHandle};

use crate::common::{persistent_grant, transient_grant, GrantRules, PersistentState, TokenLine};
use crate::msg::{ReqKind, TokenBundle, TokenMsg};
use crate::policy::{Activation, ContentionPredictor, Variant};
use crate::recovery::{backoff_delay, RecoveryParams};

/// Wake-tag bit marking a response-delay (lock) expiry; low bits carry the
/// block number.
const TAG_LOCK: u64 = 1 << 63;

/// Wake-tag bit marking a token-recreation timeout; low bits carry the
/// MSHR epoch (as for transient timeouts), so a completed miss's bumped
/// epoch invalidates its outstanding recreation timers too.
const TAG_RECREATE: u64 = 1 << 62;

/// Counters exposed by an L1 controller after a run.
#[derive(Clone, Debug, Default)]
pub struct L1Stats {
    /// Processor accesses satisfied without leaving the L1.
    pub hits: u64,
    /// Processor accesses that missed.
    pub misses: u64,
    /// Transient requests issued (including retries).
    pub transient_issued: u64,
    /// Transient-request timeouts that led to a retry.
    pub retries: u64,
    /// Persistent requests issued.
    pub persistent_issued: u64,
    /// Persistent requests that were persistent *reads*.
    pub persistent_reads: u64,
    /// Misses sent straight to a persistent request by the predictor.
    pub predictor_shortcuts: u64,
    /// Token-recreation requests sent to the home memory (token loss
    /// recovery, §15). Always zero on lossless runs.
    pub recreation_requests: u64,
    /// Miss latency distribution with per-tier attribution (picoseconds).
    pub lat: LatencyBreakdown,
}

#[derive(Debug)]
struct Mshr {
    block: Block,
    access: AccessKind,
    kind: ReqKind,
    attempts: u32,
    started: Time,
    last_issue: Time,
    persistent: bool,
    /// When the miss escalated to a persistent request (attribution).
    escalated_at: Option<Time>,
    /// The tier that supplied the most recent tokens for this miss — the
    /// winning supplier once the miss completes (attribution).
    supplier: Segment,
    epoch: u64,
    /// Recreation requests issued for this miss (backoff schedule index).
    recovery_attempts: u32,
    /// When the first recreation request was sent (attribution).
    recovery_at: Option<Time>,
}

/// A TokenCMP L1 cache controller.
pub struct TokenL1 {
    cfg: Rc<SystemConfig>,
    layout: Layout,
    me: NodeId,
    proc: ProcId,
    proc_node: NodeId,
    variant: Variant,
    rules: GrantRules,
    lines: SetAssoc<TokenLine>,
    mshr: Option<Mshr>,
    watch: Option<Block>,
    persistent: PersistentState,
    /// A persistent request held back by the wave-marking rule.
    pending_persistent: Option<(Block, ReqKind)>,
    /// Response-delay windows: blocks we will not surrender until the time.
    locks: HashMap<Block, Time>,
    /// Requests deferred by a response-delay window.
    deferred: Vec<TokenMsg>,
    mem_ewma: Ewma,
    rng: Rng,
    predictor: Option<ContentionPredictor>,
    /// Destination-set predictor (`dst1-dsp`): the chip that last
    /// supplied tokens for a block.
    dest_pred: HashMap<Block, tokencmp_proto::CmpId>,
    epoch: u64,
    /// Per-block recreation serials, as last announced by each block's
    /// home memory (the token authority). Absent ⇒ serial 0, so the map
    /// stays empty — and serial handling free — on lossless runs.
    serials: HashMap<Block, u32>,
    /// Token-loss recovery policy; `None` (the default) on runs whose
    /// fault plan cannot drop tokens — no timer is ever armed then.
    recovery: Option<RecoveryParams>,
    /// Persistent-request issue number, shared by the processor's L1-D and
    /// L1-I caches (they issue under one processor identity; epochs
    /// suppress reordered ghosts and must be monotone per processor).
    persistent_epoch: Rc<Cell<u64>>,
    /// The epoch of this cache's own outstanding persistent request.
    my_epoch: u64,
    trace: Option<TraceHandle>,
    /// Run statistics.
    pub stats: L1Stats,
}

impl TokenL1 {
    /// Creates an L1 controller for processor `proc`.
    ///
    /// `me` must be the node id this controller is registered under
    /// (its L1-D or L1-I slot in the layout).
    pub fn new(
        cfg: Rc<SystemConfig>,
        me: NodeId,
        proc: ProcId,
        variant: Variant,
        seed: u64,
        persistent_epoch: Rc<Cell<u64>>,
    ) -> TokenL1 {
        let layout = cfg.layout();
        let rules = GrantRules {
            total_tokens: cfg.tokens_per_block,
            caches_per_cmp: 2 * cfg.procs_per_cmp as u32 + cfg.banks_per_cmp as u32,
            migratory: cfg.migratory_sharing,
        };
        TokenL1 {
            lines: SetAssoc::new(cfg.l1_sets, cfg.l1_ways, 0),
            persistent: PersistentState::new(layout.procs() as usize),
            predictor: variant.uses_predictor().then(ContentionPredictor::new),
            proc_node: layout.proc(proc),
            layout,
            me,
            proc,
            variant,
            rules,
            mshr: None,
            watch: None,
            pending_persistent: None,
            locks: HashMap::new(),
            deferred: Vec::new(),
            mem_ewma: Ewma::new(0.25),
            rng: Rng::new(seed ^ (me.0 as u64) << 32),
            dest_pred: HashMap::new(),
            epoch: 0,
            serials: HashMap::new(),
            recovery: None,
            persistent_epoch,
            my_epoch: 0,
            trace: None,
            cfg,
            stats: L1Stats::default(),
        }
    }

    /// Installs the run's trace sink (no sink ⇒ zero tracing work).
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = Some(trace);
    }

    /// Arms token-loss recovery: once a persistent request has been
    /// outstanding for `params.base`, this cache starts asking the
    /// block's home memory to recreate the tokens. Installed by the
    /// system layer only when the fault plan can drop token-carrying
    /// messages.
    pub fn set_recovery(&mut self, params: RecoveryParams) {
        self.recovery = Some(params);
    }

    /// The recreation serial this cache believes is current for `block`.
    fn serial_of(&self, block: Block) -> u32 {
        self.serials.get(&block).copied().unwrap_or(0)
    }

    /// The tier a token supplier `src` belongs to, seen from this cache.
    fn supplier_tier(&self, src: NodeId) -> Segment {
        if matches!(self.layout.unit(src), Unit::Mem(_)) {
            Segment::Mem
        } else if self.layout.placement(src).cmp() == self.layout.cmp_of_proc(self.proc) {
            Segment::Intra
        } else {
            Segment::Inter
        }
    }

    /// Tokens currently held, per block (for conservation audits).
    pub fn token_census(&self) -> Vec<(Block, u32, bool)> {
        self.token_lines().collect()
    }

    /// Zero-allocation variant of [`token_census`](Self::token_census)
    /// for the telemetry sampler, which visits every cache every sample.
    pub fn token_lines(&self) -> impl Iterator<Item = (Block, u32, bool)> + '_ {
        self.lines.iter().map(|(b, l)| (b, l.tokens, l.owner))
    }

    /// True if this L1 has an outstanding miss.
    pub fn has_outstanding_miss(&self) -> bool {
        self.mshr.is_some()
    }

    /// A one-line description of the outstanding miss (if any) and the
    /// persistent-table entry governing its block, for the stall
    /// watchdog's diagnostic snapshot.
    pub fn pending_snapshot(&self) -> Option<String> {
        let m = self.mshr.as_ref()?;
        let table = match self.persistent.active_for(m.block) {
            Some(a) => format!("persistent table: active {a:?}"),
            None => "persistent table: inactive".to_string(),
        };
        Some(format!(
            "{m:?}; {table}; recreation serial {}",
            self.serial_of(m.block)
        ))
    }

    fn tokens_needed(&self, kind: ReqKind) -> u32 {
        match kind {
            ReqKind::Read => 1,
            ReqKind::Write => self.cfg.tokens_per_block,
        }
    }

    fn locked(&self, block: Block, now: Time) -> bool {
        self.locks.get(&block).is_some_and(|&t| t > now)
    }

    fn lock(&mut self, block: Block, ctx: &mut Ctx<'_, TokenMsg>) {
        if self.cfg.response_delay.is_zero() {
            return;
        }
        let until = ctx.now + self.cfg.response_delay;
        self.locks.insert(block, until);
        debug_assert!(block.0 < TAG_LOCK);
        ctx.wake_at(until, TAG_LOCK | block.0);
    }

    /// Current transient-request timeout threshold, derived from memory
    /// response latencies only (§4), with a conservative default before
    /// the first observation.
    fn timeout_threshold(&self) -> Dur {
        let base = self.mem_ewma.value_or(Dur::from_ns(150).as_ps() as f64);
        Dur::from_ps((base * 1.5) as u64).max(Dur::from_ns(100))
    }

    fn send_tokens(
        &mut self,
        ctx: &mut Ctx<'_, TokenMsg>,
        delay: Dur,
        dst: NodeId,
        block: Block,
        bundle: TokenBundle,
        writeback: bool,
    ) {
        debug_assert!(bundle.count >= 1);
        if let Some(t) = &self.trace {
            t.borrow_mut().record(
                ctx.now,
                TraceEvent::TokensMoved {
                    block,
                    from: self.me,
                    to: dst,
                    count: bundle.count,
                    owner: bundle.owner,
                },
            );
        }
        let serial = self.serial_of(block);
        ctx.send_after(
            delay,
            dst,
            TokenMsg::Tokens {
                block,
                bundle,
                serial,
                writeback,
            },
        );
    }

    /// Sends an evicted or unwanted bundle to the local L2 bank for the
    /// block (the natural spill level; the substrate only requires that
    /// tokens are never destroyed).
    fn spill(&mut self, ctx: &mut Ctx<'_, TokenMsg>, block: Block, bundle: TokenBundle) {
        let cmp = self.layout.cmp_of_proc(self.proc);
        let bank = self.cfg.l2_bank_of(block);
        let dst = self.layout.l2(cmp, bank);
        self.send_tokens(ctx, Dur::ZERO, dst, block, bundle, true);
    }

    /// Drops the line if it ran out of tokens; fires the spin-watch.
    fn after_line_change(&mut self, block: Block, ctx: &mut Ctx<'_, TokenMsg>) {
        let empty = self.lines.peek(block).is_some_and(TokenLine::is_empty);
        if empty {
            self.lines.remove(block);
        }
        if !self.lines.contains(block) && self.watch == Some(block) {
            self.watch = None;
            ctx.send(
                self.proc_node,
                TokenMsg::CpuResp(CpuResp::WatchFired { block }),
            );
        }
    }

    /// Forwards tokens to the active persistent request for `block`, if
    /// any and if we hold tokens (deferring inside a response-delay
    /// window).
    fn try_forward(&mut self, block: Block, ctx: &mut Ctx<'_, TokenMsg>) {
        let Some(req) = self.persistent.active_for(block) else {
            return;
        };
        if req.requester == self.me {
            return;
        }
        if self.locked(block, ctx.now) {
            return; // the lock-expiry wake re-runs try_forward
        }
        let Some(line) = self.lines.get_mut(block) else {
            return;
        };
        if let Some(bundle) = persistent_grant(line, req.kind, true) {
            self.send_tokens(ctx, Dur::ZERO, req.requester, block, bundle, false);
            self.after_line_change(block, ctx);
        }
    }

    /// Discards a bundle that arrived under a stale recreation serial
    /// (the authority recreated the block's tokens while this bundle was
    /// in flight). A stale *dirty owner* — which the lossy tier never
    /// drops — salvages its data back to the home memory over reliable
    /// control traffic. Returns true when the bundle was stale.
    fn discard_if_stale(
        &mut self,
        block: Block,
        bundle: TokenBundle,
        serial: u32,
        ctx: &mut Ctx<'_, TokenMsg>,
    ) -> bool {
        let current = self.serial_of(block);
        if serial >= current {
            return false;
        }
        if let Some(t) = &self.trace {
            t.borrow_mut().record(
                ctx.now,
                TraceEvent::StaleDiscard {
                    node: self.me,
                    block,
                    count: bundle.count,
                    owner: bundle.owner,
                    serial,
                },
            );
        }
        if bundle.owner && bundle.dirty {
            let home = self.layout.mem(self.cfg.home_of(block));
            ctx.send(home, TokenMsg::StaleDataReturn { block, serial });
        }
        true
    }

    fn fold_tokens(
        &mut self,
        src: NodeId,
        block: Block,
        bundle: TokenBundle,
        serial: u32,
        ctx: &mut Ctx<'_, TokenMsg>,
    ) {
        if self.discard_if_stale(block, bundle, serial, ctx) {
            return;
        }
        if serial > self.serial_of(block) {
            // Tokens minted under a recreation we have already acked;
            // the ack barrier guarantees the inval preceded them.
            self.serials.insert(block, serial);
        }
        if let Some(t) = &self.trace {
            t.borrow_mut().record(
                ctx.now,
                TraceEvent::TokensDelivered {
                    block,
                    node: self.me,
                    count: bundle.count,
                    owner: bundle.owner,
                },
            );
        }
        let wanted =
            self.mshr.as_ref().is_some_and(|m| m.block == block) || self.lines.contains(block);
        if !wanted {
            // Unsolicited tokens for a block we neither cache nor want:
            // hand them straight to an active persistent request ("forward
            // all tokens — those present and received in the future",
            // §3.2), else pass them to the L2 so they are never lost.
            if let Some(req) = self.persistent.active_for(block) {
                if req.requester != self.me {
                    let requester = req.requester;
                    self.send_tokens(ctx, Dur::ZERO, requester, block, bundle, false);
                    return;
                }
            }
            self.spill(ctx, block, bundle);
            return;
        }
        if let Some(line) = self.lines.get_mut(block) {
            line.fold(bundle);
        } else {
            if let Some(t) = &self.trace {
                t.borrow_mut().record(
                    ctx.now,
                    TraceEvent::CacheFill {
                        node: self.me,
                        block,
                        state: if bundle.owner { "O" } else { "S" },
                    },
                );
            }
            match self.lines.insert(block, TokenLine::from_bundle(bundle)) {
                InsertOutcome::Evicted(vblock, mut vline) => {
                    let vb = vline.take_all(true);
                    if let Some(t) = &self.trace {
                        t.borrow_mut().record(
                            ctx.now,
                            TraceEvent::CacheEvict {
                                node: self.me,
                                block: vblock,
                                state: if vb.owner { "O" } else { "S" },
                            },
                        );
                    }
                    self.spill(ctx, vblock, vb);
                    self.after_line_change(vblock, ctx);
                }
                InsertOutcome::Inserted | InsertOutcome::Replaced(_) => {}
            }
        }
        if self.variant.uses_destination_prediction() {
            // Learn who supplies this block: a remote cache's chip, or —
            // for memory responses — the home chip (the request reaches
            // the memory controller through its chip's L2 relay).
            let supplier = self.layout.placement(src).cmp();
            if supplier != self.layout.cmp_of_proc(self.proc) {
                self.dest_pred.insert(block, supplier);
            }
        }
        // Timeout threshold learns from memory responses only (§4).
        if matches!(self.layout.unit(src), Unit::Mem(_)) {
            if let Some(m) = &self.mshr {
                if m.block == block {
                    let lat = ctx.now.since(m.last_issue);
                    self.mem_ewma.observe(lat.as_ps() as f64);
                }
            }
        }
        // Attribution: remember which tier the latest tokens came from —
        // if they complete the miss, that tier supplied the winning
        // transfer.
        if self.mshr.as_ref().is_some_and(|m| m.block == block) {
            let seg = self.supplier_tier(src);
            self.mshr.as_mut().unwrap().supplier = seg;
        }
        self.maybe_complete(ctx);
        self.try_forward(block, ctx);
        self.after_line_change(block, ctx);
    }

    fn maybe_complete(&mut self, ctx: &mut Ctx<'_, TokenMsg>) {
        let Some(m) = &self.mshr else {
            return;
        };
        let needed = self.tokens_needed(m.kind);
        let Some(line) = self.lines.peek(m.block) else {
            return;
        };
        if line.tokens < needed {
            return;
        }
        let m = self.mshr.take().unwrap();
        debug_assert!(
            m.kind != ReqKind::Write || self.lines.peek(m.block).unwrap().owner,
            "all tokens must include the owner token"
        );
        // The access happens *now* — the instant the substrate's token
        // guard holds (the later CpuResp::Done is just wire latency).
        if let Some(t) = &self.trace {
            t.borrow_mut().record(
                ctx.now,
                TraceEvent::AccessDone {
                    node: self.me,
                    proc: self.proc,
                    block: m.block,
                    kind: m.access,
                },
            );
        }
        if m.kind == ReqKind::Write {
            let line = self.lines.get_mut(m.block).unwrap();
            line.dirty = true;
            line.written = true;
            self.lock(m.block, ctx);
        }
        // Attribution: decompose the miss into the time burned on timed-out
        // attempts (retry), the wait under a persistent request, and the
        // winning transfer, credited to the tier that supplied it.
        let total = ctx.now.since(m.started).as_ps();
        let mut parts = SegmentParts::default();
        if let Some(esc) = m.escalated_at {
            parts.add(Segment::Retry, esc.since(m.started).as_ps());
            if let Some(rec) = m.recovery_at {
                parts.add(Segment::PersistentWait, rec.since(esc).as_ps());
                parts.add(Segment::Recovery, ctx.now.since(rec).as_ps());
            } else {
                parts.add(Segment::PersistentWait, ctx.now.since(esc).as_ps());
            }
        } else if m.attempts > 1 {
            parts.add(Segment::Retry, m.last_issue.since(m.started).as_ps());
            parts.add(m.supplier, ctx.now.since(m.last_issue).as_ps());
        } else {
            parts.add(m.supplier, total);
        }
        self.stats.lat.record(total, parts);
        if let Some(t) = &self.trace {
            t.borrow_mut().record(
                ctx.now,
                TraceEvent::MissCommit {
                    proc: self.proc,
                    block: m.block,
                    kind: m.access,
                    total: Dur::from_ps(total),
                    parts,
                },
            );
        }
        ctx.send(
            self.proc_node,
            TokenMsg::CpuResp(CpuResp::Done {
                kind: m.access,
                block: m.block,
            }),
        );
        self.epoch += 1; // invalidate outstanding timeout wakes
        if m.persistent {
            self.finish_persistent(m.block, ctx);
        }
        // Hand off to any remaining persistent requests (after our
        // response-delay window, via try_forward's lock check).
        self.try_forward(m.block, ctx);
    }

    /// Emits a persistent activate/deactivate trace event, if tracing.
    fn emit_persistent(&self, block: Block, activate: bool, now: Time) {
        if let Some(t) = &self.trace {
            let ev = if activate {
                TraceEvent::PersistentActivate {
                    block,
                    proc: self.proc,
                }
            } else {
                TraceEvent::PersistentDeactivate {
                    block,
                    proc: self.proc,
                }
            };
            t.borrow_mut().record(now, ev);
        }
    }

    fn finish_persistent(&mut self, block: Block, ctx: &mut Ctx<'_, TokenMsg>) {
        let epoch = self.my_epoch;
        self.emit_persistent(block, false, ctx.now);
        match self.variant.activation() {
            Activation::Distributed => {
                self.persistent.dist.deactivate(self.proc, epoch);
                // Wave rule: mark every request that was outstanding when
                // ours completed; we may not re-issue for this block until
                // they all drain.
                self.persistent.dist.mark_peers(block);
                let msg = TokenMsg::PersistentDeactivate {
                    block,
                    proc: self.proc,
                    epoch,
                };
                for node in self.layout.all_coherence_nodes() {
                    if node != self.me {
                        ctx.send(node, msg);
                    }
                }
            }
            Activation::Arbiter => {
                let home = self.layout.mem(self.cfg.home_of(block));
                ctx.send(
                    home,
                    TokenMsg::ArbDeactivateRequest {
                        block,
                        proc: self.proc,
                        epoch,
                    },
                );
            }
        }
    }

    fn issue_transient(&mut self, ctx: &mut Ctx<'_, TokenMsg>, first: bool) {
        let m = self.mshr.as_mut().expect("transient without mshr");
        m.attempts += 1;
        m.last_issue = ctx.now;
        m.epoch = self.epoch;
        let (block, kind, epoch, attempts) = (m.block, m.kind, m.epoch, m.attempts);
        self.stats.transient_issued += 1;
        let issue_delay = if first {
            self.cfg.l1_latency
        } else {
            Dur::ZERO
        };
        // Destination-set prediction: only the *first* attempt is
        // narrowed; retries broadcast fully (the substrate guarantees
        // correctness regardless of who the request reaches).
        let hint = if self.variant.uses_destination_prediction() && attempts == 1 {
            self.dest_pred.get(&block).copied()
        } else {
            None
        };
        let req = TokenMsg::Transient {
            block,
            requester: self.me,
            kind,
            external: false,
            hint,
        };
        if self.variant.is_flat() {
            // Original TokenB: broadcast directly to every cache in the
            // system plus the block's home memory controller, ignoring
            // the hierarchy (§4 explains why this scales poorly).
            for node in self.layout.all_caches() {
                if node != self.me {
                    ctx.send_after(issue_delay, node, req);
                }
            }
            let home = self.layout.mem(self.cfg.home_of(block));
            ctx.send_after(issue_delay, home, req);
        } else {
            let cmp = self.layout.cmp_of_proc(self.proc);
            for l1 in self.layout.l1s_on(cmp) {
                if l1 != self.me {
                    ctx.send_after(issue_delay, l1, req);
                }
            }
            let bank = self.cfg.l2_bank_of(block);
            ctx.send_after(issue_delay, self.layout.l2(cmp, bank), req);
        }
        // Timeout with pseudo-random backoff to avoid lock-step retries.
        let theta = self.timeout_threshold();
        let jitter = Dur::from_ps(self.rng.below(theta.as_ps() / 4 + 1));
        let delay = issue_delay + theta.times(attempts as u64) + jitter;
        ctx.wake_in(delay, epoch);
    }

    /// Schedules the next token-recreation timeout for the outstanding
    /// miss. A no-op unless the system layer armed recovery for this run
    /// (i.e. the fault plan can actually drop tokens), so lossless runs
    /// schedule no extra wakes and stay bit-identical.
    fn arm_recovery_timer(&mut self, ctx: &mut Ctx<'_, TokenMsg>) {
        let Some(rp) = self.recovery else {
            return;
        };
        let Some(m) = &self.mshr else {
            return;
        };
        debug_assert!(m.epoch < TAG_RECREATE);
        let delay = backoff_delay(rp.base, rp.cap, m.recovery_attempts);
        ctx.wake_in(delay, TAG_RECREATE | m.epoch);
    }

    fn issue_persistent(&mut self, ctx: &mut Ctx<'_, TokenMsg>) {
        let m = self.mshr.as_mut().expect("persistent without mshr");
        let (block, kind) = (m.block, m.kind);
        m.epoch = self.epoch;
        match self.variant.activation() {
            Activation::Distributed => {
                if self.persistent.dist.has_marked(block) {
                    // Wave rule: wait for the previous wave to drain.
                    self.pending_persistent = Some((block, kind));
                    return;
                }
                {
                    let m = self.mshr.as_mut().unwrap();
                    m.persistent = true;
                    m.escalated_at.get_or_insert(ctx.now);
                }
                self.stats.persistent_issued += 1;
                if kind == ReqKind::Read {
                    self.stats.persistent_reads += 1;
                }
                self.emit_persistent(block, true, ctx.now);
                let epoch = self.persistent_epoch.get() + 1;
                self.persistent_epoch.set(epoch);
                self.my_epoch = epoch;
                self.persistent
                    .dist
                    .activate(self.proc, block, self.me, kind, epoch);
                let msg = TokenMsg::PersistentActivate {
                    block,
                    proc: self.proc,
                    requester: self.me,
                    kind,
                    epoch,
                };
                for node in self.layout.all_coherence_nodes() {
                    if node != self.me {
                        ctx.send(node, msg);
                    }
                }
                self.arm_recovery_timer(ctx);
                // We may already hold enough tokens (e.g. a racing
                // response arrived just before escalation).
                self.maybe_complete(ctx);
            }
            Activation::Arbiter => {
                {
                    let m = self.mshr.as_mut().unwrap();
                    m.persistent = true;
                    m.escalated_at.get_or_insert(ctx.now);
                }
                self.stats.persistent_issued += 1;
                if kind == ReqKind::Read {
                    self.stats.persistent_reads += 1;
                }
                self.emit_persistent(block, true, ctx.now);
                let epoch = self.persistent_epoch.get() + 1;
                self.persistent_epoch.set(epoch);
                self.my_epoch = epoch;
                let home = self.layout.mem(self.cfg.home_of(block));
                ctx.send(
                    home,
                    TokenMsg::ArbRequest {
                        block,
                        proc: self.proc,
                        requester: self.me,
                        kind,
                        epoch,
                    },
                );
                self.arm_recovery_timer(ctx);
            }
        }
    }

    fn handle_cpu(&mut self, req: CpuReq, ctx: &mut Ctx<'_, TokenMsg>) {
        match req {
            CpuReq::Access { kind, block } => {
                assert!(self.mshr.is_none(), "sequencer issues one op at a time");
                let rkind = if kind.needs_write() {
                    ReqKind::Write
                } else {
                    ReqKind::Read
                };
                let needed = self.tokens_needed(rkind);
                let hit = self.lines.get_mut(block).is_some_and(|line| {
                    if line.tokens >= needed {
                        if rkind == ReqKind::Write {
                            line.dirty = true;
                            line.written = true;
                        }
                        true
                    } else {
                        false
                    }
                });
                if hit {
                    if let Some(t) = &self.trace {
                        t.borrow_mut().record(
                            ctx.now,
                            TraceEvent::AccessDone {
                                node: self.me,
                                proc: self.proc,
                                block,
                                kind,
                            },
                        );
                    }
                    if rkind == ReqKind::Write {
                        self.lock(block, ctx);
                    }
                    self.stats.hits += 1;
                    ctx.send_after(
                        self.cfg.l1_latency,
                        self.proc_node,
                        TokenMsg::CpuResp(CpuResp::Done { kind, block }),
                    );
                    return;
                }
                self.stats.misses += 1;
                self.epoch += 1;
                self.mshr = Some(Mshr {
                    block,
                    access: kind,
                    kind: rkind,
                    attempts: 0,
                    started: ctx.now,
                    last_issue: ctx.now,
                    persistent: false,
                    escalated_at: None,
                    supplier: Segment::Intra,
                    epoch: self.epoch,
                    recovery_attempts: 0,
                    recovery_at: None,
                });
                let predicted_contended = self
                    .predictor
                    .as_ref()
                    .is_some_and(|p| p.predicts_contended(block));
                if self.variant.max_transient() == 0 {
                    self.issue_persistent(ctx);
                } else if predicted_contended {
                    self.stats.predictor_shortcuts += 1;
                    self.issue_persistent(ctx);
                } else {
                    self.issue_transient(ctx, true);
                }
            }
            CpuReq::Watch { block } => {
                if self.lines.contains(block) {
                    self.watch = Some(block);
                } else {
                    ctx.send(
                        self.proc_node,
                        TokenMsg::CpuResp(CpuResp::WatchFired { block }),
                    );
                }
            }
        }
    }

    fn handle_transient(
        &mut self,
        block: Block,
        requester: NodeId,
        kind: ReqKind,
        external: bool,
        ctx: &mut Ctx<'_, TokenMsg>,
    ) {
        if requester == self.me {
            return;
        }
        // Persistent requests have absolute priority: while one is active
        // for this block, tokens are reserved for its initiator (otherwise
        // transient readers could siphon tokens off an almost-complete
        // persistent write forever).
        if self.persistent.active_for(block).is_some() {
            return;
        }
        if self.locked(block, ctx.now) {
            self.deferred.push(TokenMsg::Transient {
                block,
                requester,
                kind,
                external,
                hint: None,
            });
            return;
        }
        let Some(line) = self.lines.get_mut(block) else {
            return; // a cache only responds when it has tokens
        };
        if let Some(bundle) = transient_grant(line, kind, external, &self.rules) {
            self.send_tokens(ctx, self.cfg.l1_latency, requester, block, bundle, false);
            self.after_line_change(block, ctx);
        }
    }

    /// Handles a recreation invalidate from `block`'s home memory: adopt
    /// the new serial, destroy any tokens still held under the old one
    /// (salvaging a dirty owner's data back to memory first), and ack.
    /// After the ack this cache can never use old-serial tokens again —
    /// `discard_if_stale` drops them at receipt — which is the safety
    /// barrier the authority's recreation relies on.
    fn handle_recreate_inval(
        &mut self,
        src: NodeId,
        block: Block,
        serial: u32,
        ctx: &mut Ctx<'_, TokenMsg>,
    ) {
        if serial <= self.serial_of(block) {
            // A reordered ghost of an inval we already acked.
            return;
        }
        self.serials.insert(block, serial);
        let (mut discarded, mut owner, mut had_dirty_owner) = (0, false, false);
        if let Some(line) = self.lines.get_mut(block) {
            let b = line.take_all(true);
            discarded = b.count;
            owner = b.owner;
            had_dirty_owner = b.owner && b.dirty;
        }
        if let Some(t) = &self.trace {
            t.borrow_mut().record(
                ctx.now,
                TraceEvent::EpochInval {
                    node: self.me,
                    block,
                    serial,
                    discarded,
                    owner,
                },
            );
        }
        if had_dirty_owner {
            ctx.send(src, TokenMsg::StaleDataReturn { block, serial });
        }
        ctx.send(
            src,
            TokenMsg::RecreateAck {
                block,
                serial,
                had_dirty_owner,
            },
        );
        self.after_line_change(block, ctx);
    }

    fn handle_persistent_table(&mut self, msg: &TokenMsg, ctx: &mut Ctx<'_, TokenMsg>) {
        let Some(block) = self.persistent.apply(msg) else {
            return;
        };
        if let Some(t) = &self.trace {
            if let Some(ev) = crate::common::table_apply_event(msg, self.me) {
                t.borrow_mut().record(ctx.now, ev);
            }
        }
        // A held-back persistent request may now be issuable.
        if let TokenMsg::PersistentDeactivate { .. } | TokenMsg::ArbDeactivate { .. } = msg {
            if let Some((pblock, _)) = self.pending_persistent {
                if pblock == block
                    && !self.persistent.dist.has_marked(block)
                    && self.mshr.as_ref().is_some_and(|m| m.block == block)
                {
                    self.pending_persistent = None;
                    self.issue_persistent(ctx);
                }
            }
        }
        self.try_forward(block, ctx);
    }
}

impl Component<TokenMsg> for TokenL1 {
    fn on_msg(&mut self, src: NodeId, msg: TokenMsg, ctx: &mut Ctx<'_, TokenMsg>) {
        match msg {
            TokenMsg::Cpu(req) => self.handle_cpu(req, ctx),
            TokenMsg::Transient {
                block,
                requester,
                kind,
                external,
                ..
            } => self.handle_transient(block, requester, kind, external, ctx),
            TokenMsg::Tokens {
                block,
                bundle,
                serial,
                ..
            } => self.fold_tokens(src, block, bundle, serial, ctx),
            TokenMsg::PersistentActivate { .. }
            | TokenMsg::PersistentDeactivate { .. }
            | TokenMsg::ArbActivate { .. }
            | TokenMsg::ArbDeactivate { .. } => self.handle_persistent_table(&msg, ctx),
            TokenMsg::RecreateInval { block, serial } => {
                self.handle_recreate_inval(src, block, serial, ctx)
            }
            TokenMsg::CpuResp(_) => unreachable!("L1 does not receive CPU responses"),
            TokenMsg::ArbRequest { .. } | TokenMsg::ArbDeactivateRequest { .. } => {
                unreachable!("arbiter messages go to memory controllers")
            }
            TokenMsg::RecreateRequest { .. }
            | TokenMsg::RecreateAck { .. }
            | TokenMsg::StaleDataReturn { .. } => {
                unreachable!("recreation authority traffic goes to memory controllers")
            }
        }
    }

    fn on_wake(&mut self, tag: u64, ctx: &mut Ctx<'_, TokenMsg>) {
        if tag & TAG_LOCK != 0 {
            // Response-delay expiry: release deferred work for the block.
            let block = Block(tag & !TAG_LOCK);
            if self.locked(block, ctx.now) {
                return; // re-locked meanwhile; a later wake is scheduled
            }
            self.locks.remove(&block);
            let deferred = std::mem::take(&mut self.deferred);
            for m in deferred {
                match m {
                    TokenMsg::Transient {
                        block: b,
                        requester,
                        kind,
                        external,
                        ..
                    } if b == block => self.handle_transient(b, requester, kind, external, ctx),
                    other => self.deferred.push(other),
                }
            }
            self.try_forward(block, ctx);
            return;
        }
        if tag & TAG_RECREATE != 0 {
            // Recreation timeout: the persistent request has starved past
            // the recovery window — ask the home memory to recreate the
            // block's tokens, then back off and re-arm.
            let epoch = tag & !TAG_RECREATE;
            let Some(m) = &mut self.mshr else {
                return;
            };
            if m.epoch != epoch || !m.persistent {
                return; // stale timer, or the wave rule still holds us back
            }
            m.recovery_at.get_or_insert(ctx.now);
            m.recovery_attempts += 1;
            let block = m.block;
            let serial = self.serial_of(block);
            self.stats.recreation_requests += 1;
            let home = self.layout.mem(self.cfg.home_of(block));
            ctx.send(
                home,
                TokenMsg::RecreateRequest {
                    block,
                    requester: self.me,
                    serial,
                },
            );
            self.arm_recovery_timer(ctx);
            return;
        }
        // Transient-request timeout.
        let Some(m) = &self.mshr else {
            return;
        };
        if m.epoch != tag || m.persistent {
            return; // stale timeout
        }
        let block = m.block;
        if let Some(p) = &mut self.predictor {
            p.record_timeout(block, &mut self.rng);
        }
        if m.attempts < self.variant.max_transient() {
            self.stats.retries += 1;
            self.issue_transient(ctx, false);
        } else {
            self.issue_persistent(ctx);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn kind(&self) -> &'static str {
        "l1"
    }
}

impl std::fmt::Debug for TokenL1 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TokenL1")
            .field("me", &self.me)
            .field("proc", &self.proc)
            .field("variant", &self.variant)
            .field("lines", &self.lines.len())
            .field("mshr", &self.mshr)
            .finish()
    }
}
