//! TokenCMP performance-policy configuration (Table 1) and the
//! contention predictor used by `TokenCMP-dst1-pred`.

use tokencmp_proto::Block;
use tokencmp_sim::Rng;

/// How persistent requests are activated (§3.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Activation {
    /// The original arbiter scheme: home memory controllers arbitrate.
    Arbiter,
    /// The new distributed scheme: fixed processor priority, wave marking,
    /// direct handoff.
    Distributed,
}

/// The six TokenCMP variants of Table 1, plus the original flat TokenB
/// policy (Martin et al., ISCA '03) that §4 argues is ill-suited to
/// M-CMP systems — included as a baseline for the hierarchy ablation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Variant {
    /// No performance policy: every miss goes straight to an arbiter-based
    /// persistent request.
    Arb0,
    /// No performance policy: every miss goes straight to a distributed
    /// persistent request.
    Dst0,
    /// One transient request plus up to three retries (TokenB-style), then
    /// persistent.
    Dst4,
    /// One transient request, then immediately persistent.
    Dst1,
    /// Like `Dst1` plus a contention predictor that skips the transient
    /// request for blocks that recently timed out.
    Dst1Pred,
    /// Like `Dst1` plus an approximate L1-sharer filter on incoming
    /// external transient requests at each L2 bank.
    Dst1Filt,
    /// The original *flat* TokenB policy: transient requests broadcast
    /// directly to every cache and the home memory controller, ignoring
    /// the chip hierarchy (no local-first phase, no C-token responses).
    /// Not part of Table 1; used by the hierarchy ablation.
    FlatB,
    /// `Dst1` plus destination-set prediction (the multicast the paper
    /// names as the fix for broadcast growth in larger systems, §8 /
    /// [Martin et al., ISCA '03]): the first external attempt goes only
    /// to the chip that last supplied the block (plus the home); a retry
    /// falls back to full broadcast, and the substrate still guarantees
    /// correctness either way. Not part of Table 1.
    Dst1Dsp,
}

impl Variant {
    /// All variants, in Table 1 order.
    pub const ALL: [Variant; 6] = [
        Variant::Arb0,
        Variant::Dst0,
        Variant::Dst4,
        Variant::Dst1,
        Variant::Dst1Pred,
        Variant::Dst1Filt,
    ];

    /// The paper's name for the variant.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Arb0 => "TokenCMP-arb0",
            Variant::Dst0 => "TokenCMP-dst0",
            Variant::Dst4 => "TokenCMP-dst4",
            Variant::Dst1 => "TokenCMP-dst1",
            Variant::Dst1Pred => "TokenCMP-dst1-pred",
            Variant::Dst1Filt => "TokenCMP-dst1-filt",
            Variant::FlatB => "TokenB-flat",
            Variant::Dst1Dsp => "TokenCMP-dst1-dsp",
        }
    }

    /// Maximum transient requests before the substrate goes persistent
    /// (Table 1's "# Transient Requests" column).
    pub fn max_transient(self) -> u32 {
        match self {
            Variant::Arb0 | Variant::Dst0 => 0,
            Variant::Dst4 | Variant::FlatB => 4,
            Variant::Dst1 | Variant::Dst1Pred | Variant::Dst1Filt => 1,
            // One predicted multicast, then one full broadcast.
            Variant::Dst1Dsp => 2,
        }
    }

    /// Which activation mechanism the substrate uses.
    pub fn activation(self) -> Activation {
        match self {
            Variant::Arb0 => Activation::Arbiter,
            _ => Activation::Distributed,
        }
    }

    /// True if L1s consult the contention predictor before issuing a
    /// transient request.
    pub fn uses_predictor(self) -> bool {
        self == Variant::Dst1Pred
    }

    /// True if L2 banks filter incoming external transient requests with
    /// their approximate L1-sharer directory.
    pub fn uses_filter(self) -> bool {
        self == Variant::Dst1Filt
    }

    /// True for the flat TokenB baseline: L1s broadcast system-wide and
    /// L2 banks never re-broadcast.
    pub fn is_flat(self) -> bool {
        self == Variant::FlatB
    }

    /// True if L1s attach an owner-chip prediction to their first
    /// transient attempt, and L2 banks multicast accordingly.
    pub fn uses_destination_prediction(self) -> bool {
        self == Variant::Dst1Dsp
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The `dst1-pred` contention predictor (§4): a four-way set-associative
/// 256-entry table of 2-bit saturating counters. A counter is allocated and
/// incremented when a transient request is retried (or goes persistent);
/// counters reset pseudo-randomly so the predictor adapts to phase changes.
#[derive(Clone, Debug)]
pub struct ContentionPredictor {
    // [set][way] -> (tag, counter)
    entries: Vec<[(u64, u8); 4]>,
    sets: usize,
    threshold: u8,
    reset_chance: f64,
}

impl ContentionPredictor {
    /// Creates the paper's base configuration: 256 entries, 4-way, 2-bit
    /// counters predicting "contended" at saturation.
    pub fn new() -> ContentionPredictor {
        ContentionPredictor {
            entries: vec![[(u64::MAX, 0); 4]; 64],
            sets: 64,
            threshold: 3,
            reset_chance: 1.0 / 64.0,
        }
    }

    fn set_of(&self, block: Block) -> usize {
        (block.0 % self.sets as u64) as usize
    }

    /// True if the predictor says `block` is highly contended and the L1
    /// should issue a persistent request immediately.
    pub fn predicts_contended(&self, block: Block) -> bool {
        let set = &self.entries[self.set_of(block)];
        set.iter()
            .any(|&(tag, ctr)| tag == block.0 && ctr >= self.threshold)
    }

    /// Records that a transient request for `block` timed out (allocates
    /// and increments the saturating counter; pseudo-randomly resets).
    pub fn record_timeout(&mut self, block: Block, rng: &mut Rng) {
        let reset = rng.chance(self.reset_chance);
        let si = self.set_of(block);
        let set = &mut self.entries[si];
        if let Some(e) = set.iter_mut().find(|(tag, _)| *tag == block.0) {
            if reset {
                e.1 = 0;
            } else if e.1 < 3 {
                e.1 += 1;
            }
            return;
        }
        // Allocate: replace the entry with the smallest counter.
        let victim = set.iter_mut().min_by_key(|(_, ctr)| *ctr).expect("4 ways");
        *victim = (block.0, 1);
    }
}

impl Default for ContentionPredictor {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_transient_counts() {
        assert_eq!(Variant::Arb0.max_transient(), 0);
        assert_eq!(Variant::Dst0.max_transient(), 0);
        assert_eq!(Variant::Dst4.max_transient(), 4);
        assert_eq!(Variant::Dst1.max_transient(), 1);
        assert_eq!(Variant::Dst1Pred.max_transient(), 1);
        assert_eq!(Variant::Dst1Filt.max_transient(), 1);
    }

    #[test]
    fn table1_activation_mechanisms() {
        assert_eq!(Variant::Arb0.activation(), Activation::Arbiter);
        for v in [
            Variant::Dst0,
            Variant::Dst4,
            Variant::Dst1,
            Variant::Dst1Pred,
            Variant::Dst1Filt,
        ] {
            assert_eq!(v.activation(), Activation::Distributed);
        }
    }

    #[test]
    fn feature_flags() {
        assert!(Variant::Dst1Pred.uses_predictor());
        assert!(!Variant::Dst1.uses_predictor());
        assert!(Variant::Dst1Filt.uses_filter());
        assert!(!Variant::Dst1Pred.uses_filter());
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Variant::Dst1.to_string(), "TokenCMP-dst1");
        assert_eq!(Variant::ALL.len(), 6);
    }

    #[test]
    fn predictor_saturates_after_repeated_timeouts() {
        let mut p = ContentionPredictor::new();
        let mut rng = Rng::new(1);
        let b = Block(42);
        assert!(!p.predicts_contended(b));
        for _ in 0..8 {
            p.record_timeout(b, &mut rng);
        }
        assert!(p.predicts_contended(b));
        // A different block is unaffected.
        assert!(!p.predicts_contended(Block(43)));
    }

    #[test]
    fn predictor_allocation_replaces_weakest() {
        let mut p = ContentionPredictor::new();
        let mut rng = Rng::new(2);
        // Fill one set with four strongly-contended blocks (set = block % 64).
        for i in 0..4u64 {
            let b = Block(64 * i);
            for _ in 0..8 {
                p.record_timeout(b, &mut rng);
            }
        }
        // A fifth block in the same set evicts one of them.
        let newcomer = Block(64 * 4);
        p.record_timeout(newcomer, &mut rng);
        let contended = (0..=4u64)
            .filter(|&i| p.predicts_contended(Block(64 * i)))
            .count();
        assert!(contended <= 4);
    }

    #[test]
    fn predictor_resets_eventually() {
        let mut p = ContentionPredictor::new();
        let mut rng = Rng::new(3);
        let b = Block(7);
        // With reset chance 1/64, 10_000 updates will reset many times; the
        // counter must still be recoverable afterwards.
        for _ in 0..10_000 {
            p.record_timeout(b, &mut rng);
        }
        for _ in 0..8 {
            p.record_timeout(b, &mut rng);
        }
        // After enough consecutive timeouts it predicts contended again
        // unless the very last update reset it (prob 1/64 twice in a row is
        // possible but this seed does not hit it).
        assert!(p.predicts_contended(b));
    }
}
