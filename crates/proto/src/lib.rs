//! Shared protocol vocabulary for the TokenCMP coherence simulator.
//!
//! Everything the coherence protocols, the interconnect model and the
//! system builder must agree on lives here:
//!
//! * [`Block`] — block-granularity physical addresses and their home /
//!   bank mapping,
//! * [`ProcId`], [`CmpId`], [`Unit`], [`Layout`] — the fixed component
//!   topology of an M-CMP system and its deterministic [`NodeId`] layout,
//! * [`MsgClass`], [`NetMsg`] — the message taxonomy used for the paper's
//!   Figure 7 traffic breakdown,
//! * [`CpuReq`], [`CpuResp`], [`CpuPort`] — the processor↔L1 port shared
//!   by every protocol, and
//! * [`SystemConfig`] — the paper's Table 3 target-system parameters.
//!
//! [`NodeId`]: tokencmp_sim::NodeId

pub mod addr;
pub mod config;
pub mod cpu;
pub mod layout;
pub mod msg;
pub mod trace_block;

pub use addr::Block;
pub use config::{Fabric, SystemConfig};
pub use cpu::{AccessKind, CpuPort, CpuReq, CpuResp};
pub use layout::{CmpId, Layout, Placement, ProcId, Unit};
pub use msg::{MsgClass, NetMsg, TokenPayload};
pub use trace_block::{parse_trace_block, trace_block_filter};
